#pragma once

/// \file plan.hpp
/// Declarative fault & adversary configuration (ROADMAP item 2).
///
/// A FaultPlan is a plain value describing which faults a run should
/// suffer: message loss / duplication / corruption rates, heavy-tailed
/// straggler delay inflation, memoryless crash + recover schedules, an
/// explicit crash timetable, and a Byzantine node set with a reporting
/// policy. The plan itself contains no randomness — fault::Injector
/// turns a plan into concrete, deterministic fault decisions, every one
/// drawn from an `Rng::substream` labeled by (window/round, shard,
/// fault-channel). The plan is part of a run's trajectory identity: two
/// runs reproduce each other only with equal plans, and a plan with
/// every rate at zero is byte-identical to no plan at all (pinned by
/// tests/fault/).

#include <cstdint>
#include <string>
#include <vector>

#include "opinion/types.hpp"

namespace papc::fault {

/// How a Byzantine node answers when another node samples it.
enum class ByzantinePolicy : std::uint8_t {
    kFixed,     ///< always report opinion k-1 (a fixed non-plurality color)
    kRandom,    ///< report a fresh uniform opinion per round/report
    kAdaptive,  ///< report the strongest minority (runner-up) opinion
};

[[nodiscard]] const char* to_string(ByzantinePolicy policy);

/// Parses "fixed" / "random" / "adaptive"; returns false on anything else.
[[nodiscard]] bool try_parse_byzantine_policy(const std::string& text,
                                              ByzantinePolicy* out);

/// CrashEntry::node value addressing the protocol's distinguished leader
/// (single-leader family) instead of an ordinary node.
inline constexpr NodeId kLeaderNode = 0xFFFFFFFFU;

/// One scheduled, permanent crash: `node` is down for all t >= time.
struct CrashEntry {
    NodeId node = 0;
    double time = 0.0;
};

/// Everything the injector needs to know. All rates are per-decision
/// probabilities in [0, 1] except crash_rate / recover_rate, which are
/// exponential rates per time unit (sync/population families measure
/// time in rounds / interactions-per-node).
struct FaultPlan {
    double loss = 0.0;         ///< P(message silently dropped)
    double duplication = 0.0;  ///< P(message delivered twice)
    double corruption = 0.0;   ///< P(payload corrupted in flight)
    double crash_rate = 0.0;   ///< per-node Exp rate of crashing
    double recover_rate = 0.0; ///< per-node Exp rate of recovering (0 = never)
    double straggler_fraction = 0.0;  ///< P(message is a straggler)
    double straggler_scale = 1.0;     ///< latency-multiplier scale (>= 0)
    double byzantine_fraction = 0.0;  ///< P(node is Byzantine), drawn once
    ByzantinePolicy byzantine_policy = ByzantinePolicy::kFixed;
    std::vector<CrashEntry> scheduled_crashes;  ///< explicit timetable

    /// True when any message-level fault can fire (loss, duplication,
    /// corruption, stragglers). Gates the executor's per-message fast
    /// path: when false the delivery path is the fault-free one.
    [[nodiscard]] bool message_faults_active() const {
        return loss > 0.0 || duplication > 0.0 || corruption > 0.0 ||
               straggler_fraction > 0.0;
    }

    /// True when any node can be down at some time.
    [[nodiscard]] bool crash_active() const {
        return crash_rate > 0.0 || !scheduled_crashes.empty();
    }

    [[nodiscard]] bool byzantine_active() const {
        return byzantine_fraction > 0.0;
    }

    /// True when the plan can change a trajectory at all.
    [[nodiscard]] bool active() const {
        return message_faults_active() || crash_active() || byzantine_active();
    }

    /// Appends human-readable problems (empty = valid).
    void validate(std::vector<std::string>* problems) const;
};

/// Per-channel fault tallies, folded shard-by-shard in index order at the
/// executor barrier (never completion order) and surfaced as RunResult
/// extras.
struct FaultCounters {
    std::uint64_t lost = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delayed = 0;      ///< straggler-inflated deliveries
    std::uint64_t crash_skips = 0;  ///< actions suppressed by a down node

    [[nodiscard]] std::uint64_t total() const {
        return lost + duplicated + corrupted + delayed + crash_skips;
    }
};

}  // namespace papc::fault
