#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace papc::fault {

namespace {
/// Channel labels of the fault substreams, derived from the parent via the
/// pure Rng::substream so the engine tape never shifts. The first label is
/// a fault-layer tag, the second selects the channel.
constexpr std::uint64_t kFaultTag = 0xFA177EA1ULL;
constexpr std::uint64_t kMessageChannel = 1;
constexpr std::uint64_t kCrashChannel = 2;
constexpr std::uint64_t kByzantineChannel = 3;

bool rate_in_unit(double r) { return r >= 0.0 && r <= 1.0; }
}  // namespace

const char* to_string(ByzantinePolicy policy) {
    switch (policy) {
        case ByzantinePolicy::kFixed:
            return "fixed";
        case ByzantinePolicy::kRandom:
            return "random";
        case ByzantinePolicy::kAdaptive:
            return "adaptive";
    }
    return "fixed";
}

bool try_parse_byzantine_policy(const std::string& text,
                                ByzantinePolicy* out) {
    if (text == "fixed") {
        *out = ByzantinePolicy::kFixed;
    } else if (text == "random") {
        *out = ByzantinePolicy::kRandom;
    } else if (text == "adaptive") {
        *out = ByzantinePolicy::kAdaptive;
    } else {
        return false;
    }
    return true;
}

void FaultPlan::validate(std::vector<std::string>* problems) const {
    const auto complain = [problems](const std::string& what) {
        problems->push_back(what);
    };
    if (!rate_in_unit(loss)) complain("fault_loss must be in [0, 1]");
    if (!rate_in_unit(duplication)) complain("fault_dup must be in [0, 1]");
    if (!rate_in_unit(corruption)) {
        complain("fault_corrupt must be in [0, 1]");
    }
    if (crash_rate < 0.0) complain("fault_crash_rate must be >= 0");
    if (recover_rate < 0.0) complain("fault_recover_rate must be >= 0");
    if (!rate_in_unit(straggler_fraction)) {
        complain("fault_straggler_frac must be in [0, 1]");
    }
    if (straggler_scale < 0.0) {
        complain("fault_straggler_scale must be >= 0");
    }
    if (!rate_in_unit(byzantine_fraction)) {
        complain("byzantine_frac must be in [0, 1]");
    }
    for (const CrashEntry& entry : scheduled_crashes) {
        if (entry.time < 0.0) {
            complain("scheduled crash times must be >= 0");
            break;
        }
    }
}

Injector::Injector(const FaultPlan& plan, std::size_t n, double horizon,
                   const Rng& parent)
    : plan_(plan), n_(n) {
    PAPC_CHECK(n_ >= 1);
    std::vector<std::string> problems;
    plan_.validate(&problems);
    PAPC_CHECK(problems.empty());

    msg_base_ = parent.substream(kFaultTag, kMessageChannel);
    crash_base_ = parent.substream(kFaultTag, kCrashChannel);
    byz_base_ = parent.substream(kFaultTag, kByzantineChannel);

    if (plan_.crash_active()) build_crash_timelines(horizon);
    if (plan_.byzantine_active()) build_byzantine_set();
}

MessageFate Injector::draw_fate(Rng& rng) const {
    // Fixed channel order; disabled channels draw nothing. Safe because
    // the plan is part of the trajectory identity (see header).
    MessageFate fate;
    if (plan_.loss > 0.0 && rng.bernoulli(plan_.loss)) {
        fate.drop = true;
        return fate;  // a dropped message has no further fate
    }
    if (plan_.duplication > 0.0) {
        fate.duplicate = rng.bernoulli(plan_.duplication);
    }
    if (plan_.corruption > 0.0) {
        fate.corrupt = rng.bernoulli(plan_.corruption);
    }
    if (plan_.straggler_fraction > 0.0 &&
        rng.bernoulli(plan_.straggler_fraction)) {
        // Pareto(shape 2) latency multiplier: M = 1 + scale * (u^-1/2 - 1)
        // has median ~ 1 + 0.41*scale and infinite variance at shape 2 —
        // genuinely heavy-tailed, yet mean-finite.
        const double u = rng.uniform();
        const double pareto = 1.0 / std::sqrt(std::max(u, 1e-300));
        fate.delay_multiplier =
            1.0 + plan_.straggler_scale * (pareto - 1.0);
    }
    return fate;
}

bool Injector::is_down(NodeId v, double t) const {
    if (!scheduled_down_.empty() && t >= scheduled_down_[v]) return true;
    if (offsets_.empty()) return false;
    const std::uint32_t begin = offsets_[v];
    const std::uint32_t end = offsets_[v + 1];
    // Down iff an odd number of boundaries are <= t (boundaries alternate
    // crash, recover, crash, ...). A node is down AT its crash time
    // (upper_bound: boundary <= t counts), matching the leader's legacy
    // `t >= failure_time` edge.
    const auto* first = boundaries_.data() + begin;
    const auto* last = boundaries_.data() + end;
    const auto count =
        static_cast<std::size_t>(std::upper_bound(first, last, t) - first);
    return (count & 1U) != 0;
}

void Injector::build_crash_timelines(double horizon) {
    const double span = std::max(horizon, 0.0);
    if (plan_.crash_rate > 0.0) {
        offsets_.assign(n_ + 1, 0);
        boundaries_.clear();
        for (NodeId v = 0; v < n_; ++v) {
            // Per-node substream: the timeline of node v depends only on
            // (seed, v), never on other nodes or the iteration order.
            Rng stream = crash_base_.substream(0, v);
            double t = 0.0;
            bool down = false;
            std::size_t count = 0;
            while (count < kMaxBoundariesPerNode) {
                const double rate =
                    down ? plan_.recover_rate : plan_.crash_rate;
                if (rate <= 0.0) break;  // no recovery: down forever
                t += stream.exponential(rate);
                if (t > span) break;
                boundaries_.push_back(t);
                down = !down;
                ++count;
            }
            offsets_[v + 1] = static_cast<std::uint32_t>(boundaries_.size());
            if (count > 0) ++nodes_crashed_;
        }
    }
    for (const CrashEntry& entry : plan_.scheduled_crashes) {
        if (entry.node == kLeaderNode) {
            leader_crash_time_ = std::min(leader_crash_time_, entry.time);
            continue;
        }
        PAPC_CHECK(entry.node < n_);
        if (scheduled_down_.empty()) {
            scheduled_down_.assign(
                n_, std::numeric_limits<double>::infinity());
        }
        if (entry.time < scheduled_down_[entry.node]) {
            if (scheduled_down_[entry.node] ==
                    std::numeric_limits<double>::infinity() &&
                entry.time <= span) {
                ++nodes_crashed_;
            }
            scheduled_down_[entry.node] = entry.time;
        }
    }
}

void Injector::build_byzantine_set() {
    // One sequential node-ascending pass: membership of node v is the
    // v-th bernoulli draw of the byzantine stream — pure in (seed, v
    // prefix), independent of threads.
    Rng stream = byz_base_.substream(0, 0);
    byzantine_.assign(n_, 0);
    for (NodeId v = 0; v < n_; ++v) {
        if (stream.bernoulli(plan_.byzantine_fraction)) {
            byzantine_[v] = 1;
            byzantine_nodes_.push_back(v);
        }
    }
    byzantine_count_ = byzantine_nodes_.size();
}

}  // namespace papc::fault
