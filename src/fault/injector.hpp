#pragma once

/// \file injector.hpp
/// Deterministic realization of a FaultPlan.
///
/// The injector is built once per run from (plan, n, horizon, parent Rng)
/// and is immutable afterwards: every query is const and thread-safe, so
/// one injector is safely shared by all shards of a windowed executor or
/// all workers of the sharded round driver. Determinism contract (the
/// PR 5/6 contract, extended to faults):
///
///   - The parent generator is NOT advanced: every stream derives through
///     the pure `Rng::substream`, so attaching an injector never shifts
///     an engine's existing random tape. A plan with all rates at zero
///     therefore reproduces the fault-free trajectory byte-for-byte.
///   - Message-fault decisions draw from `message_stream(window, shard)`
///     — a pure function of (seed, window counter, shard), never of the
///     thread count or shard completion order.
///   - Crash/recover timelines are precomputed per node at construction
///     from per-node substreams, so `is_down(v, t)` is a pure lookup.
///   - Byzantine membership is drawn once, node-ascending, at
///     construction; per-round adversarial opinions draw from
///     `byzantine_round_stream(round)`.
///
/// Rates of zero draw nothing (the per-message draw sequence skips
/// disabled channels). This is safe because the plan is part of the
/// trajectory identity: changing any rate is allowed to change every
/// subsequent fault decision.

#include <cstdint>
#include <limits>
#include <vector>

#include "fault/plan.hpp"
#include "opinion/types.hpp"
#include "support/random.hpp"

namespace papc::fault {

/// The fate of one message, drawn channel by channel in fixed order.
struct MessageFate {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    double delay_multiplier = 1.0;  ///< > 1 for stragglers
};

class Injector {
public:
    /// Crash/recover boundaries per node are truncated beyond this count;
    /// past the cap a node's last up/down state persists. Bounds timeline
    /// memory for degenerate (rate x horizon) products; documented, and
    /// deterministic either way.
    static constexpr std::size_t kMaxBoundariesPerNode = 256;

    /// `horizon` is the simulated-time span crash timelines must cover
    /// (max_time for event engines, max rounds / interactions-per-node
    /// for the round/pair engines). `parent` is read, never advanced.
    Injector(const FaultPlan& plan, std::size_t n, double horizon,
             const Rng& parent);

    [[nodiscard]] const FaultPlan& plan() const { return plan_; }
    [[nodiscard]] std::size_t population() const { return n_; }

    // ------------------------------------------------------- message layer
    [[nodiscard]] bool message_faults_active() const {
        return plan_.message_faults_active();
    }

    /// Per-(window, shard) message-fault stream — the executor assigns one
    /// to each lane at window start, exactly like the engine substreams.
    [[nodiscard]] Rng message_stream(std::uint64_t window,
                                     std::uint64_t shard) const {
        return msg_base_.substream(window, shard);
    }

    /// Serial engines (sequential single-leader, population pairs) hold
    /// one message/pair stream for the whole run.
    [[nodiscard]] Rng serial_stream() const {
        // papc-lint: allow(D7): disjoint from message_stream — the windowed
        // executor pre-increments window_counter_ before deriving lane
        // streams, so windowed labels always have window >= 1, and a run
        // uses either the windowed or the serial stream, never both.
        return msg_base_.substream(0, 0);
    }

    /// Draws one message's fate from `rng` in fixed channel order
    /// (loss, duplication, corruption, straggler).
    [[nodiscard]] MessageFate draw_fate(Rng& rng) const;

    // --------------------------------------------------------- crash layer
    [[nodiscard]] bool crash_active() const { return plan_.crash_active(); }

    /// True when node v is down at time t (>= crash boundary, < recover
    /// boundary). Pure lookup into the precomputed timeline.
    [[nodiscard]] bool is_down(NodeId v, double t) const;

    /// True when the distinguished leader is down at time t (driven by
    /// scheduled_crashes entries with node == kLeaderNode; matches the
    /// legacy `t >= leader_failure_time` boundary exactly).
    [[nodiscard]] bool leader_down(double t) const {
        return t >= leader_crash_time_;
    }

    [[nodiscard]] bool has_leader_crash() const {
        return leader_crash_time_ !=
               std::numeric_limits<double>::infinity();
    }

    /// Nodes with at least one crash boundary inside the horizon.
    [[nodiscard]] std::uint64_t nodes_crashed() const {
        return nodes_crashed_;
    }

    // ----------------------------------------------------- byzantine layer
    [[nodiscard]] bool byzantine_active() const {
        return plan_.byzantine_active();
    }

    [[nodiscard]] ByzantinePolicy byzantine_policy() const {
        return plan_.byzantine_policy;
    }

    [[nodiscard]] bool is_byzantine(NodeId v) const {
        return !byzantine_.empty() && byzantine_[v] != 0;
    }

    [[nodiscard]] std::uint64_t byzantine_count() const {
        return byzantine_count_;
    }

    /// Ascending node ids of the Byzantine set (empty when inactive).
    [[nodiscard]] const std::vector<NodeId>& byzantine_nodes() const {
        return byzantine_nodes_;
    }

    /// Per-round stream for the kRandom reporting policy: round r's
    /// adversarial opinions are a pure function of (seed, r), drawn in
    /// ascending node order by the engine.
    [[nodiscard]] Rng byzantine_round_stream(std::uint64_t round) const {
        return byz_base_.substream(1, round);
    }

private:
    void build_crash_timelines(double horizon);
    void build_byzantine_set();

    FaultPlan plan_;
    std::size_t n_;
    Rng msg_base_{0};
    Rng crash_base_{0};
    Rng byz_base_{0};

    // CSR crash/recover timeline: boundaries_[offsets_[v]..offsets_[v+1])
    // are node v's alternating crash/recover times (first = crash). A node
    // is down at t iff an odd number of its boundaries are <= t, or its
    // scheduled permanent crash has passed.
    std::vector<std::uint32_t> offsets_;
    std::vector<double> boundaries_;
    std::vector<double> scheduled_down_;  ///< per-node permanent crash time
    double leader_crash_time_ = std::numeric_limits<double>::infinity();
    std::uint64_t nodes_crashed_ = 0;

    std::vector<std::uint8_t> byzantine_;   ///< membership bitmap
    std::vector<NodeId> byzantine_nodes_;   ///< ascending member ids
    std::uint64_t byzantine_count_ = 0;
};

/// Shared target pick of the kAdaptive reporting policy: the strongest
/// minority — largest count among opinions other than the current
/// dominant, smallest index winning ties (k == 1 degenerates to 0).
/// `count(j)` must return the population currently holding opinion j.
template <typename CountFn>
[[nodiscard]] Opinion strongest_minority(std::uint32_t k, CountFn&& count) {
    Opinion dominant = 0;
    std::uint64_t dominant_count = count(0);
    for (Opinion j = 1; j < k; ++j) {
        const std::uint64_t c = count(j);
        if (c > dominant_count) {
            dominant_count = c;
            dominant = j;
        }
    }
    Opinion target = dominant;
    std::uint64_t best = 0;
    bool found = false;
    for (Opinion j = 0; j < k; ++j) {
        if (j == dominant) continue;
        const std::uint64_t c = count(j);
        if (!found || c > best) {
            found = true;
            best = c;
            target = j;
        }
    }
    return target;
}

}  // namespace papc::fault
