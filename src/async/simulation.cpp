#include "async/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/latency_units.hpp"
#include "analysis/theory.hpp"
#include "core/observer.hpp"
#include "sim/windowed_executor.hpp"
#include "support/check.hpp"

namespace papc::async {

namespace {
/// All leader-directed signal events are owned by shard 0; the leader's
/// mutable state is only ever touched from there.
constexpr std::size_t kLeaderShard = 0;
}  // namespace

enum class AsyncEventKind : std::uint8_t {
    kTick,        ///< a node's Poisson clock fired
    kExchange,    ///< a node's three channels are established
    kZeroSignal,  ///< a 0-signal reaches the leader
    kGenSignal,   ///< an i-signal reaches the leader
};

struct AsyncEvent {
    AsyncEventKind kind = AsyncEventKind::kTick;
    NodeId node = 0;
    NodeId peer1 = 0;
    NodeId peer2 = 0;
    Generation gen = 0;
};

SingleLeaderSimulation::SingleLeaderSimulation(const Assignment& assignment,
                                               const AsyncConfig& config,
                                               std::uint64_t seed)
    : SingleLeaderSimulation(assignment, config,
                             sim::make_exponential_latency(config.lambda), seed) {}

SingleLeaderSimulation::SingleLeaderSimulation(
    const Assignment& assignment, const AsyncConfig& config,
    std::unique_ptr<sim::LatencyModel> latency, std::uint64_t seed)
    : config_(config),
      latency_(std::move(latency)),
      rng_(seed),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    PAPC_CHECK(latency_ != nullptr);

    const std::size_t n = assignment.size();
    nodes_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        nodes_[v].col = assignment.opinions[v];
        nodes_[v].gen = 0;
        nodes_[v].locked = false;
        nodes_[v].seen_gen = 1;     // leader's initial public state
        nodes_[v].seen_prop = false;
    }
    census_.reset(assignment.opinions);
    plurality_ = census_.pooled_stats().dominant;
}

SingleLeaderSimulation::~SingleLeaderSimulation() = default;

void SingleLeaderSimulation::record_leader_signal(double time) {
    ++leader_signals_;
    const auto bucket = static_cast<std::int64_t>(time);
    if (bucket != load_bucket_) {
        result_.leader_peak_load =
            std::max(result_.leader_peak_load, static_cast<double>(load_count_));
        load_bucket_ = bucket;
        load_count_ = 0;
    }
    ++load_count_;
}

void SingleLeaderSimulation::begin_window() {
    // Peer reads inside the window observe the window-start state: the
    // owning shard is the only writer of a node, so the live array would
    // race, and snapshot reads are also what makes the trajectory
    // independent of shard completion order.
    nodes_snap_ = nodes_;
    snap_leader_gen_ = leader_->gen();
    snap_leader_prop_ = leader_->prop();
}

void SingleLeaderSimulation::commit_window() {
    // Census moves merge in shard order on the driving thread; counters
    // stay in the shard scratch until the end of the run.
    for (ShardScratch& scratch : scratch_) {
        for (const CensusMove& move : scratch.moves) {
            census_.transition(move.old_gen, move.old_col, move.new_gen,
                               move.new_col);
        }
        scratch.moves.clear();
    }
}

bool SingleLeaderSimulation::advance() {
    if (executor_->empty()) return false;
    begin_window();
    const bool ran = executor_->run_window(
        [this](sim::WindowedExecutor<AsyncEvent>::ShardContext& ctx, double t,
               AsyncEvent& ev) {
            ShardScratch& scratch = scratch_[ctx.shard()];
            Rng& rng = ctx.rng();
            const auto sample_peer = [&](NodeId self) {
                return static_cast<NodeId>(
                    rng.uniform_index_excluding(nodes_.size(), self));
            };
            switch (ev.kind) {
                case AsyncEventKind::kTick: {
                    ++scratch.ticks;
                    NodeState& v = nodes_[ev.node];
                    // A crashed node sends nothing and starts nothing, but
                    // its Poisson clock keeps running so it resumes after a
                    // recovery boundary.
                    if (crash_on_ && injector_->is_down(ev.node, t)) {
                        ++scratch.crash_skips;
                        ctx.emit(ctx.shard(), t + rng.exponential(1.0),
                                 AsyncEvent{AsyncEventKind::kTick, ev.node, 0,
                                            0, 0});
                        break;
                    }
                    // Line 1: 0-signal to the leader — fire and forget, but
                    // the signal itself travels one latency draw.
                    ctx.emit_message(
                        kLeaderShard, t, t + latency_->sample(rng),
                        AsyncEvent{AsyncEventKind::kZeroSignal, 0, 0, 0, 0});
                    // Line 2: locked nodes do nothing else at this tick.
                    if (!v.locked) {
                        v.locked = true;
                        ++scratch.good_ticks;
                        scratch.channels_opened += 3;
                        // Lines 3-4: open two peer channels concurrently,
                        // then the leader channel: max(T2,T2) + T2.
                        const double peer_a = latency_->sample(rng);
                        const double peer_b = latency_->sample(rng);
                        const double to_leader = latency_->sample(rng);
                        const double ready =
                            t + std::max(peer_a, peer_b) + to_leader;
                        ctx.emit(ctx.shard(), ready,
                                 AsyncEvent{AsyncEventKind::kExchange, ev.node,
                                            sample_peer(ev.node),
                                            sample_peer(ev.node), 0});
                    }
                    // Next Poisson tick (stays on the node's own shard).
                    ctx.emit(ctx.shard(), t + rng.exponential(1.0),
                             AsyncEvent{AsyncEventKind::kTick, ev.node, 0, 0, 0});
                    break;
                }

                case AsyncEventKind::kExchange: {
                    NodeState& v = nodes_[ev.node];
                    PAPC_CHECK(v.locked);
                    // A node that crashed while its channels were opening
                    // completes nothing: unlock and move on.
                    if (crash_on_ && injector_->is_down(ev.node, t)) {
                        ++scratch.crash_skips;
                        v.locked = false;
                        break;
                    }
                    ++scratch.exchanges;
                    // Peers and leader are read from the window-start
                    // snapshots (see begin_window()).
                    const NodeState& p1 = nodes_snap_[ev.peer1];
                    const NodeState& p2 = nodes_snap_[ev.peer2];
                    const PeerSample s1{p1.gen, p1.col};
                    const PeerSample s2{p2.gen, p2.col};
                    const Generation old_gen = v.gen;
                    const Opinion old_col = v.col;
                    const ExchangeDecision decision = decide_exchange(
                        v, snap_leader_gen_, snap_leader_prop_, s1, s2);
                    const bool changed = apply_decision(
                        v, decision, snap_leader_gen_, snap_leader_prop_);
                    switch (decision.kind) {
                        case ExchangeDecision::Kind::kTwoChoices:
                            ++scratch.two_choices;
                            break;
                        case ExchangeDecision::Kind::kPropagation:
                            ++scratch.propagation;
                            break;
                        case ExchangeDecision::Kind::kRefreshOnly:
                            ++scratch.refresh;
                            break;
                        case ExchangeDecision::Kind::kNone:
                            break;
                    }
                    if (changed) {
                        scratch.moves.push_back(
                            CensusMove{old_gen, old_col, v.gen, v.col});
                        // Invariant: never beyond the leader's generation
                        // (the snapshot is a lower bound of the live one).
                        PAPC_CHECK(v.gen <= snap_leader_gen_);
                        if (decision.send_gen_signal) {
                            // Corruption rewrites the generation payload
                            // downward into [1, gen] — an adversarially
                            // garbled but protocol-legal signal.
                            ctx.emit_message(
                                kLeaderShard, t, t + latency_->sample(rng),
                                AsyncEvent{AsyncEventKind::kGenSignal, 0, 0,
                                           0, v.gen},
                                [](Rng& fault_rng, AsyncEvent& msg) {
                                    msg.gen = static_cast<Generation>(
                                        1 + fault_rng.uniform_index(msg.gen));
                                });
                        }
                    }
                    v.locked = false;  // line 15
                    break;
                }

                case AsyncEventKind::kZeroSignal:
                    record_leader_signal(t);
                    if (injector_ == nullptr || !injector_->leader_down(t)) {
                        leader_->on_zero_signal(t);
                    }
                    break;

                case AsyncEventKind::kGenSignal:
                    record_leader_signal(t);
                    if (injector_ == nullptr || !injector_->leader_down(t)) {
                        leader_->on_gen_signal(t, ev.gen);
                    }
                    break;
            }
        });
    commit_window();
    now_ = executor_->now();
    return ran;
}

AsyncResult SingleLeaderSimulation::run() {
    PAPC_CHECK(!ran_);
    ran_ = true;

    const std::size_t n = nodes_.size();
    result_.leader_generation = TimeSeries("leader-generation");

    // Fault layer: splice the deprecated leader_failure_time knob into the
    // plan as a scheduled leader crash, then build the injector from the
    // run generator's *current* state via the pure substream — rng_ is not
    // advanced, so the splits and draws below are byte-identical to a
    // fault-free run when the plan is inactive.
    fault::FaultPlan plan = config_.fault;
    if (config_.leader_failure_time >= 0.0) {
        plan.scheduled_crashes.push_back(
            fault::CrashEntry{fault::kLeaderNode, config_.leader_failure_time});
    }
    if (plan.active()) {
        injector_ = std::make_unique<fault::Injector>(plan, n,
                                                      config_.max_time, rng_);
        crash_on_ = injector_->crash_active();
        result_.nodes_crashed = injector_->nodes_crashed();
    }

    // Measure C1 = F^{-1}(0.9) of T3 for this latency model (Monte Carlo;
    // deterministic given the seed).
    Rng c1_rng = rng_.split();
    const double steps_per_unit =
        analysis::t3_quantile_monte_carlo(*latency_, 0.9, 20000, c1_rng);
    result_.steps_per_unit = steps_per_unit;

    // Leader thresholds: C3·n 0-signals span `two_choices_units` time units
    // (Proposition 16); the generation-size gate is ⌈fraction·n⌉.
    LeaderConfig leader_config;
    leader_config.zero_signal_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.two_choices_units * steps_per_unit * static_cast<double>(n)));
    leader_config.generation_size_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.generation_size_fraction * static_cast<double>(n)));
    leader_config.max_generation = analysis::total_generations(
        std::max(config_.alpha_hint, 1.0 + 1e-9), census_.num_opinions(), n,
        config_.generation_slack);
    leader_ = std::make_unique<Leader>(leader_config);

    // Windowed executor: pending events stay near 2 per node (next tick +
    // in-flight exchange/signal).
    sim::WindowedOptions executor_options;
    executor_options.shards = config_.event_shards;
    executor_options.threads = config_.threads;
    executor_options.window = config_.window;
    executor_options.lambda = config_.lambda;
    executor_options.queue_kind = config_.queue_kind;
    executor_options.reserve_hint = 2 * n;
    executor_options.injector = injector_.get();
    executor_ = std::make_unique<sim::WindowedExecutor<AsyncEvent>>(
        n, executor_options, rng_.split());
    scratch_.resize(executor_->num_shards());

    // Initial ticks.
    for (NodeId v = 0; v < n; ++v) {
        executor_->seed(executor_->shard_of(v), rng_.exponential(1.0),
                        AsyncEvent{AsyncEventKind::kTick, v, 0, 0, 0});
    }

    core::EngineOptions run_options;
    run_options.max_time = config_.max_time;
    run_options.sample_interval = config_.sample_interval;
    run_options.record = config_.record_series;
    run_options.plurality = plurality_;
    run_options.epsilon = config_.epsilon;
    core::FunctionObserver observer([this](double time, double) {
        if (config_.record_series) {
            result_.leader_generation.record(
                time, static_cast<double>(leader_->gen()));
        }
    });
    static_cast<core::RunResult&>(result_) =
        core::run(*this, run_options, &observer);

    for (const ShardScratch& scratch : scratch_) {
        result_.ticks += scratch.ticks;
        result_.good_ticks += scratch.good_ticks;
        result_.exchanges += scratch.exchanges;
        result_.two_choices_count += scratch.two_choices;
        result_.propagation_count += scratch.propagation;
        result_.refresh_count += scratch.refresh;
        result_.channels_opened += scratch.channels_opened;
        result_.faults.crash_skips += scratch.crash_skips;
    }
    const fault::FaultCounters& mf = executor_->fault_counters();
    result_.faults.lost = mf.lost;
    result_.faults.duplicated = mf.duplicated;
    result_.faults.corrupted = mf.corrupted;
    result_.faults.delayed = mf.delayed;
    result_.signals_delivered = leader_signals_;
    result_.leader_peak_load =
        std::max(result_.leader_peak_load, static_cast<double>(load_count_));
    result_.events_processed = executor_->events_processed();
    result_.windows = executor_->windows_run();
    result_.window_stragglers = executor_->stragglers();
    result_.final_top_generation = census_.highest_populated();
    result_.leader_trace = leader_->trace();
    return std::move(result_);
}

AsyncResult run_single_leader(std::size_t n, std::uint32_t k, double alpha,
                              const AsyncConfig& config, std::uint64_t seed) {
    Rng workload_rng(derive_seed(seed, 0xA551));
    const Assignment assignment = make_biased_plurality(n, k, alpha, workload_rng);
    SingleLeaderSimulation simulation(assignment, config, derive_seed(seed, 0x51));
    return simulation.run();
}

}  // namespace papc::async
