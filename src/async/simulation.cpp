#include "async/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/latency_units.hpp"
#include "analysis/theory.hpp"
#include "sim/event_queue.hpp"
#include "support/check.hpp"

namespace papc::async {

namespace {

enum class EventKind : std::uint8_t {
    kTick,        ///< a node's Poisson clock fired
    kExchange,    ///< a node's three channels are established
    kZeroSignal,  ///< a 0-signal reaches the leader
    kGenSignal,   ///< an i-signal reaches the leader
    kMetronome,   ///< bookkeeping sample point
};

struct EventPayload {
    EventKind kind = EventKind::kTick;
    NodeId node = 0;
    NodeId peer1 = 0;
    NodeId peer2 = 0;
    Generation gen = 0;
};

}  // namespace

SingleLeaderSimulation::SingleLeaderSimulation(const Assignment& assignment,
                                               const AsyncConfig& config,
                                               std::uint64_t seed)
    : SingleLeaderSimulation(assignment, config,
                             sim::make_exponential_latency(config.lambda), seed) {}

SingleLeaderSimulation::SingleLeaderSimulation(
    const Assignment& assignment, const AsyncConfig& config,
    std::unique_ptr<sim::LatencyModel> latency, std::uint64_t seed)
    : config_(config),
      latency_(std::move(latency)),
      rng_(seed),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    PAPC_CHECK(latency_ != nullptr);

    const std::size_t n = assignment.size();
    nodes_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        nodes_[v].col = assignment.opinions[v];
        nodes_[v].gen = 0;
        nodes_[v].locked = false;
        nodes_[v].seen_gen = 1;     // leader's initial public state
        nodes_[v].seen_prop = false;
    }
    census_.reset(assignment.opinions);
    plurality_ = census_.pooled_stats().dominant;
}

AsyncResult SingleLeaderSimulation::run() {
    PAPC_CHECK(!ran_);
    ran_ = true;

    const std::size_t n = nodes_.size();
    AsyncResult result;
    result.plurality_fraction = TimeSeries("plurality-fraction");
    result.leader_generation = TimeSeries("leader-generation");

    // Measure C1 = F^{-1}(0.9) of T3 for this latency model (Monte Carlo;
    // deterministic given the seed).
    Rng c1_rng = rng_.split();
    const double steps_per_unit =
        analysis::t3_quantile_monte_carlo(*latency_, 0.9, 20000, c1_rng);
    result.steps_per_unit = steps_per_unit;

    // Leader thresholds: C3·n 0-signals span `two_choices_units` time units
    // (Proposition 16); the generation-size gate is ⌈fraction·n⌉.
    LeaderConfig leader_config;
    leader_config.zero_signal_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.two_choices_units * steps_per_unit * static_cast<double>(n)));
    leader_config.generation_size_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.generation_size_fraction * static_cast<double>(n)));
    leader_config.max_generation = analysis::total_generations(
        std::max(config_.alpha_hint, 1.0 + 1e-9), census_.num_opinions(), n,
        config_.generation_slack);
    leader_ = std::make_unique<Leader>(leader_config);

    sim::EventQueue<EventPayload> queue;

    // Initial ticks and the metronome.
    for (NodeId v = 0; v < n; ++v) {
        queue.push(rng_.exponential(1.0), EventPayload{EventKind::kTick, v, 0, 0, 0});
    }
    queue.push(config_.sample_interval,
               EventPayload{EventKind::kMetronome, 0, 0, 0, 0});

    const double epsilon_target = 1.0 - config_.epsilon;
    bool done = false;
    double now = 0.0;

    // Leader congestion: signals per unit-length window (§4.5).
    std::int64_t load_bucket = -1;
    std::uint64_t load_count = 0;
    auto record_leader_signal = [&] {
        ++result.signals_delivered;
        const auto bucket = static_cast<std::int64_t>(now);
        if (bucket != load_bucket) {
            result.leader_peak_load =
                std::max(result.leader_peak_load, static_cast<double>(load_count));
            load_bucket = bucket;
            load_count = 0;
        }
        ++load_count;
    };

    auto sample_peer = [&](NodeId self) {
        auto p = static_cast<NodeId>(rng_.uniform_index(n - 1));
        if (p >= self) ++p;
        return p;
    };

    while (!queue.empty() && !done) {
        auto entry = queue.pop();
        now = entry.time;
        if (now > config_.max_time) break;
        const EventPayload& ev = entry.payload;

        switch (ev.kind) {
            case EventKind::kTick: {
                ++result.ticks;
                NodeState& v = nodes_[ev.node];
                // Line 1: 0-signal to the leader — fire and forget, but the
                // signal itself travels one latency draw.
                queue.push(now + latency_->sample(rng_),
                           EventPayload{EventKind::kZeroSignal, 0, 0, 0, 0});
                // Line 2: locked nodes do nothing else at this tick.
                if (!v.locked) {
                    v.locked = true;
                    ++result.good_ticks;
                    result.channels_opened += 3;
                    // Lines 3-4: open two peer channels concurrently, then
                    // the leader channel: total latency max(T2,T2) + T2.
                    const double peer_a = latency_->sample(rng_);
                    const double peer_b = latency_->sample(rng_);
                    const double to_leader = latency_->sample(rng_);
                    const double ready = now + std::max(peer_a, peer_b) + to_leader;
                    EventPayload ex{EventKind::kExchange, ev.node,
                                    sample_peer(ev.node), sample_peer(ev.node), 0};
                    queue.push(ready, ex);
                }
                // Next Poisson tick.
                queue.push(now + rng_.exponential(1.0),
                           EventPayload{EventKind::kTick, ev.node, 0, 0, 0});
                break;
            }

            case EventKind::kExchange: {
                ++result.exchanges;
                NodeState& v = nodes_[ev.node];
                PAPC_CHECK(v.locked);
                const NodeState& p1 = nodes_[ev.peer1];
                const NodeState& p2 = nodes_[ev.peer2];
                const PeerSample s1{p1.gen, p1.col};
                const PeerSample s2{p2.gen, p2.col};
                const Generation old_gen = v.gen;
                const Opinion old_col = v.col;
                const ExchangeDecision decision = decide_exchange(
                    v, leader_->gen(), leader_->prop(), s1, s2);
                const bool changed =
                    apply_decision(v, decision, leader_->gen(), leader_->prop());
                switch (decision.kind) {
                    case ExchangeDecision::Kind::kTwoChoices:
                        ++result.two_choices_count;
                        break;
                    case ExchangeDecision::Kind::kPropagation:
                        ++result.propagation_count;
                        break;
                    case ExchangeDecision::Kind::kRefreshOnly:
                        ++result.refresh_count;
                        break;
                    case ExchangeDecision::Kind::kNone:
                        break;
                }
                if (changed) {
                    census_.transition(old_gen, old_col, v.gen, v.col);
                    // Invariant: never beyond the leader's generation.
                    PAPC_CHECK(v.gen <= leader_->gen());
                    if (decision.send_gen_signal) {
                        queue.push(now + latency_->sample(rng_),
                                   EventPayload{EventKind::kGenSignal, 0, 0, 0,
                                                v.gen});
                    }
                }
                v.locked = false;  // line 15
                break;
            }

            case EventKind::kZeroSignal:
                record_leader_signal();
                if (config_.leader_failure_time < 0.0 ||
                    now < config_.leader_failure_time) {
                    leader_->on_zero_signal(now);
                }
                break;

            case EventKind::kGenSignal:
                record_leader_signal();
                if (config_.leader_failure_time < 0.0 ||
                    now < config_.leader_failure_time) {
                    leader_->on_gen_signal(now, ev.gen);
                }
                break;

            case EventKind::kMetronome: {
                const double frac = census_.opinion_fraction(plurality_);
                if (config_.record_series) {
                    result.plurality_fraction.record(now, frac);
                    result.leader_generation.record(
                        now, static_cast<double>(leader_->gen()));
                }
                if (result.epsilon_time < 0.0 && frac >= epsilon_target) {
                    result.epsilon_time = now;
                }
                if (census_.converged()) {
                    result.consensus_time = now;
                    done = true;
                    break;
                }
                queue.push(now + config_.sample_interval,
                           EventPayload{EventKind::kMetronome, 0, 0, 0, 0});
                break;
            }
        }
    }

    result.leader_peak_load =
        std::max(result.leader_peak_load, static_cast<double>(load_count));
    result.end_time = now;
    result.converged = census_.converged();
    const BiasStats pooled = census_.pooled_stats();
    result.winner = pooled.dominant;
    result.plurality_won = result.converged && result.winner == plurality_;
    result.final_top_generation = census_.highest_populated();
    result.leader_trace = leader_->trace();
    return result;
}

AsyncResult run_single_leader(std::size_t n, std::uint32_t k, double alpha,
                              const AsyncConfig& config, std::uint64_t seed) {
    Rng workload_rng(derive_seed(seed, 0xA551));
    const Assignment assignment = make_biased_plurality(n, k, alpha, workload_rng);
    SingleLeaderSimulation simulation(assignment, config, derive_seed(seed, 0x51));
    return simulation.run();
}

}  // namespace papc::async
