#pragma once

/// \file sequential_simulation.hpp
/// The *pure Poisson clock* reference model the paper contrasts itself
/// against (§1, discussion of [EFK+17]): nodes tick at rate 1 but channel
/// establishment is instant, so the memoryless property lets the whole
/// execution be *sequentialized* — one node acts at a time, at global
/// exponential spacing Exp(n). Algorithm 2+3 run unchanged on top (a node
/// reads both peers and the leader atomically at its tick; locking never
/// triggers because actions are instantaneous).
///
/// This engine isolates what the edge latencies cost: bench
/// exp_exchange_latency compares sequential vs latency-model runs, and the
/// tests pin that the generation dynamics (leader trace shape) coincide.
///
/// Ordering assumptions: the n independent rate-1 clocks collapse into a
/// single global Exp(n) tick stream whose winner is a uniform node drawn
/// *after* the race (memorylessness). The engine keeps exactly one pending
/// tick, so ties are impossible by construction. Since PR 6 that single
/// pending event lives in a one-shard windowed executor
/// (sim/windowed_executor.hpp): the model is inherently serial — every
/// node may touch every other node atomically at a tick, so there is
/// nothing to shard — but the window machinery still batches the ticks
/// falling into each conservative window under one per-window RNG
/// substream, and one advance() = one window (~ delta·n global ticks).
/// Results are trivially thread-count invariant (a one-shard window is
/// always sequential).

#include <cstdint>
#include <memory>
#include <vector>

#include "async/config.hpp"
#include "async/leader.hpp"
#include "async/node.hpp"
#include "async/simulation.hpp"
#include "core/engine.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "support/random.hpp"

namespace papc::sim {
template <typename Event>
class WindowedExecutor;
}  // namespace papc::sim

namespace papc::async {

/// Sequentialized single-leader protocol (no latencies).
class SequentialSingleLeaderSimulation final : public core::Engine {
public:
    SequentialSingleLeaderSimulation(const Assignment& assignment,
                                     const AsyncConfig& config,
                                     std::uint64_t seed);

    ~SequentialSingleLeaderSimulation() override;

    /// Runs to full consensus (or config.max_time). The AsyncResult's
    /// latency-specific fields (good_ticks == ticks, channels_opened == 0)
    /// reflect the instant-channel semantics; steps_per_unit is 1 (every
    /// node completes its action at its tick).
    [[nodiscard]] AsyncResult run();

    // core::Engine driver interface (one window of global ticks per
    // advance).
    bool advance() override;
    [[nodiscard]] double now() const override { return now_; }
    [[nodiscard]] bool converged() const override { return census_.converged(); }
    [[nodiscard]] Opinion dominant() const override {
        return census_.pooled_stats().dominant;
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return census_.opinion_fraction(j);
    }

    [[nodiscard]] const Leader& leader() const { return *leader_; }
    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const NodeState& node(NodeId v) const { return nodes_[v]; }

private:
    AsyncConfig config_;
    /// Fault layer (built in run(); rng_ not advanced — see
    /// async/simulation.hpp). The model is serial, so message faults draw
    /// from one run-long serial_stream() held in fault_rng_.
    std::unique_ptr<fault::Injector> injector_;
    Rng fault_rng_{0};
    bool crash_on_ = false;
    bool msg_faults_on_ = false;
    Rng rng_;
    std::vector<NodeState> nodes_;
    GenerationCensus census_;
    std::unique_ptr<Leader> leader_;
    /// One-shard windowed executor holding the single pending global tick
    /// (payload unused); see the ordering-assumption note above.
    std::unique_ptr<sim::WindowedExecutor<NodeId>> executor_;
    Opinion plurality_ = 0;
    bool ran_ = false;

    double now_ = 0.0;
    AsyncResult result_;
};

/// Convenience wrapper on a biased-plurality workload.
[[nodiscard]] AsyncResult run_sequential_single_leader(std::size_t n,
                                                       std::uint32_t k,
                                                       double alpha,
                                                       const AsyncConfig& config,
                                                       std::uint64_t seed);

}  // namespace papc::async
