#pragma once

/// \file leader.hpp
/// The leader automaton (Algorithm 3). The leader holds a public pair
/// (gen, prop) and reacts to two kinds of incoming signals:
///   0-signal      — sent by every node at every tick; used as a population
///                   clock. After C3·n of them, propagation is enabled.
///   i-signal      — sent by a node that promoted itself to generation i;
///                   counted when i == gen. Once ⌈n/2⌉ nodes reached the
///                   current generation (and the budget allows), the leader
///                   births the next generation: gen += 1, prop = false,
///                   counters reset.

#include <cstdint>
#include <vector>

#include "opinion/types.hpp"

namespace papc::async {

/// One leader state transition, for traces/invariant tests.
struct LeaderTransition {
    double time = 0.0;
    Generation gen = 1;
    bool prop = false;
};

struct LeaderConfig {
    /// C3·n: 0-signals counted before prop flips to true.
    std::uint64_t zero_signal_threshold = 0;
    /// ⌈n/2⌉: i-signals (i == gen) before the next generation is allowed.
    std::uint64_t generation_size_threshold = 0;
    /// Highest generation the leader will ever allow (G*).
    Generation max_generation = 1;
};

class Leader {
public:
    explicit Leader(const LeaderConfig& config);

    /// Handles an arriving 0-signal (Algorithm 3 lines 1–3).
    void on_zero_signal(double now);

    /// Handles an arriving i-signal (Algorithm 3 lines 4–8).
    void on_gen_signal(double now, Generation i);

    [[nodiscard]] Generation gen() const { return gen_; }
    [[nodiscard]] bool prop() const { return prop_; }
    [[nodiscard]] std::uint64_t zero_signal_count() const { return tick_count_; }
    [[nodiscard]] std::uint64_t generation_size() const { return gen_size_; }
    [[nodiscard]] const LeaderConfig& config() const { return config_; }

    /// All (time, gen, prop) transitions including the initial state.
    [[nodiscard]] const std::vector<LeaderTransition>& trace() const {
        return trace_;
    }

private:
    void record(double now);

    LeaderConfig config_;
    Generation gen_ = 1;
    bool prop_ = false;
    std::uint64_t tick_count_ = 0;
    std::uint64_t gen_size_ = 0;
    std::vector<LeaderTransition> trace_;
};

}  // namespace papc::async
