#pragma once

/// \file node.hpp
/// Per-node state and the pure exchange-decision function of Algorithm 2.
/// Separating the decision from the event wiring makes the protocol rule
/// unit-testable in isolation.

#include <cstdint>

#include "opinion/types.hpp"

namespace papc::async {

/// Mutable state of a non-leader node (Algorithm 2).
struct NodeState {
    Opinion col = 0;
    Generation gen = 0;
    bool locked = false;
    /// Leader state stored at the last completed communication
    /// (l.gen / l.prop in the paper). Initialized to the leader's initial
    /// state (gen = 1, prop = false).
    Generation seen_gen = 1;
    bool seen_prop = false;
};

/// Snapshot of another node read over an established channel.
struct PeerSample {
    Generation gen = 0;
    Opinion col = 0;
};

/// Outcome of one exchange (Algorithm 2 lines 5–14).
struct ExchangeDecision {
    enum class Kind : std::uint8_t {
        kNone,          ///< conditions not met; nothing changes
        kTwoChoices,    ///< promoted into the leader's generation (line 6–8)
        kPropagation,   ///< pulled color+generation from a peer (line 9–11)
        kRefreshOnly,   ///< stored leader state updated (line 14)
    };
    Kind kind = Kind::kNone;
    Opinion new_col = 0;
    Generation new_gen = 0;
    bool send_gen_signal = false;  ///< line 12: generation increased
};

/// Evaluates Algorithm 2 lines 5–14 for node `v` given the two peer
/// samples and the leader's *current* public state. Does not mutate `v`.
[[nodiscard]] ExchangeDecision decide_exchange(const NodeState& v,
                                               Generation leader_gen,
                                               bool leader_prop,
                                               const PeerSample& p1,
                                               const PeerSample& p2);

/// Applies a decision to the node state (including line 14 refresh
/// semantics). Returns true when color or generation changed.
bool apply_decision(NodeState& v, const ExchangeDecision& decision,
                    Generation leader_gen, bool leader_prop);

}  // namespace papc::async
