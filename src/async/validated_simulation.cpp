#include "async/validated_simulation.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/theory.hpp"
#include "sim/event_queue.hpp"
#include "support/check.hpp"

namespace papc::async {

namespace {

enum class EventKind : std::uint8_t {
    kTick,
    kSnapshot,    ///< channels + first message round done: read states
    kValidate,    ///< validation round-trip done: commit or abort
    kZeroSignal,
    kGenSignal,
    kMetronome,
};

struct EventPayload {
    EventKind kind = EventKind::kTick;
    NodeId node = 0;
    NodeId peer1 = 0;
    NodeId peer2 = 0;
    Generation gen = 0;        ///< kGenSignal payload
    // kValidate payload: the tentative decision and the leader snapshot it
    // was computed against.
    ExchangeDecision decision{};
    Generation snap_gen = 0;
    bool snap_prop = false;
};

}  // namespace

ValidatedSingleLeaderSimulation::ValidatedSingleLeaderSimulation(
    const Assignment& assignment, const AsyncConfig& config,
    std::unique_ptr<sim::LatencyModel> channel,
    std::unique_ptr<sim::LatencyModel> message, std::uint64_t seed)
    : config_(config),
      channel_(std::move(channel)),
      message_(std::move(message)),
      rng_(seed),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    PAPC_CHECK(channel_ != nullptr && message_ != nullptr);
    const std::size_t n = assignment.size();
    nodes_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        nodes_[v].col = assignment.opinions[v];
        nodes_[v].gen = 0;
        nodes_[v].locked = false;
        nodes_[v].seen_gen = 1;
        nodes_[v].seen_prop = false;
    }
    census_.reset(assignment.opinions);
    plurality_ = census_.pooled_stats().dominant;
}

ValidatedResult ValidatedSingleLeaderSimulation::run() {
    PAPC_CHECK(!ran_);
    ran_ = true;

    const std::size_t n = nodes_.size();
    ValidatedResult result;
    result.base.plurality_fraction = TimeSeries("plurality-fraction");
    result.base.leader_generation = TimeSeries("leader-generation");

    // One full cycle now includes two message round-trips and the
    // validation channel; measure C1 for this composition.
    Rng c1_rng = rng_.split();
    auto cycle_sample = [&] {
        auto ch = [&] { return channel_->sample(c1_rng); };
        auto msg = [&] { return message_->sample(c1_rng); };
        return c1_rng.exponential(1.0) + std::max(ch(), ch()) + ch() +
               2.0 * msg() + ch() + 2.0 * msg();
    };
    std::vector<double> draws(20000);
    for (double& d : draws) d = cycle_sample();
    std::sort(draws.begin(), draws.end());
    const double steps_per_unit = draws[static_cast<std::size_t>(0.9 * 20000)];
    result.base.steps_per_unit = steps_per_unit;

    LeaderConfig leader_config;
    leader_config.zero_signal_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.two_choices_units * steps_per_unit * static_cast<double>(n)));
    leader_config.generation_size_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.generation_size_fraction * static_cast<double>(n)));
    leader_config.max_generation = analysis::total_generations(
        std::max(config_.alpha_hint, 1.0 + 1e-9), census_.num_opinions(), n,
        config_.generation_slack);
    leader_ = std::make_unique<Leader>(leader_config);

    sim::EventQueue<EventPayload> queue;
    for (NodeId v = 0; v < n; ++v) {
        EventPayload tick;
        tick.kind = EventKind::kTick;
        tick.node = v;
        queue.push(rng_.exponential(1.0), tick);
    }
    {
        EventPayload m;
        m.kind = EventKind::kMetronome;
        queue.push(config_.sample_interval, m);
    }

    auto sample_peer = [&](NodeId self) {
        auto p = static_cast<NodeId>(rng_.uniform_index(n - 1));
        if (p >= self) ++p;
        return p;
    };
    auto signal_delay = [&] {
        // A signal needs a channel plus one message crossing.
        return channel_->sample(rng_) + message_->sample(rng_);
    };

    const double epsilon_target = 1.0 - config_.epsilon;
    bool done = false;
    double now = 0.0;

    while (!queue.empty() && !done) {
        auto entry = queue.pop();
        now = entry.time;
        if (now > config_.max_time) break;
        EventPayload& ev = entry.payload;

        switch (ev.kind) {
            case EventKind::kTick: {
                ++result.base.ticks;
                NodeState& v = nodes_[ev.node];
                {
                    EventPayload sig;
                    sig.kind = EventKind::kZeroSignal;
                    queue.push(now + signal_delay(), sig);
                }
                if (!v.locked) {
                    v.locked = true;
                    ++result.base.good_ticks;
                    const double establish =
                        std::max(channel_->sample(rng_), channel_->sample(rng_)) +
                        channel_->sample(rng_);
                    const double first_round =
                        2.0 * message_->sample(rng_);  // request + reply
                    EventPayload snap;
                    snap.kind = EventKind::kSnapshot;
                    snap.node = ev.node;
                    snap.peer1 = sample_peer(ev.node);
                    snap.peer2 = sample_peer(ev.node);
                    queue.push(now + establish + first_round, snap);
                }
                EventPayload next;
                next.kind = EventKind::kTick;
                next.node = ev.node;
                queue.push(now + rng_.exponential(1.0), next);
                break;
            }

            case EventKind::kSnapshot: {
                ++result.base.exchanges;
                NodeState& v = nodes_[ev.node];
                PAPC_CHECK(v.locked);
                const NodeState& p1 = nodes_[ev.peer1];
                const NodeState& p2 = nodes_[ev.peer2];
                const ExchangeDecision decision = decide_exchange(
                    v, leader_->gen(), leader_->prop(),
                    PeerSample{p1.gen, p1.col}, PeerSample{p2.gen, p2.col});
                switch (decision.kind) {
                    case ExchangeDecision::Kind::kRefreshOnly:
                        ++result.base.refresh_count;
                        (void)apply_decision(v, decision, leader_->gen(),
                                             leader_->prop());
                        v.locked = false;
                        break;
                    case ExchangeDecision::Kind::kNone:
                        v.locked = false;
                        break;
                    case ExchangeDecision::Kind::kTwoChoices:
                    case ExchangeDecision::Kind::kPropagation: {
                        // Two-phase commit: validate against the leader
                        // before applying (§5).
                        EventPayload val;
                        val.kind = EventKind::kValidate;
                        val.node = ev.node;
                        val.decision = decision;
                        val.snap_gen = leader_->gen();
                        val.snap_prop = leader_->prop();
                        const double validation =
                            channel_->sample(rng_) +
                            2.0 * message_->sample(rng_);
                        queue.push(now + validation, val);
                        break;
                    }
                }
                break;
            }

            case EventKind::kValidate: {
                NodeState& v = nodes_[ev.node];
                PAPC_CHECK(v.locked);
                if (leader_->gen() == ev.snap_gen &&
                    leader_->prop() == ev.snap_prop) {
                    // Leader unchanged: commit.
                    const Generation old_gen = v.gen;
                    const Opinion old_col = v.col;
                    const bool changed = apply_decision(
                        v, ev.decision, leader_->gen(), leader_->prop());
                    if (changed) {
                        ++result.commits;
                        if (ev.decision.kind ==
                            ExchangeDecision::Kind::kTwoChoices) {
                            ++result.base.two_choices_count;
                        } else {
                            ++result.base.propagation_count;
                        }
                        census_.transition(old_gen, old_col, v.gen, v.col);
                        PAPC_CHECK(v.gen <= leader_->gen());
                        if (ev.decision.send_gen_signal) {
                            EventPayload sig;
                            sig.kind = EventKind::kGenSignal;
                            sig.gen = v.gen;
                            queue.push(now + signal_delay(), sig);
                        }
                    }
                } else {
                    // Leader moved on: abort and refresh the stored state.
                    ++result.aborts;
                    v.seen_gen = leader_->gen();
                    v.seen_prop = leader_->prop();
                }
                v.locked = false;
                break;
            }

            case EventKind::kZeroSignal:
                leader_->on_zero_signal(now);
                break;

            case EventKind::kGenSignal:
                leader_->on_gen_signal(now, ev.gen);
                break;

            case EventKind::kMetronome: {
                const double frac = census_.opinion_fraction(plurality_);
                if (config_.record_series) {
                    result.base.plurality_fraction.record(now, frac);
                    result.base.leader_generation.record(
                        now, static_cast<double>(leader_->gen()));
                }
                if (result.base.epsilon_time < 0.0 && frac >= epsilon_target) {
                    result.base.epsilon_time = now;
                }
                if (census_.converged()) {
                    result.base.consensus_time = now;
                    done = true;
                    break;
                }
                EventPayload next;
                next.kind = EventKind::kMetronome;
                queue.push(now + config_.sample_interval, next);
                break;
            }
        }
    }

    result.base.end_time = now;
    result.base.converged = census_.converged();
    const BiasStats pooled = census_.pooled_stats();
    result.base.winner = pooled.dominant;
    result.base.plurality_won =
        result.base.converged && result.base.winner == plurality_;
    result.base.final_top_generation = census_.highest_populated();
    result.base.leader_trace = leader_->trace();
    const std::uint64_t attempts = result.commits + result.aborts;
    result.abort_rate =
        attempts == 0 ? 0.0
                      : static_cast<double>(result.aborts) /
                            static_cast<double>(attempts);
    return result;
}

ValidatedResult run_validated_single_leader(std::size_t n, std::uint32_t k,
                                            double alpha,
                                            const AsyncConfig& config,
                                            double message_rate,
                                            std::uint64_t seed) {
    Rng workload_rng(derive_seed(seed, 0xA552));
    const Assignment assignment = make_biased_plurality(n, k, alpha, workload_rng);
    ValidatedSingleLeaderSimulation simulation(
        assignment, config, sim::make_exponential_latency(config.lambda),
        sim::make_exponential_latency(message_rate), derive_seed(seed, 0x52));
    return simulation.run();
}

}  // namespace papc::async
