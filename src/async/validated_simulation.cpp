#include "async/validated_simulation.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/latency_units.hpp"
#include "analysis/theory.hpp"
#include "core/observer.hpp"
#include "sim/windowed_executor.hpp"
#include "support/check.hpp"

namespace papc::async {

namespace {
constexpr std::size_t kLeaderShard = 0;
}  // namespace

enum class ValidatedEventKind : std::uint8_t {
    kTick,
    kSnapshot,    ///< channels + first message round done: read states
    kValidate,    ///< validation round-trip done: commit or abort
    kZeroSignal,
    kGenSignal,
};

struct ValidatedEvent {
    ValidatedEventKind kind = ValidatedEventKind::kTick;
    NodeId node = 0;
    NodeId peer1 = 0;
    NodeId peer2 = 0;
    Generation gen = 0;        ///< kGenSignal payload
    // kValidate payload: the tentative decision and the leader snapshot it
    // was computed against.
    ExchangeDecision decision{};
    Generation snap_gen = 0;
    bool snap_prop = false;
};

ValidatedSingleLeaderSimulation::ValidatedSingleLeaderSimulation(
    const Assignment& assignment, const AsyncConfig& config,
    std::unique_ptr<sim::LatencyModel> channel,
    std::unique_ptr<sim::LatencyModel> message, std::uint64_t seed)
    : config_(config),
      channel_(std::move(channel)),
      message_(std::move(message)),
      rng_(seed),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    PAPC_CHECK(channel_ != nullptr && message_ != nullptr);
    const std::size_t n = assignment.size();
    nodes_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        nodes_[v].col = assignment.opinions[v];
        nodes_[v].gen = 0;
        nodes_[v].locked = false;
        nodes_[v].seen_gen = 1;
        nodes_[v].seen_prop = false;
    }
    census_.reset(assignment.opinions);
    plurality_ = census_.pooled_stats().dominant;
}

ValidatedSingleLeaderSimulation::~ValidatedSingleLeaderSimulation() = default;

void ValidatedSingleLeaderSimulation::begin_window() {
    nodes_snap_ = nodes_;
    snap_leader_gen_ = leader_->gen();
    snap_leader_prop_ = leader_->prop();
}

void ValidatedSingleLeaderSimulation::commit_window() {
    for (ShardScratch& scratch : scratch_) {
        for (const CensusMove& move : scratch.moves) {
            census_.transition(move.old_gen, move.old_col, move.new_gen,
                               move.new_col);
        }
        scratch.moves.clear();
    }
}

bool ValidatedSingleLeaderSimulation::advance() {
    if (executor_->empty()) return false;
    begin_window();
    const bool ran = executor_->run_window(
        [this](sim::WindowedExecutor<ValidatedEvent>::ShardContext& ctx,
               double t, ValidatedEvent& ev) {
            ShardScratch& scratch = scratch_[ctx.shard()];
            Rng& rng = ctx.rng();
            const auto sample_peer = [&](NodeId self) {
                return static_cast<NodeId>(
                    rng.uniform_index_excluding(nodes_.size(), self));
            };
            // A signal needs a channel plus one message crossing.
            const auto signal_delay = [&] {
                return channel_->sample(rng) + message_->sample(rng);
            };
            switch (ev.kind) {
                case ValidatedEventKind::kTick: {
                    ++scratch.ticks;
                    NodeState& v = nodes_[ev.node];
                    if (crash_on_ && injector_->is_down(ev.node, t)) {
                        ++scratch.crash_skips;
                        ValidatedEvent next;
                        next.kind = ValidatedEventKind::kTick;
                        next.node = ev.node;
                        ctx.emit(ctx.shard(), t + rng.exponential(1.0), next);
                        break;
                    }
                    {
                        ValidatedEvent sig;
                        sig.kind = ValidatedEventKind::kZeroSignal;
                        ctx.emit_message(kLeaderShard, t, t + signal_delay(),
                                         sig);
                    }
                    if (!v.locked) {
                        v.locked = true;
                        ++scratch.good_ticks;
                        const double establish =
                            std::max(channel_->sample(rng),
                                     channel_->sample(rng)) +
                            channel_->sample(rng);
                        const double first_round =
                            2.0 * message_->sample(rng);  // request + reply
                        ValidatedEvent snap;
                        snap.kind = ValidatedEventKind::kSnapshot;
                        snap.node = ev.node;
                        snap.peer1 = sample_peer(ev.node);
                        snap.peer2 = sample_peer(ev.node);
                        ctx.emit(ctx.shard(), t + establish + first_round, snap);
                    }
                    ValidatedEvent next;
                    next.kind = ValidatedEventKind::kTick;
                    next.node = ev.node;
                    ctx.emit(ctx.shard(), t + rng.exponential(1.0), next);
                    break;
                }

                case ValidatedEventKind::kSnapshot: {
                    NodeState& v = nodes_[ev.node];
                    PAPC_CHECK(v.locked);
                    if (crash_on_ && injector_->is_down(ev.node, t)) {
                        ++scratch.crash_skips;
                        v.locked = false;
                        break;
                    }
                    ++scratch.exchanges;
                    const NodeState& p1 = nodes_snap_[ev.peer1];
                    const NodeState& p2 = nodes_snap_[ev.peer2];
                    const ExchangeDecision decision = decide_exchange(
                        v, snap_leader_gen_, snap_leader_prop_,
                        PeerSample{p1.gen, p1.col}, PeerSample{p2.gen, p2.col});
                    switch (decision.kind) {
                        case ExchangeDecision::Kind::kRefreshOnly:
                            ++scratch.refresh;
                            (void)apply_decision(v, decision, snap_leader_gen_,
                                                 snap_leader_prop_);
                            v.locked = false;
                            break;
                        case ExchangeDecision::Kind::kNone:
                            v.locked = false;
                            break;
                        case ExchangeDecision::Kind::kTwoChoices:
                        case ExchangeDecision::Kind::kPropagation: {
                            // Two-phase commit: validate against the leader
                            // before applying (§5).
                            ValidatedEvent val;
                            val.kind = ValidatedEventKind::kValidate;
                            val.node = ev.node;
                            val.decision = decision;
                            val.snap_gen = snap_leader_gen_;
                            val.snap_prop = snap_leader_prop_;
                            const double validation =
                                channel_->sample(rng) +
                                2.0 * message_->sample(rng);
                            ctx.emit(ctx.shard(), t + validation, val);
                            break;
                        }
                    }
                    break;
                }

                case ValidatedEventKind::kValidate: {
                    NodeState& v = nodes_[ev.node];
                    PAPC_CHECK(v.locked);
                    if (crash_on_ && injector_->is_down(ev.node, t)) {
                        ++scratch.crash_skips;
                        v.locked = false;
                        break;
                    }
                    if (snap_leader_gen_ == ev.snap_gen &&
                        snap_leader_prop_ == ev.snap_prop) {
                        // Leader unchanged between the two window
                        // snapshots: commit.
                        const Generation old_gen = v.gen;
                        const Opinion old_col = v.col;
                        const bool changed =
                            apply_decision(v, ev.decision, snap_leader_gen_,
                                           snap_leader_prop_);
                        if (changed) {
                            ++scratch.commits;
                            if (ev.decision.kind ==
                                ExchangeDecision::Kind::kTwoChoices) {
                                ++scratch.two_choices;
                            } else {
                                ++scratch.propagation;
                            }
                            scratch.moves.push_back(
                                CensusMove{old_gen, old_col, v.gen, v.col});
                            PAPC_CHECK(v.gen <= snap_leader_gen_);
                            if (ev.decision.send_gen_signal) {
                                ValidatedEvent sig;
                                sig.kind = ValidatedEventKind::kGenSignal;
                                sig.gen = v.gen;
                                ctx.emit_message(
                                    kLeaderShard, t, t + signal_delay(), sig,
                                    [](Rng& fault_rng, ValidatedEvent& msg) {
                                        msg.gen = static_cast<Generation>(
                                            1 +
                                            fault_rng.uniform_index(msg.gen));
                                    });
                            }
                        }
                    } else {
                        // Leader moved on: abort and refresh stored state.
                        ++scratch.aborts;
                        v.seen_gen = snap_leader_gen_;
                        v.seen_prop = snap_leader_prop_;
                    }
                    v.locked = false;
                    break;
                }

                case ValidatedEventKind::kZeroSignal:
                    if (injector_ == nullptr || !injector_->leader_down(t)) {
                        leader_->on_zero_signal(t);
                    }
                    break;

                case ValidatedEventKind::kGenSignal:
                    if (injector_ == nullptr || !injector_->leader_down(t)) {
                        leader_->on_gen_signal(t, ev.gen);
                    }
                    break;
            }
        });
    commit_window();
    now_ = executor_->now();
    return ran;
}

ValidatedResult ValidatedSingleLeaderSimulation::run() {
    PAPC_CHECK(!ran_);
    ran_ = true;

    const std::size_t n = nodes_.size();
    result_.base.leader_generation = TimeSeries("leader-generation");

    // Fault layer (see async/simulation.cpp): leader_failure_time splices
    // into the plan; the injector derives via the pure substream.
    fault::FaultPlan plan = config_.fault;
    if (config_.leader_failure_time >= 0.0) {
        plan.scheduled_crashes.push_back(
            fault::CrashEntry{fault::kLeaderNode, config_.leader_failure_time});
    }
    if (plan.active()) {
        injector_ = std::make_unique<fault::Injector>(plan, n,
                                                      config_.max_time, rng_);
        crash_on_ = injector_->crash_active();
        result_.base.nodes_crashed = injector_->nodes_crashed();
    }

    // One full cycle now includes two message round-trips and the
    // validation channel; measure C1 for this composition (Monte Carlo;
    // deterministic given the seed).
    Rng c1_rng = rng_.split();
    const double steps_per_unit = analysis::validated_cycle_quantile_monte_carlo(
        *channel_, *message_, 0.9, 20000, c1_rng);
    result_.base.steps_per_unit = steps_per_unit;

    LeaderConfig leader_config;
    leader_config.zero_signal_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.two_choices_units * steps_per_unit * static_cast<double>(n)));
    leader_config.generation_size_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.generation_size_fraction * static_cast<double>(n)));
    leader_config.max_generation = analysis::total_generations(
        std::max(config_.alpha_hint, 1.0 + 1e-9), census_.num_opinions(), n,
        config_.generation_slack);
    leader_ = std::make_unique<Leader>(leader_config);

    sim::WindowedOptions executor_options;
    executor_options.shards = config_.event_shards;
    executor_options.threads = config_.threads;
    executor_options.window = config_.window;
    executor_options.lambda = config_.lambda;
    executor_options.queue_kind = config_.queue_kind;
    executor_options.reserve_hint = 2 * n;
    executor_options.injector = injector_.get();
    executor_ = std::make_unique<sim::WindowedExecutor<ValidatedEvent>>(
        n, executor_options, rng_.split());
    scratch_.resize(executor_->num_shards());

    for (NodeId v = 0; v < n; ++v) {
        ValidatedEvent tick;
        tick.kind = ValidatedEventKind::kTick;
        tick.node = v;
        executor_->seed(executor_->shard_of(v), rng_.exponential(1.0), tick);
    }

    core::EngineOptions run_options;
    run_options.max_time = config_.max_time;
    run_options.sample_interval = config_.sample_interval;
    run_options.record = config_.record_series;
    run_options.plurality = plurality_;
    run_options.epsilon = config_.epsilon;
    core::FunctionObserver observer([this](double time, double) {
        if (config_.record_series) {
            result_.base.leader_generation.record(
                time, static_cast<double>(leader_->gen()));
        }
    });
    static_cast<core::RunResult&>(result_.base) =
        core::run(*this, run_options, &observer);

    for (const ShardScratch& scratch : scratch_) {
        result_.base.ticks += scratch.ticks;
        result_.base.good_ticks += scratch.good_ticks;
        result_.base.exchanges += scratch.exchanges;
        result_.base.two_choices_count += scratch.two_choices;
        result_.base.propagation_count += scratch.propagation;
        result_.base.refresh_count += scratch.refresh;
        result_.commits += scratch.commits;
        result_.aborts += scratch.aborts;
        result_.base.faults.crash_skips += scratch.crash_skips;
    }
    const fault::FaultCounters& mf = executor_->fault_counters();
    result_.base.faults.lost = mf.lost;
    result_.base.faults.duplicated = mf.duplicated;
    result_.base.faults.corrupted = mf.corrupted;
    result_.base.faults.delayed = mf.delayed;
    result_.base.events_processed = executor_->events_processed();
    result_.base.windows = executor_->windows_run();
    result_.base.window_stragglers = executor_->stragglers();
    result_.base.final_top_generation = census_.highest_populated();
    result_.base.leader_trace = leader_->trace();
    const std::uint64_t attempts = result_.commits + result_.aborts;
    result_.abort_rate =
        attempts == 0 ? 0.0
                      : static_cast<double>(result_.aborts) /
                            static_cast<double>(attempts);
    return std::move(result_);
}

ValidatedResult run_validated_single_leader(std::size_t n, std::uint32_t k,
                                            double alpha,
                                            const AsyncConfig& config,
                                            double message_rate,
                                            std::uint64_t seed) {
    Rng workload_rng(derive_seed(seed, 0xA552));
    const Assignment assignment = make_biased_plurality(n, k, alpha, workload_rng);
    ValidatedSingleLeaderSimulation simulation(
        assignment, config, sim::make_exponential_latency(config.lambda),
        sim::make_exponential_latency(message_rate), derive_seed(seed, 0x52));
    return simulation.run();
}

}  // namespace papc::async
