#pragma once

/// \file simulation.hpp
/// Event-driven executor of the asynchronous single-leader protocol
/// (Algorithms 2 + 3, §3). The simulation implements exactly the random
/// process the paper analyzes:
///   - every node has a rate-1 Poisson clock;
///   - at a tick the node always sends a 0-signal to the leader (arriving
///     after one latency draw) and, if not locked, locks and opens channels
///     to two uniform peers (concurrently) and then the leader; the full
///     exchange completes after max(T2, T2) + T2;
///   - at completion the node atomically reads both peers and the leader
///     and applies Algorithm 2; generation promotions notify the leader
///     with an i-signal (one more latency draw).

#include <memory>
#include <vector>

#include "async/config.hpp"
#include "async/leader.hpp"
#include "async/node.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "support/timeseries.hpp"

namespace papc::async {

/// Aggregate outcome of one simulation run.
struct AsyncResult {
    bool converged = false;       ///< all nodes share one color
    Opinion winner = 0;           ///< final dominant color
    bool plurality_won = false;   ///< winner == initial plurality
    double epsilon_time = -1.0;   ///< first time (1-ε)·n nodes hold plurality
    double consensus_time = -1.0; ///< first time of full consensus
    double end_time = 0.0;        ///< simulated time at loop exit

    std::uint64_t ticks = 0;              ///< Poisson ticks processed
    std::uint64_t good_ticks = 0;         ///< ticks that started an exchange
    std::uint64_t exchanges = 0;          ///< completed exchanges
    std::uint64_t two_choices_count = 0;  ///< two-choices promotions
    std::uint64_t propagation_count = 0;  ///< propagation promotions
    std::uint64_t refresh_count = 0;      ///< leader-state refreshes

    Generation final_top_generation = 0;
    double steps_per_unit = 0.0;  ///< measured C1 used for thresholds

    // §4.5-style complexity accounting.
    std::uint64_t channels_opened = 0;    ///< channel establishments
    std::uint64_t signals_delivered = 0;  ///< 0- and i-signals at the leader
    double leader_peak_load = 0.0;        ///< max leader signals in one step

    std::vector<LeaderTransition> leader_trace;
    TimeSeries plurality_fraction;  ///< sampled by the metronome
    TimeSeries leader_generation;   ///< leader gen over time
};

/// Single-leader asynchronous simulation.
class SingleLeaderSimulation {
public:
    /// Uses Exponential(config.lambda) latencies.
    SingleLeaderSimulation(const Assignment& assignment, const AsyncConfig& config,
                           std::uint64_t seed);

    /// Uses a caller-supplied latency model (takes ownership).
    SingleLeaderSimulation(const Assignment& assignment, const AsyncConfig& config,
                           std::unique_ptr<sim::LatencyModel> latency,
                           std::uint64_t seed);

    /// Runs to full consensus (or config.max_time) and returns the result.
    [[nodiscard]] AsyncResult run();

    /// Observers, valid after run().
    [[nodiscard]] const Leader& leader() const { return *leader_; }
    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const NodeState& node(NodeId v) const { return nodes_[v]; }
    [[nodiscard]] std::size_t population() const { return nodes_.size(); }

private:
    AsyncConfig config_;
    std::unique_ptr<sim::LatencyModel> latency_;
    Rng rng_;
    std::vector<NodeState> nodes_;
    GenerationCensus census_;
    std::unique_ptr<Leader> leader_;
    Opinion plurality_ = 0;
    bool ran_ = false;
};

/// Convenience: builds a biased-plurality workload and runs one simulation.
[[nodiscard]] AsyncResult run_single_leader(std::size_t n, std::uint32_t k,
                                            double alpha, const AsyncConfig& config,
                                            std::uint64_t seed);

}  // namespace papc::async
