#pragma once

/// \file simulation.hpp
/// Event-driven executor of the asynchronous single-leader protocol
/// (Algorithms 2 + 3, §3). The simulation implements exactly the random
/// process the paper analyzes:
///   - every node has a rate-1 Poisson clock;
///   - at a tick the node always sends a 0-signal to the leader (arriving
///     after one latency draw) and, if not locked, locks and opens channels
///     to two uniform peers (concurrently) and then the leader; the full
///     exchange completes after max(T2, T2) + T2;
///   - at completion the node atomically reads both peers and the leader
///     and applies Algorithm 2; generation promotions notify the leader
///     with an i-signal (one more latency draw).
///
/// The run loop (budgets, sampling cadence, ε/consensus detection, series
/// recording) lives in core::run(); this class advances one event per
/// core::Engine::advance() call.

#include <memory>
#include <vector>

#include "async/config.hpp"
#include "async/leader.hpp"
#include "async/node.hpp"
#include "core/engine.hpp"
#include "core/run_result.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "sim/latency.hpp"
#include "sim/scheduler_queue.hpp"
#include "support/random.hpp"
#include "support/timeseries.hpp"

namespace papc::async {

/// Aggregate outcome of one simulation run. The unified convergence
/// semantics (converged / winner / plurality_won / epsilon_time /
/// consensus_time / end_time / steps / plurality_fraction) live in the
/// core::RunResult base; the fields below are single-leader accounting.
struct AsyncResult : core::RunResult {
    std::uint64_t ticks = 0;              ///< Poisson ticks processed
    std::uint64_t good_ticks = 0;         ///< ticks that started an exchange
    std::uint64_t exchanges = 0;          ///< completed exchanges
    std::uint64_t two_choices_count = 0;  ///< two-choices promotions
    std::uint64_t propagation_count = 0;  ///< propagation promotions
    std::uint64_t refresh_count = 0;      ///< leader-state refreshes

    Generation final_top_generation = 0;
    double steps_per_unit = 0.0;  ///< measured C1 used for thresholds

    // §4.5-style complexity accounting.
    std::uint64_t channels_opened = 0;    ///< channel establishments
    std::uint64_t signals_delivered = 0;  ///< 0- and i-signals at the leader
    double leader_peak_load = 0.0;        ///< max leader signals in one step

    std::vector<LeaderTransition> leader_trace;
    TimeSeries leader_generation;   ///< leader gen over time
};

/// One event of the single-leader simulation (defined in the .cpp).
struct AsyncEvent;

/// Single-leader asynchronous simulation.
class SingleLeaderSimulation final : public core::Engine {
public:
    /// Uses Exponential(config.lambda) latencies.
    SingleLeaderSimulation(const Assignment& assignment, const AsyncConfig& config,
                           std::uint64_t seed);

    /// Uses a caller-supplied latency model (takes ownership).
    SingleLeaderSimulation(const Assignment& assignment, const AsyncConfig& config,
                           std::unique_ptr<sim::LatencyModel> latency,
                           std::uint64_t seed);

    ~SingleLeaderSimulation() override;

    /// Runs to full consensus (or config.max_time) and returns the result.
    [[nodiscard]] AsyncResult run();

    // core::Engine driver interface (used by run(); one event per advance).
    bool advance() override;
    [[nodiscard]] double now() const override { return now_; }
    [[nodiscard]] bool converged() const override { return census_.converged(); }
    [[nodiscard]] Opinion dominant() const override {
        return census_.pooled_stats().dominant;
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return census_.opinion_fraction(j);
    }

    /// Observers, valid after run().
    [[nodiscard]] const Leader& leader() const { return *leader_; }
    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const NodeState& node(NodeId v) const { return nodes_[v]; }
    [[nodiscard]] std::size_t population() const { return nodes_.size(); }

private:
    void record_leader_signal();
    [[nodiscard]] NodeId sample_peer(NodeId self);

    AsyncConfig config_;
    std::unique_ptr<sim::LatencyModel> latency_;
    Rng rng_;
    std::vector<NodeState> nodes_;
    GenerationCensus census_;
    std::unique_ptr<Leader> leader_;
    std::unique_ptr<sim::SchedulerQueue<AsyncEvent>> queue_;
    Opinion plurality_ = 0;
    bool ran_ = false;

    double now_ = 0.0;
    AsyncResult result_;
    std::int64_t load_bucket_ = -1;    ///< leader congestion window (§4.5)
    std::uint64_t load_count_ = 0;
};

/// Convenience: builds a biased-plurality workload and runs one simulation.
[[nodiscard]] AsyncResult run_single_leader(std::size_t n, std::uint32_t k,
                                            double alpha, const AsyncConfig& config,
                                            std::uint64_t seed);

}  // namespace papc::async
