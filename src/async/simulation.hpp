#pragma once

/// \file simulation.hpp
/// Event-driven executor of the asynchronous single-leader protocol
/// (Algorithms 2 + 3, §3). The simulation implements exactly the random
/// process the paper analyzes:
///   - every node has a rate-1 Poisson clock;
///   - at a tick the node always sends a 0-signal to the leader (arriving
///     after one latency draw) and, if not locked, locks and opens channels
///     to two uniform peers (concurrently) and then the leader; the full
///     exchange completes after max(T2, T2) + T2;
///   - at completion the node atomically reads both peers and the leader
///     and applies Algorithm 2; generation promotions notify the leader
///     with an i-signal (one more latency draw).
///
/// Since PR 6 the event loop runs on the sharded windowed executor
/// (sim/windowed_executor.hpp): nodes are partitioned into shards, events
/// process in parallel inside conservative time windows, and one
/// core::Engine::advance() call executes one window. Peer and leader
/// reads go through window-start snapshots, signal events are owned by
/// the leader's shard, and census transitions merge in shard order at the
/// window barrier — fixed-seed results are bit-identical at every thread
/// count. The run loop (budgets, sampling cadence, ε/consensus detection,
/// series recording) still lives in core::run().

#include <cstdint>
#include <memory>
#include <vector>

#include "async/config.hpp"
#include "async/leader.hpp"
#include "async/node.hpp"
#include "core/engine.hpp"
#include "core/run_result.hpp"
#include "fault/injector.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "support/timeseries.hpp"

namespace papc::sim {
template <typename Event>
class WindowedExecutor;
}  // namespace papc::sim

namespace papc::async {

/// Aggregate outcome of one simulation run. The unified convergence
/// semantics (converged / winner / plurality_won / epsilon_time /
/// consensus_time / end_time / steps / plurality_fraction) live in the
/// core::RunResult base; the fields below are single-leader accounting.
/// NOTE: since PR 6 RunResult::steps counts executor *windows*, not
/// events — use events_processed for event throughput.
struct AsyncResult : core::RunResult {
    std::uint64_t ticks = 0;              ///< Poisson ticks processed
    std::uint64_t good_ticks = 0;         ///< ticks that started an exchange
    std::uint64_t exchanges = 0;          ///< completed exchanges
    std::uint64_t two_choices_count = 0;  ///< two-choices promotions
    std::uint64_t propagation_count = 0;  ///< propagation promotions
    std::uint64_t refresh_count = 0;      ///< leader-state refreshes

    Generation final_top_generation = 0;
    double steps_per_unit = 0.0;  ///< measured C1 used for thresholds

    // §4.5-style complexity accounting.
    std::uint64_t channels_opened = 0;    ///< channel establishments
    std::uint64_t signals_delivered = 0;  ///< 0- and i-signals at the leader
    double leader_peak_load = 0.0;        ///< max leader signals in one step

    // Windowed-executor accounting (PR 6).
    std::uint64_t events_processed = 0;   ///< total events across shards
    std::uint64_t windows = 0;            ///< conservative windows executed
    std::uint64_t window_stragglers = 0;  ///< cross-shard sends behind a
                                          ///< closed window

    // Fault-injection accounting (all zero without an active plan).
    fault::FaultCounters faults;
    std::uint64_t nodes_crashed = 0;  ///< nodes with a crash in the horizon

    std::vector<LeaderTransition> leader_trace;
    TimeSeries leader_generation;   ///< leader gen over time
};

/// One event of the single-leader simulation (defined in the .cpp).
struct AsyncEvent;

/// Single-leader asynchronous simulation.
class SingleLeaderSimulation final : public core::Engine {
public:
    /// Uses Exponential(config.lambda) latencies.
    SingleLeaderSimulation(const Assignment& assignment, const AsyncConfig& config,
                           std::uint64_t seed);

    /// Uses a caller-supplied latency model (takes ownership). The auto
    /// window width is still derived from config.lambda — set
    /// config.window explicitly for models with a very different scale.
    SingleLeaderSimulation(const Assignment& assignment, const AsyncConfig& config,
                           std::unique_ptr<sim::LatencyModel> latency,
                           std::uint64_t seed);

    ~SingleLeaderSimulation() override;

    /// Runs to full consensus (or config.max_time) and returns the result.
    [[nodiscard]] AsyncResult run();

    // core::Engine driver interface (used by run(); one *window* of events
    // per advance).
    bool advance() override;
    [[nodiscard]] double now() const override { return now_; }
    [[nodiscard]] bool converged() const override { return census_.converged(); }
    [[nodiscard]] Opinion dominant() const override {
        return census_.pooled_stats().dominant;
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return census_.opinion_fraction(j);
    }

    /// Observers, valid after run().
    [[nodiscard]] const Leader& leader() const { return *leader_; }
    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const NodeState& node(NodeId v) const { return nodes_[v]; }
    [[nodiscard]] std::size_t population() const { return nodes_.size(); }

private:
    /// One old-gen/old-col -> new-gen/new-col move, recorded shard-locally
    /// during a window and applied to the census at the barrier.
    struct CensusMove {
        Generation old_gen;
        Opinion old_col;
        Generation new_gen;
        Opinion new_col;
    };

    /// Shard-owned accumulation: event counters for the whole run plus the
    /// census moves of the current window. Cache-line aligned so
    /// neighbouring shards never contend.
    struct alignas(64) ShardScratch {
        std::uint64_t ticks = 0;
        std::uint64_t good_ticks = 0;
        std::uint64_t exchanges = 0;
        std::uint64_t two_choices = 0;
        std::uint64_t propagation = 0;
        std::uint64_t refresh = 0;
        std::uint64_t channels_opened = 0;
        std::uint64_t crash_skips = 0;  ///< ticks/exchanges of down nodes
        std::vector<CensusMove> moves;
    };

    void begin_window();
    void commit_window();
    void record_leader_signal(double time);

    AsyncConfig config_;
    std::unique_ptr<sim::LatencyModel> latency_;
    /// Built in run() from config_.fault (+ the leader_failure_time shim)
    /// via the pure Rng::substream, so attaching it never shifts the tape.
    std::unique_ptr<fault::Injector> injector_;
    bool crash_on_ = false;  ///< injector_ has node-crash faults
    Rng rng_;
    std::vector<NodeState> nodes_;
    std::vector<NodeState> nodes_snap_;  ///< window-start copy (peer reads)
    GenerationCensus census_;
    std::unique_ptr<Leader> leader_;
    std::unique_ptr<sim::WindowedExecutor<AsyncEvent>> executor_;
    std::vector<ShardScratch> scratch_;
    Opinion plurality_ = 0;
    bool ran_ = false;

    // Window-start snapshot of the leader's public state (exchange reads).
    Generation snap_leader_gen_ = 1;
    bool snap_leader_prop_ = false;

    double now_ = 0.0;
    AsyncResult result_;
    // Leader-shard-owned accounting (only the shard that owns the leader's
    // signal events ever touches these during a window).
    std::int64_t load_bucket_ = -1;    ///< leader congestion window (§4.5)
    std::uint64_t load_count_ = 0;
    std::uint64_t leader_signals_ = 0;
};

/// Convenience: builds a biased-plurality workload and runs one simulation.
[[nodiscard]] AsyncResult run_single_leader(std::size_t n, std::uint32_t k,
                                            double alpha, const AsyncConfig& config,
                                            std::uint64_t seed);

}  // namespace papc::async
