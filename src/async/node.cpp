#include "async/node.hpp"

#include "support/check.hpp"

namespace papc::async {

ExchangeDecision decide_exchange(const NodeState& v, Generation leader_gen,
                                 bool leader_prop, const PeerSample& p1,
                                 const PeerSample& p2) {
    ExchangeDecision d;

    // Line 5: stored leader state must match the current one; otherwise the
    // node only refreshes its stored copy (line 14). This gate guarantees
    // that two-choices and propagation promotions into a generation never
    // interleave (§3.2 invariants).
    if (v.seen_gen != leader_gen || v.seen_prop != leader_prop) {
        d.kind = ExchangeDecision::Kind::kRefreshOnly;
        return d;
    }

    // Line 6: two-choices step. Both samples sit exactly one generation
    // below the leader's allowed generation, agree on a color, and the
    // leader still forbids propagation.
    if (!leader_prop && leader_gen >= 1 && p1.gen == leader_gen - 1 &&
        p2.gen == leader_gen - 1 && p1.col == p2.col && v.gen < leader_gen) {
        d.kind = ExchangeDecision::Kind::kTwoChoices;
        d.new_col = p1.col;
        d.new_gen = leader_gen;
        d.send_gen_signal = true;  // generation strictly increased
        return d;
    }

    // Line 9: propagation step. Some sample v̄ has a strictly higher
    // generation than v, and that generation is either below the leader's
    // current one or the leader allows propagation. Prefer the
    // higher-generation eligible sample.
    const PeerSample* chosen = nullptr;
    auto eligible = [&](const PeerSample& p) {
        return v.gen < p.gen && (p.gen < leader_gen || leader_prop);
    };
    if (eligible(p1)) chosen = &p1;
    if (eligible(p2) && (chosen == nullptr || p2.gen > chosen->gen)) {
        chosen = &p2;
    }
    if (chosen != nullptr) {
        d.kind = ExchangeDecision::Kind::kPropagation;
        d.new_col = chosen->col;
        d.new_gen = chosen->gen;
        d.send_gen_signal = true;  // line 12: gen(v) increased
        return d;
    }

    d.kind = ExchangeDecision::Kind::kNone;
    return d;
}

bool apply_decision(NodeState& v, const ExchangeDecision& decision,
                    Generation leader_gen, bool leader_prop) {
    switch (decision.kind) {
        case ExchangeDecision::Kind::kNone:
            return false;
        case ExchangeDecision::Kind::kRefreshOnly:
            v.seen_gen = leader_gen;
            v.seen_prop = leader_prop;
            return false;
        case ExchangeDecision::Kind::kTwoChoices:
        case ExchangeDecision::Kind::kPropagation: {
            PAPC_CHECK(decision.new_gen > v.gen);
            v.col = decision.new_col;
            v.gen = decision.new_gen;
            return true;
        }
    }
    return false;
}

}  // namespace papc::async
