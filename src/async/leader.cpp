#include "async/leader.hpp"

#include "support/check.hpp"

namespace papc::async {

Leader::Leader(const LeaderConfig& config) : config_(config) {
    PAPC_CHECK(config_.zero_signal_threshold > 0);
    PAPC_CHECK(config_.generation_size_threshold > 0);
    PAPC_CHECK(config_.max_generation >= 1);
    record(0.0);
}

void Leader::record(double now) {
    trace_.push_back(LeaderTransition{now, gen_, prop_});
}

void Leader::on_zero_signal(double now) {
    ++tick_count_;
    if (!prop_ && tick_count_ >= config_.zero_signal_threshold) {
        prop_ = true;  // allow propagation (Algorithm 3 line 3)
        record(now);
    }
}

void Leader::on_gen_signal(double now, Generation i) {
    if (i != gen_) return;  // stale or future signal: ignored
    ++gen_size_;
    if (gen_size_ >= config_.generation_size_threshold &&
        gen_ < config_.max_generation) {
        // Birth of the next generation (Algorithm 3 lines 6–8).
        ++gen_;
        tick_count_ = 0;
        gen_size_ = 0;
        prop_ = false;
        record(now);
    }
}

}  // namespace papc::async
