#pragma once

/// \file config.hpp
/// Configuration of the asynchronous single-leader protocol (§3).

#include <cstdint>
#include <memory>

#include "fault/plan.hpp"
#include "opinion/types.hpp"
#include "sim/queue_kind.hpp"

namespace papc::async {

struct AsyncConfig {
    /// Latency rate λ of the default Exponential(λ) channel-establishment
    /// model. (A custom LatencyModel can be supplied to the simulation.)
    double lambda = 1.0;

    /// Assumed initial bias α0 — the nodes (and leader) know α0 and k
    /// (§3.2); only a lower bound is required.
    double alpha_hint = 1.5;

    /// Length of the leader's two-choices window in *time units*
    /// (Proposition 16 uses ≈ 2 units). Converted into the 0-signal count
    /// threshold C3·n internally using the measured steps-per-unit C1.
    double two_choices_units = 2.0;

    /// gen_size threshold as a fraction of n (Algorithm 3 uses ⌈n/2⌉).
    double generation_size_fraction = 0.5;

    /// Extra generations on top of the closed-form G* (safety slack).
    unsigned generation_slack = 2;

    /// Hard cap on simulated time (time steps); safety net only.
    double max_time = 5000.0;

    /// ε for ε-convergence reporting (§3: ε = 1/polylog n; fixed here).
    double epsilon = 0.02;

    /// Sampling interval (time steps) of the metronome that records time
    /// series and checks convergence.
    double sample_interval = 0.25;

    /// Record time series (disable in bulk sweeps to save memory).
    bool record_series = true;

    /// Adversarial failure injection (§4 motivation: "an adversary can
    /// compromise the entire computation by taking over the leader"): at
    /// this time the leader freezes — it stops processing signals and its
    /// public state never changes again. Negative = no failure.
    ///
    /// DEPRECATED shim: since the fault layer landed this is sugar for a
    /// `fault.scheduled_crashes` entry with node == fault::kLeaderNode at
    /// the same time (the engines splice it in; results are unchanged —
    /// pinned by tests/integration/resilience_test.cpp). Prefer the plan.
    double leader_failure_time = -1.0;

    /// Fault & adversary plan (src/fault/plan.hpp). An all-zero plan is
    /// byte-identical to no plan; any active channel makes the plan part
    /// of the trajectory identity.
    fault::FaultPlan fault;

    /// Scheduler-queue implementation behind each shard of the windowed
    /// event executor. All kinds pop in identical (time, seq) order
    /// (pinned by the equivalence tests), so for a fixed seed this knob
    /// changes throughput only, never results. Prefer kCalendar or
    /// kLadder for n >> 2^16 pending events.
    sim::QueueKind queue_kind = sim::QueueKind::kBinaryHeap;

    /// Worker threads of the windowed executor. Results are bit-identical
    /// at every thread count (the PR 5 contract, extended to events);
    /// only throughput changes.
    std::size_t threads = 1;

    /// Conservative window width delta of the windowed executor, in time
    /// units. <= 0 derives sim::default_window(lambda). Part of the
    /// trajectory: two runs only reproduce each other with equal windows.
    double window = 0.0;

    /// Shard count of the windowed executor (0 = default). Like `window`,
    /// part of the trajectory; unlike `threads`, never auto-scaled.
    std::size_t event_shards = 0;
};

}  // namespace papc::async
