#pragma once

/// \file validated_simulation.hpp
/// The §5 (Summary and Conclusion) model extension: *message exchange over
/// an established channel also takes time*. The paper sketches the fix for
/// the single-leader case:
///
///   "This can easily be relaxed in the single leader case by contacting
///    the leader after each potential update of opinions and generation
///    number, and the updates are committed only, if the state of the
///    leader has not been changed in the meantime."
///
/// This engine implements that two-phase commit protocol on top of the
/// Algorithm 2+3 machinery:
///   1. good tick at t0 — channels to two peers (concurrent) and the leader
///      open; established at t1 = t0 + max(T2,T2) + T2;
///   2. request/response messages cross the channels: peer states and the
///      leader state are *read* at t2 = t1 + 2·T4 (T4 = per-message
///      latency);
///   3. the node evaluates Algorithm 2 on the t2 snapshot; if it would
///      change state, it opens a fresh validation channel to the leader
///      (T2) and round-trips one message pair (2·T4), finishing at
///      t3 = t2 + T2 + 2·T4;
///   4. the update *commits* at t3 only if the leader's public (gen, prop)
///      is unchanged between t2 and t3; otherwise it aborts and the node
///      only refreshes its stored leader state.
/// Aborts preserve the §3.2 interleaving invariants under message delays;
/// bench/exp_exchange_latency measures their cost.
///
/// Since PR 6 the event loop runs on the sharded windowed executor (see
/// async/simulation.hpp for the shared porting notes): one advance() =
/// one conservative window, peer/leader reads go through window-start
/// snapshots (the t2/t3 leader states the commit rule compares are the
/// snapshots of the windows containing t2 and t3), and fixed-seed results
/// are bit-identical at every thread count.

#include <cstdint>
#include <memory>
#include <vector>

#include "async/config.hpp"
#include "async/leader.hpp"
#include "async/node.hpp"
#include "async/simulation.hpp"
#include "core/engine.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"

namespace papc::sim {
template <typename Event>
class WindowedExecutor;
}  // namespace papc::sim

namespace papc::async {

/// Result of a validated run: the base AsyncResult plus commit accounting.
struct ValidatedResult {
    AsyncResult base;
    std::uint64_t commits = 0;        ///< validated updates applied
    std::uint64_t aborts = 0;         ///< updates dropped by stale validation
    double abort_rate = 0.0;          ///< aborts / (commits + aborts)
};

/// One event of the validated simulation (defined in the .cpp).
struct ValidatedEvent;

/// Single-leader protocol under channel latencies T2 *and* per-message
/// latencies T4, with leader-validated commits (§5).
class ValidatedSingleLeaderSimulation final : public core::Engine {
public:
    /// `channel` models T2 (establishment), `message` models T4 (one
    /// message over an established channel). Both are owned.
    ValidatedSingleLeaderSimulation(const Assignment& assignment,
                                    const AsyncConfig& config,
                                    std::unique_ptr<sim::LatencyModel> channel,
                                    std::unique_ptr<sim::LatencyModel> message,
                                    std::uint64_t seed);

    ~ValidatedSingleLeaderSimulation() override;

    [[nodiscard]] ValidatedResult run();

    // core::Engine driver interface (one window of events per advance).
    bool advance() override;
    [[nodiscard]] double now() const override { return now_; }
    [[nodiscard]] bool converged() const override { return census_.converged(); }
    [[nodiscard]] Opinion dominant() const override {
        return census_.pooled_stats().dominant;
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return census_.opinion_fraction(j);
    }

    [[nodiscard]] const Leader& leader() const { return *leader_; }
    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const NodeState& node(NodeId v) const { return nodes_[v]; }

private:
    struct CensusMove {
        Generation old_gen;
        Opinion old_col;
        Generation new_gen;
        Opinion new_col;
    };

    struct alignas(64) ShardScratch {
        std::uint64_t ticks = 0;
        std::uint64_t good_ticks = 0;
        std::uint64_t exchanges = 0;
        std::uint64_t two_choices = 0;
        std::uint64_t propagation = 0;
        std::uint64_t refresh = 0;
        std::uint64_t commits = 0;
        std::uint64_t aborts = 0;
        std::uint64_t crash_skips = 0;
        std::vector<CensusMove> moves;
    };

    void begin_window();
    void commit_window();

    AsyncConfig config_;
    std::unique_ptr<sim::LatencyModel> channel_;
    std::unique_ptr<sim::LatencyModel> message_;
    /// Fault layer (built in run(); rng_ not advanced — see
    /// async/simulation.hpp).
    std::unique_ptr<fault::Injector> injector_;
    bool crash_on_ = false;
    Rng rng_;
    std::vector<NodeState> nodes_;
    std::vector<NodeState> nodes_snap_;  ///< window-start copy (peer reads)
    GenerationCensus census_;
    std::unique_ptr<Leader> leader_;
    std::unique_ptr<sim::WindowedExecutor<ValidatedEvent>> executor_;
    std::vector<ShardScratch> scratch_;
    Opinion plurality_ = 0;
    bool ran_ = false;

    Generation snap_leader_gen_ = 1;
    bool snap_leader_prop_ = false;

    double now_ = 0.0;
    ValidatedResult result_;
};

/// Convenience wrapper: biased-plurality workload, Exponential(λ) channels
/// and Exponential(message_rate) messages.
[[nodiscard]] ValidatedResult run_validated_single_leader(
    std::size_t n, std::uint32_t k, double alpha, const AsyncConfig& config,
    double message_rate, std::uint64_t seed);

}  // namespace papc::async
