#include "async/sequential_simulation.hpp"

#include <cmath>

#include "analysis/theory.hpp"
#include "support/check.hpp"

namespace papc::async {

SequentialSingleLeaderSimulation::SequentialSingleLeaderSimulation(
    const Assignment& assignment, const AsyncConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    const std::size_t n = assignment.size();
    nodes_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        nodes_[v].col = assignment.opinions[v];
        nodes_[v].gen = 0;
        nodes_[v].locked = false;
        nodes_[v].seen_gen = 1;
        nodes_[v].seen_prop = false;
    }
    census_.reset(assignment.opinions);
    plurality_ = census_.pooled_stats().dominant;
}

AsyncResult SequentialSingleLeaderSimulation::run() {
    PAPC_CHECK(!ran_);
    ran_ = true;

    const std::size_t n = nodes_.size();
    AsyncResult result;
    result.plurality_fraction = TimeSeries("plurality-fraction");
    result.leader_generation = TimeSeries("leader-generation");
    // With instant channels one full action fits in every tick: a "time
    // unit" collapses to one time step.
    result.steps_per_unit = 1.0;

    LeaderConfig leader_config;
    leader_config.zero_signal_threshold = static_cast<std::uint64_t>(
        std::ceil(config_.two_choices_units * static_cast<double>(n)));
    leader_config.generation_size_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.generation_size_fraction * static_cast<double>(n)));
    leader_config.max_generation = analysis::total_generations(
        std::max(config_.alpha_hint, 1.0 + 1e-9), census_.num_opinions(), n,
        config_.generation_slack);
    leader_ = std::make_unique<Leader>(leader_config);

    auto sample_peer = [&](NodeId self) {
        auto p = static_cast<NodeId>(rng_.uniform_index(n - 1));
        if (p >= self) ++p;
        return p;
    };

    const double epsilon_target = 1.0 - config_.epsilon;
    const std::uint64_t check_every = std::max<std::uint64_t>(1, n / 4);
    const double nd = static_cast<double>(n);
    double now = 0.0;
    bool done = false;

    while (!done && now <= config_.max_time) {
        // Sequentialization: the next tick anywhere in the system is an
        // Exp(n) race won by a uniformly random node.
        now += rng_.exponential(nd);
        const auto v_id = static_cast<NodeId>(rng_.uniform_index(n));
        NodeState& v = nodes_[v_id];
        ++result.ticks;
        ++result.good_ticks;  // channels are instant: every tick is good

        // Line 1: the 0-signal arrives instantly.
        ++result.signals_delivered;
        leader_->on_zero_signal(now);

        // Lines 3-15 execute atomically at the tick.
        ++result.exchanges;
        const NodeId p1 = sample_peer(v_id);
        const NodeId p2 = sample_peer(v_id);
        const ExchangeDecision decision = decide_exchange(
            v, leader_->gen(), leader_->prop(),
            PeerSample{nodes_[p1].gen, nodes_[p1].col},
            PeerSample{nodes_[p2].gen, nodes_[p2].col});
        const Generation old_gen = v.gen;
        const Opinion old_col = v.col;
        const bool changed =
            apply_decision(v, decision, leader_->gen(), leader_->prop());
        switch (decision.kind) {
            case ExchangeDecision::Kind::kTwoChoices:
                ++result.two_choices_count;
                break;
            case ExchangeDecision::Kind::kPropagation:
                ++result.propagation_count;
                break;
            case ExchangeDecision::Kind::kRefreshOnly:
                ++result.refresh_count;
                break;
            case ExchangeDecision::Kind::kNone:
                break;
        }
        if (changed) {
            census_.transition(old_gen, old_col, v.gen, v.col);
            PAPC_CHECK(v.gen <= leader_->gen());
            if (decision.send_gen_signal) {
                ++result.signals_delivered;
                leader_->on_gen_signal(now, v.gen);
            }
        }

        if (result.ticks % check_every == 0) {
            const double frac = census_.opinion_fraction(plurality_);
            if (config_.record_series) {
                result.plurality_fraction.record(now, frac);
                result.leader_generation.record(
                    now, static_cast<double>(leader_->gen()));
            }
            if (result.epsilon_time < 0.0 && frac >= epsilon_target) {
                result.epsilon_time = now;
            }
            if (census_.converged()) {
                result.consensus_time = now;
                done = true;
            }
        }
    }

    result.end_time = now;
    result.converged = census_.converged();
    const BiasStats pooled = census_.pooled_stats();
    result.winner = pooled.dominant;
    result.plurality_won = result.converged && result.winner == plurality_;
    result.final_top_generation = census_.highest_populated();
    result.leader_trace = leader_->trace();
    return result;
}

AsyncResult run_sequential_single_leader(std::size_t n, std::uint32_t k,
                                         double alpha, const AsyncConfig& config,
                                         std::uint64_t seed) {
    Rng workload_rng(derive_seed(seed, 0xA553));
    const Assignment assignment = make_biased_plurality(n, k, alpha, workload_rng);
    SequentialSingleLeaderSimulation simulation(assignment, config,
                                                derive_seed(seed, 0x53));
    return simulation.run();
}

}  // namespace papc::async
