#include "async/sequential_simulation.hpp"

#include <cmath>

#include "analysis/theory.hpp"
#include "core/observer.hpp"
#include "sim/windowed_executor.hpp"
#include "support/check.hpp"

namespace papc::async {

SequentialSingleLeaderSimulation::SequentialSingleLeaderSimulation(
    const Assignment& assignment, const AsyncConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    const std::size_t n = assignment.size();
    nodes_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        nodes_[v].col = assignment.opinions[v];
        nodes_[v].gen = 0;
        nodes_[v].locked = false;
        nodes_[v].seen_gen = 1;
        nodes_[v].seen_prop = false;
    }
    census_.reset(assignment.opinions);
    plurality_ = census_.pooled_stats().dominant;
}

SequentialSingleLeaderSimulation::~SequentialSingleLeaderSimulation() = default;

bool SequentialSingleLeaderSimulation::advance() {
    if (executor_->empty()) return false;
    const std::size_t n = nodes_.size();
    const double nd = static_cast<double>(n);
    const bool ran = executor_->run_window(
        [&](sim::WindowedExecutor<NodeId>::ShardContext& ctx, double t,
            NodeId& /*unused*/) {
            // Sequentialization: the next tick anywhere in the system is an
            // Exp(n) race won by a uniformly random node drawn after the
            // race — memorylessness makes the winner independent of the
            // race time. One shard, so everything below is serial and may
            // read/write live state directly.
            Rng& rng = ctx.rng();
            const auto v_id = static_cast<NodeId>(rng.uniform_index(n));
            NodeState& v = nodes_[v_id];
            ++result_.ticks;
            // A crashed node's tick races but acts on nothing.
            if (crash_on_ && injector_->is_down(v_id, t)) {
                ++result_.faults.crash_skips;
                ctx.emit(0, t + rng.exponential(nd), 0);
                return;
            }
            ++result_.good_ticks;  // channels are instant: every tick is good

            // Line 1: the 0-signal arrives instantly. Channels are
            // instant, so a straggler multiplier has nothing to stretch;
            // loss and duplication still apply.
            std::size_t zero_copies = 1;
            if (msg_faults_on_) {
                const fault::MessageFate fate = injector_->draw_fate(fault_rng_);
                if (fate.drop) {
                    ++result_.faults.lost;
                    zero_copies = 0;
                } else if (fate.duplicate) {
                    ++result_.faults.duplicated;
                    zero_copies = 2;
                }
            }
            for (; zero_copies > 0; --zero_copies) {
                ++result_.signals_delivered;
                if (injector_ == nullptr || !injector_->leader_down(t)) {
                    leader_->on_zero_signal(t);
                }
            }

            // Lines 3-15 execute atomically at the tick.
            ++result_.exchanges;
            auto sample_peer = [&](NodeId self) {
                return static_cast<NodeId>(rng.uniform_index_excluding(n, self));
            };
            const NodeId p1 = sample_peer(v_id);
            const NodeId p2 = sample_peer(v_id);
            const ExchangeDecision decision = decide_exchange(
                v, leader_->gen(), leader_->prop(),
                PeerSample{nodes_[p1].gen, nodes_[p1].col},
                PeerSample{nodes_[p2].gen, nodes_[p2].col});
            const Generation old_gen = v.gen;
            const Opinion old_col = v.col;
            const bool changed =
                apply_decision(v, decision, leader_->gen(), leader_->prop());
            switch (decision.kind) {
                case ExchangeDecision::Kind::kTwoChoices:
                    ++result_.two_choices_count;
                    break;
                case ExchangeDecision::Kind::kPropagation:
                    ++result_.propagation_count;
                    break;
                case ExchangeDecision::Kind::kRefreshOnly:
                    ++result_.refresh_count;
                    break;
                case ExchangeDecision::Kind::kNone:
                    break;
            }
            if (changed) {
                census_.transition(old_gen, old_col, v.gen, v.col);
                PAPC_CHECK(v.gen <= leader_->gen());
                if (decision.send_gen_signal) {
                    Generation sig_gen = v.gen;
                    std::size_t copies = 1;
                    if (msg_faults_on_) {
                        const fault::MessageFate fate =
                            injector_->draw_fate(fault_rng_);
                        if (fate.drop) {
                            ++result_.faults.lost;
                            copies = 0;
                        } else {
                            if (fate.duplicate) {
                                ++result_.faults.duplicated;
                                copies = 2;
                            }
                            if (fate.corrupt) {
                                ++result_.faults.corrupted;
                                sig_gen = static_cast<Generation>(
                                    1 + fault_rng_.uniform_index(sig_gen));
                            }
                        }
                    }
                    for (; copies > 0; --copies) {
                        ++result_.signals_delivered;
                        if (injector_ == nullptr || !injector_->leader_down(t)) {
                            leader_->on_gen_signal(t, sig_gen);
                        }
                    }
                }
            }
            // Next global race; chains within the window while it lands
            // before the window end.
            ctx.emit(0, t + rng.exponential(nd), 0);
        });
    now_ = executor_->now();
    return ran;
}

AsyncResult SequentialSingleLeaderSimulation::run() {
    PAPC_CHECK(!ran_);
    ran_ = true;

    const std::size_t n = nodes_.size();
    result_.leader_generation = TimeSeries("leader-generation");
    // With instant channels one full action fits in every tick: a "time
    // unit" collapses to one time step.
    result_.steps_per_unit = 1.0;

    // Fault layer (see async/simulation.cpp): leader_failure_time splices
    // into the plan; the injector derives via the pure substream.
    fault::FaultPlan plan = config_.fault;
    if (config_.leader_failure_time >= 0.0) {
        plan.scheduled_crashes.push_back(
            fault::CrashEntry{fault::kLeaderNode, config_.leader_failure_time});
    }
    if (plan.active()) {
        injector_ = std::make_unique<fault::Injector>(plan, n,
                                                      config_.max_time, rng_);
        crash_on_ = injector_->crash_active();
        msg_faults_on_ = injector_->message_faults_active();
        fault_rng_ = injector_->serial_stream();
        result_.nodes_crashed = injector_->nodes_crashed();
    }

    LeaderConfig leader_config;
    leader_config.zero_signal_threshold = static_cast<std::uint64_t>(
        std::ceil(config_.two_choices_units * static_cast<double>(n)));
    leader_config.generation_size_threshold = static_cast<std::uint64_t>(std::ceil(
        config_.generation_size_fraction * static_cast<double>(n)));
    leader_config.max_generation = analysis::total_generations(
        std::max(config_.alpha_hint, 1.0 + 1e-9), census_.num_opinions(), n,
        config_.generation_slack);
    leader_ = std::make_unique<Leader>(leader_config);

    // One shard: the model is inherently serial (a node atomically reads
    // arbitrary other nodes at its tick), so the executor degenerates to a
    // single windowed queue. Threads are forced to 1 — there is nothing to
    // parallelize, and the window substreams alone pin determinism.
    sim::WindowedOptions executor_options;
    executor_options.shards = 1;
    executor_options.threads = 1;
    executor_options.window = config_.window;
    executor_options.lambda = config_.lambda;
    executor_options.queue_kind = config_.queue_kind;
    executor_options.reserve_hint = 2;
    executor_ = std::make_unique<sim::WindowedExecutor<NodeId>>(
        n, executor_options, rng_.split());

    // The first global Exp(n) race; the handler keeps exactly one pending.
    executor_->seed(0, rng_.exponential(static_cast<double>(n)), 0);

    core::EngineOptions run_options;
    run_options.max_time = config_.max_time;
    run_options.sample_interval = config_.sample_interval;
    run_options.record = config_.record_series;
    run_options.plurality = plurality_;
    run_options.epsilon = config_.epsilon;
    core::FunctionObserver observer([this](double time, double) {
        if (config_.record_series) {
            result_.leader_generation.record(
                time, static_cast<double>(leader_->gen()));
        }
    });
    static_cast<core::RunResult&>(result_) =
        core::run(*this, run_options, &observer);

    result_.events_processed = executor_->events_processed();
    result_.windows = executor_->windows_run();
    result_.window_stragglers = executor_->stragglers();
    result_.final_top_generation = census_.highest_populated();
    result_.leader_trace = leader_->trace();
    return std::move(result_);
}

AsyncResult run_sequential_single_leader(std::size_t n, std::uint32_t k,
                                         double alpha, const AsyncConfig& config,
                                         std::uint64_t seed) {
    Rng workload_rng(derive_seed(seed, 0xA553));
    const Assignment assignment = make_biased_plurality(n, k, alpha, workload_rng);
    SequentialSingleLeaderSimulation simulation(assignment, config,
                                                derive_seed(seed, 0x53));
    return simulation.run();
}

}  // namespace papc::async
