#pragma once

/// \file cpu.hpp
/// Runtime CPU-feature detection and SIMD dispatch policy (PR 7).
///
/// The sync round kernels have an AVX2 gather path (sync/simd_gather.hpp)
/// that must be selected at runtime: the same binary runs on machines with
/// and without AVX2, and CI exercises the scalar fallback on AVX2 hardware
/// by forcing dispatch the other way. Resolution order:
///
///   1. a process-wide override installed by set_simd_override() — the
///      test hook the SIMD/scalar equivalence suite uses to pin both
///      paths against each other on one machine;
///   2. the PAPC_FORCE_SCALAR environment variable (any non-empty value
///      other than "0") — the operational kill switch, read once;
///   3. cpuid detection: AVX2 requires CPUID.7.0:EBX[5], plus
///      CPUID.1:ECX OSXSAVE+AVX and XCR0 confirming the OS saves YMM
///      state (a kernel that does not context-switch the upper halves
///      makes AVX2 execution unsafe even when the CPU has it).
///
/// Building with -DPAPC_DISABLE_SIMD (the CI -mno-avx2 job) compiles the
/// AVX2 kernels out entirely; detection then reports scalar regardless of
/// the hardware, so the dispatch sites need no #ifdefs of their own.
///
/// The dispatch decision never changes results: the SIMD kernels are
/// bit-identical value gathers (pinned by tests/sync/simd_equivalence_
/// test.cpp), so this is a pure throughput knob.

namespace papc::support {

/// SIMD instruction tiers the kernels dispatch over. Ordered: a level
/// implies every lower one.
enum class SimdLevel {
    kScalar = 0,
    kAvx2 = 1,
};

/// Human-readable level name ("scalar", "avx2") for logs and bench labels.
[[nodiscard]] const char* simd_level_name(SimdLevel level);

/// What the hardware (and the build) supports: cpuid-detected, cached
/// after the first call. Reports kScalar when PAPC_DISABLE_SIMD was set
/// at build time, on non-x86-64 targets, or when the OS does not enable
/// YMM state.
[[nodiscard]] SimdLevel detected_simd();

/// The level the kernels should use right now: the override if one is
/// installed, else kScalar if PAPC_FORCE_SCALAR is set in the
/// environment, else detected_simd(). Cheap enough for per-strip checks
/// (one relaxed atomic load + cached statics).
[[nodiscard]] SimdLevel active_simd();

/// Installs a process-wide dispatch override (test hook). Requesting a
/// level above detected_simd() is clamped to what the machine can run —
/// callers that must know whether AVX2 really executed should check
/// active_simd() afterwards.
void set_simd_override(SimdLevel level);

/// Removes the override; active_simd() falls back to env + detection.
void clear_simd_override();

/// True while a set_simd_override() override is installed. Size-gated
/// dispatch policies (sync/simd_gather.hpp's u64 gate) bypass their
/// heuristics under an override so equivalence tests can force either
/// path at any working-set size.
[[nodiscard]] bool simd_override_active();

/// True when the AVX2 kernels were compiled into this binary (false under
/// -DPAPC_DISABLE_SIMD or on non-x86-64 builds).
[[nodiscard]] bool simd_compiled_in();

}  // namespace papc::support
