#include "support/args.hpp"

#include <cstdlib>

namespace papc {

Args::Args(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) != 0 || token.size() <= 2) {
            error_ = "unexpected argument: " + token;
            return;
        }
        token = token.substr(2);
        const std::size_t eq = token.find('=');
        if (eq != std::string::npos) {
            values_[token.substr(0, eq)] = token.substr(eq + 1);
            continue;
        }
        // `--key value` when the next token is not an option; else a flag.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[token] = argv[i + 1];
            ++i;
        } else {
            values_[token] = "";
        }
    }
}

bool Args::has(const std::string& key) const {
    queried_[key] = true;
    return values_.count(key) > 0;
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
    queried_[key] = true;
    const auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) return fallback;
    return it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t fallback) const {
    const std::string v = get(key, "");
    if (v.empty()) return fallback;
    return std::strtoll(v.c_str(), nullptr, 10);
}

std::uint64_t Args::get_uint(const std::string& key, std::uint64_t fallback) const {
    const std::string v = get(key, "");
    if (v.empty()) return fallback;
    return std::strtoull(v.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
    const std::string v = get(key, "");
    if (v.empty()) return fallback;
    return std::strtod(v.c_str(), nullptr);
}

bool Args::get_flag(const std::string& key) const {
    queried_[key] = true;
    const auto it = values_.find(key);
    if (it == values_.end()) return false;
    return it->second.empty() || it->second == "1" || it->second == "true" ||
           it->second == "yes";
}

std::vector<std::string> Args::unused() const {
    std::vector<std::string> out;
    for (const auto& [key, value] : values_) {
        (void)value;
        if (queried_.find(key) == queried_.end()) out.push_back(key);
    }
    return out;
}

std::string Args::unknown_option_error() const {
    const std::vector<std::string> unknown = unused();
    if (unknown.empty()) return {};
    std::string out = unknown.size() == 1 ? "unknown option" : "unknown options";
    for (std::size_t i = 0; i < unknown.size(); ++i) {
        out += (i == 0 ? " --" : ", --") + unknown[i];
    }
    return out;
}

}  // namespace papc
