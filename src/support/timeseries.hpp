#pragma once

/// \file timeseries.hpp
/// Sparse (time, value) series recorded during simulations, e.g. the fraction
/// of nodes holding the plurality opinion over simulated time.

#include <cstddef>
#include <string>
#include <vector>

namespace papc {

struct TimePoint {
    double time = 0.0;
    double value = 0.0;
};

/// Append-only time series with monotone time stamps.
class TimeSeries {
public:
    explicit TimeSeries(std::string name = {}) : name_(std::move(name)) {}

    /// Appends a sample; time must be >= the previous sample's time.
    void record(double time, double value);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t size() const { return points_.size(); }
    [[nodiscard]] bool empty() const { return points_.empty(); }
    [[nodiscard]] const TimePoint& operator[](std::size_t i) const { return points_[i]; }
    [[nodiscard]] const std::vector<TimePoint>& points() const { return points_; }

    /// Value at the given time via step interpolation (last sample at or
    /// before `time`); returns the first value for earlier queries.
    [[nodiscard]] double value_at(double time) const;

    /// First time at which the series reaches `threshold` (value >=), or a
    /// negative value if it never does.
    [[nodiscard]] double first_time_reaching(double threshold) const;

    /// Down-samples to at most `max_points` evenly spaced points (keeps the
    /// first and last). Used before printing long series.
    [[nodiscard]] TimeSeries downsample(std::size_t max_points) const;

private:
    std::string name_;
    std::vector<TimePoint> points_;
};

}  // namespace papc
