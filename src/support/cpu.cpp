#include "support/cpu.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#if defined(__x86_64__) && !defined(PAPC_DISABLE_SIMD)
#define PAPC_SIMD_X86 1
#include <cpuid.h>
#endif

namespace papc::support {
namespace {

/// Override slot: SimdLevel + 1, 0 = no override. One relaxed atomic —
/// the override is a coarse test/ops knob, not a synchronization point.
std::atomic<int> g_override{0};

#if defined(PAPC_SIMD_X86)
/// XGETBV(0): which register states the OS saves on context switch.
std::uint64_t xgetbv0() {
    std::uint32_t eax = 0;
    std::uint32_t edx = 0;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    return (static_cast<std::uint64_t>(edx) << 32U) | eax;
}

SimdLevel detect() {
    unsigned eax = 0;
    unsigned ebx = 0;
    unsigned ecx = 0;
    unsigned edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return SimdLevel::kScalar;
    const bool osxsave = (ecx & (1U << 27U)) != 0;
    const bool avx = (ecx & (1U << 28U)) != 0;
    if (!osxsave || !avx) return SimdLevel::kScalar;
    // XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
    if ((xgetbv0() & 0x6U) != 0x6U) return SimdLevel::kScalar;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) {
        return SimdLevel::kScalar;
    }
    const bool avx2 = (ebx & (1U << 5U)) != 0;
    return avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}
#else
SimdLevel detect() { return SimdLevel::kScalar; }
#endif

bool force_scalar_env() {
    const char* value = std::getenv("PAPC_FORCE_SCALAR");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

const char* simd_level_name(SimdLevel level) {
    switch (level) {
        case SimdLevel::kAvx2:
            return "avx2";
        case SimdLevel::kScalar:
            break;
    }
    return "scalar";
}

SimdLevel detected_simd() {
    static const SimdLevel level = detect();
    return level;
}

SimdLevel active_simd() {
    const int override_slot = g_override.load(std::memory_order_relaxed);
    if (override_slot != 0) {
        const auto requested = static_cast<SimdLevel>(override_slot - 1);
        return requested <= detected_simd() ? requested : detected_simd();
    }
    static const bool forced_scalar = force_scalar_env();
    if (forced_scalar) return SimdLevel::kScalar;
    return detected_simd();
}

void set_simd_override(SimdLevel level) {
    g_override.store(static_cast<int>(level) + 1, std::memory_order_relaxed);
}

void clear_simd_override() {
    g_override.store(0, std::memory_order_relaxed);
}

bool simd_override_active() {
    return g_override.load(std::memory_order_relaxed) != 0;
}

bool simd_compiled_in() {
#if defined(PAPC_SIMD_X86)
    return true;
#else
    return false;
#endif
}

}  // namespace papc::support
