#pragma once

/// \file json_value.hpp
/// Minimal JSON document model + recursive-descent parser — the reading
/// half of the support/json pair (json_writer.hpp emits). Used by the
/// round-trip tests and by anything that wants to consume the CLI's
/// machine-readable output without external dependencies.
///
/// Numbers are doubles (like JavaScript); object member order is preserved.
/// parse_json() reports the first error with its byte offset instead of
/// aborting, so it is safe on untrusted input.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace papc {

class JsonValue {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    JsonValue() = default;

    static JsonValue make_null() { return JsonValue(); }
    static JsonValue make_bool(bool v);
    static JsonValue make_number(double v);
    static JsonValue make_string(std::string v);
    static JsonValue make_array();
    static JsonValue make_object();

    [[nodiscard]] Type type() const { return type_; }
    [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
    [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
    [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
    [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
    [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
    [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

    /// Typed accessors; PAPC_CHECK on type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;

    /// Array access.
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] const JsonValue& operator[](std::size_t i) const;
    [[nodiscard]] const std::vector<JsonValue>& elements() const;
    void append(JsonValue element);

    /// Object access. find() returns nullptr when the key is absent;
    /// at() PAPC_CHECKs presence.
    [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
    members() const;
    [[nodiscard]] const JsonValue* find(const std::string& name) const;
    [[nodiscard]] const JsonValue& at(const std::string& name) const;
    void set(std::string name, JsonValue value);

    /// Lenient numeric read: the member's number, or `fallback` when the
    /// member is absent or null (the writer emits null for non-finite).
    [[nodiscard]] double number_or(const std::string& name,
                                   double fallback) const;

private:
    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

struct JsonParseResult {
    JsonValue value;
    std::string error;  ///< empty on success, else "offset N: message"

    [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Nesting depth is capped at 256.
[[nodiscard]] JsonParseResult parse_json(const std::string& text);

}  // namespace papc
