#pragma once

/// \file check.hpp
/// Lightweight runtime checks used across the library.
///
/// PAPC_CHECK is always on (also in Release builds): simulation correctness
/// depends on internal invariants, and the cost of the checks is negligible
/// compared to the random sampling work per event.

#include <cstdio>
#include <cstdlib>

namespace papc {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
    std::fprintf(stderr, "PAPC_CHECK failed: %s at %s:%d\n", expr, file, line);
    std::abort();
}

}  // namespace papc

#define PAPC_CHECK(expr)                                      \
    do {                                                      \
        if (!(expr)) {                                        \
            ::papc::check_failed(#expr, __FILE__, __LINE__);  \
        }                                                     \
    } while (false)
