#include "support/random.hpp"

#include <cmath>

#include "support/check.hpp"

namespace papc {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31U);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64(sm);
    }
}

Rng Rng::split() {
    // Seed the child from two fresh outputs folded together; the parent
    // advances, so repeated splits give distinct children.
    const std::uint64_t a = next_u64();
    const std::uint64_t b = next_u64();
    std::uint64_t sm = a ^ rotl(b, 31);
    return Rng(splitmix64(sm));
}

Rng Rng::substream(std::uint64_t a, std::uint64_t b) const {
    // Absorb the four state words and both labels into one splitmix64
    // chain; the accumulated output seeds the child (whose constructor
    // expands it to a full 256-bit state). Everything is const on the
    // parent: same (state, a, b) always gives the same child.
    std::uint64_t sm = state_[0];
    std::uint64_t folded = splitmix64(sm);
    for (const std::uint64_t word : {state_[1], state_[2], state_[3], a, b}) {
        sm ^= word;
        folded ^= splitmix64(sm);
    }
    return Rng(folded);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5U, 7) * 9U;
    const std::uint64_t t = state_[1] << 17U;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

void Rng::fill_u64(std::uint64_t* dst, std::size_t count) {
    // Same recurrence as next_u64(), with the state held in locals so the
    // compiler keeps it in registers across the whole block.
    std::uint64_t s0 = state_[0];
    std::uint64_t s1 = state_[1];
    std::uint64_t s2 = state_[2];
    std::uint64_t s3 = state_[3];
    for (std::size_t i = 0; i < count; ++i) {
        dst[i] = rotl(s1 * 5U, 7) * 9U;
        const std::uint64_t t = s1 << 17U;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = rotl(s3, 45);
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
}

void Rng::uniform_indices(std::uint64_t n, std::uint64_t* dst,
                          std::size_t count) {
    PAPC_CHECK(n > 0);
    // The scalar sequence consumes one raw word per output plus one per
    // Lemire rejection, strictly in stream order. Batching therefore only
    // changes *when* raw words are produced, never which word feeds which
    // slot: generate words in-register (same recurrence as next_u64) and
    // multiply-shift each in order; a rejected word leaves its slot
    // unfilled for the next word, exactly like the scalar retry. No word
    // is drawn that the scalar sequence would not draw, so the state
    // afterwards matches the scalar calls bit for bit.
    const std::uint64_t threshold = lemire_threshold(n);
    std::uint64_t s0 = state_[0];
    std::uint64_t s1 = state_[1];
    std::uint64_t s2 = state_[2];
    std::uint64_t s3 = state_[3];
    std::size_t produced = 0;
    while (produced < count) {
        const std::uint64_t x = rotl(s1 * 5U, 7) * 9U;
        const std::uint64_t t = s1 << 17U;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = rotl(s3, 45);
        std::uint64_t value;
        if (lemire_map(x, n, threshold, value)) dst[produced++] = value;
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
}

double Rng::uniform() {
    return static_cast<double>(next_u64() >> 11U) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
    PAPC_CHECK(n > 0);
    return uniform_index(n, lemire_threshold(n));
}

std::uint64_t Rng::uniform_index_excluding(std::uint64_t n,
                                           std::uint64_t excluded) {
    PAPC_CHECK(n >= 2 && excluded < n);
    std::uint64_t v = uniform_index(n - 1);
    if (v >= excluded) ++v;
    return v;
}

bool Rng::bernoulli(double p) {
    return uniform() < p;
}

double Rng::exponential(double rate) {
    PAPC_CHECK(rate > 0.0);
    // -log(1 - U) avoids log(0) since uniform() < 1.
    return -std::log1p(-uniform()) / rate;
}

double Rng::normal() {
    // Box–Muller; draws two uniforms per variate, discards the spare so the
    // generator state consumed per call is fixed (simpler reproducibility).
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * M_PI * u2);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

double Rng::gamma(double shape, double scale) {
    PAPC_CHECK(shape > 0.0 && scale > 0.0);
    if (shape < 1.0) {
        // Boost to shape+1 and apply the standard power correction.
        const double u = uniform();
        return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia–Tsang squeeze method.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = 0.0;
        double v = 0.0;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
    }
}

double Rng::weibull(double shape, double scale) {
    PAPC_CHECK(shape > 0.0 && scale > 0.0);
    return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
}

double Rng::lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) {
    PAPC_CHECK(mean >= 0.0);
    if (mean == 0.0) return 0;
    if (mean < 30.0) {
        // Knuth: multiply uniforms until the product drops below e^-mean.
        const double limit = std::exp(-mean);
        std::uint64_t count = 0;
        double product = uniform();
        while (product > limit) {
            ++count;
            product *= uniform();
        }
        return count;
    }
    // Normal approximation with resampling of negatives; adequate for the
    // large-mean uses in this library (batching of clock ticks).
    for (;;) {
        const double x = normal(mean, std::sqrt(mean));
        if (x >= 0.0) return static_cast<std::uint64_t>(x + 0.5);
    }
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
    PAPC_CHECK(p >= 0.0 && p <= 1.0);
    if (n == 0 || p == 0.0) return 0;
    if (p == 1.0) return n;
    if (p > 0.5) return n - binomial(n, 1.0 - p);
    const double np = static_cast<double>(n) * p;
    if (np < 30.0) {
        // Inversion by sequential search over the CDF (small np only).
        const double q = 1.0 - p;
        const double s = p / q;
        double f = std::pow(q, static_cast<double>(n));
        double u = uniform();
        std::uint64_t x = 0;
        while (u > f && x < n) {
            u -= f;
            ++x;
            f *= s * (static_cast<double>(n - x + 1) / static_cast<double>(x));
        }
        return x;
    }
    // Normal approximation with continuity correction, clamped.
    const double sigma = std::sqrt(np * (1.0 - p));
    for (;;) {
        const double x = normal(np, sigma);
        if (x >= -0.5 && x <= static_cast<double>(n) + 0.5) {
            const double rounded = std::floor(x + 0.5);
            return static_cast<std::uint64_t>(rounded < 0.0 ? 0.0 : rounded);
        }
    }
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
    PAPC_CHECK(!weights.empty());
    double total = 0.0;
    for (const double w : weights) {
        PAPC_CHECK(w >= 0.0);
        total += w;
    }
    PAPC_CHECK(total > 0.0);
    double target = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
        if (target < weights[i]) return i;
        target -= weights[i];
    }
    return weights.size() - 1;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
    std::uint64_t sm = base ^ (0x632be59bd9b4e019ULL * (index + 1));
    (void)splitmix64(sm);
    return splitmix64(sm);
}

}  // namespace papc
