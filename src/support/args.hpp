#pragma once

/// \file args.hpp
/// Minimal command-line argument parser for the example/CLI binaries.
/// Supports `--key value`, `--key=value` and boolean `--flag` forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace papc {

class Args {
public:
    /// Parses argv; returns false (and fills error()) on malformed input
    /// (an option without the leading `--`).
    Args(int argc, const char* const* argv);

    [[nodiscard]] bool ok() const { return error_.empty(); }
    [[nodiscard]] const std::string& error() const { return error_; }

    /// True when the option was present (with or without a value).
    [[nodiscard]] bool has(const std::string& key) const;

    /// Value lookups with defaults; has(key) without a value yields the
    /// default for typed getters and true for get_flag.
    [[nodiscard]] std::string get(const std::string& key,
                                  const std::string& fallback) const;
    [[nodiscard]] std::int64_t get_int(const std::string& key,
                                       std::int64_t fallback) const;
    [[nodiscard]] std::uint64_t get_uint(const std::string& key,
                                         std::uint64_t fallback) const;
    [[nodiscard]] double get_double(const std::string& key, double fallback) const;
    [[nodiscard]] bool get_flag(const std::string& key) const;

    /// Options that were parsed but never queried — typo detection.
    [[nodiscard]] std::vector<std::string> unused() const;

    /// Strict typo rejection: after querying every option the binary
    /// understands, call this — a non-empty return is a ready-to-print
    /// error naming each unrecognized option ("unknown option --lamda").
    /// Binaries should fail fast on it instead of silently running with
    /// defaults.
    [[nodiscard]] std::string unknown_option_error() const;

private:
    std::map<std::string, std::string> values_;
    mutable std::map<std::string, bool> queried_;
    std::string error_;
};

}  // namespace papc
