#pragma once

/// \file json_writer.hpp
/// Minimal streaming JSON emitter — no external dependencies. Produces
/// pretty-printed, strictly valid JSON (RFC 8259): strings are escaped,
/// doubles are written with the shortest representation that parses back
/// to the same value (so emit -> parse round-trips exactly), and
/// non-finite doubles (which JSON cannot represent) become null.
///
/// Usage is push-style; the writer tracks the object/array nesting and
/// inserts separators itself:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("n");      w.value(std::uint64_t{10000});
///   w.key("series"); w.begin_array();
///   w.value(0.5);    w.value(1.0);
///   w.end_array();
///   w.end_object();
///   std::string text = w.str();
///
/// Misuse (a key outside an object, a value where a key is expected,
/// unbalanced begin/end) fails a PAPC_CHECK.

#include <cstdint>
#include <string>
#include <vector>

namespace papc {

class JsonWriter {
public:
    void begin_object();
    void end_object();
    void begin_array();
    void end_array();

    /// Emits the key of the next object member; must be inside an object.
    void key(const std::string& name);

    void value(const std::string& text);
    void value(const char* text);
    void value(double number);
    void value(bool boolean);
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    void null_value();

    /// Convenience: key + value in one call.
    template <typename T>
    void kv(const std::string& name, const T& v) {
        key(name);
        value(v);
    }

    /// The finished document; every begin must have been ended and exactly
    /// one root value written.
    [[nodiscard]] std::string str() const;

    /// Escapes one string to a quoted JSON string literal.
    [[nodiscard]] static std::string escape(const std::string& text);

    /// Shortest decimal form of `number` that strtod parses back to the
    /// identical bits; "null" for non-finite values.
    [[nodiscard]] static std::string format_double(double number);

private:
    struct Frame {
        bool is_object = false;
        bool expects_key = false;  ///< object: next token must be a key
        std::size_t count = 0;     ///< members/elements written so far
    };

    /// Writes separators/indentation before a value (or key) and updates
    /// the frame state.
    void prepare_for_value();
    void indent();
    void raw(const std::string& text) { out_ += text; }

    std::vector<Frame> stack_;
    std::string out_;
    std::size_t root_values_ = 0;
};

}  // namespace papc
