#include "support/csv.hpp"

#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace papc {

std::string csv_escape(const std::string& cell) {
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) return cell;
    std::string out = "\"";
    for (const char ch : cell) {
        if (ch == '"') out += "\"\"";
        else out += ch;
    }
    out += "\"";
    return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
    PAPC_CHECK(columns_ > 0);
    if (out_) write_cells(header);
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
    PAPC_CHECK(cells.size() == columns_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) out_ << ',';
        out_ << csv_escape(cells[i]);
    }
    out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    if (out_) write_cells(cells);
}

void CsvWriter::write_row(const std::vector<double>& values, int precision) {
    if (!out_) return;
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (const double v : values) {
        std::ostringstream s;
        s << std::setprecision(precision) << v;
        cells.push_back(s.str());
    }
    write_cells(cells);
}

}  // namespace papc
