#pragma once

/// \file csv.hpp
/// Minimal CSV writer so benchmark binaries can optionally dump raw data for
/// external plotting.

#include <fstream>
#include <string>
#include <vector>

namespace papc {

/// Streams rows to a CSV file. Quotes cells containing separators/quotes.
class CsvWriter {
public:
    /// Opens (truncates) `path` and writes the header row.
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    /// True when the file opened successfully.
    [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

    void write_row(const std::vector<std::string>& cells);

    /// Convenience for all-numeric rows.
    void write_row(const std::vector<double>& values, int precision = 6);

private:
    void write_cells(const std::vector<std::string>& cells);

    std::ofstream out_;
    std::size_t columns_;
};

/// Escapes a single CSV cell (adds quotes when needed).
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace papc
