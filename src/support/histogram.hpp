#pragma once

/// \file histogram.hpp
/// Fixed-width and exponential-bucket histograms for latency / time data.

#include <cstdint>
#include <string>
#include <vector>

namespace papc {

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    [[nodiscard]] double lo() const { return lo_; }
    [[nodiscard]] double hi() const { return hi_; }
    [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
    [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
    [[nodiscard]] std::uint64_t total() const { return total_; }

    /// Lower edge of bucket i.
    [[nodiscard]] double bucket_lo(std::size_t i) const;
    /// Upper edge of bucket i.
    [[nodiscard]] double bucket_hi(std::size_t i) const;

    /// Approximate quantile by linear interpolation inside the bucket.
    [[nodiscard]] double quantile(double q) const;

    /// Renders a simple ASCII bar chart (for example programs).
    [[nodiscard]] std::string render(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    double bucket_width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

}  // namespace papc
