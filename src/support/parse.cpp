#include "support/parse.hpp"

#include <cstdlib>

namespace papc {

bool try_parse_u64(const std::string& text, std::uint64_t* out) {
    if (text.empty()) return false;
    if (text.front() == '-') return false;  // strtoull silently wraps
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') return false;
    *out = static_cast<std::uint64_t>(value);
    return true;
}

bool try_parse_i64(const std::string& text, std::int64_t* out) {
    if (text.empty()) return false;
    char* end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0') return false;
    *out = static_cast<std::int64_t>(value);
    return true;
}

bool try_parse_double(const std::string& text, double* out) {
    if (text.empty()) return false;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') return false;
    *out = value;
    return true;
}

bool try_parse_bool(const std::string& text, bool* out) {
    if (text.empty() || text == "1" || text == "true" || text == "yes" ||
        text == "on") {
        *out = true;
        return true;
    }
    if (text == "0" || text == "false" || text == "no" || text == "off") {
        *out = false;
        return true;
    }
    return false;
}

}  // namespace papc
