#pragma once

/// \file thread_pool.hpp
/// Small reusable worker pool for intra-run parallelism (the sharded sync
/// round kernels). A pool with `threads` slots owns `threads - 1` worker
/// threads that park on a condition variable between jobs; the calling
/// thread always participates as worker 0, so a 1-thread pool spawns
/// nothing and runs jobs inline with zero synchronization.
///
/// The one entry point is parallel_for(count, fn): fn(task, worker) runs
/// for every task index in [0, count), tasks handed out through one atomic
/// cursor. Which worker runs which task is scheduling-dependent — callers
/// that need determinism must make task results independent of assignment
/// (the sharded kernels do: per-task RNG substreams, per-task delta
/// buffers merged in task order, per-worker scratch only for reuse).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace papc::support {

class ThreadPool {
public:
    /// A pool with `threads` execution slots (>= 1): the calling thread
    /// plus `threads - 1` parked workers.
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Execution slots (worker indices span [0, threads())).
    [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

    /// Runs fn(task, worker) for every task in [0, count); returns when
    /// all tasks finished. worker is a dense index in [0, threads()),
    /// stable within one parallel_for (use it to index per-worker
    /// scratch). Not reentrant: fn must not call parallel_for on the same
    /// pool.
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t task,
                                               std::size_t worker)>& fn);

private:
    /// State of one parallel_for. Workers hold their own shared_ptr, so a
    /// worker that wakes late for a finished job drains an exhausted
    /// cursor and never touches a successor job's state.
    struct Job {
        const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
        std::size_t count = 0;
        std::atomic<std::size_t> next_task{0};
        std::size_t tasks_remaining = 0;  ///< guarded by pool mutex_
    };

    void worker_loop(std::size_t worker);
    void drain(Job& job, std::size_t worker);

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable job_done_;
    std::shared_ptr<Job> job_;          ///< guarded by mutex_
    std::uint64_t job_generation_ = 0;  ///< bumps per job; wakes workers
    bool stopping_ = false;
};

}  // namespace papc::support
