#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace papc {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
    PAPC_CHECK(hi > lo);
    PAPC_CHECK(buckets > 0);
}

void Histogram::add(double x) {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
    return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
    return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
    PAPC_CHECK(q >= 0.0 && q <= 1.0);
    PAPC_CHECK(total_ > 0);
    const double target = q * static_cast<double>(total_);
    double cumulative = static_cast<double>(underflow_);
    if (cumulative >= target) return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cumulative + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
            return bucket_lo(i) + frac * bucket_width_;
        }
        cumulative = next;
    }
    return hi_;
}

std::string Histogram::render(std::size_t width) const {
    std::uint64_t peak = 1;
    for (const auto c : counts_) peak = std::max(peak, c);
    std::ostringstream out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") ";
        out << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return out.str();
}

}  // namespace papc
