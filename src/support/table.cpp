#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace papc {

std::string format_double(double value, int precision) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    PAPC_CHECK(!headers_.empty());
}

Table& Table::row() {
    if (!rows_.empty()) {
        PAPC_CHECK(rows_.back().size() == headers_.size());
    }
    rows_.emplace_back();
    return *this;
}

Table& Table::add(std::string cell) {
    PAPC_CHECK(!rows_.empty());
    PAPC_CHECK(rows_.back().size() < headers_.size());
    rows_.back().push_back(std::move(cell));
    return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }

Table& Table::add(double value, int precision) {
    return add(format_double(value, precision));
}

Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }
Table& Table::add(unsigned value) { return add(std::to_string(value)); }

std::string Table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
        PAPC_CHECK(r.size() == headers_.size());
        for (std::size_t c = 0; c < r.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].size());
        }
    }
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            out << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        out << " |\n";
    };
    emit_row(headers_);
    out << "|";
    for (const std::size_t w : widths) {
        out << std::string(w + 2, '-') << "|";
    }
    out << "\n";
    for (const auto& r : rows_) emit_row(r);
    return out.str();
}

void Table::print(std::ostream& out) const { out << render(); }

}  // namespace papc
