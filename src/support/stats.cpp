#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace papc {

void RunningStat::add(double x) {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStat::variance() const {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return min_; }

double RunningStat::max() const { return max_; }

double RunningStat::sem() const {
    if (count_ < 2) return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStat::merge(const RunningStat& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
    PAPC_CHECK(!sorted.empty());
    PAPC_CHECK(q >= 0.0 && q <= 1.0);
    if (sorted.size() == 1) return sorted.front();
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> samples, double q) {
    std::sort(samples.begin(), samples.end());
    return quantile_sorted(samples, q);
}

Summary summarize(std::vector<double> samples) {
    Summary s;
    s.count = samples.size();
    if (samples.empty()) return s;
    std::sort(samples.begin(), samples.end());
    RunningStat rs;
    for (const double x : samples) rs.add(x);
    s.mean = rs.mean();
    s.stddev = rs.stddev();
    s.min = samples.front();
    s.max = samples.back();
    s.p10 = quantile_sorted(samples, 0.10);
    s.p50 = quantile_sorted(samples, 0.50);
    s.p90 = quantile_sorted(samples, 0.90);
    s.p99 = quantile_sorted(samples, 0.99);
    return s;
}

}  // namespace papc
