#pragma once

/// \file math.hpp
/// Small numeric helpers shared by the schedule and analysis modules.

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace papc {

/// Natural-log domain addition: returns ln(e^a + e^b) without overflow.
/// Used to evaluate ln(alpha^(2^i) + k - 1) where alpha^(2^i) overflows
/// double for i >= ~10.
inline double log_add_exp(double a, double b) {
    if (std::isinf(a) && a < 0) return b;
    if (std::isinf(b) && b < 0) return a;
    const double hi = std::max(a, b);
    const double lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

/// log base 2.
inline double log2d(double x) { return std::log2(x); }

/// Integer ceil(log2(x)) for x >= 1.
inline int ceil_log2(std::uint64_t x) {
    int bits = 0;
    std::uint64_t v = 1;
    while (v < x) {
        v <<= 1U;
        ++bits;
    }
    return bits;
}

/// Clamp helper mirroring std::clamp but tolerant of lo > hi caused by
/// degenerate parameter combinations (returns lo in that case).
inline double clamp_safe(double x, double lo, double hi) {
    if (hi < lo) return lo;
    return std::clamp(x, lo, hi);
}

/// True when |a - b| <= tol * max(1, |a|, |b|).
inline bool approx_equal(double a, double b, double tol = 1e-9) {
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= tol * scale;
}

}  // namespace papc
