#include "support/json_writer.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace papc {

namespace {
constexpr std::size_t kIndentWidth = 2;
}  // namespace

void JsonWriter::indent() {
    out_ += '\n';
    out_.append(stack_.size() * kIndentWidth, ' ');
}

void JsonWriter::prepare_for_value() {
    if (stack_.empty()) {
        // Root context: exactly one value allowed (checked in str()).
        ++root_values_;
        return;
    }
    Frame& frame = stack_.back();
    if (frame.is_object) {
        // A bare value inside an object is only legal right after key().
        PAPC_CHECK(!frame.expects_key);
        frame.expects_key = true;
        return;
    }
    if (frame.count > 0) out_ += ',';
    indent();
    ++frame.count;
}

void JsonWriter::key(const std::string& name) {
    PAPC_CHECK(!stack_.empty() && stack_.back().is_object);
    Frame& frame = stack_.back();
    PAPC_CHECK(frame.expects_key);
    if (frame.count > 0) out_ += ',';
    indent();
    ++frame.count;
    frame.expects_key = false;
    raw(escape(name));
    raw(": ");
}

void JsonWriter::begin_object() {
    prepare_for_value();
    raw("{");
    stack_.push_back(Frame{true, true, 0});
}

void JsonWriter::end_object() {
    PAPC_CHECK(!stack_.empty() && stack_.back().is_object);
    PAPC_CHECK(stack_.back().expects_key);  // no dangling key
    const std::size_t members = stack_.back().count;
    stack_.pop_back();
    if (members > 0) indent();
    raw("}");
}

void JsonWriter::begin_array() {
    prepare_for_value();
    raw("[");
    stack_.push_back(Frame{false, false, 0});
}

void JsonWriter::end_array() {
    PAPC_CHECK(!stack_.empty() && !stack_.back().is_object);
    const std::size_t elements = stack_.back().count;
    stack_.pop_back();
    if (elements > 0) indent();
    raw("]");
}

void JsonWriter::value(const std::string& text) {
    prepare_for_value();
    raw(escape(text));
}

void JsonWriter::value(const char* text) { value(std::string(text)); }

void JsonWriter::value(double number) {
    prepare_for_value();
    raw(format_double(number));
}

void JsonWriter::value(bool boolean) {
    prepare_for_value();
    raw(boolean ? "true" : "false");
}

void JsonWriter::value(std::uint64_t number) {
    prepare_for_value();
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, number);
    raw(buffer);
}

void JsonWriter::value(std::int64_t number) {
    prepare_for_value();
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRId64, number);
    raw(buffer);
}

void JsonWriter::null_value() {
    prepare_for_value();
    raw("null");
}

std::string JsonWriter::str() const {
    PAPC_CHECK(stack_.empty());
    PAPC_CHECK(root_values_ == 1);
    return out_ + "\n";
}

std::string JsonWriter::escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (const char c : text) {
        const auto byte = static_cast<unsigned char>(c);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (byte < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", byte);
                    out += buffer;
                } else {
                    out += c;  // UTF-8 passes through unchanged
                }
        }
    }
    out += '"';
    return out;
}

std::string JsonWriter::format_double(double number) {
    if (!std::isfinite(number)) return "null";
    // Shortest precision in {15, 16, 17} digits that round-trips: 15 keeps
    // human-friendly forms (0.1 stays "0.1"), 17 is always exact.
    char buffer[64];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision, number);
        if (std::strtod(buffer, nullptr) == number) break;
    }
    return buffer;
}

}  // namespace papc
