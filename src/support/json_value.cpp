#include "support/json_value.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace papc {

JsonValue JsonValue::make_bool(bool v) {
    JsonValue out;
    out.type_ = Type::kBool;
    out.bool_ = v;
    return out;
}

JsonValue JsonValue::make_number(double v) {
    JsonValue out;
    out.type_ = Type::kNumber;
    out.number_ = v;
    return out;
}

JsonValue JsonValue::make_string(std::string v) {
    JsonValue out;
    out.type_ = Type::kString;
    out.string_ = std::move(v);
    return out;
}

JsonValue JsonValue::make_array() {
    JsonValue out;
    out.type_ = Type::kArray;
    return out;
}

JsonValue JsonValue::make_object() {
    JsonValue out;
    out.type_ = Type::kObject;
    return out;
}

bool JsonValue::as_bool() const {
    PAPC_CHECK(is_bool());
    return bool_;
}

double JsonValue::as_number() const {
    PAPC_CHECK(is_number());
    return number_;
}

const std::string& JsonValue::as_string() const {
    PAPC_CHECK(is_string());
    return string_;
}

std::size_t JsonValue::size() const {
    PAPC_CHECK(is_array() || is_object());
    return is_array() ? elements_.size() : members_.size();
}

const JsonValue& JsonValue::operator[](std::size_t i) const {
    PAPC_CHECK(is_array() && i < elements_.size());
    return elements_[i];
}

const std::vector<JsonValue>& JsonValue::elements() const {
    PAPC_CHECK(is_array());
    return elements_;
}

void JsonValue::append(JsonValue element) {
    PAPC_CHECK(is_array());
    elements_.push_back(std::move(element));
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
    PAPC_CHECK(is_object());
    return members_;
}

const JsonValue* JsonValue::find(const std::string& name) const {
    PAPC_CHECK(is_object());
    for (const auto& [key, value] : members_) {
        if (key == name) return &value;
    }
    return nullptr;
}

const JsonValue& JsonValue::at(const std::string& name) const {
    const JsonValue* found = find(name);
    PAPC_CHECK(found != nullptr);
    return *found;
}

void JsonValue::set(std::string name, JsonValue value) {
    PAPC_CHECK(is_object());
    members_.emplace_back(std::move(name), std::move(value));
}

double JsonValue::number_or(const std::string& name, double fallback) const {
    const JsonValue* found = find(name);
    if (found == nullptr || found->is_null()) return fallback;
    return found->as_number();
}

namespace {

constexpr std::size_t kMaxDepth = 256;

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonParseResult run() {
        JsonParseResult out;
        out.value = parse_value(0);
        if (!error_.empty()) {
            out.error = error_;
            return out;
        }
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters after document");
        out.error = error_;
        return out;
    }

private:
    void fail(const std::string& message) {
        if (error_.empty()) {
            error_ = "offset " + std::to_string(pos_) + ": " + message;
        }
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    [[nodiscard]] bool consume(char expected) {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    [[nodiscard]] bool consume_literal(const char* literal) {
        std::size_t i = 0;
        while (literal[i] != '\0') {
            if (pos_ + i >= text_.size() || text_[pos_ + i] != literal[i]) {
                return false;
            }
            ++i;
        }
        pos_ += i;
        return true;
    }

    JsonValue parse_value(std::size_t depth) {
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return JsonValue();
        }
        skip_whitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return JsonValue();
        }
        const char c = text_[pos_];
        if (c == '{') return parse_object(depth);
        if (c == '[') return parse_array(depth);
        if (c == '"') return JsonValue::make_string(parse_string());
        if (consume_literal("null")) return JsonValue::make_null();
        if (consume_literal("true")) return JsonValue::make_bool(true);
        if (consume_literal("false")) return JsonValue::make_bool(false);
        return parse_number();
    }

    JsonValue parse_object(std::size_t depth) {
        JsonValue out = JsonValue::make_object();
        ++pos_;  // '{'
        skip_whitespace();
        if (consume('}')) return out;
        for (;;) {
            skip_whitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return out;
            }
            std::string key = parse_string();
            if (!error_.empty()) return out;
            skip_whitespace();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return out;
            }
            out.set(std::move(key), parse_value(depth + 1));
            if (!error_.empty()) return out;
            skip_whitespace();
            if (consume(',')) continue;
            if (consume('}')) return out;
            fail("expected ',' or '}' in object");
            return out;
        }
    }

    JsonValue parse_array(std::size_t depth) {
        JsonValue out = JsonValue::make_array();
        ++pos_;  // '['
        skip_whitespace();
        if (consume(']')) return out;
        for (;;) {
            out.append(parse_value(depth + 1));
            if (!error_.empty()) return out;
            skip_whitespace();
            if (consume(',')) continue;
            if (consume(']')) return out;
            fail("expected ',' or ']' in array");
            return out;
        }
    }

    std::string parse_string() {
        std::string out;
        ++pos_;  // opening '"'
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char escape = text_[pos_++];
            switch (escape) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    const unsigned code = parse_hex4();
                    if (!error_.empty()) return out;
                    append_utf8(out, code);
                    break;
                }
                default:
                    fail("invalid escape sequence");
                    return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    unsigned parse_hex4() {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) {
                fail("truncated \\u escape");
                return 0;
            }
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                fail("invalid \\u escape digit");
                return 0;
            }
        }
        return code;
    }

    /// Encodes a BMP code point as UTF-8 (surrogate pairs are passed
    /// through as two separate 3-byte encodings — fine for the identifiers
    /// and metric names this library emits).
    static void append_utf8(std::string& out, unsigned code) {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        const std::size_t digits_start = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
            ++pos_;
        }
        if (pos_ == digits_start) {
            pos_ = start;
            fail("expected a value");
            return JsonValue();
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            const std::size_t frac_start = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
            if (pos_ == frac_start) {
                fail("expected digits after decimal point");
                return JsonValue();
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            const std::size_t exp_start = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
            }
            if (pos_ == exp_start) {
                fail("expected digits in exponent");
                return JsonValue();
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::string error_;
};

}  // namespace

JsonParseResult parse_json(const std::string& text) {
    return Parser(text).run();
}

}  // namespace papc
