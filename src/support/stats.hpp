#pragma once

/// \file stats.hpp
/// Online and batch statistics used by the experiment harness.

#include <cstddef>
#include <vector>

namespace papc {

/// Welford's online mean/variance accumulator.
class RunningStat {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    /// Unbiased sample variance; 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    /// Standard error of the mean; 0 for fewer than two samples.
    [[nodiscard]] double sem() const;

    void merge(const RunningStat& other);

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Batch summary of a sample vector: mean, stddev, min/max and quantiles.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p10 = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/// Computes a Summary. The input is copied and sorted internally.
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Linear-interpolation quantile of a *sorted* sample, q in [0, 1].
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

/// Convenience: quantile of an unsorted sample (copies and sorts).
[[nodiscard]] double quantile(std::vector<double> samples, double q);

}  // namespace papc
