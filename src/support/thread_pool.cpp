#include "support/thread_pool.hpp"

#include "support/check.hpp"

namespace papc::support {

ThreadPool::ThreadPool(std::size_t threads) {
    PAPC_CHECK(threads >= 1);
    workers_.reserve(threads - 1);
    for (std::size_t w = 1; w < threads; ++w) {
        workers_.emplace_back([this, w] { worker_loop(w); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
    if (count == 0) return;
    if (workers_.empty() || count == 1) {
        for (std::size_t task = 0; task < count; ++task) fn(task, 0);
        return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->count = count;
    job->tasks_remaining = count;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        PAPC_CHECK(job_ == nullptr);  // not reentrant
        job_ = job;
        ++job_generation_;
    }
    work_ready_.notify_all();
    drain(*job, /*worker=*/0);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        job_done_.wait(lock, [&job] { return job->tasks_remaining == 0; });
        job_ = nullptr;
    }
}

/// Pulls tasks off the job's cursor until it is exhausted. A worker that
/// arrives after exhaustion (or for an already-finished job) breaks out
/// on its first fetch and reports nothing.
void ThreadPool::drain(Job& job, std::size_t worker) {
    std::size_t done = 0;
    for (;;) {
        const std::size_t task =
            job.next_task.fetch_add(1, std::memory_order_relaxed);
        if (task >= job.count) break;
        (*job.fn)(task, worker);
        ++done;
    }
    if (done > 0) {
        bool last = false;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            job.tasks_remaining -= done;
            last = job.tasks_remaining == 0;
        }
        if (last) job_done_.notify_all();
    }
}

void ThreadPool::worker_loop(std::size_t worker) {
    std::uint64_t seen_generation = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this, seen_generation] {
                return stopping_ || job_generation_ != seen_generation;
            });
            if (stopping_) return;
            seen_generation = job_generation_;
            job = job_;
        }
        if (job != nullptr) drain(*job, worker);
    }
}

}  // namespace papc::support
