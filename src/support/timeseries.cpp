#include "support/timeseries.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace papc {

void TimeSeries::record(double time, double value) {
    PAPC_CHECK(points_.empty() || time >= points_.back().time);
    points_.push_back({time, value});
}

double TimeSeries::value_at(double time) const {
    PAPC_CHECK(!points_.empty());
    auto it = std::upper_bound(
        points_.begin(), points_.end(), time,
        [](double t, const TimePoint& p) { return t < p.time; });
    if (it == points_.begin()) return points_.front().value;
    return std::prev(it)->value;
}

double TimeSeries::first_time_reaching(double threshold) const {
    for (const auto& p : points_) {
        if (p.value >= threshold) return p.time;
    }
    return -1.0;
}

TimeSeries TimeSeries::downsample(std::size_t max_points) const {
    PAPC_CHECK(max_points >= 2);
    TimeSeries out(name_);
    if (points_.size() <= max_points) {
        out.points_ = points_;
        return out;
    }
    const double stride = static_cast<double>(points_.size() - 1) /
                          static_cast<double>(max_points - 1);
    for (std::size_t i = 0; i < max_points; ++i) {
        // Pin the final slot to the true last sample: the float multiply
        // can truncate just below size-1 (e.g. 99/47 * 47 -> 98.999...).
        const std::size_t idx =
            i + 1 == max_points
                ? points_.size() - 1
                : static_cast<std::size_t>(stride * static_cast<double>(i));
        out.points_.push_back(points_[std::min(idx, points_.size() - 1)]);
    }
    return out;
}

}  // namespace papc
