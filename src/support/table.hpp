#pragma once

/// \file table.hpp
/// Aligned console tables used by the benchmark harness to print paper-style
/// result rows.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace papc {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision. Rendered with a header rule and right-aligned numbers.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Starts a new row; subsequent add_* calls fill it left to right.
    Table& row();

    Table& add(std::string cell);
    Table& add(const char* cell);
    Table& add(double value, int precision = 3);
    Table& add(std::uint64_t value);
    Table& add(std::int64_t value);
    Table& add(int value);
    Table& add(unsigned value);

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
    [[nodiscard]] std::size_t column_count() const { return headers_.size(); }

    /// Renders the table; every row must be fully populated.
    [[nodiscard]] std::string render() const;

    /// Renders directly to a stream.
    void print(std::ostream& out) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision into a string.
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace papc
