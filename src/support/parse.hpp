#pragma once

/// \file parse.hpp
/// Strict whole-token string-to-number/bool parsing shared by every layer
/// that consumes user-typed values (Scenario fields, sweep-axis ranges,
/// config files). Unlike the lenient Args getters (which fall back to a
/// default), these reject trailing garbage, empty tokens and — for the
/// unsigned form — negative inputs that strtoull would silently wrap, so
/// callers can turn a typo into an error instead of a default.

#include <cstdint>
#include <string>

namespace papc {

/// Parses a full non-negative decimal token; false on empty input,
/// trailing garbage, or a leading '-'.
[[nodiscard]] bool try_parse_u64(const std::string& text, std::uint64_t* out);

/// Parses a full signed decimal token; false on empty input or garbage.
[[nodiscard]] bool try_parse_i64(const std::string& text, std::int64_t* out);

/// Parses a full floating-point token; false on empty input or garbage.
[[nodiscard]] bool try_parse_double(const std::string& text, double* out);

/// Parses a boolean: "" / "1" / "true" / "yes" / "on" are true (a bare
/// flag means "enable"), "0" / "false" / "no" / "off" are false; anything
/// else is rejected.
[[nodiscard]] bool try_parse_bool(const std::string& text, bool* out);

}  // namespace papc
