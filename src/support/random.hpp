#pragma once

/// \file random.hpp
/// Deterministic random-number generation for the whole library.
///
/// All stochastic behaviour in papc flows from a single 64-bit seed through
/// splitmix64 (for state expansion / stream derivation) into xoshiro256**.
/// Samplers are implemented by hand rather than with `std::` distributions so
/// that a given seed produces identical runs on every platform and standard
/// library — reproducibility of experiments is a core requirement.

#include <array>
#include <cstdint>
#include <vector>

namespace papc {

/// splitmix64 step; used to expand seeds and derive independent streams.
std::uint64_t splitmix64(std::uint64_t& state);

/// Rejection threshold of Lemire's unbiased multiply-shift for range n:
/// raw words whose low product half falls below it must be redrawn.
/// Involves a 64-bit division — callers hoist it out of their draw loops
/// (for loop-invariant n the compiler does it for free).
inline std::uint64_t lemire_threshold(std::uint64_t n) {
    return (0ULL - n) % n;
}

/// Lemire's unbiased multiply-shift: maps raw word `x` into [0, n) via
/// `index`, or returns false when `x` falls in the rejected band (the
/// caller retries with the next raw word). `threshold` must be
/// lemire_threshold(n); since it is < n, the accept test is one compare.
/// This is the single definition shared by the scalar
/// (`Rng::uniform_index`), batched (`Rng::uniform_indices`) and buffered
/// (`sync::BufferedSampler`) samplers — the bit-identical determinism
/// contract between them depends on this logic never diverging.
inline bool lemire_map(std::uint64_t x, std::uint64_t n,
                       std::uint64_t threshold, std::uint64_t& index) {
    const __uint128_t m =
        static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    if (static_cast<std::uint64_t>(m) < threshold) return false;  // rejected
    index = static_cast<std::uint64_t>(m >> 64U);
    return true;
}

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, 256-bit state.
class Rng {
public:
    /// Seeds the four state words via splitmix64 from a single seed.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /// Derives a statistically independent generator from this one. The
    /// child is *reseeded* (two parent outputs folded through splitmix64
    /// into a fresh 256-bit state) — this is NOT a xoshiro jump, so
    /// non-overlap of the two sequences is probabilistic, not structural:
    /// two random 256-bit states collide on a window of length L with
    /// probability ~ L·2^-256, which is negligible for any simulation but
    /// not a hard guarantee. The parent advances by two draws, so repeated
    /// splits give distinct children. tests/support/random_test.cpp pins
    /// the parent/child non-overlap empirically on 1e6 draws.
    [[nodiscard]] Rng split();

    /// Derives a labeled, statistically independent generator as a pure
    /// function of (current state, a, b): the parent does NOT advance, so
    /// the same labels always yield the same stream. This is the sharded
    /// sync kernels' determinism primitive — shard s of round r draws from
    /// substream(r, s), which depends only on the parent's state at round
    /// start and the labels, never on which thread runs the shard or in
    /// what order (the round driver advances the parent once per round
    /// itself, on the driving thread — see ShardedRoundDriver). Like
    /// split(), the child is a reseed: state and labels fold into ONE
    /// 64-bit value that seeds the child, so two label pairs collide on
    /// the entire stream with probability ~2^-64 (a birthday bound of
    /// ~pairs^2 / 2^65 per run — fine for shards x rounds scales, but a
    /// 64-bit bottleneck, not a 2^-256 guarantee). Distinct labels
    /// giving distinct streams is pinned in
    /// tests/support/random_test.cpp.
    [[nodiscard]] Rng substream(std::uint64_t a, std::uint64_t b) const;

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Fills dst[0..count) with the next `count` outputs of the generator —
    /// the same values, in the same order, as `count` calls to next_u64()
    /// (the state is kept in registers across the block, which is the whole
    /// point). dst may be null when count == 0.
    void fill_u64(std::uint64_t* dst, std::size_t count);

    /// Fills dst[0..count) with uniform indices in [0, n) — bit-identical
    /// to `count` calls of uniform_index(n), including the raw words burned
    /// by Lemire rejections, so the generator state afterwards matches the
    /// scalar sequence exactly. This is the sync-round kernels' batch
    /// primitive: one tight multiply-shift loop over blocks of raw words.
    void uniform_indices(std::uint64_t n, std::uint64_t* dst,
                         std::size_t count);

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
    /// multiply-shift rejection method.
    std::uint64_t uniform_index(std::uint64_t n);

    /// Same with the rejection threshold precomputed by the caller
    /// (`threshold` must be lemire_threshold(n)); uniform_index(n)
    /// delegates here. Hot per-draw loops hoist the 64-bit division this
    /// way when the optimizer cannot prove n loop-invariant across an
    /// inlined lambda chain (BufferedSampler has the matching overload
    /// for the sharded kernels' inline-draw paths).
    std::uint64_t uniform_index(std::uint64_t n, std::uint64_t threshold) {
        std::uint64_t index;
        while (!lemire_map(next_u64(), n, threshold, index)) {
        }
        return index;
    }

    /// Uniform integer in [0, n) \ {excluded}. Requires n >= 2 and
    /// excluded < n. One draw (shift-over-hole), no rejection loop — the
    /// peer-sampling primitive shared by every engine family.
    std::uint64_t uniform_index_excluding(std::uint64_t n, std::uint64_t excluded);

    /// Bernoulli trial with success probability p.
    bool bernoulli(double p);

    /// Exponential with given rate (mean 1/rate). Requires rate > 0.
    double exponential(double rate);

    /// Standard normal via Box–Muller (deterministic, no cached spare).
    double normal();

    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Gamma(shape, scale) via Marsaglia–Tsang; shape > 0, scale > 0.
    double gamma(double shape, double scale);

    /// Weibull(shape, scale) via inversion.
    double weibull(double shape, double scale);

    /// Log-normal: exp(Normal(mu, sigma)).
    double lognormal(double mu, double sigma);

    /// Poisson(mean) — Knuth multiplication for small means, PTRS-style
    /// normal-approximation rejection fallback for large means.
    std::uint64_t poisson(double mean);

    /// Binomial(n, p) — exact by inversion for small n·p, normal
    /// approximation with continuity correction clamped to [0, n] otherwise.
    std::uint64_t binomial(std::uint64_t n, double p);

    /// Samples an index in [0, weights.size()) proportionally to weights.
    /// Linear scan; intended for small weight vectors (k opinions).
    std::size_t discrete(const std::vector<double>& weights);

    /// Fisher–Yates shuffle of an index range stored in `v`.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(uniform_index(i));
            std::swap(v[i - 1], v[j]);
        }
    }

private:
    std::array<std::uint64_t, 4> state_;
};

/// Derives a per-repetition seed from a base seed and a repetition index.
/// Stable across versions: hash-mixes the pair through splitmix64.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

}  // namespace papc
