#include "opinion/assignment.hpp"

#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace papc {

namespace {

/// Expands per-opinion counts into a shuffled opinion vector.
Assignment expand_counts(const std::vector<std::size_t>& counts, Rng& rng) {
    Assignment a;
    a.num_opinions = static_cast<std::uint32_t>(counts.size());
    std::size_t n = 0;
    for (const std::size_t c : counts) n += c;
    a.opinions.reserve(n);
    for (std::size_t j = 0; j < counts.size(); ++j) {
        a.opinions.insert(a.opinions.end(), counts[j], static_cast<Opinion>(j));
    }
    rng.shuffle(a.opinions);
    return a;
}

/// Turns target fractions into integer counts summing to n; the largest
/// fraction absorbs the rounding remainder so the bias never *shrinks*.
std::vector<std::size_t> fractions_to_counts(std::size_t n,
                                             const std::vector<double>& fractions) {
    std::vector<std::size_t> counts(fractions.size(), 0);
    std::size_t assigned = 0;
    std::size_t argmax = 0;
    for (std::size_t j = 0; j < fractions.size(); ++j) {
        counts[j] = static_cast<std::size_t>(std::floor(fractions[j] * static_cast<double>(n)));
        assigned += counts[j];
        if (fractions[j] > fractions[argmax]) argmax = j;
    }
    PAPC_CHECK(assigned <= n);
    counts[argmax] += n - assigned;
    return counts;
}

}  // namespace

Assignment make_biased_plurality(std::size_t n, std::uint32_t k, double alpha, Rng& rng) {
    PAPC_CHECK(n > 0);
    PAPC_CHECK(k >= 1);
    PAPC_CHECK(alpha >= 1.0);
    std::vector<double> fractions(k, 0.0);
    const double denom = alpha + static_cast<double>(k) - 1.0;
    fractions[0] = alpha / denom;
    for (std::uint32_t j = 1; j < k; ++j) {
        fractions[j] = 1.0 / denom;
    }
    return expand_counts(fractions_to_counts(n, fractions), rng);
}

Assignment make_two_front_runners(std::size_t n, std::uint32_t k, double alpha,
                                  double tail_fraction, Rng& rng) {
    PAPC_CHECK(k >= 2);
    PAPC_CHECK(alpha >= 1.0);
    PAPC_CHECK(tail_fraction >= 0.0 && tail_fraction < 1.0);
    if (k == 2) tail_fraction = 0.0;
    const double head = 1.0 - tail_fraction;
    // c0 = α·c1, c0 + c1 = head.
    const double c1 = head / (1.0 + alpha);
    const double c0 = alpha * c1;
    std::vector<double> fractions(k, 0.0);
    fractions[0] = c0;
    fractions[1] = c1;
    for (std::uint32_t j = 2; j < k; ++j) {
        fractions[j] = tail_fraction / static_cast<double>(k - 2);
    }
    return expand_counts(fractions_to_counts(n, fractions), rng);
}

Assignment make_additive_gap(std::size_t n, std::uint32_t k, std::size_t gap, Rng& rng) {
    PAPC_CHECK(k >= 2);
    PAPC_CHECK(gap <= n);
    std::vector<std::size_t> counts(k, (n - gap) / k);
    std::size_t assigned = ((n - gap) / k) * k + gap;
    counts[0] += gap;
    // Distribute the integer remainder to the *tail* opinions so the gap
    // between opinion 0 and opinion 1 is exactly `gap` when possible.
    std::size_t j = k - 1;
    while (assigned < n) {
        ++counts[j];
        ++assigned;
        j = (j == 1) ? k - 1 : j - 1;
        if (k == 2) j = 1;
    }
    return expand_counts(counts, rng);
}

Assignment make_uniform(std::size_t n, std::uint32_t k, Rng& rng) {
    PAPC_CHECK(k >= 1);
    std::vector<std::size_t> counts(k, n / k);
    std::size_t assigned = (n / k) * k;
    std::size_t j = 0;
    while (assigned < n) {
        ++counts[j++];
        ++assigned;
    }
    return expand_counts(counts, rng);
}

Assignment make_zipf(std::size_t n, std::uint32_t k, double s, Rng& rng) {
    PAPC_CHECK(k >= 1);
    PAPC_CHECK(s >= 0.0);
    std::vector<double> fractions(k);
    double total = 0.0;
    for (std::uint32_t j = 0; j < k; ++j) {
        fractions[j] = std::pow(static_cast<double>(j + 1), -s);
        total += fractions[j];
    }
    for (double& f : fractions) f /= total;
    return expand_counts(fractions_to_counts(n, fractions), rng);
}

Assignment make_from_counts(const std::vector<std::size_t>& counts, Rng& rng) {
    PAPC_CHECK(!counts.empty());
    return expand_counts(counts, rng);
}

double theorem1_bias_threshold(std::size_t n, std::uint32_t k) {
    if (k < 2) return 1.0;
    const double nd = static_cast<double>(n);
    const double kd = static_cast<double>(k);
    return 1.0 + kd * std::log2(nd) / std::sqrt(nd) * std::log2(kd);
}

}  // namespace papc
