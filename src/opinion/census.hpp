#pragma once

/// \file census.hpp
/// Population bookkeeping: per-opinion and per-(generation, opinion) counts,
/// and the paper's derived quantities (§2.2):
///   c_{j,i,t}  fraction of color j inside generation i,
///   α_{i,t}    ratio of dominant to second-dominant color in generation i,
///   p_{i,t}    = Σ_j c²_{j,i,t}, the same-color collision probability,
///   g_t(i)     fraction of nodes in generation i.
///
/// GenerationCensus is maintained incrementally by the engines: O(1) per
/// opinion/generation change. Since PR 7 its rows are adaptive: for
/// k <= dense_k (default 64) a generation's counts are a dense k-vector,
/// materialized on first touch; for larger k a generation starts as a
/// sorted (opinion, count) small-map and is promoted to dense once a
/// quarter of its cells are populated — so a run with k = 4096 opinions
/// and a dozen mostly-sparse generations no longer carries
/// generations × k dense rows in RSS. Both representations sit behind
/// the same transition/apply_deltas/stats interface and produce
/// identical results (tests/opinion/sparse_census_test.cpp).
///
/// The init paths (reset/rebuild) take OpinionView — a span-like view —
/// so bit-packed opinion arrays (opinion/packed_array.hpp) seed a census
/// without materializing an unpacked vector<Opinion> copy.

#include <cstdint>
#include <utility>
#include <vector>

#include "opinion/types.hpp"
#include "opinion/view.hpp"

namespace papc {

/// Snapshot statistics of one generation's color distribution.
struct BiasStats {
    Opinion dominant = 0;          ///< color with the largest count
    Opinion runner_up = 0;         ///< second-largest (k >= 2); == dominant for k == 1
    std::uint64_t dominant_count = 0;
    std::uint64_t runner_up_count = 0;
    double alpha = 0.0;            ///< dominant/runner-up ratio; +inf encoded as large
    double collision_probability = 0.0;  ///< p = Σ c², 0 when generation empty
    std::uint64_t total = 0;       ///< nodes in the generation
};

/// Flat census over opinions only (no generations) — used by baselines.
class OpinionCensus {
public:
    OpinionCensus(std::size_t n, std::uint32_t num_opinions);

    /// Initializes from an opinion view (entries may be kUndecided).
    /// vector<Opinion> converts implicitly; packed arrays pass .view().
    void reset(OpinionView opinions);

    /// Records node transition `from` -> `to` (either may be kUndecided).
    void transition(Opinion from, Opinion to);

    /// Applies one per-opinion delta block (plus an undecided delta) in a
    /// single pass — the fused-census commit of the batched round kernels,
    /// equivalent to the corresponding sequence of transition() calls.
    /// Requires deltas.size() == num_opinions().
    void apply_deltas(const std::vector<std::int64_t>& deltas,
                      std::int64_t undecided_delta);

    [[nodiscard]] std::uint64_t count(Opinion j) const;
    [[nodiscard]] std::uint64_t undecided_count() const { return undecided_; }
    [[nodiscard]] std::size_t population() const { return n_; }
    [[nodiscard]] std::uint32_t num_opinions() const;

    /// Stats over decided nodes only.
    [[nodiscard]] BiasStats stats() const;

    /// True when every node is decided and holds `j`.
    [[nodiscard]] bool unanimous(Opinion j) const;

    /// True when some opinion is held by every node.
    [[nodiscard]] bool converged() const;

    /// Fraction of all n nodes holding opinion j.
    [[nodiscard]] double fraction(Opinion j) const;

private:
    std::size_t n_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t undecided_ = 0;
};

/// Census over (generation, opinion) pairs. Generations are dense from 0 to
/// a cap that grows on demand (G* is tiny — O(log log n)).
class GenerationCensus {
public:
    /// Rows with more opinions than this start as sparse small-maps.
    static constexpr std::uint32_t kDefaultDenseK = 64;

    GenerationCensus(std::size_t n, std::uint32_t num_opinions);

    /// Same with an explicit dense-row threshold: rows stay dense for
    /// k <= dense_k. The equivalence tests force both representations on
    /// one workload this way; dense_k = 0 makes every row start sparse.
    GenerationCensus(std::size_t n, std::uint32_t num_opinions,
                     std::uint32_t dense_k);

    /// All nodes start in generation 0 with the given opinions.
    void reset(OpinionView opinions);

    /// Rebuilds from full per-node generation and opinion sequences.
    void rebuild(const std::vector<Generation>& generations,
                 OpinionView opinions);

    /// Records a node moving (gen_from, op_from) -> (gen_to, op_to).
    void transition(Generation gen_from, Opinion op_from,
                    Generation gen_to, Opinion op_to);

    /// Applies a row-major (generation, opinion) delta block covering
    /// generations [0, rows): deltas[g * num_opinions() + j] is the net
    /// node-count change of (g, j) — the batched kernels' fused-census
    /// commit, equivalent to the corresponding sequence of transition()
    /// calls. Grows the generation cap on demand. Requires
    /// deltas.size() >= rows * k.
    void apply_deltas(const std::vector<std::int64_t>& deltas,
                      Generation rows);

    [[nodiscard]] std::size_t population() const { return n_; }
    [[nodiscard]] std::uint32_t num_opinions() const { return k_; }

    /// Highest generation that currently holds at least one node.
    [[nodiscard]] Generation highest_populated() const;

    /// Number of nodes in generation i (0 for never-populated generations).
    [[nodiscard]] std::uint64_t generation_size(Generation i) const;

    /// g_t(i): fraction of all nodes in generation i.
    [[nodiscard]] double generation_fraction(Generation i) const;

    /// Count of color j within generation i.
    [[nodiscard]] std::uint64_t count(Generation i, Opinion j) const;

    /// Bias statistics of generation i.
    [[nodiscard]] BiasStats stats(Generation i) const;

    /// Bias statistics of the whole population (all generations pooled).
    [[nodiscard]] BiasStats pooled_stats() const;

    /// Number of nodes in generation >= i.
    [[nodiscard]] std::uint64_t size_at_least(Generation i) const;

    /// True when all nodes share one opinion (any generations).
    [[nodiscard]] bool converged() const;

    /// Fraction of all nodes holding opinion j (any generation).
    [[nodiscard]] double opinion_fraction(Opinion j) const;

    /// Nodes holding opinion j across all generations — O(1).
    [[nodiscard]] std::uint64_t opinion_total(Opinion j) const;

    /// True when generation i currently uses the sparse representation
    /// (introspection for tests and the memory-anatomy bench counters).
    [[nodiscard]] bool row_is_sparse(Generation i) const;

    /// Heap bytes held by the row storage (RSS accounting).
    [[nodiscard]] std::size_t memory_bytes() const;

private:
    /// One generation's counts: dense k-vector once materialized, else a
    /// sorted (opinion, count) small-map holding only non-zero cells.
    /// Both vectors empty = never-touched row (all counts zero).
    struct Row {
        std::vector<std::uint64_t> dense;
        std::vector<std::pair<Opinion, std::uint64_t>> sparse;
    };

    void ensure_generation(Generation i);
    void refresh_highest(Generation candidate);
    void row_add(Row& row, Opinion j, std::int64_t delta);
    [[nodiscard]] std::uint64_t row_get(const Row& row, Opinion j) const;
    void promote_row(Row& row) const;
    [[nodiscard]] BiasStats row_stats(const Row& row) const;

    std::size_t n_;
    std::uint32_t k_;
    std::uint32_t dense_k_;
    /// Per-generation rows; rows() = gen_totals_.size() grows by doubling.
    std::vector<Row> rows_;
    std::vector<std::uint64_t> gen_totals_;           ///< [generation]
    std::vector<std::uint64_t> opinion_totals_;       ///< [opinion]
    Generation highest_populated_ = 0;                ///< cached; O(1) reads
};

/// Computes BiasStats from a raw count vector (helper shared by both
/// censuses; exposed for tests).
[[nodiscard]] BiasStats stats_from_counts(const std::vector<std::uint64_t>& counts);

/// Same, over a contiguous count row (used for the flat generation rows).
[[nodiscard]] BiasStats stats_from_counts(const std::uint64_t* counts,
                                          std::size_t k);

/// Remark 2 lower bound: p >= (α² + k - 1)/(α + k - 1)².
[[nodiscard]] double collision_probability_lower_bound(double alpha, std::uint32_t k);

}  // namespace papc
