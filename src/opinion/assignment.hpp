#pragma once

/// \file assignment.hpp
/// Initial-opinion workload generators (§2.1). A workload determines the
/// vector of initial opinions; the key parameter is the multiplicative bias
/// α = c_a / c_b between the largest and second-largest opinion.

#include <cstdint>
#include <vector>

#include "opinion/types.hpp"
#include "support/random.hpp"

namespace papc {

/// An initial assignment: opinions[v] is node v's starting color.
struct Assignment {
    std::vector<Opinion> opinions;
    std::uint32_t num_opinions = 0;

    [[nodiscard]] std::size_t size() const { return opinions.size(); }
};

/// Builds the paper's canonical workload: opinion 0 holds a multiplicative
/// bias `alpha` over each of the remaining k-1 opinions, which share the
/// rest equally: c_0 = α/(α + k - 1), c_j = 1/(α + k - 1) for j > 0.
/// This is exactly the worst case used in Remark 2. Counts are rounded to
/// integers with the dominant opinion absorbing the remainder; node order
/// is shuffled.
[[nodiscard]] Assignment make_biased_plurality(std::size_t n, std::uint32_t k,
                                               double alpha, Rng& rng);

/// Two leading opinions with multiplicative bias `alpha` between them; the
/// remaining k-2 opinions share fraction `tail_fraction` equally. Models the
/// "close race with background noise" configurations from related work.
[[nodiscard]] Assignment make_two_front_runners(std::size_t n, std::uint32_t k,
                                                double alpha, double tail_fraction,
                                                Rng& rng);

/// Opinion 0 leads opinion 1 by an *additive* gap of `gap` nodes; the rest
/// of the mass is split equally among all k opinions first. Related work
/// (e.g. [AAE08], [BFGK16]) states bias additively; this generator allows
/// direct comparisons.
[[nodiscard]] Assignment make_additive_gap(std::size_t n, std::uint32_t k,
                                           std::size_t gap, Rng& rng);

/// All k opinions as equal as integer rounding allows (α = 1; consensus on
/// the plurality is not guaranteed — used for tie-breaking experiments).
[[nodiscard]] Assignment make_uniform(std::size_t n, std::uint32_t k, Rng& rng);

/// Zipf(s) popularity: c_j ∝ (j+1)^-s. A realistic skewed workload for the
/// example applications.
[[nodiscard]] Assignment make_zipf(std::size_t n, std::uint32_t k, double s, Rng& rng);

/// Builds an assignment from explicit per-opinion counts (must sum to n).
[[nodiscard]] Assignment make_from_counts(const std::vector<std::size_t>& counts,
                                          Rng& rng);

/// The minimal bias required by Theorem 1: 1 + (k·log2(n)/√n)·log2(k).
/// Degenerates to 1 for k < 2.
[[nodiscard]] double theorem1_bias_threshold(std::size_t n, std::uint32_t k);

}  // namespace papc
