#pragma once

/// \file view.hpp
/// OpinionView: a read-only, span-like view over "n opinions" that both
/// censuses accept for their cold init paths (reset/rebuild). A plain
/// `std::vector<Opinion>` converts implicitly (contiguous fast path);
/// bit-packed stores (opinion/packed_array.hpp) expose a view through a
/// type-erased per-element accessor instead of materializing an unpacked
/// copy — at n = 2^24 that copy alone is 64 MiB, which defeated the point
/// of packing (ISSUE 7 satellite).

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "opinion/types.hpp"

namespace papc {

class OpinionView {
public:
    using AtFn = Opinion (*)(const void* object, std::size_t i);

    /// Contiguous storage (vectors, raw arrays).
    OpinionView(const std::vector<Opinion>& opinions)  // NOLINT(google-explicit-constructor)
        : data_(opinions.data()), size_(opinions.size()) {}
    OpinionView(const Opinion* data, std::size_t size)
        : data_(data), size_(size) {}
    /// Braced literals at call sites (tests): the backing array outlives
    /// the full expression, which is all a by-value view parameter needs.
    /// (GCC's init-list-lifetime warning targets OWNING storage of the
    /// backing array; a view is non-owning by definition, like
    /// string_view's equivalent constructor.)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
    OpinionView(std::initializer_list<Opinion> opinions)  // NOLINT(google-explicit-constructor)
        : data_(opinions.begin()), size_(opinions.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

    /// Type-erased storage: at(object, i) returns element i.
    OpinionView(const void* object, AtFn at, std::size_t size)
        : object_(object), at_(at), size_(size) {}

    [[nodiscard]] std::size_t size() const { return size_; }

    [[nodiscard]] Opinion operator[](std::size_t i) const {
        return data_ != nullptr ? data_[i] : at_(object_, i);
    }

private:
    const Opinion* data_ = nullptr;  ///< non-null: contiguous fast path
    const void* object_ = nullptr;
    AtFn at_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace papc
