#include "opinion/census.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace papc {

BiasStats stats_from_counts(const std::uint64_t* counts, std::size_t k) {
    BiasStats s;
    std::uint64_t total = 0;
    for (std::size_t j = 0; j < k; ++j) total += counts[j];
    s.total = total;
    if (total == 0) return s;

    // Find the two largest counts.
    std::size_t best = 0;
    std::size_t second = k;  // sentinel: unset
    for (std::size_t j = 1; j < k; ++j) {
        if (counts[j] > counts[best]) {
            second = best;
            best = j;
        } else if (second == k || counts[j] > counts[second]) {
            second = j;
        }
    }
    s.dominant = static_cast<Opinion>(best);
    s.dominant_count = counts[best];
    if (second == k) {
        s.runner_up = s.dominant;
        s.runner_up_count = 0;
    } else {
        s.runner_up = static_cast<Opinion>(second);
        s.runner_up_count = counts[second];
    }

    if (s.runner_up_count == 0) {
        s.alpha = std::numeric_limits<double>::infinity();
    } else {
        s.alpha = static_cast<double>(s.dominant_count) /
                  static_cast<double>(s.runner_up_count);
    }

    double p = 0.0;
    const double tot = static_cast<double>(total);
    for (std::size_t j = 0; j < k; ++j) {
        const double f = static_cast<double>(counts[j]) / tot;
        p += f * f;
    }
    s.collision_probability = p;
    return s;
}

BiasStats stats_from_counts(const std::vector<std::uint64_t>& counts) {
    return stats_from_counts(counts.data(), counts.size());
}

double collision_probability_lower_bound(double alpha, std::uint32_t k) {
    PAPC_CHECK(alpha >= 1.0);
    PAPC_CHECK(k >= 1);
    const double kd = static_cast<double>(k);
    const double denom = (alpha + kd - 1.0) * (alpha + kd - 1.0);
    return (alpha * alpha + kd - 1.0) / denom;
}

// ---------------------------------------------------------------- Opinion

OpinionCensus::OpinionCensus(std::size_t n, std::uint32_t num_opinions)
    : n_(n), counts_(num_opinions, 0) {
    PAPC_CHECK(num_opinions >= 1);
}

void OpinionCensus::reset(OpinionView opinions) {
    PAPC_CHECK(opinions.size() == n_);
    for (auto& c : counts_) c = 0;
    undecided_ = 0;
    for (std::size_t v = 0; v < n_; ++v) {
        const Opinion op = opinions[v];
        if (op == kUndecided) {
            ++undecided_;
        } else {
            PAPC_CHECK(op < counts_.size());
            ++counts_[op];
        }
    }
}

void OpinionCensus::transition(Opinion from, Opinion to) {
    if (from == to) return;
    if (from == kUndecided) {
        PAPC_CHECK(undecided_ > 0);
        --undecided_;
    } else {
        PAPC_CHECK(from < counts_.size());
        PAPC_CHECK(counts_[from] > 0);
        --counts_[from];
    }
    if (to == kUndecided) {
        ++undecided_;
    } else {
        PAPC_CHECK(to < counts_.size());
        ++counts_[to];
    }
}

void OpinionCensus::apply_deltas(const std::vector<std::int64_t>& deltas,
                                 std::int64_t undecided_delta) {
    PAPC_CHECK(deltas.size() == counts_.size());
    for (std::size_t j = 0; j < counts_.size(); ++j) {
        const std::int64_t next =
            static_cast<std::int64_t>(counts_[j]) + deltas[j];
        PAPC_CHECK(next >= 0);
        counts_[j] = static_cast<std::uint64_t>(next);
    }
    const std::int64_t undecided =
        static_cast<std::int64_t>(undecided_) + undecided_delta;
    PAPC_CHECK(undecided >= 0);
    undecided_ = static_cast<std::uint64_t>(undecided);
}

std::uint64_t OpinionCensus::count(Opinion j) const {
    PAPC_CHECK(j < counts_.size());
    return counts_[j];
}

std::uint32_t OpinionCensus::num_opinions() const {
    return static_cast<std::uint32_t>(counts_.size());
}

BiasStats OpinionCensus::stats() const { return stats_from_counts(counts_); }

bool OpinionCensus::unanimous(Opinion j) const {
    PAPC_CHECK(j < counts_.size());
    return counts_[j] == n_;
}

bool OpinionCensus::converged() const {
    for (const auto c : counts_) {
        if (c == n_) return true;
    }
    return false;
}

double OpinionCensus::fraction(Opinion j) const {
    PAPC_CHECK(j < counts_.size());
    return static_cast<double>(counts_[j]) / static_cast<double>(n_);
}

// ------------------------------------------------------------- Generation

GenerationCensus::GenerationCensus(std::size_t n, std::uint32_t num_opinions)
    : GenerationCensus(n, num_opinions, kDefaultDenseK) {}

GenerationCensus::GenerationCensus(std::size_t n, std::uint32_t num_opinions,
                                   std::uint32_t dense_k)
    : n_(n), k_(num_opinions), dense_k_(dense_k),
      opinion_totals_(num_opinions, 0) {
    PAPC_CHECK(num_opinions >= 1);
    ensure_generation(0);
}

void GenerationCensus::ensure_generation(Generation i) {
    if (i < gen_totals_.size()) return;
    // Grow by doubling so the row table is reallocated O(log G*) times no
    // matter how generations arrive. Fresh rows are empty (two null
    // vectors) until first touched.
    const std::size_t rows =
        std::max<std::size_t>(static_cast<std::size_t>(i) + 1,
                              2 * gen_totals_.size());
    rows_.resize(rows);
    gen_totals_.resize(rows, 0);
}

/// Re-derives the cached highest populated generation after rows up to
/// `candidate` may have gained or lost their last node.
void GenerationCensus::refresh_highest(Generation candidate) {
    Generation h = std::max(highest_populated_, candidate);
    if (h >= gen_totals_.size()) h = static_cast<Generation>(gen_totals_.size() - 1);
    while (h > 0 && gen_totals_[h] == 0) --h;
    highest_populated_ = h;
}

void GenerationCensus::promote_row(Row& row) const {
    std::vector<std::uint64_t> dense(k_, 0);
    for (const auto& [op, count] : row.sparse) dense[op] = count;
    row.dense.swap(dense);
    row.sparse.clear();
    row.sparse.shrink_to_fit();
}

void GenerationCensus::row_add(Row& row, Opinion j, std::int64_t delta) {
    if (delta == 0) return;
    if (row.dense.empty() && k_ <= dense_k_) row.dense.assign(k_, 0);
    if (!row.dense.empty()) {
        const std::int64_t next =
            static_cast<std::int64_t>(row.dense[j]) + delta;
        PAPC_CHECK(next >= 0);
        row.dense[j] = static_cast<std::uint64_t>(next);
        return;
    }
    const auto it = std::lower_bound(
        row.sparse.begin(), row.sparse.end(), j,
        [](const auto& entry, Opinion op) { return entry.first < op; });
    if (it != row.sparse.end() && it->first == j) {
        const std::int64_t next =
            static_cast<std::int64_t>(it->second) + delta;
        PAPC_CHECK(next >= 0);
        if (next == 0) {
            row.sparse.erase(it);  // entries hold strictly positive counts
        } else {
            it->second = static_cast<std::uint64_t>(next);
        }
        return;
    }
    PAPC_CHECK(delta > 0);
    row.sparse.insert(it, {j, static_cast<std::uint64_t>(delta)});
    // Promote at a quarter density: well before the 16-byte entries reach
    // the 8 * k dense footprint, and early enough that a generation the
    // whole population is flowing through does its per-node updates on the
    // O(1) dense path rather than the insert-shifting small-map.
    if (row.sparse.size() * 4 >= k_) promote_row(row);
}

std::uint64_t GenerationCensus::row_get(const Row& row, Opinion j) const {
    if (!row.dense.empty()) return row.dense[j];
    const auto it = std::lower_bound(
        row.sparse.begin(), row.sparse.end(), j,
        [](const auto& entry, Opinion op) { return entry.first < op; });
    return (it != row.sparse.end() && it->first == j) ? it->second : 0;
}

BiasStats GenerationCensus::row_stats(const Row& row) const {
    if (!row.dense.empty()) return stats_from_counts(row.dense.data(), k_);
    const auto& entries = row.sparse;
    BiasStats s;
    if (entries.empty()) return s;
    std::uint64_t total = 0;
    for (const auto& [op, count] : entries) total += count;
    s.total = total;

    // Two largest entries, earliest-opinion tie preference — entries are
    // sorted by opinion, so this scan ranks exactly like the dense scan
    // restricted to the non-zero cells.
    std::size_t best = 0;
    std::size_t second = entries.size();  // sentinel: unset
    for (std::size_t i = 1; i < entries.size(); ++i) {
        if (entries[i].second > entries[best].second) {
            second = best;
            best = i;
        } else if (second == entries.size() ||
                   entries[i].second > entries[second].second) {
            second = i;
        }
    }
    s.dominant = entries[best].first;
    s.dominant_count = entries[best].second;
    if (second == entries.size()) {
        // Single non-zero cell. The dense scan's runner-up is then the
        // lowest-index zero cell != dominant (count 0), or the dominant
        // itself when k == 1.
        s.runner_up = (k_ >= 2 && s.dominant == 0) ? 1
                      : (k_ >= 2 ? 0 : s.dominant);
        s.runner_up_count = 0;
    } else {
        s.runner_up = entries[second].first;
        s.runner_up_count = entries[second].second;
    }

    if (s.runner_up_count == 0) {
        s.alpha = std::numeric_limits<double>::infinity();
    } else {
        s.alpha = static_cast<double>(s.dominant_count) /
                  static_cast<double>(s.runner_up_count);
    }

    double p = 0.0;
    const double tot = static_cast<double>(total);
    for (const auto& [op, count] : entries) {
        const double f = static_cast<double>(count) / tot;
        p += f * f;
    }
    s.collision_probability = p;
    return s;
}

void GenerationCensus::reset(OpinionView opinions) {
    PAPC_CHECK(opinions.size() == n_);
    rows_.clear();
    gen_totals_.clear();
    ensure_generation(0);
    for (auto& t : opinion_totals_) t = 0;
    Row& row0 = rows_[0];
    for (std::size_t v = 0; v < n_; ++v) {
        const Opinion op = opinions[v];
        PAPC_CHECK(op < k_);
        row_add(row0, op, 1);
        ++opinion_totals_[op];
    }
    gen_totals_[0] = n_;
    highest_populated_ = 0;
}

void GenerationCensus::rebuild(const std::vector<Generation>& generations,
                               OpinionView opinions) {
    PAPC_CHECK(generations.size() == n_);
    PAPC_CHECK(opinions.size() == n_);
    rows_.clear();
    gen_totals_.clear();
    ensure_generation(0);
    for (auto& t : opinion_totals_) t = 0;
    highest_populated_ = 0;
    for (std::size_t v = 0; v < n_; ++v) {
        const Generation g = generations[v];
        const Opinion op = opinions[v];
        PAPC_CHECK(op < k_);
        ensure_generation(g);  // may reallocate rows_ — index after
        row_add(rows_[g], op, 1);
        ++gen_totals_[g];
        ++opinion_totals_[op];
        if (g > highest_populated_) highest_populated_ = g;
    }
}

void GenerationCensus::transition(Generation gen_from, Opinion op_from,
                                  Generation gen_to, Opinion op_to) {
    PAPC_CHECK(op_from < k_ && op_to < k_);
    ensure_generation(gen_to);
    PAPC_CHECK(gen_from < gen_totals_.size());
    row_add(rows_[gen_from], op_from, -1);
    --gen_totals_[gen_from];
    row_add(rows_[gen_to], op_to, +1);
    ++gen_totals_[gen_to];
    if (op_from != op_to) {
        PAPC_CHECK(opinion_totals_[op_from] > 0);
        --opinion_totals_[op_from];
        ++opinion_totals_[op_to];
    }
    refresh_highest(gen_to);
}

void GenerationCensus::apply_deltas(const std::vector<std::int64_t>& deltas,
                                    Generation rows) {
    PAPC_CHECK(deltas.size() >= static_cast<std::size_t>(rows) * k_);
    if (rows == 0) return;
    ensure_generation(rows - 1);
    for (Generation g = 0; g < rows; ++g) {
        Row& row = rows_[g];
        std::int64_t gen_delta = 0;
        for (Opinion j = 0; j < k_; ++j) {
            const std::int64_t d = deltas[static_cast<std::size_t>(g) * k_ + j];
            if (d == 0) continue;
            row_add(row, j, d);
            const std::int64_t op_next =
                static_cast<std::int64_t>(opinion_totals_[j]) + d;
            PAPC_CHECK(op_next >= 0);
            opinion_totals_[j] = static_cast<std::uint64_t>(op_next);
            gen_delta += d;
        }
        if (gen_delta != 0) {
            const std::int64_t gen_next =
                static_cast<std::int64_t>(gen_totals_[g]) + gen_delta;
            PAPC_CHECK(gen_next >= 0);
            gen_totals_[g] = static_cast<std::uint64_t>(gen_next);
        }
    }
    refresh_highest(rows - 1);
}

Generation GenerationCensus::highest_populated() const {
    return highest_populated_;
}

std::uint64_t GenerationCensus::generation_size(Generation i) const {
    if (i >= gen_totals_.size()) return 0;
    return gen_totals_[i];
}

double GenerationCensus::generation_fraction(Generation i) const {
    return static_cast<double>(generation_size(i)) / static_cast<double>(n_);
}

std::uint64_t GenerationCensus::count(Generation i, Opinion j) const {
    PAPC_CHECK(j < k_);
    if (i >= gen_totals_.size()) return 0;
    return row_get(rows_[i], j);
}

BiasStats GenerationCensus::stats(Generation i) const {
    if (i >= gen_totals_.size()) return BiasStats{};
    return row_stats(rows_[i]);
}

BiasStats GenerationCensus::pooled_stats() const {
    return stats_from_counts(opinion_totals_);
}

std::uint64_t GenerationCensus::size_at_least(Generation i) const {
    std::uint64_t total = 0;
    for (std::size_t g = i; g < gen_totals_.size(); ++g) total += gen_totals_[g];
    return total;
}

bool GenerationCensus::converged() const {
    for (const auto t : opinion_totals_) {
        if (t == n_) return true;
    }
    return false;
}

double GenerationCensus::opinion_fraction(Opinion j) const {
    PAPC_CHECK(j < k_);
    return static_cast<double>(opinion_totals_[j]) / static_cast<double>(n_);
}

std::uint64_t GenerationCensus::opinion_total(Opinion j) const {
    PAPC_CHECK(j < k_);
    return opinion_totals_[j];
}

bool GenerationCensus::row_is_sparse(Generation i) const {
    return i < rows_.size() && rows_[i].dense.empty();
}

std::size_t GenerationCensus::memory_bytes() const {
    std::size_t bytes = rows_.capacity() * sizeof(Row) +
                        gen_totals_.capacity() * sizeof(std::uint64_t) +
                        opinion_totals_.capacity() * sizeof(std::uint64_t);
    for (const Row& row : rows_) {
        bytes += row.dense.capacity() * sizeof(std::uint64_t) +
                 row.sparse.capacity() * sizeof(row.sparse[0]);
    }
    return bytes;
}

}  // namespace papc
