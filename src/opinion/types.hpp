#pragma once

/// \file types.hpp
/// Core identifier types shared by all protocol implementations.

#include <cstdint>

namespace papc {

/// Node identifier: index into the node arrays, in [0, n).
using NodeId = std::uint32_t;

/// Opinion ("color") identifier in [0, k).
using Opinion = std::uint32_t;

/// Generation number (Algorithm 1 / §2.2). Generation 0 is the initial one.
using Generation = std::uint32_t;

/// Sentinel for "no opinion" (used by undecided-state baselines).
inline constexpr Opinion kUndecided = 0xFFFFFFFFU;

}  // namespace papc
