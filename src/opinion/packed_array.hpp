#pragma once

/// \file packed_array.hpp
/// PackedOpinionArray: per-node opinion storage at ⌈log2(k+1)⌉ bits per
/// node, rounded up to a power-of-two lane width w ∈ {2, 4, 8, 16, 32}
/// so lanes never straddle word boundaries (PR 7).
///
/// The "millions of users" sync regime is memory-bound: at n = 2^22 the
/// per-round gather working set of a 4-byte color vector (16 MiB) falls
/// out of L2/L3 and every random sample pays DRAM latency. Packing k ≤ 15
/// opinions into 4-bit lanes shrinks that set 8x (2 MiB — cache
/// resident); even k ≤ 255 fits 8-bit lanes for a 4x cut. The all-ones
/// lane value is reserved as the undecided sentinel at every width (for
/// w = 32 the sentinel IS kUndecided, so the degenerate width is exactly
/// the old unpacked layout and one code path serves every k).
///
/// Sharding contract (round_kernel.hpp): writers only touch whole words
/// they own. kRoundBlock (4096) is a multiple of the lanes-per-word of
/// every width, so a ShardedRoundDriver shard's [base, base + count)
/// range is always word-aligned at its base and no two shards ever share
/// a word — parallel round writes need no atomics, same as the unpacked
/// layout (static-asserted below, exercised by the packed_array tests
/// and the TSan CI job).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "opinion/types.hpp"
#include "opinion/view.hpp"
#include "support/check.hpp"

namespace papc {

class PackedOpinionArray {
public:
    /// Lane width (bits) used for `num_opinions` colors: the smallest
    /// power-of-two w with num_opinions < 2^w, reserving the all-ones
    /// lane for the undecided sentinel. k <= 3 -> 2, k <= 15 -> 4,
    /// k <= 255 -> 8, k <= 65535 -> 16, else 32.
    [[nodiscard]] static unsigned lane_bits_for(std::uint32_t num_opinions) {
        for (const unsigned w : {2U, 4U, 8U, 16U}) {
            if (num_opinions < (1ULL << w)) return w;
        }
        return 32U;
    }

    PackedOpinionArray() = default;

    /// n lanes wide enough for `num_opinions`, all initialized to opinion 0.
    PackedOpinionArray(std::size_t n, std::uint32_t num_opinions)
        : n_(n), log2_lane_bits_(log2_of(lane_bits_for(num_opinions))) {
        const std::size_t lanes_per_word = 64U >> log2_lane_bits_;
        words_.assign((n + lanes_per_word - 1) / lanes_per_word, 0);
    }

    /// Packs an existing opinion vector (entries may be kUndecided).
    PackedOpinionArray(const std::vector<Opinion>& opinions,
                       std::uint32_t num_opinions)
        : PackedOpinionArray(opinions.size(), num_opinions) {
        for (std::size_t i = 0; i < opinions.size(); ++i) set(i, opinions[i]);
    }

    [[nodiscard]] std::size_t size() const { return n_; }
    [[nodiscard]] unsigned lane_bits() const { return 1U << log2_lane_bits_; }
    [[nodiscard]] unsigned log2_lane_bits() const { return log2_lane_bits_; }
    [[nodiscard]] std::uint64_t lane_mask() const {
        return (lane_bits() == 64U) ? ~0ULL : (1ULL << lane_bits()) - 1;
    }
    [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }
    [[nodiscard]] std::size_t memory_bytes() const {
        return words_.capacity() * sizeof(std::uint64_t);
    }

    [[nodiscard]] Opinion get(std::size_t i) const {
        const std::uint64_t lane =
            (words_[i >> index_shift()] >>
             ((i & offset_mask()) << log2_lane_bits_)) &
            lane_mask();
        return lane == lane_mask() ? kUndecided : static_cast<Opinion>(lane);
    }

    void set(std::size_t i, Opinion op) {
        const unsigned shift =
            static_cast<unsigned>((i & offset_mask()) << log2_lane_bits_);
        std::uint64_t& word = words_[i >> index_shift()];
        word = (word & ~(lane_mask() << shift)) | (encode(op) << shift);
    }

    /// Sequential decode of lanes [start, start + count) into `out` — one
    /// word load per lanes-per-word nodes instead of a shifted load, a
    /// variable shift, and a sentinel compare per get(). The batched
    /// round kernels read their own shard's colors through this into
    /// arena scratch: at 8-bit lanes it replaces eight dependent-shift
    /// get() calls with one load plus register shifts. `start` must be
    /// word-aligned (shard bases are; see the Writer contract).
    void decode_range(std::size_t start, std::size_t count, Opinion* out) const {
        PAPC_CHECK((start & offset_mask()) == 0);
        const std::uint64_t mask = lane_mask();
        const unsigned bits = lane_bits();
        const std::size_t lanes_per_word = 64U >> log2_lane_bits_;
        const std::uint64_t* word = words_.data() + (start >> index_shift());
        std::size_t i = 0;
        while (i < count) {
            std::uint64_t w = *word++;
            const std::size_t end =
                count < i + lanes_per_word ? count : i + lanes_per_word;
            for (; i < end; ++i) {
                const std::uint64_t lane = w & mask;
                // bits <= 32, so the u64 shift never hits UB even at the
                // degenerate one-lane-per-word width.
                w >>= bits;
                out[i] = lane == mask ? kUndecided : static_cast<Opinion>(lane);
            }
        }
    }

    /// Read prefetch hint for lane i's containing word.
    void prefetch(std::uint64_t i) const {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(words_.data() + (i >> index_shift()), 0, 2);
#else
        (void)i;
#endif
    }

    /// Sequential lane writer: accumulates lanes in a register and stores
    /// one word per lanes-per-word pushes instead of read-modify-writing
    /// every lane — the round kernels' next-state write path. `start`
    /// must be word-aligned (shard bases are: kRoundBlock is a multiple
    /// of every lanes-per-word). A final partial word is plain-stored,
    /// which is only safe when the writer's range ends at the array's end
    /// (the last shard) — interior ranges always end word-aligned.
    class Writer {
    public:
        Writer(PackedOpinionArray& array, std::size_t start)
            : array_(array), word_(array.words_.data() + (start >> array.index_shift())) {
            PAPC_CHECK((start & array.offset_mask()) == 0);
        }

        void push(Opinion op) {
            acc_ |= array_.encode(op) << shift_;
            shift_ += array_.lane_bits();
            if (shift_ == 64U) {
                *word_++ = acc_;
                acc_ = 0;
                shift_ = 0;
            }
        }

        /// Flushes a trailing partial word (dead lanes zeroed).
        void finish() {
            if (shift_ != 0) {
                *word_ = acc_;
                acc_ = 0;
                shift_ = 0;
            }
        }

    private:
        PackedOpinionArray& array_;
        std::uint64_t* word_;
        std::uint64_t acc_ = 0;
        unsigned shift_ = 0;
    };

    void swap(PackedOpinionArray& other) {
        words_.swap(other.words_);
        std::swap(n_, other.n_);
        std::swap(log2_lane_bits_, other.log2_lane_bits_);
    }

    /// Span-like view for the census init paths — no unpacked copy.
    [[nodiscard]] OpinionView view() const {
        return OpinionView(
            this,
            [](const void* self, std::size_t i) {
                return static_cast<const PackedOpinionArray*>(self)->get(i);
            },
            n_);
    }

private:
    friend class Writer;

    [[nodiscard]] unsigned index_shift() const { return 6U - log2_lane_bits_; }
    [[nodiscard]] std::uint64_t offset_mask() const {
        return (1ULL << index_shift()) - 1;
    }
    [[nodiscard]] std::uint64_t encode(Opinion op) const {
        return op == kUndecided ? lane_mask() : op;
    }

    [[nodiscard]] static unsigned log2_of(unsigned w) {
        unsigned log2 = 0;
        while ((1U << log2) < w) ++log2;
        return log2;
    }

    std::vector<std::uint64_t> words_;
    std::size_t n_ = 0;
    unsigned log2_lane_bits_ = 5;  ///< default 32-bit lanes
};

}  // namespace papc
