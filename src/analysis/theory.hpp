#pragma once

/// \file theory.hpp
/// Closed-form predictions from the paper's analysis, used to cross-check
/// measurements in the benches and tests:
///  - the bias recursion α_{i+1} ≈ α_i² (Lemma 4 / Corollary 7),
///  - generation counts to reach bias k and bias n (Corollary 10, Lemma 11),
///  - the asymptotic runtime expressions of Theorems 1, 13 and 26.

#include <cstdint>
#include <vector>

namespace papc::analysis {

/// ln(α^(2^i) + k - 1), evaluated in log space (α^(2^i) overflows double
/// for i ≳ 10 even with modest α).
[[nodiscard]] double log_alpha_pow_plus(double alpha, std::uint32_t k, unsigned i);

/// Idealized (error-free) bias after i generations: min(α^(2^i), cap).
/// Returned in natural-log form to avoid overflow.
[[nodiscard]] double log_bias_after_generations(double alpha, unsigned i);

/// Corollary 10: number of generations for the bias to exceed k, i.e. the
/// smallest i with α^(2^i) > k; equals ceil(log2(log k / log α)) with
/// degenerate cases handled (α > k already, k < 2).
[[nodiscard]] unsigned generations_to_reach_bias(double alpha, double target);

/// Lemma 11: generations needed from bias >= k until monochromatic,
/// ~ log2 log_k n.
[[nodiscard]] unsigned generations_k_to_monochromatic(double k, double n);

/// Total generation budget G* used by the protocols: generations to reach
/// bias k plus generations from k to monochromatic plus a safety slack.
[[nodiscard]] unsigned total_generations(double alpha, std::uint32_t k,
                                         std::size_t n, unsigned slack = 2);

/// Theorem 1 runtime expression (up to constants):
///   log(k)·log log_α(k) + log log n.
[[nodiscard]] double theorem1_runtime_shape(std::size_t n, std::uint32_t k,
                                            double alpha);

/// The idealized single-step bias map of one generation hand-over including
/// the Remark 2 worst case: alpha' = alpha² (no error terms). Exposed for
/// the E2 bench to compare measured bias trajectories against.
[[nodiscard]] std::vector<double> ideal_bias_trajectory(double alpha0,
                                                        unsigned generations,
                                                        double cap);

/// Lemma 11 dominant-fraction recursion a' = a² / (a² + (1-a)²), iterated
/// `steps` times from a0.
[[nodiscard]] double dominant_fraction_recursion(double a0, unsigned steps);

/// Result of checking (n, k, α) against the preconditions of Theorems 1,
/// 13 and 26: k <= n^(1/2-ε) and α > 1 + (k·log n/√n)·log k.
struct PreconditionReport {
    bool k_in_range = false;      ///< k ≤ √n / log n (a concrete ε choice)
    bool alpha_sufficient = false;
    double alpha_threshold = 1.0; ///< the Theorem-1 bias bound
    double k_bound = 0.0;         ///< the concrete k upper bound used

    [[nodiscard]] bool all_satisfied() const {
        return k_in_range && alpha_sufficient;
    }
};

/// Evaluates the theorem preconditions; used by the CLI to warn users.
[[nodiscard]] PreconditionReport check_preconditions(std::size_t n,
                                                     std::uint32_t k,
                                                     double alpha);

/// §4.5 closed-form complexity parameters of the decentralized system.
struct ComplexityProfile {
    double node_memory_bits = 0.0;    ///< total per-node memory, O(log n)
    double address_bits = 0.0;        ///< network addresses, log2 n
    double generation_bits = 0.0;     ///< generation counter, log2 G*
    double leader_message_bits = 0.0; ///< leader replies: gen + state
    double promotion_message_bits = 0.0;  ///< promotion notifications
};

/// Computes the §4.5 bit counts for a system of n nodes, k opinions and
/// initial bias alpha.
[[nodiscard]] ComplexityProfile complexity_profile(std::size_t n,
                                                   std::uint32_t k,
                                                   double alpha);

}  // namespace papc::analysis
