#pragma once

/// \file gamma.hpp
/// Gamma-distribution analytics needed by the time-unit analysis (§3.1,
/// Remark 14): regularized incomplete gamma P(a, x), Gamma/Erlang CDFs and
/// quantiles, plus the paper's closed-form bound C1 < 10/(3β).

#include <cstdint>

namespace papc::analysis {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x)/Γ(a), a > 0, x >= 0.
/// Series expansion for x < a + 1, continued fraction otherwise
/// (Numerical-Recipes style); absolute accuracy ~1e-12.
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// CDF of Gamma(shape, scale) at t (scale = 1/rate).
[[nodiscard]] double gamma_cdf(double shape, double scale, double t);

/// CDF of Erlang(k, rate) at t — Gamma with integer shape.
[[nodiscard]] double erlang_cdf(unsigned k, double rate, double t);

/// Quantile of Gamma(shape, scale): smallest t with CDF >= q. Bisection on
/// the CDF; q in (0, 1).
[[nodiscard]] double gamma_quantile(double shape, double scale, double q);

/// Remark 14: the paper's closed-form bound on the time-unit length,
/// C1 <= (0.9 · 7!)^(1/7) / β < 10/(3β), with β = min(1, λ).
[[nodiscard]] double remark14_c1_bound(double lambda);

/// Exact Remark 14 expression (0.9 · 7!)^(1/7) / β without the rounding to
/// 10/3.
[[nodiscard]] double remark14_c1_exact(double lambda);

}  // namespace papc::analysis
