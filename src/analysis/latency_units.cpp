#include "analysis/latency_units.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/gamma.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace papc::analysis {

namespace {

/// Density of Erlang(k, rate) at x (x >= 0).
double erlang_pdf(unsigned k, double rate, double x) {
    if (x < 0.0) return 0.0;
    double log_pdf = static_cast<double>(k) * std::log(rate) +
                     static_cast<double>(k - 1) * std::log(std::max(x, 1e-300)) -
                     rate * x - std::lgamma(static_cast<double>(k));
    if (k == 1) {
        // k-1 == 0: x^0 = 1 even at x == 0; recompute without the log(x) term.
        log_pdf = std::log(rate) - rate * x;
    }
    return std::exp(log_pdf);
}

/// CDF of Exp(1): 1 - e^-t for t >= 0.
double exp1_cdf(double t) { return t <= 0.0 ? 0.0 : -std::expm1(-t); }

/// Gauss–Legendre nodes/weights on [-1, 1], computed once by Newton
/// iteration on the Legendre polynomial (deterministic, ~1e-15 accurate).
struct GaussLegendre {
    static constexpr int kOrder = 64;
    double nodes[kOrder];
    double weights[kOrder];

    GaussLegendre() {
        const int n = kOrder;
        for (int i = 0; i < (n + 1) / 2; ++i) {
            // Chebyshev initial guess for the i-th root.
            double x = std::cos(M_PI * (i + 0.75) / (n + 0.5));
            double dp = 0.0;
            for (int iter = 0; iter < 100; ++iter) {
                // Evaluate P_n(x) and P'_n(x) by the recurrence.
                double p0 = 1.0;
                double p1 = x;
                for (int k = 2; k <= n; ++k) {
                    const double p2 = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
                    p0 = p1;
                    p1 = p2;
                }
                dp = n * (x * p1 - p0) / (x * x - 1.0);
                const double dx = p1 / dp;
                x -= dx;
                if (std::fabs(dx) < 1e-15) break;
            }
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            const double w = 2.0 / ((1.0 - x * x) * dp * dp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
    }
};

/// Integrates f over [0, upper] with 64-point Gauss–Legendre.
template <typename F>
double integrate(F&& f, double upper) {
    if (upper <= 0.0) return 0.0;
    static const GaussLegendre gl;
    const double half = 0.5 * upper;
    double sum = 0.0;
    for (int i = 0; i < GaussLegendre::kOrder; ++i) {
        sum += gl.weights[i] * f(half * (gl.nodes[i] + 1.0));
    }
    return sum * half;
}

}  // namespace

double t3_cdf_exponential(double lambda, double t) {
    PAPC_CHECK(lambda > 0.0);
    if (t <= 0.0) return 0.0;
    // T3 = Erlang(4, λ) + Erlang(2, 2λ) + Exp(1); integrate the two Erlang
    // densities against the closed-form Exp(1) CDF:
    //   F(t) = ∫∫ f4(x) f2(y) F_exp(t - x - y) dy dx over the simplex.
    // The integration domains are truncated where the Erlang densities are
    // negligible (mass < 1e-20) so the quadrature resolution tracks the
    // distribution scale 1/λ instead of t.
    const double outer_upper = std::min(t, 60.0 / lambda);
    const double inner_cap = 40.0 / lambda;
    auto outer = [&](double x) {
        const double fx = erlang_pdf(4, lambda, x);
        if (fx == 0.0) return 0.0;
        auto inner = [&](double y) {
            return erlang_pdf(2, 2.0 * lambda, y) * exp1_cdf(t - x - y);
        };
        return fx * integrate(inner, std::min(t - x, inner_cap));
    };
    const double value = integrate(outer, outer_upper);
    return std::clamp(value, 0.0, 1.0);
}

double t3_mean_exponential(double lambda) {
    PAPC_CHECK(lambda > 0.0);
    // E[T3] = E[Exp(1)] + 2·E[Exp(2λ)] + 4·E[Exp(λ)] = 1 + 1/λ + 4/λ.
    return 1.0 + 5.0 / lambda;
}

double t3_quantile_exponential(double lambda, double q) {
    PAPC_CHECK(q > 0.0 && q < 1.0);
    double hi = t3_mean_exponential(lambda) * 2.0 + 2.0;
    while (t3_cdf_exponential(lambda, hi) < q) hi *= 2.0;
    double lo = 0.0;
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (t3_cdf_exponential(lambda, mid) < q) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-9 * (1.0 + hi)) break;
    }
    return 0.5 * (lo + hi);
}

double steps_per_unit_exact(double lambda) {
    return t3_quantile_exponential(lambda, 0.9);
}

double sample_t3(const sim::LatencyModel& latency, Rng& rng) {
    auto t2_prime = [&] {
        const double c1 = latency.sample(rng);
        const double c2 = latency.sample(rng);
        const double leader = latency.sample(rng);
        return std::max(c1, c2) + leader;
    };
    const double wait = rng.exponential(1.0);
    return t2_prime() + wait + t2_prime();
}

double t3_quantile_monte_carlo(const sim::LatencyModel& latency, double q,
                               std::size_t samples, Rng& rng) {
    PAPC_CHECK(samples >= 10);
    std::vector<double> draws;
    draws.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        draws.push_back(sample_t3(latency, rng));
    }
    return quantile(std::move(draws), q);
}

double sample_validated_cycle(const sim::LatencyModel& channel,
                              const sim::LatencyModel& message, Rng& rng) {
    // Every rng-mutating call is sequenced through a named local so the
    // draw order (and hence the fixed-seed value) is compiler-independent.
    const double wait = rng.exponential(1.0);
    const double peer_a = channel.sample(rng);
    const double peer_b = channel.sample(rng);
    const double establish = std::max(peer_a, peer_b) + channel.sample(rng);
    const double first_round = 2.0 * message.sample(rng);
    const double validation_channel = channel.sample(rng);
    const double validation_round = 2.0 * message.sample(rng);
    return wait + establish + first_round + validation_channel +
           validation_round;
}

double validated_cycle_quantile_monte_carlo(const sim::LatencyModel& channel,
                                            const sim::LatencyModel& message,
                                            double q, std::size_t samples,
                                            Rng& rng) {
    PAPC_CHECK(samples >= 10);
    std::vector<double> draws;
    draws.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        draws.push_back(sample_validated_cycle(channel, message, rng));
    }
    return quantile(std::move(draws), q);
}

double sample_cluster_exchange(const sim::LatencyModel& latency, Rng& rng) {
    auto five_channels = [&] {
        const double a = latency.sample(rng);
        const double b = latency.sample(rng);
        const double c = latency.sample(rng);
        const double stage1 = std::max({a, b, c});
        const double d = latency.sample(rng);
        const double e = latency.sample(rng);
        return stage1 + std::max(d, e);
    };
    const double first = five_channels();
    const double wait = rng.exponential(1.0);
    return first + wait + five_channels();
}

double cluster_exchange_quantile_monte_carlo(const sim::LatencyModel& latency,
                                             double q, std::size_t samples,
                                             Rng& rng) {
    PAPC_CHECK(samples >= 10);
    std::vector<double> draws;
    draws.reserve(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        draws.push_back(sample_cluster_exchange(latency, rng));
    }
    return quantile(std::move(draws), q);
}

Figure1Row figure1_row(double lambda, std::size_t mc_samples, Rng& rng) {
    Figure1Row row;
    row.inv_lambda = 1.0 / lambda;
    row.exact = steps_per_unit_exact(lambda);
    const sim::ExponentialLatency latency(lambda);
    row.monte_carlo = t3_quantile_monte_carlo(latency, 0.9, mc_samples, rng);
    // Remark 14 bound: the 0.9-quantile of Γ(7, β) with β = min(1, λ), plus
    // the rounded 10/(3β) form.
    const double beta = std::min(1.0, lambda);
    row.gamma_bound = gamma_quantile(7.0, 1.0 / beta, 0.9);
    row.bound_10_3beta = remark14_c1_bound(lambda);
    return row;
}

}  // namespace papc::analysis
