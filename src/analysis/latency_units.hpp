#pragma once

/// \file latency_units.hpp
/// The paper's *time unit* (§3.1): C1 = F^{-1}(0.9) time steps, where F is
/// the CDF of T3, the full good-tick round-trip
///
///   T2' = max(T2, T2) + T2            (two random channels, then leader)
///   T3  = T2' + T1 + T2'              (waiting + channel building)
///
/// with T1 ~ Exp(1) (Poisson clock) and T2 a latency-model draw. For the
/// exponential model, max(T2, T2) = Exp(2λ) + Exp(λ) in distribution, so
///
///   T3 = Exp(1) + 2·Exp(2λ) + 4·Exp(λ)   (hypoexponential).
///
/// This module computes C1 three ways: the exact hypoexponential CDF (for
/// the exponential model), a Monte-Carlo quantile (any latency model), and
/// the paper's Γ(7, β) majorization bound (Remark 14). Figure 1 plots
/// F^{-1}(0.9) against 1/λ; bench/fig1_steps_per_unit regenerates it.

#include <memory>

#include "sim/latency.hpp"
#include "support/random.hpp"

namespace papc::analysis {

/// Exact CDF of T3 for the exponential-latency model at time t.
/// Evaluates the hypoexponential CDF for rates {1, 2λ×2, λ×4} via the
/// matrix-free convolution-of-Erlangs formula; falls back to numerically
/// robust evaluation when λ is close to the degenerate values (λ = 1,
/// λ = 1/2) where rates coincide.
[[nodiscard]] double t3_cdf_exponential(double lambda, double t);

/// Exact mean of T3 for the exponential model: 1 + 5/λ (composition above).
/// Note Example 15 of the paper states 1 + 3/λ; see EXPERIMENTS.md (F1).
[[nodiscard]] double t3_mean_exponential(double lambda);

/// q-quantile of T3 (exponential model) by bisecting the exact CDF.
[[nodiscard]] double t3_quantile_exponential(double lambda, double q);

/// C1 = F^{-1}(0.9) for the exponential model (exact).
[[nodiscard]] double steps_per_unit_exact(double lambda);

/// Draws one T3 sample under an arbitrary latency model.
[[nodiscard]] double sample_t3(const sim::LatencyModel& latency, Rng& rng);

/// Monte-Carlo estimate of the q-quantile of T3 under any latency model.
[[nodiscard]] double t3_quantile_monte_carlo(const sim::LatencyModel& latency,
                                             double q, std::size_t samples,
                                             Rng& rng);

/// Draws one full cycle of the §5 validated engine: tick wait (Exp(1)) +
/// three channels (max(T2, T2) + T2) + first message round (2·T4) +
/// validation channel (T2) + validation round-trip (2·T4). `channel`
/// models T2, `message` models T4.
[[nodiscard]] double sample_validated_cycle(const sim::LatencyModel& channel,
                                            const sim::LatencyModel& message,
                                            Rng& rng);

/// Monte-Carlo q-quantile of the validated cycle; the 0.9-quantile is the
/// C1 (steps per time unit) the validated engine derives its leader
/// thresholds from.
[[nodiscard]] double validated_cycle_quantile_monte_carlo(
    const sim::LatencyModel& channel, const sim::LatencyModel& message,
    double q, std::size_t samples, Rng& rng);

/// Draws one §4 member exchange round-trip: five channels in two stages —
/// three concurrent samples, then the own and the sampled leader
/// concurrently (T2'' ≼ 5·T2, §4.2) — on both sides of the tick wait.
[[nodiscard]] double sample_cluster_exchange(const sim::LatencyModel& latency,
                                             Rng& rng);

/// Monte-Carlo q-quantile of the cluster member exchange; the 0.9-quantile
/// is the C1 the multi-leader engine derives its per-cluster leader
/// thresholds from.
[[nodiscard]] double cluster_exchange_quantile_monte_carlo(
    const sim::LatencyModel& latency, double q, std::size_t samples,
    Rng& rng);

/// One row of Figure 1: 1/λ plus the three C1 estimates.
struct Figure1Row {
    double inv_lambda = 0.0;      ///< expected latency 1/λ (x-axis)
    double exact = 0.0;           ///< exact F^{-1}(0.9)
    double monte_carlo = 0.0;     ///< Monte-Carlo F^{-1}(0.9)
    double gamma_bound = 0.0;     ///< Remark 14 exact bound (Γ(7, β) quantile)
    double bound_10_3beta = 0.0;  ///< Remark 14 rounded bound 10/(3β)
};

/// Computes one Figure 1 row for latency rate λ.
[[nodiscard]] Figure1Row figure1_row(double lambda, std::size_t mc_samples,
                                     Rng& rng);

}  // namespace papc::analysis
