#include "analysis/theory.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/math.hpp"

namespace papc::analysis {

double log_alpha_pow_plus(double alpha, std::uint32_t k, unsigned i) {
    PAPC_CHECK(alpha >= 1.0);
    PAPC_CHECK(k >= 1);
    const double log_alpha_pow = std::ldexp(std::log(alpha), static_cast<int>(i));
    if (k == 1) return log_alpha_pow;
    return log_add_exp(log_alpha_pow, std::log(static_cast<double>(k - 1)));
}

double log_bias_after_generations(double alpha, unsigned i) {
    PAPC_CHECK(alpha >= 1.0);
    return std::ldexp(std::log(alpha), static_cast<int>(i));
}

unsigned generations_to_reach_bias(double alpha, double target) {
    PAPC_CHECK(alpha > 1.0);
    PAPC_CHECK(target > 1.0);
    if (alpha >= target) return 0;
    // Smallest i with 2^i · ln α >= ln target.
    const double ratio = std::log(target) / std::log(alpha);
    const double exact = std::log2(ratio);
    auto i = static_cast<unsigned>(std::ceil(exact - 1e-12));
    return i;
}

unsigned generations_k_to_monochromatic(double k, double n) {
    PAPC_CHECK(k >= 2.0);
    PAPC_CHECK(n > k);
    // log2 log_k n, at least 1.
    const double v = std::log2(std::max(std::log(n) / std::log(k), 2.0));
    return std::max(1U, static_cast<unsigned>(std::ceil(v)));
}

unsigned total_generations(double alpha, std::uint32_t k, std::size_t n,
                           unsigned slack) {
    PAPC_CHECK(alpha > 1.0);
    const double kd = std::max(2.0, static_cast<double>(k));
    const double nd = static_cast<double>(n);
    const unsigned to_k = generations_to_reach_bias(alpha, kd);
    const unsigned to_mono = generations_k_to_monochromatic(kd, nd);
    return to_k + to_mono + slack;
}

double theorem1_runtime_shape(std::size_t n, std::uint32_t k, double alpha) {
    PAPC_CHECK(alpha > 1.0);
    const double kd = std::max(2.0, static_cast<double>(k));
    const double nd = static_cast<double>(n);
    const double log_k = std::log2(kd);
    // log log_α k = log2(ln k / ln α), clamped at >= 1 for shape purposes.
    const double loglog_alpha_k =
        std::max(1.0, std::log2(std::max(2.0, std::log(kd) / std::log(alpha))));
    const double loglog_n = std::log2(std::max(2.0, std::log2(nd)));
    return log_k * loglog_alpha_k + loglog_n;
}

std::vector<double> ideal_bias_trajectory(double alpha0, unsigned generations,
                                          double cap) {
    PAPC_CHECK(alpha0 >= 1.0);
    PAPC_CHECK(cap > 1.0);
    std::vector<double> out;
    out.reserve(generations + 1);
    double log_alpha = std::log(alpha0);
    const double log_cap = std::log(cap);
    for (unsigned i = 0; i <= generations; ++i) {
        out.push_back(std::exp(std::min(log_alpha, log_cap)));
        log_alpha = std::min(2.0 * log_alpha, 2.0 * log_cap);
    }
    return out;
}

PreconditionReport check_preconditions(std::size_t n, std::uint32_t k,
                                       double alpha) {
    PAPC_CHECK(n >= 2);
    PAPC_CHECK(k >= 1);
    PreconditionReport report;
    const double nd = static_cast<double>(n);
    const double kd = static_cast<double>(k);
    // Concrete instantiation of k <= n^(1/2-ε): √n / log2 n.
    report.k_bound = std::sqrt(nd) / std::log2(nd);
    report.k_in_range = kd <= report.k_bound;
    if (k >= 2) {
        report.alpha_threshold =
            1.0 + kd * std::log2(nd) / std::sqrt(nd) * std::log2(kd);
    }
    report.alpha_sufficient = alpha > report.alpha_threshold;
    return report;
}

ComplexityProfile complexity_profile(std::size_t n, std::uint32_t k,
                                     double alpha) {
    PAPC_CHECK(n >= 2);
    ComplexityProfile p;
    const double g_star =
        static_cast<double>(total_generations(std::max(alpha, 1.0 + 1e-9),
                                              std::max(2U, k), n, 2));
    p.address_bits = std::ceil(std::log2(static_cast<double>(n)));
    p.generation_bits = std::max(1.0, std::ceil(std::log2(g_star + 1.0)));
    const double color_bits =
        std::max(1.0, std::ceil(std::log2(static_cast<double>(std::max(2U, k)))));
    // Per node: own address + leader address, color, generation, stored
    // leader state (generation + 2 state bits), flags (locked, finished).
    p.node_memory_bits = 2.0 * p.address_bits + color_bits +
                         2.0 * p.generation_bits + 2.0 + 2.0;
    // Leader reply: (gen, state); state needs 2 bits.
    p.leader_message_bits = p.generation_bits + 2.0;
    // Promotion notification: (i, s, hasChanged).
    p.promotion_message_bits = p.generation_bits + 2.0 + 1.0;
    return p;
}

double dominant_fraction_recursion(double a0, unsigned steps) {
    PAPC_CHECK(a0 > 0.0 && a0 <= 1.0);
    double a = a0;
    for (unsigned i = 0; i < steps; ++i) {
        const double denom = a * a + (1.0 - a) * (1.0 - a);
        a = a * a / denom;
    }
    return a;
}

}  // namespace papc::analysis
