#include "analysis/gamma.hpp"

#include <cmath>

#include "support/check.hpp"

namespace papc::analysis {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

/// Series representation of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
    double ap = a;
    double sum = 1.0 / a;
    double term = sum;
    for (int i = 0; i < kMaxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued-fraction representation of Q(a, x) = 1 - P(a, x); for x >= a+1.
double gamma_q_continued_fraction(double a, double x) {
    double b = x + 1.0 - a;
    double c = 1.0 / kTiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= kMaxIterations; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < kTiny) d = kTiny;
        c = b + an / c;
        if (std::fabs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < kEpsilon) break;
    }
    return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
    PAPC_CHECK(a > 0.0);
    PAPC_CHECK(x >= 0.0);
    if (x == 0.0) return 0.0;
    if (x < a + 1.0) return gamma_p_series(a, x);
    return 1.0 - gamma_q_continued_fraction(a, x);
}

double gamma_cdf(double shape, double scale, double t) {
    PAPC_CHECK(shape > 0.0 && scale > 0.0);
    if (t <= 0.0) return 0.0;
    return regularized_gamma_p(shape, t / scale);
}

double erlang_cdf(unsigned k, double rate, double t) {
    PAPC_CHECK(k >= 1);
    PAPC_CHECK(rate > 0.0);
    return gamma_cdf(static_cast<double>(k), 1.0 / rate, t);
}

double gamma_quantile(double shape, double scale, double q) {
    PAPC_CHECK(q > 0.0 && q < 1.0);
    // Bracket: mean + stddev multiples is a safe upper start; double until
    // the CDF exceeds q.
    double hi = shape * scale + 10.0 * std::sqrt(shape) * scale + scale;
    while (gamma_cdf(shape, scale, hi) < q) hi *= 2.0;
    double lo = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (gamma_cdf(shape, scale, mid) < q) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-12 * (1.0 + hi)) break;
    }
    return 0.5 * (lo + hi);
}

double remark14_c1_exact(double lambda) {
    PAPC_CHECK(lambda > 0.0);
    const double beta = std::min(1.0, lambda);
    // 7th root of 0.9 * 7!; see Remark 14. 7! = 5040.
    return std::pow(0.9 * 5040.0, 1.0 / 7.0) / beta;
}

double remark14_c1_bound(double lambda) {
    PAPC_CHECK(lambda > 0.0);
    const double beta = std::min(1.0, lambda);
    return 10.0 / (3.0 * beta);
}

}  // namespace papc::analysis
