#pragma once

/// \file hypoexponential.hpp
/// Closed-form CDF of a sum of independent exponentials with *distinct*
/// rates (hypoexponential / generalized Erlang distribution):
///
///   P(Σ_i Exp(r_i) ≤ t) = 1 − Σ_i [Π_{j≠i} r_j/(r_j − r_i)] e^{−r_i t}.
///
/// The paper's T3 decomposes into exponential stages with *repeated* rates
/// (Exp(1) + 2·Exp(2λ) + 4·Exp(λ)); repeated rates make the closed form
/// singular, so t3_cdf_exponential uses numeric quadrature instead. This
/// module provides the distinct-rate closed form for general stage chains
/// plus a perturbed-rate evaluation of T3 that cross-validates the
/// quadrature (tests/analysis/hypoexponential_test.cpp).

#include <vector>

namespace papc::analysis {

/// CDF of Σ Exp(rates[i]) at t. All rates must be positive and pairwise
/// distinct (relative separation > ~1e-6 to keep the weights stable).
[[nodiscard]] double hypoexponential_cdf(const std::vector<double>& rates,
                                         double t);

/// Mean Σ 1/r_i.
[[nodiscard]] double hypoexponential_mean(const std::vector<double>& rates);

/// Variance Σ 1/r_i².
[[nodiscard]] double hypoexponential_variance(const std::vector<double>& rates);

/// Quantile by bisection on the closed-form CDF; q in (0, 1).
[[nodiscard]] double hypoexponential_quantile(const std::vector<double>& rates,
                                              double q);

/// The T3 stage rates {1, 2λ, 2λ, λ, λ, λ, λ} with repeated entries spread
/// multiplicatively by (1 ± k·eps) so the distinct-rate closed form
/// applies; eps ~ 1e-4 keeps both the perturbation bias and the
/// cancellation error around 1e-3.
[[nodiscard]] std::vector<double> t3_perturbed_rates(double lambda, double eps);

}  // namespace papc::analysis
