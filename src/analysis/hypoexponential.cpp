#include "analysis/hypoexponential.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace papc::analysis {

double hypoexponential_cdf(const std::vector<double>& rates, double t) {
    PAPC_CHECK(!rates.empty());
    if (t <= 0.0) return 0.0;
    double survival = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        PAPC_CHECK(rates[i] > 0.0);
        double weight = 1.0;
        for (std::size_t j = 0; j < rates.size(); ++j) {
            if (j == i) continue;
            const double denom = rates[j] - rates[i];
            PAPC_CHECK(std::fabs(denom) > 1e-9 * rates[i]);
            weight *= rates[j] / denom;
        }
        survival += weight * std::exp(-rates[i] * t);
    }
    return std::clamp(1.0 - survival, 0.0, 1.0);
}

double hypoexponential_mean(const std::vector<double>& rates) {
    double mean = 0.0;
    for (const double r : rates) {
        PAPC_CHECK(r > 0.0);
        mean += 1.0 / r;
    }
    return mean;
}

double hypoexponential_variance(const std::vector<double>& rates) {
    double variance = 0.0;
    for (const double r : rates) {
        PAPC_CHECK(r > 0.0);
        variance += 1.0 / (r * r);
    }
    return variance;
}

double hypoexponential_quantile(const std::vector<double>& rates, double q) {
    PAPC_CHECK(q > 0.0 && q < 1.0);
    double hi = hypoexponential_mean(rates) +
                6.0 * std::sqrt(hypoexponential_variance(rates));
    while (hypoexponential_cdf(rates, hi) < q) hi *= 2.0;
    double lo = 0.0;
    for (int i = 0; i < 120; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (hypoexponential_cdf(rates, mid) < q) {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo < 1e-12 * (1.0 + hi)) break;
    }
    return 0.5 * (lo + hi);
}

std::vector<double> t3_perturbed_rates(double lambda, double eps) {
    PAPC_CHECK(lambda > 0.0);
    PAPC_CHECK(eps > 0.0 && eps < 0.01);
    // Stage rates 1, 2λ ×2, λ ×4; spread the repeats multiplicatively and
    // symmetrically so the mean shift cancels to first order.
    return {
        1.0,
        2.0 * lambda * (1.0 - eps),
        2.0 * lambda * (1.0 + eps),
        lambda * (1.0 - 3.0 * eps),
        lambda * (1.0 - eps),
        lambda * (1.0 + eps),
        lambda * (1.0 + 3.0 * eps),
    };
}

}  // namespace papc::analysis
