#pragma once

/// \file event_queue.hpp
/// Backward-compatible name for the binary-heap scheduler queue. The
/// discrete-event engines now program against the pluggable
/// sim::SchedulerQueue interface (scheduler_queue.hpp) and select an
/// implementation via sim::QueueKind; EventQueue remains as the concrete
/// heap for callers that want one without the factory.
///
/// Events are ordered by (time, sequence number): ties in time are broken
/// by insertion order, which keeps runs deterministic for a fixed seed.

#include "sim/scheduler_queue.hpp"

namespace papc::sim {

/// Min-heap keyed on (time, seq). Payload type is engine-specific.
template <typename Payload>
using EventQueue = BinaryHeapQueue<Payload>;

}  // namespace papc::sim
