#pragma once

/// \file event_queue.hpp
/// Binary-heap event queue for the discrete-event engines.
///
/// Events are ordered by (time, sequence number): ties in time are broken by
/// insertion order, which keeps runs deterministic for a fixed seed.

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "support/check.hpp"

namespace papc::sim {

/// Min-heap keyed on (time, seq). Payload type is engine-specific.
template <typename Payload>
class EventQueue {
public:
    struct Entry {
        Time time;
        std::uint64_t seq;
        Payload payload;
    };

    [[nodiscard]] bool empty() const { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const { return heap_.size(); }

    /// Time of the earliest event; queue must be non-empty.
    [[nodiscard]] Time next_time() const {
        PAPC_CHECK(!heap_.empty());
        return heap_.front().time;
    }

    void push(Time time, Payload payload) {
        heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
        sift_up(heap_.size() - 1);
    }

    /// Removes and returns the earliest event.
    Entry pop() {
        PAPC_CHECK(!heap_.empty());
        Entry top = std::move(heap_.front());
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty()) sift_down(0);
        return top;
    }

    void clear() { heap_.clear(); }

    /// Total number of events ever pushed (diagnostics).
    [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

private:
    [[nodiscard]] static bool less(const Entry& a, const Entry& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
    }

    void sift_up(std::size_t i) {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!less(heap_[i], heap_[parent])) break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void sift_down(std::size_t i) {
        const std::size_t n = heap_.size();
        for (;;) {
            const std::size_t left = 2 * i + 1;
            const std::size_t right = 2 * i + 2;
            std::size_t smallest = i;
            if (left < n && less(heap_[left], heap_[smallest])) smallest = left;
            if (right < n && less(heap_[right], heap_[smallest])) smallest = right;
            if (smallest == i) break;
            std::swap(heap_[i], heap_[smallest]);
            i = smallest;
        }
    }

    std::vector<Entry> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace papc::sim
