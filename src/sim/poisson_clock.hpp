#pragma once

/// \file poisson_clock.hpp
/// Poisson clocks (§3.1): each node ticks at rate 1 in expectation; the
/// inter-tick times are Exponential(rate).

#include "sim/time.hpp"
#include "support/random.hpp"

namespace papc::sim {

/// A rate-`rate` Poisson clock. Stateless beyond the rate; callers schedule
/// the next tick by adding `next_interval(rng)` to the current time.
class PoissonClock {
public:
    explicit PoissonClock(double rate = 1.0);

    [[nodiscard]] double rate() const { return rate_; }

    /// Draws the waiting time until the next tick.
    [[nodiscard]] Time next_interval(Rng& rng) const;

    /// Draws the number of ticks falling into a window of length `window`.
    [[nodiscard]] std::uint64_t ticks_in(Rng& rng, Time window) const;

private:
    double rate_;
};

}  // namespace papc::sim
