#pragma once

/// \file time.hpp
/// Continuous simulated time, measured in *time steps* (the paper's basic
/// unit: one expected Poisson tick per node per time step). The derived
/// *time unit* (C1 = F^{-1}(0.9) time steps, §3.1) is computed in
/// analysis/latency_units.hpp.

namespace papc::sim {

/// Simulated time in time steps. A plain double alias: the simulator relies
/// on event ordering, and a strong type here adds friction without catching
/// real bugs (all times flow through the event queue).
using Time = double;

inline constexpr Time kTimeZero = 0.0;

}  // namespace papc::sim
