// event_queue.hpp is header-only (class template); this translation unit
// exists to instantiate the template once for build-error surfacing and to
// anchor the target's source list.

#include "sim/event_queue.hpp"

namespace papc::sim {

template class EventQueue<int>;

}  // namespace papc::sim
