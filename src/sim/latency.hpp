#pragma once

/// \file latency.hpp
/// Edge-latency models: the time T2 needed to establish a communication
/// channel (§3.1). The paper's analysis uses Exponential(λ); the PODC 2020
/// version generalizes to *positive aging* distributions — distributions
/// that are New-Better-than-Used (NBU): the residual waiting time of an
/// aged channel is stochastically no larger than a fresh draw. We provide
/// the exponential model plus several positive-aging alternatives and one
/// negative-aging contrast model for the robustness experiment (E9).

#include <memory>
#include <string>

#include "support/random.hpp"

namespace papc::sim {

/// Aging class of a latency distribution, relative to the NBU property.
enum class AgingClass {
    kMemoryless,     ///< exponential: exactly NBU and NWU
    kPositiveAging,  ///< NBU: hazard rate non-decreasing (constant, uniform,
                     ///< Erlang/gamma shape >= 1, Weibull shape >= 1)
    kNegativeAging,  ///< NWU: heavy-tailed (Weibull shape < 1, lognormal)
};

/// Interface for channel-establishment latency distributions.
class LatencyModel {
public:
    virtual ~LatencyModel() = default;

    /// Draws one channel-establishment latency.
    [[nodiscard]] virtual double sample(Rng& rng) const = 0;

    /// Distribution mean (closed form).
    [[nodiscard]] virtual double mean() const = 0;

    [[nodiscard]] virtual AgingClass aging() const = 0;

    /// Short human-readable description for reports.
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Exponential(rate λ): the paper's model; mean 1/λ. Memoryless.
class ExponentialLatency final : public LatencyModel {
public:
    explicit ExponentialLatency(double rate);
    [[nodiscard]] double sample(Rng& rng) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] AgingClass aging() const override { return AgingClass::kMemoryless; }
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] double rate() const { return rate_; }

private:
    double rate_;
};

/// Deterministic latency (the strongest positive-aging case).
class ConstantLatency final : public LatencyModel {
public:
    explicit ConstantLatency(double value);
    [[nodiscard]] double sample(Rng& rng) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] AgingClass aging() const override { return AgingClass::kPositiveAging; }
    [[nodiscard]] std::string name() const override;

private:
    double value_;
};

/// Uniform on [lo, hi]; positive aging.
class UniformLatency final : public LatencyModel {
public:
    UniformLatency(double lo, double hi);
    [[nodiscard]] double sample(Rng& rng) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] AgingClass aging() const override { return AgingClass::kPositiveAging; }
    [[nodiscard]] std::string name() const override;

private:
    double lo_;
    double hi_;
};

/// Gamma(shape, scale); positive aging for shape >= 1, negative otherwise.
class GammaLatency final : public LatencyModel {
public:
    GammaLatency(double shape, double scale);
    [[nodiscard]] double sample(Rng& rng) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] AgingClass aging() const override;
    [[nodiscard]] std::string name() const override;

private:
    double shape_;
    double scale_;
};

/// Weibull(shape, scale); positive aging for shape >= 1, negative otherwise.
class WeibullLatency final : public LatencyModel {
public:
    WeibullLatency(double shape, double scale);
    [[nodiscard]] double sample(Rng& rng) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] AgingClass aging() const override;
    [[nodiscard]] std::string name() const override;

private:
    double shape_;
    double scale_;
};

/// LogNormal(mu, sigma); negative aging (heavy tail) — contrast model.
class LogNormalLatency final : public LatencyModel {
public:
    LogNormalLatency(double mu, double sigma);
    [[nodiscard]] double sample(Rng& rng) const override;
    [[nodiscard]] double mean() const override;
    [[nodiscard]] AgingClass aging() const override { return AgingClass::kNegativeAging; }
    [[nodiscard]] std::string name() const override;

private:
    double mu_;
    double sigma_;
};

/// Builds the paper's default model: Exponential with the given rate.
[[nodiscard]] std::unique_ptr<LatencyModel> make_exponential_latency(double rate);

/// Human-readable name of an aging class.
[[nodiscard]] const char* to_string(AgingClass aging);

}  // namespace papc::sim
