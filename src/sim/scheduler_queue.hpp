#pragma once

/// \file scheduler_queue.hpp
/// Pluggable scheduler-queue subsystem for the discrete-event engines.
///
/// Every asynchronous engine (async single-leader, §5 validated, cluster
/// multi-leader, and the clustering/broadcast helpers) drives its loop by
/// popping the earliest pending event. The ordering contract is shared:
/// events are ordered by (time, sequence number) — ties in time are broken
/// by insertion order — which keeps runs deterministic for a fixed seed
/// *independently of the implementation behind the interface*. Three
/// implementations are provided:
///
///   - BinaryHeapQueue: a plain binary min-heap. O(log n) push/pop with a
///     small constant; throughput degrades ~10x from 1k to 1M pending
///     events as the heap outgrows the caches.
///   - CalendarQueue: a bucketed wheel with dynamic resize and bucket-width
///     estimation (Brown '88; the ns-3 CalendarScheduler family). O(1)
///     amortized push/pop, flat scaling into the n >> 2^20 regime.
///   - LadderQueue: a lazy multi-tier bucket ladder (Tang/Goh/Thng '05
///     family). O(1) amortized with sorting deferred to the imminent
///     events; shines on skewed schedules with a large far-future tail.
///
/// The CalendarQueue reproduces the heap's pop order *exactly* (pinned by
/// the cross-implementation property tests): entries carry an integer
/// virtual-bucket index (floor(time / width)), buckets keep their entries
/// sorted, and the pop cursor walks virtual buckets in increasing order, so
/// the global (time, seq) minimum is always popped next — no floating-point
/// window arithmetic is consulted twice.
///
/// Select an implementation with QueueKind (queue_kind.hpp) through
/// make_scheduler_queue(); engine configs (async::AsyncConfig,
/// cluster::ClusterConfig) thread the knob to their simulations.
///
/// This header is the single home of the queue types: the legacy
/// sim/event_queue.hpp compatibility alias (EventQueue = BinaryHeapQueue)
/// was folded in here and then retired once its last consumer moved to
/// the interface.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "sim/queue_kind.hpp"
#include "sim/time.hpp"
#include "support/check.hpp"

namespace papc::sim {

/// One scheduled event: when, arrival order, and the engine payload.
template <typename Payload>
struct SchedulerEntry {
    Time time;
    std::uint64_t seq;
    Payload payload;
};

/// Interface of a discrete-event scheduler queue. Implementations must pop
/// in strict (time, seq) order and assign seq in push order, so any two
/// implementations fed the same pushes yield byte-identical pop sequences.
template <typename Payload>
class SchedulerQueue {
public:
    using Entry = SchedulerEntry<Payload>;

    virtual ~SchedulerQueue() = default;

    [[nodiscard]] bool empty() const { return size() == 0; }
    [[nodiscard]] virtual std::size_t size() const = 0;

    /// Time of the earliest event; queue must be non-empty.
    [[nodiscard]] virtual Time next_time() const = 0;

    virtual void push(Time time, Payload payload) = 0;

    /// Removes and returns the earliest event; queue must be non-empty.
    virtual Entry pop() = 0;

    /// Drops all pending events. The pushed() counter (and hence the seq
    /// tie-break stream) is *not* reset, so a reused queue stays
    /// deterministic relative to its full push history.
    virtual void clear() = 0;

    /// Total number of events ever pushed (diagnostics).
    [[nodiscard]] virtual std::uint64_t pushed() const = 0;

    /// Hint that ~n events will be pending at once; avoids early
    /// reallocation/resize churn. Never changes observable behaviour.
    virtual void reserve(std::size_t n) = 0;

    /// Which implementation this is (diagnostics / reports).
    [[nodiscard]] virtual QueueKind kind() const = 0;

protected:
    [[nodiscard]] static bool entry_less(const Entry& a, const Entry& b) {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
    }
};

/// Min-heap keyed on (time, seq) — the original EventQueue implementation.
template <typename Payload>
class BinaryHeapQueue final : public SchedulerQueue<Payload> {
public:
    using Entry = SchedulerEntry<Payload>;

    [[nodiscard]] std::size_t size() const override { return heap_.size(); }

    [[nodiscard]] Time next_time() const override {
        PAPC_CHECK(!heap_.empty());
        return heap_.front().time;
    }

    void push(Time time, Payload payload) override {
        heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
        sift_up(heap_.size() - 1);
    }

    Entry pop() override {
        PAPC_CHECK(!heap_.empty());
        Entry top = std::move(heap_.front());
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty()) sift_down(0);
        return top;
    }

    void clear() override { heap_.clear(); }

    [[nodiscard]] std::uint64_t pushed() const override { return next_seq_; }

    void reserve(std::size_t n) override { heap_.reserve(n); }

    [[nodiscard]] QueueKind kind() const override {
        return QueueKind::kBinaryHeap;
    }

private:
    using SchedulerQueue<Payload>::entry_less;

    void sift_up(std::size_t i) {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!entry_less(heap_[i], heap_[parent])) break;
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void sift_down(std::size_t i) {
        const std::size_t n = heap_.size();
        for (;;) {
            const std::size_t left = 2 * i + 1;
            const std::size_t right = 2 * i + 2;
            std::size_t smallest = i;
            if (left < n && entry_less(heap_[left], heap_[smallest])) {
                smallest = left;
            }
            if (right < n && entry_less(heap_[right], heap_[smallest])) {
                smallest = right;
            }
            if (smallest == i) break;
            std::swap(heap_[i], heap_[smallest]);
            i = smallest;
        }
    }

    std::vector<Entry> heap_;
    std::uint64_t next_seq_ = 0;
};

/// Calendar queue (bucketed wheel). Each entry is assigned an integer
/// *virtual bucket* vb = floor(time / width); physical bucket = vb mod
/// bucket-count. Buckets hold their entries sorted (stored descending so
/// the minimum pops from the back in O(1)). A cursor walks virtual buckets
/// in increasing order; because vb is computed once per entry per width and
/// compared exactly, the pop order is the exact (time, seq) order — float
/// drift cannot reorder events. The wheel rebuilds (new bucket count and/or
/// re-estimated width) as the population grows, shrinks, or its density
/// changes, keeping O(1) entries per bucket over the dense head of the
/// schedule; far-future outliers simply park in high virtual buckets and
/// are reached via a direct minimum search when the wheel wraps empty.
///
/// Events that arrive *behind* the cursor (vb < cursor) do not reset it —
/// the classic calendar queue does, and then re-walks the same empty
/// stretch after every such reset, which degrades badly on skewed
/// schedules where fresh near-term events race far ahead of the parked
/// bulk. They go to a small auxiliary min-heap (the *front yard*) instead.
/// Every wheel entry has vb >= cursor and every front-yard entry has
/// vb < cursor, and vb is monotone in time, so whenever the front yard is
/// non-empty its top IS the global (time, seq) minimum — pops stay exact,
/// the cursor stays monotone, and in the worst case (everything behind the
/// cursor) the structure degrades gracefully into the binary heap. The
/// yard is folded back into the wheel at every rebuild.
template <typename Payload>
class CalendarQueue final : public SchedulerQueue<Payload> {
public:
    using Entry = SchedulerEntry<Payload>;

    CalendarQueue() : buckets_(kMinBuckets) {}

    [[nodiscard]] std::size_t size() const override { return size_; }

    /// Amortized-cheap in the common case: walks virtual buckets from the
    /// cursor (like pop(), but without advancing it) and returns the first
    /// hit; a wheel with nothing in the cursor's year degrades to a full
    /// scan, so avoid per-event peeks on very sparse schedules.
    [[nodiscard]] Time next_time() const override {
        PAPC_CHECK(size_ > 0);
        // Front-yard entries sit strictly before every wheel entry.
        if (!yard_.empty()) return yard_.front().time;
        const std::size_t n = buckets_.size();
        std::uint64_t vb = cursor_vb_;
        for (std::size_t scanned = 0; scanned < n; ++scanned, ++vb) {
            const auto& bucket = buckets_[static_cast<std::size_t>(vb % n)];
            if (!bucket.empty() && virtual_bucket(bucket.back().time) == vb) {
                return bucket.back().time;
            }
        }
        return buckets_[min_bucket_index()].back().time;
    }

    void push(Time time, Payload payload) override {
        const std::uint64_t vb = virtual_bucket(time);
        ++size_;
        if (vb < cursor_vb_) {
            // Behind the cursor: into the front yard (see file comment).
            yard_.push_back(Entry{time, next_seq_++, std::move(payload)});
            std::push_heap(yard_.begin(), yard_.end(), entry_greater);
        } else {
            Entry entry{time, next_seq_++, std::move(payload)};
            auto& bucket = bucket_for(vb);
            // Buckets are sorted descending by (time, seq); find the first
            // strictly-smaller entry and insert before it.
            const auto pos = std::upper_bound(
                bucket.begin(), bucket.end(), entry,
                [](const Entry& value, const Entry& element) {
                    return entry_less(element, value);
                });
            bucket.insert(pos, std::move(entry));
        }
        if (size_ > 2 * kOccupancy * buckets_.size()) {
            rebuild(bucket_count_for(size_));
        } else if (size_ >= kWidthSampleMin && size_ > 4 * rebuild_size_) {
            // The population grew a lot without outgrowing the wheel
            // (e.g. after reserve()): re-estimate the bucket width so it
            // tracks the denser schedule.
            rebuild(buckets_.size());
        }
    }

    Entry pop() override {
        PAPC_CHECK(size_ > 0);
        if (!yard_.empty()) {
            std::pop_heap(yard_.begin(), yard_.end(), entry_greater);
            Entry entry = std::move(yard_.back());
            yard_.pop_back();
            --size_;
            maybe_shrink();
            return entry;
        }
        const std::size_t n = buckets_.size();
        for (std::size_t scanned = 0; scanned < n; ++scanned) {
            auto& bucket = bucket_for(cursor_vb_);
            if (!bucket.empty() &&
                virtual_bucket(bucket.back().time) == cursor_vb_) {
                return take_back(bucket);
            }
            ++cursor_vb_;
        }
        // Wrapped a whole year without a hit (sparse schedule or
        // far-future outliers): jump to the globally earliest entry.
        auto& bucket = buckets_[min_bucket_index()];
        cursor_vb_ = virtual_bucket(bucket.back().time);
        return take_back(bucket);
    }

    void clear() override {
        for (auto& bucket : buckets_) bucket.clear();
        yard_.clear();
        size_ = 0;
        cursor_vb_ = 0;
        rebuild_size_ = 0;
        // width_, the bucket count, and pushed() survive, mirroring
        // BinaryHeapQueue::clear (which keeps its seq counter).
    }

    [[nodiscard]] std::uint64_t pushed() const override { return next_seq_; }

    void reserve(std::size_t n) override {
        // Pre-size the wheel only; the width is still estimated from live
        // entries at the staged rebuild points in push().
        if (size_ == 0) {
            const std::size_t target = bucket_count_for(n);
            if (target > buckets_.size()) {
                buckets_.assign(target, {});
            }
        }
    }

    [[nodiscard]] QueueKind kind() const override {
        return QueueKind::kCalendar;
    }

private:
    using SchedulerQueue<Payload>::entry_less;

    static constexpr std::size_t kMinBuckets = 4;
    static constexpr std::size_t kMaxBuckets = std::size_t{1} << 24;
    /// Target entries per bucket. A few entries per bucket beats one: the
    /// bucket-header array is 4x smaller (fewer cache/TLB misses per
    /// random push) while the in-bucket sorted insert still moves only a
    /// couple of entries.
    static constexpr std::size_t kOccupancy = 4;
    /// Population size below which width estimation is pointless.
    static constexpr std::size_t kWidthSampleMin = 32;
    /// Entries sampled (from the sorted head) for width estimation.
    static constexpr std::size_t kWidthSampleMax = 256;
    /// Virtual buckets are capped at 2^53 (exact in a double); everything
    /// further out shares the top bucket, which stays correct (same
    /// bucket + sorted) and only matters for pathological times.
    static constexpr std::uint64_t kMaxVb = std::uint64_t{1} << 53;

    /// floor(time / width), clamped to [0, kMaxVb]. Exact and monotone in
    /// `time` for a fixed width; width only changes at rebuild(), which
    /// redistributes every entry, so recomputing on demand (instead of
    /// storing per entry) always agrees with the push-time value.
    [[nodiscard]] std::uint64_t virtual_bucket(Time time) const {
        if (!(time > 0.0)) return 0;
        const double vb = time / width_;
        if (vb >= static_cast<double>(kMaxVb)) return kMaxVb;
        return static_cast<std::uint64_t>(vb);
    }

    [[nodiscard]] std::vector<Entry>& bucket_for(std::uint64_t vb) {
        return buckets_[static_cast<std::size_t>(vb % buckets_.size())];
    }

    [[nodiscard]] static std::size_t bucket_count_for(std::size_t n) {
        const std::size_t target = n / kOccupancy;
        std::size_t count = kMinBuckets;
        while (count < target && count < kMaxBuckets) count *= 2;
        return count;
    }

    /// Min-heap comparator for the front yard (std::*_heap are max-heaps).
    [[nodiscard]] static bool entry_greater(const Entry& a, const Entry& b) {
        return entry_less(b, a);
    }

    Entry take_back(std::vector<Entry>& bucket) {
        Entry entry = std::move(bucket.back());
        bucket.pop_back();
        --size_;
        maybe_shrink();
        return entry;
    }

    /// Shrinks only once the wheel is ~8x oversized (vs the 2x grow
    /// slack). The wide hysteresis keeps a reserve()-pre-sized wheel
    /// intact while the population ramps towards the hint — a 2x-tight
    /// threshold would throw the reservation away on the first pop — and
    /// oversized wheels only cost cheap empty-bucket scan steps.
    void maybe_shrink() {
        if (buckets_.size() > kMinBuckets &&
            size_ < kOccupancy * buckets_.size() / 8) {
            rebuild(bucket_count_for(size_));
        }
    }

    /// Index of the bucket holding the globally earliest entry; wheel must
    /// be non-empty.
    [[nodiscard]] std::size_t min_bucket_index() const {
        const std::vector<Entry>* best = nullptr;
        std::size_t best_index = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            const auto& bucket = buckets_[i];
            if (bucket.empty()) continue;
            if (best == nullptr || entry_less(bucket.back(), best->back())) {
                best = &bucket;
                best_index = i;
            }
        }
        PAPC_CHECK(best != nullptr);
        return best_index;
    }

    /// Bucket width from the average spacing of the sorted schedule head
    /// (robust against far-future outliers); Brown '88 recommends ~3x the
    /// mean gap, scaled by the occupancy target so a bucket holds
    /// ~kOccupancy events. Tie bursts carry no density signal and keep the
    /// current width.
    [[nodiscard]] double estimate_width(const std::vector<Entry>& sorted) const {
        if (sorted.size() < 2) return width_;
        const std::size_t sample = std::min(sorted.size(), kWidthSampleMax);
        const double span = sorted[sample - 1].time - sorted[0].time;
        if (!(span > 0.0)) return width_;
        return 3.0 * static_cast<double>(kOccupancy) * span /
               static_cast<double>(sample - 1);
    }

    void rebuild(std::size_t new_bucket_count) {
        std::vector<Entry> all;
        all.reserve(size_);
        for (auto& bucket : buckets_) {
            for (auto& entry : bucket) all.push_back(std::move(entry));
            bucket.clear();
        }
        // Fold the front yard back into the wheel (the rebuilt cursor
        // starts at the global minimum, so nothing stays behind it).
        for (auto& entry : yard_) all.push_back(std::move(entry));
        yard_.clear();
        std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
            return entry_less(a, b);
        });
        width_ = estimate_width(all);
        if (new_bucket_count != buckets_.size()) {
            buckets_.assign(new_bucket_count, {});
        }
        cursor_vb_ = all.empty() ? 0 : virtual_bucket(all.front().time);
        // Distribute largest-first so each (descending) bucket stays sorted
        // with plain push_back.
        for (auto it = all.rbegin(); it != all.rend(); ++it) {
            bucket_for(virtual_bucket(it->time)).push_back(std::move(*it));
        }
        rebuild_size_ = size_;
    }

    std::vector<std::vector<Entry>> buckets_;
    std::vector<Entry> yard_;       ///< min-heap of entries behind the cursor
    std::size_t size_ = 0;          ///< wheel + yard entries
    std::uint64_t next_seq_ = 0;
    double width_ = 1.0;
    std::uint64_t cursor_vb_ = 0;   ///< all wheel entries have vb >= this
    std::size_t rebuild_size_ = 0;  ///< size at the last width estimation
};

/// Ladder queue (Tang/Goh/Thng '05 family). Three tiers:
///
///   - Top: an unsorted overflow list for the far future — every entry with
///     time >= the top threshold parks here untouched; pushes are O(1).
///   - Rungs: when events are needed below the threshold, the relevant span
///     is split into equal-width buckets (unsorted). A bucket that is still
///     too big when its turn comes is *recursively* split into a finer rung,
///     so sorting effort concentrates on the imminent events only.
///   - Bottom: the current earliest bucket, sorted (descending, min pops
///     from the back in O(1)).
///
/// The pop order is the exact global (time, seq) order, pinned by the
/// tier invariants: bottom entries sort before every rung entry, rung i+1
/// refines the span of rung i below its cursor, and top entries lie at or
/// beyond the threshold — each transfer sorts with the same entry_less the
/// other implementations use, so ties still resolve by push order.
///
/// Degeneracy guards (the classic structure's failure modes):
///   - a tie burst (zero time span) cannot be subdivided — the bucket is
///     sorted straight into Bottom whatever its size;
///   - rung recursion is capped at kMaxRungs, after which buckets are
///     sorted directly (graceful degradation to an insertion-sorted list);
///   - a Bottom below kBottomMax entries skips rung spawning entirely, so
///     small schedules (the per-shard executor queues with ~2 pending
///     events per node) never pay the ladder machinery.
template <typename Payload>
class LadderQueue final : public SchedulerQueue<Payload> {
public:
    using Entry = SchedulerEntry<Payload>;

    [[nodiscard]] std::size_t size() const override { return size_; }

    [[nodiscard]] Time next_time() const override {
        PAPC_CHECK(size_ > 0);
        // Lazily normalize so the minimum sits sorted in Bottom; pop order
        // is unaffected (the same refill would run on the next pop).
        const_cast<LadderQueue*>(this)->ensure_bottom();
        return bottom_.back().time;
    }

    void push(Time time, Payload payload) override {
        Entry entry{time, next_seq_++, std::move(payload)};
        ++size_;
        if (time >= top_threshold_) {
            if (top_.empty() || time < top_min_) top_min_ = time;
            if (top_.empty() || time > top_max_) top_max_ = time;
            top_.push_back(std::move(entry));
            return;
        }
        // Coarsest rung first: cursor starts strictly decrease down the
        // ladder, so the first rung whose cursor lies at or before `time`
        // is the one whose remaining span contains it. A fully drained
        // rung (cursor past the last bucket) has no capacity left and is
        // skipped: every entry still below it is earlier than its span
        // end, so falling through to a finer rung's clamped last bucket
        // or to the sorted Bottom keeps the exact pop order.
        for (auto& rung : rungs_) {
            if (rung.cur >= rung.buckets.size()) continue;
            if (time >= rung.cur_start()) {
                rung.insert(std::move(entry));
                return;
            }
        }
        insert_bottom(std::move(entry));
        if (bottom_.size() > kBottomMax && rungs_.size() < kMaxRungs &&
            bottom_.front().time > bottom_.back().time) {
            // Bottom overflow: push the sorted run back out into a fresh
            // (finest) rung; subsequent pops re-sort only the head bucket.
            std::vector<Entry> entries = std::move(bottom_);
            bottom_.clear();
            spawn_rung(std::move(entries));
        }
    }

    Entry pop() override {
        PAPC_CHECK(size_ > 0);
        ensure_bottom();
        Entry entry = std::move(bottom_.back());
        bottom_.pop_back();
        --size_;
        return entry;
    }

    void clear() override {
        top_.clear();
        rungs_.clear();
        bottom_.clear();
        size_ = 0;
        top_threshold_ = -std::numeric_limits<Time>::infinity();
        // pushed() survives, mirroring the other implementations.
    }

    [[nodiscard]] std::uint64_t pushed() const override { return next_seq_; }

    void reserve(std::size_t n) override { top_.reserve(n); }

    [[nodiscard]] QueueKind kind() const override { return QueueKind::kLadder; }

private:
    using SchedulerQueue<Payload>::entry_less;

    /// Bottom size beyond which an overflow spawns a rung instead of
    /// insertion-sorting further pushes.
    static constexpr std::size_t kBottomMax = 48;
    /// Rung recursion cap (tie-adjacent spans can resist subdivision).
    static constexpr std::size_t kMaxRungs = 8;
    /// Bucket-count cap per rung.
    static constexpr std::size_t kMaxRungBuckets = std::size_t{1} << 20;

    struct Rung {
        Time base = 0.0;      ///< start of bucket 0
        double width = 1.0;   ///< bucket span
        std::size_t cur = 0;  ///< buckets before this are drained
        std::size_t count = 0;
        std::vector<std::vector<Entry>> buckets;

        [[nodiscard]] Time cur_start() const {
            return base + static_cast<double>(cur) * width;
        }

        [[nodiscard]] std::size_t index_of(Time time) const {
            const double offset = (time - base) / width;
            std::size_t idx = 0;
            if (offset >= static_cast<double>(buckets.size())) {
                idx = buckets.size() - 1;
            } else if (offset > 0.0) {
                idx = static_cast<std::size_t>(offset);
            }
            // Float edges never send an entry behind the cursor.
            return idx < cur ? cur : idx;
        }

        void insert(Entry entry) {
            buckets[index_of(entry.time)].push_back(std::move(entry));
            ++count;
        }
    };

    void insert_bottom(Entry entry) {
        // Sorted descending by (time, seq): minimum pops from the back.
        const auto pos = std::upper_bound(
            bottom_.begin(), bottom_.end(), entry,
            [](const Entry& value, const Entry& element) {
                return entry_less(element, value);
            });
        bottom_.insert(pos, std::move(entry));
    }

    static void sort_descending(std::vector<Entry>& entries) {
        std::sort(entries.begin(), entries.end(),
                  [](const Entry& a, const Entry& b) {
                      return entry_less(b, a);
                  });
    }

    /// Appends a new finest rung holding `entries` (must be non-empty with
    /// a positive time span).
    void spawn_rung(std::vector<Entry> entries) {
        Time min_time = entries.front().time;
        Time max_time = entries.front().time;
        for (const Entry& entry : entries) {
            min_time = std::min(min_time, entry.time);
            max_time = std::max(max_time, entry.time);
        }
        Rung rung;
        rung.base = min_time;
        const std::size_t n_buckets =
            std::min(entries.size(), kMaxRungBuckets);
        // Strictly cover [min, max]: the +1 bucket absorbs the maximum
        // (and float round-up) instead of an index clamp funneling a pileup
        // into the last bucket.
        rung.width = (max_time - min_time) / static_cast<double>(n_buckets);
        rung.buckets.resize(n_buckets + 1);
        for (Entry& entry : entries) rung.insert(std::move(entry));
        rungs_.push_back(std::move(rung));
    }

    /// Moves the next batch of earliest events into Bottom (sorted).
    /// Requires size_ > 0; afterwards bottom_ is non-empty.
    void ensure_bottom() {
        while (bottom_.empty()) {
            if (rungs_.empty()) {
                // All near events drained: pull the Top overflow down.
                PAPC_CHECK(!top_.empty());
                std::vector<Entry> entries = std::move(top_);
                top_.clear();
                if (entries.size() > kBottomMax && rungs_.size() < kMaxRungs &&
                    top_max_ > top_min_) {
                    // New far-future pushes regenerate Top above the old
                    // maximum; everything below it rungs down. Equal-time
                    // entries split across the boundary still pop in seq
                    // order (the rung's copies were pushed earlier).
                    top_threshold_ = top_max_;
                    spawn_rung(std::move(entries));
                } else {
                    top_threshold_ = std::numeric_limits<Time>::infinity();
                    sort_descending(entries);
                    bottom_ = std::move(entries);
                }
                continue;
            }
            Rung& rung = rungs_.back();
            if (rung.count == 0) {
                rungs_.pop_back();
                continue;
            }
            while (rung.buckets[rung.cur].empty()) ++rung.cur;
            std::vector<Entry>& bucket = rung.buckets[rung.cur];
            rung.count -= bucket.size();
            std::vector<Entry> entries = std::move(bucket);
            bucket.clear();
            ++rung.cur;
            Time bucket_min = entries.front().time;
            Time bucket_max = entries.front().time;
            for (const Entry& entry : entries) {
                bucket_min = std::min(bucket_min, entry.time);
                bucket_max = std::max(bucket_max, entry.time);
            }
            if (entries.size() > kBottomMax && rungs_.size() < kMaxRungs &&
                bucket_max > bucket_min) {
                // Still too coarse: recurse into a finer rung. (Note
                // `rung` may dangle after push_back — loop re-reads.)
                spawn_rung(std::move(entries));
            } else {
                sort_descending(entries);
                bottom_ = std::move(entries);
            }
        }
    }

    std::vector<Entry> top_;     ///< unsorted, time >= top_threshold_
    std::vector<Rung> rungs_;    ///< coarsest first; back() drains first
    std::vector<Entry> bottom_;  ///< sorted descending; min at back()
    Time top_min_ = 0.0;
    Time top_max_ = 0.0;
    /// Starts at -inf: every push parks in Top until the first drain
    /// observes the schedule and picks a real threshold.
    Time top_threshold_ = -std::numeric_limits<Time>::infinity();
    std::size_t size_ = 0;
    std::uint64_t next_seq_ = 0;
};

/// Builds the queue selected by `kind`, pre-sized for ~`reserve_hint`
/// concurrently pending events (0 = no hint).
template <typename Payload>
[[nodiscard]] std::unique_ptr<SchedulerQueue<Payload>> make_scheduler_queue(
    QueueKind kind, std::size_t reserve_hint = 0) {
    std::unique_ptr<SchedulerQueue<Payload>> queue;
    switch (kind) {
        case QueueKind::kBinaryHeap:
            queue = std::make_unique<BinaryHeapQueue<Payload>>();
            break;
        case QueueKind::kCalendar:
            queue = std::make_unique<CalendarQueue<Payload>>();
            break;
        case QueueKind::kLadder:
            queue = std::make_unique<LadderQueue<Payload>>();
            break;
    }
    PAPC_CHECK(queue != nullptr);
    if (reserve_hint > 0) queue->reserve(reserve_hint);
    return queue;
}

}  // namespace papc::sim
