#include "sim/poisson_clock.hpp"

#include "support/check.hpp"

namespace papc::sim {

PoissonClock::PoissonClock(double rate) : rate_(rate) {
    PAPC_CHECK(rate > 0.0);
}

Time PoissonClock::next_interval(Rng& rng) const {
    return rng.exponential(rate_);
}

std::uint64_t PoissonClock::ticks_in(Rng& rng, Time window) const {
    PAPC_CHECK(window >= 0.0);
    return rng.poisson(rate_ * window);
}

}  // namespace papc::sim
