#include "sim/latency.hpp"

#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace papc::sim {

const char* to_string(AgingClass aging) {
    switch (aging) {
        case AgingClass::kMemoryless: return "memoryless";
        case AgingClass::kPositiveAging: return "positive-aging";
        case AgingClass::kNegativeAging: return "negative-aging";
    }
    return "unknown";
}

ExponentialLatency::ExponentialLatency(double rate) : rate_(rate) {
    PAPC_CHECK(rate > 0.0);
}

double ExponentialLatency::sample(Rng& rng) const { return rng.exponential(rate_); }

double ExponentialLatency::mean() const { return 1.0 / rate_; }

std::string ExponentialLatency::name() const {
    std::ostringstream s;
    s << "Exponential(rate=" << rate_ << ")";
    return s.str();
}

ConstantLatency::ConstantLatency(double value) : value_(value) {
    PAPC_CHECK(value >= 0.0);
}

double ConstantLatency::sample(Rng&) const { return value_; }

double ConstantLatency::mean() const { return value_; }

std::string ConstantLatency::name() const {
    std::ostringstream s;
    s << "Constant(" << value_ << ")";
    return s.str();
}

UniformLatency::UniformLatency(double lo, double hi) : lo_(lo), hi_(hi) {
    PAPC_CHECK(lo >= 0.0 && hi >= lo);
}

double UniformLatency::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

double UniformLatency::mean() const { return 0.5 * (lo_ + hi_); }

std::string UniformLatency::name() const {
    std::ostringstream s;
    s << "Uniform[" << lo_ << ", " << hi_ << "]";
    return s.str();
}

GammaLatency::GammaLatency(double shape, double scale) : shape_(shape), scale_(scale) {
    PAPC_CHECK(shape > 0.0 && scale > 0.0);
}

double GammaLatency::sample(Rng& rng) const { return rng.gamma(shape_, scale_); }

double GammaLatency::mean() const { return shape_ * scale_; }

AgingClass GammaLatency::aging() const {
    if (shape_ == 1.0) return AgingClass::kMemoryless;
    return shape_ > 1.0 ? AgingClass::kPositiveAging : AgingClass::kNegativeAging;
}

std::string GammaLatency::name() const {
    std::ostringstream s;
    s << "Gamma(shape=" << shape_ << ", scale=" << scale_ << ")";
    return s.str();
}

WeibullLatency::WeibullLatency(double shape, double scale) : shape_(shape), scale_(scale) {
    PAPC_CHECK(shape > 0.0 && scale > 0.0);
}

double WeibullLatency::sample(Rng& rng) const { return rng.weibull(shape_, scale_); }

double WeibullLatency::mean() const {
    return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

AgingClass WeibullLatency::aging() const {
    if (shape_ == 1.0) return AgingClass::kMemoryless;
    return shape_ > 1.0 ? AgingClass::kPositiveAging : AgingClass::kNegativeAging;
}

std::string WeibullLatency::name() const {
    std::ostringstream s;
    s << "Weibull(shape=" << shape_ << ", scale=" << scale_ << ")";
    return s.str();
}

LogNormalLatency::LogNormalLatency(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    PAPC_CHECK(sigma > 0.0);
}

double LogNormalLatency::sample(Rng& rng) const { return rng.lognormal(mu_, sigma_); }

double LogNormalLatency::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

std::string LogNormalLatency::name() const {
    std::ostringstream s;
    s << "LogNormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
    return s.str();
}

std::unique_ptr<LatencyModel> make_exponential_latency(double rate) {
    return std::make_unique<ExponentialLatency>(rate);
}

}  // namespace papc::sim
