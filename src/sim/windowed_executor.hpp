#pragma once

/// \file windowed_executor.hpp
/// Parallel discrete-event executor: sharded event queues advanced in
/// conservative time windows.
///
/// The event-driven engine families (async single-leader, sequential,
/// validated, cluster multi-leader) historically popped one event at a
/// time off a single SchedulerQueue. This executor partitions the nodes
/// into a fixed number of *shards* — each with its own SchedulerQueue and
/// a per-window RNG substream — and advances the simulation window by
/// window: all shards process their pending events with timestamps in
/// [T_min, T_min + delta) in parallel on a support::ThreadPool, then a
/// barrier delivers cross-shard messages in deterministic shard order
/// before the next window opens.
///
/// Determinism contract (the PR 5 sharded-sync contract, extended to
/// events): a run's trajectory is a pure function of (seed, shard count,
/// window width delta) — never of the thread count, which worker a shard
/// lands on, or shard completion order. The pieces:
///
///   1. The node -> shard partition is a pure function of the node id
///      (contiguous blocks; shard_of()).
///   2. Within a window each shard drains its own queue in strict
///      (time, seq) order; same-shard events emitted inside the window
///      with a timestamp before the window end are processed in the same
///      window (the queue interleaves them exactly).
///   3. Every random draw comes from the shard's window substream
///      Rng::substream(window_counter, shard) — a pure function of the
///      executor's base generator state and the labels. The window
///      counter increments once per executed window (NOT floor(T/delta):
///      a cross-shard straggler can force two consecutive windows to
///      overlap in time, and a time-derived label would then replay the
///      previous window's draws).
///   4. Cross-shard emissions buffer in a per-shard outbox and are
///      delivered at the barrier on the driving thread, iterating shards
///      in index order and each outbox in emission order, so the target
///      queue's seq tie-break stream is reproducible.
///
/// Window semantics engines must code against (and tests pin):
///   - An event with timestamp exactly T_min + delta belongs to the NEXT
///     window (the window interval is half-open).
///   - A cross-shard send whose timestamp lands inside the current window
///     is delivered at the barrier and processed at the start of the next
///     window (it is a "straggler": the receiving shard has already
///     closed the window). Conservative lookahead delta trades this
///     bounded reordering for parallelism; engines therefore read remote
///     state through window-start snapshots they maintain themselves, so
///     the reordering never becomes a data race.
///   - Empty stretches of the time axis are skipped in one step: the next
///     window always starts at the globally earliest pending timestamp,
///     not at the end of the previous window.
///
/// The executor owns queues, windows, outboxes, substreams and the pool;
/// engines own all protocol state and pass a handler to run_window().
/// Handler discipline for parallel safety: an event for node v is handled
/// by shard_of(v) and may WRITE only state owned by that shard (v's node
/// state, the shard's scratch counters); it may READ remote state only
/// from snapshots taken between windows. ShardContext::emit() is the only
/// cross-shard channel.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "fault/injector.hpp"
#include "sim/queue_kind.hpp"
#include "sim/scheduler_queue.hpp"
#include "sim/time.hpp"
#include "support/check.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"

namespace papc::sim {

/// Default shard count. Fixed independently of the thread count (shard
/// count is part of the trajectory, thread count is not); 8 shards keep
/// up to 8 workers busy while the per-window merge stays cheap.
inline constexpr std::size_t kDefaultWindowShards = 8;

/// Default conservative window width for an Exponential(lambda) channel
/// model with rate-1 Poisson node clocks. The lookahead must sit well
/// below the protocol's decision timescales (the leader windows span
/// multiple time units) while batching enough events to amortize the
/// barrier: a quarter time unit holds ~n events at rate-1 ticks. Faster
/// channels (lambda > 1) compress the event spacing, so the window
/// shrinks proportionally; slower channels keep the tick-driven density.
[[nodiscard]] inline double default_window(double lambda) {
    return 0.25 / std::max(lambda, 1.0);
}

struct WindowedOptions {
    std::size_t shards = 0;   ///< 0 = kDefaultWindowShards
    std::size_t threads = 1;  ///< worker threads (never changes results)
    double window = 0.0;      ///< delta; <= 0 = default_window(lambda)
    double lambda = 1.0;      ///< channel rate used by the auto window
    QueueKind queue_kind = QueueKind::kBinaryHeap;
    std::size_t reserve_hint = 0;  ///< expected concurrently-pending events
    /// Optional fault injector (borrowed; must outlive the executor).
    /// Message-level faults apply only to emissions routed through
    /// ShardContext::emit_message(); nullptr or an inactive plan keeps
    /// the delivery path byte-identical to the fault-free executor.
    const fault::Injector* injector = nullptr;
};

template <typename Event>
class WindowedExecutor {
public:
    class ShardContext;

    WindowedExecutor(std::size_t n, const WindowedOptions& options,
                     const Rng& parent)
        : n_(n),
          shards_(options.shards > 0 ? options.shards : kDefaultWindowShards),
          window_(options.window > 0.0 ? options.window
                                       : default_window(options.lambda)),
          threads_(std::max<std::size_t>(1, options.threads)),
          base_rng_(parent),
          injector_(options.injector),
          message_faults_on_(options.injector != nullptr &&
                             options.injector->message_faults_active()) {
        PAPC_CHECK(n_ >= 1);
        PAPC_CHECK(window_ > 0.0);
        lanes_.reserve(shards_);
        const std::size_t hint =
            options.reserve_hint > 0 ? options.reserve_hint / shards_ + 1 : 0;
        for (std::size_t s = 0; s < shards_; ++s) {
            lanes_.push_back(std::make_unique<Lane>());
            lanes_.back()->queue =
                make_scheduler_queue<Event>(options.queue_kind, hint);
        }
        if (threads_ > 1) {
            pool_ = std::make_unique<support::ThreadPool>(threads_);
        }
    }

    /// Owning shard of a node id: contiguous blocks, so neighbouring nodes
    /// share cache lines with their shard.
    [[nodiscard]] std::size_t shard_of(std::size_t node) const {
        return node * shards_ / n_;
    }

    [[nodiscard]] std::size_t num_shards() const { return shards_; }
    [[nodiscard]] std::size_t threads() const { return threads_; }
    [[nodiscard]] double window_width() const { return window_; }

    /// Direct push outside a window (initial-event seeding, between-window
    /// injection). Single-threaded; seq follows call order.
    void seed(std::size_t shard, Time time, Event event) {
        PAPC_CHECK(shard < shards_);
        lanes_[shard]->queue->push(time, std::move(event));
    }

    [[nodiscard]] bool empty() const {
        for (const auto& lane : lanes_) {
            if (!lane->queue->empty()) return false;
        }
        return true;
    }

    /// Latest processed event timestamp (monotone across windows).
    [[nodiscard]] double now() const { return now_; }

    /// End of the last executed window.
    [[nodiscard]] double window_end() const { return window_end_; }

    [[nodiscard]] std::uint64_t windows_run() const { return window_counter_; }
    [[nodiscard]] std::uint64_t events_processed() const { return events_; }
    /// Cross-shard messages delivered behind the receiver's closed window
    /// (diagnostics for the lookahead/fidelity trade-off).
    [[nodiscard]] std::uint64_t stragglers() const { return stragglers_; }

    /// Executes one window: picks the globally earliest pending timestamp
    /// T_min, processes every shard's events in [T_min, T_min + delta) in
    /// parallel, then delivers cross-shard outboxes in shard order.
    /// Returns false (running nothing) when no events are pending.
    /// handler(ctx, time, event) must follow the ownership discipline in
    /// the file comment.
    template <typename Handler>
    bool run_window(Handler&& handler) {
        Time t_min = std::numeric_limits<Time>::infinity();
        for (const auto& lane : lanes_) {
            if (!lane->queue->empty()) {
                t_min = std::min(t_min, lane->queue->next_time());
            }
        }
        if (!(t_min < std::numeric_limits<Time>::infinity())) return false;

        const Time w_end = t_min + window_;
        window_end_ = w_end;
        ++window_counter_;

        const auto body = [&](std::size_t s, std::size_t /*worker*/) {
            Lane& lane = *lanes_[s];
            lane.rng = base_rng_.substream(window_counter_, s);
            if (message_faults_on_) {
                // Fault decisions draw from their own (window, shard)
                // substream, never the engine lane stream — attaching
                // faults must not shift the protocol tape.
                lane.fault_rng = injector_->message_stream(window_counter_, s);
            }
            lane.processed = 0;
            lane.last_time = now_;
            ShardContext ctx(*this, lane, s);
            SchedulerQueue<Event>& queue = *lane.queue;
            while (!queue.empty() && queue.next_time() < w_end) {
                auto entry = queue.pop();
                lane.last_time = entry.time;
                ++lane.processed;
                handler(ctx, entry.time, entry.payload);
            }
        };
        if (pool_ == nullptr) {
            for (std::size_t s = 0; s < shards_; ++s) body(s, 0);
        } else {
            pool_->parallel_for(shards_, body);
        }

        // Barrier: deliver outboxes in shard order, then fold counters.
        // Messages timestamped before w_end arrive behind the receiver's
        // closed window and run first thing next window ("stragglers").
        for (const auto& lane : lanes_) {
            for (auto& msg : lane->outbox) {
                if (msg.time < w_end) ++stragglers_;
                lanes_[msg.shard]->queue->push(msg.time, std::move(msg.event));
            }
            lane->outbox.clear();
            events_ += lane->processed;
            now_ = std::max(now_, lane->last_time);
            if (message_faults_on_) {
                faults_.lost += lane->faults.lost;
                faults_.duplicated += lane->faults.duplicated;
                faults_.corrupted += lane->faults.corrupted;
                faults_.delayed += lane->faults.delayed;
                lane->faults = fault::FaultCounters{};
            }
        }
        return true;
    }

    /// Message-fault tallies across all executed windows (all zero when no
    /// injector is attached or its message rates are zero).
    [[nodiscard]] const fault::FaultCounters& fault_counters() const {
        return faults_;
    }

private:
    struct Outgoing {
        std::size_t shard;
        Time time;
        Event event;
    };

    /// Per-shard lane. Heap-allocated so neighbouring shards' hot state
    /// never false-shares a cache line.
    struct Lane {
        std::unique_ptr<SchedulerQueue<Event>> queue;
        std::vector<Outgoing> outbox;
        Rng rng{0};
        Rng fault_rng{0};  ///< per-window message-fault substream
        fault::FaultCounters faults;  ///< folded at the barrier
        std::uint64_t processed = 0;
        Time last_time = 0.0;
    };

public:
    /// What an event handler sees: its shard's substream, its shard index,
    /// and the only legal cross-shard channel.
    class ShardContext {
    public:
        ShardContext(WindowedExecutor& executor, Lane& lane, std::size_t shard)
            : executor_(executor), lane_(lane), shard_(shard) {}

        [[nodiscard]] Rng& rng() { return lane_.rng; }
        [[nodiscard]] std::size_t shard() const { return shard_; }
        [[nodiscard]] double window_end() const {
            return executor_.window_end_;
        }

        /// Schedules `event` at `time` on `target` shard. Same-shard
        /// emissions land in the local queue immediately (and are still
        /// processed this window when time < window_end()); cross-shard
        /// emissions buffer in the outbox until the barrier.
        void emit(std::size_t target, Time time, Event event) {
            if (target == shard_) {
                lane_.queue->push(time, std::move(event));
            } else {
                lane_.outbox.push_back(
                    Outgoing{target, time, std::move(event)});
            }
        }

        /// Schedules a *message* — an emission that models a network send
        /// from `send_time` arriving at `arrive_time` — through the fault
        /// layer: it may be dropped, duplicated, corrupted
        /// (`corrupt(fault_rng, event)` rewrites the payload in place), or
        /// straggler-inflated (arrival stretched by the drawn multiplier).
        /// Self-events (ticks, exchange completions) must stay on emit():
        /// faults model the network, not a node's own clock. With no
        /// active injector this is exactly emit(target, arrive_time, ...).
        template <typename CorruptFn>
        void emit_message(std::size_t target, Time send_time,
                          Time arrive_time, Event event,
                          CorruptFn&& corrupt) {
            if (!executor_.message_faults_on_) {
                emit(target, arrive_time, std::move(event));
                return;
            }
            const fault::MessageFate fate =
                executor_.injector_->draw_fate(lane_.fault_rng);
            if (fate.drop) {
                ++lane_.faults.lost;
                return;
            }
            if (fate.corrupt) {
                ++lane_.faults.corrupted;
                corrupt(lane_.fault_rng, event);
            }
            Time at = arrive_time;
            if (fate.delay_multiplier > 1.0) {
                ++lane_.faults.delayed;
                at = send_time +
                     (arrive_time - send_time) * fate.delay_multiplier;
            }
            if (fate.duplicate) {
                ++lane_.faults.duplicated;
                Event copy = event;
                emit(target, at, std::move(copy));
            }
            emit(target, at, std::move(event));
        }

        /// Message emission with an uncorruptible payload (corruption
        /// still counts a fault draw, but rewrites nothing).
        void emit_message(std::size_t target, Time send_time,
                          Time arrive_time, Event event) {
            emit_message(target, send_time, arrive_time, std::move(event),
                         [](Rng&, Event&) {});
        }

    private:
        WindowedExecutor& executor_;
        Lane& lane_;
        std::size_t shard_;
    };

private:
    std::size_t n_;
    std::size_t shards_;
    double window_;
    std::size_t threads_;
    Rng base_rng_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    std::unique_ptr<support::ThreadPool> pool_;  ///< null when threads_ == 1

    const fault::Injector* injector_ = nullptr;
    bool message_faults_on_ = false;
    fault::FaultCounters faults_;

    double now_ = 0.0;
    double window_end_ = 0.0;
    std::uint64_t window_counter_ = 0;
    std::uint64_t events_ = 0;
    std::uint64_t stragglers_ = 0;
};

}  // namespace papc::sim
