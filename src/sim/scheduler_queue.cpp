#include "sim/scheduler_queue.hpp"

#include "support/check.hpp"

namespace papc::sim {

// The queue templates are header-only; instantiate every implementation
// once for build-error surfacing and to anchor the target's source list.
template class BinaryHeapQueue<int>;
template class CalendarQueue<int>;
template class LadderQueue<int>;

const char* to_string(QueueKind kind) {
    switch (kind) {
        case QueueKind::kBinaryHeap:
            return "heap";
        case QueueKind::kCalendar:
            return "calendar";
        case QueueKind::kLadder:
            return "ladder";
    }
    PAPC_CHECK(false);
}

std::optional<QueueKind> try_parse_queue_kind(const std::string& name) {
    if (name == "heap" || name == "binary-heap") {
        return QueueKind::kBinaryHeap;
    }
    if (name == "calendar") {
        return QueueKind::kCalendar;
    }
    if (name == "ladder") {
        return QueueKind::kLadder;
    }
    return std::nullopt;
}

QueueKind parse_queue_kind(const std::string& name) {
    const std::optional<QueueKind> kind = try_parse_queue_kind(name);
    PAPC_CHECK(kind.has_value() && "unknown queue kind");
    return *kind;
}

}  // namespace papc::sim
