#pragma once

/// \file queue_kind.hpp
/// Selection knob for the pluggable scheduler-queue subsystem
/// (scheduler_queue.hpp). Split into its own tiny header so configuration
/// structs (async::AsyncConfig, cluster::ClusterConfig) can name a kind
/// without pulling in the queue implementations.

#include <optional>
#include <string>

namespace papc::sim {

/// Which SchedulerQueue implementation backs a discrete-event engine.
/// All kinds honour the same deterministic (time, seq) pop contract, so
/// for a fixed seed the choice changes throughput only, never results.
enum class QueueKind {
    kBinaryHeap,  ///< O(log n) push/pop; best below ~2^16 pending events
    kCalendar,    ///< O(1) amortized bucketed wheel; flat scaling to n >> 2^20
    kLadder,      ///< lazy multi-tier bucket ladder; O(1) amortized, sorts
                  ///< only the imminent events (skewed/far-future schedules)
};

/// Short stable name ("heap" / "calendar" / "ladder") for reports and CLI
/// flags.
[[nodiscard]] const char* to_string(QueueKind kind);

/// Parses "heap" / "binary-heap" / "calendar" / "ladder"; nullopt on
/// anything else (use from CLI / user-input paths).
[[nodiscard]] std::optional<QueueKind> try_parse_queue_kind(
    const std::string& name);

/// Parses like try_parse_queue_kind but aborts on unknown names (use when
/// the name is internal, not user input).
[[nodiscard]] QueueKind parse_queue_kind(const std::string& name);

}  // namespace papc::sim
