#include "api/scenario.hpp"

#include <cmath>
#include <sstream>

#include "support/parse.hpp"

namespace papc::api {

const char* to_string(Workload workload) {
    switch (workload) {
        case Workload::kBiased: return "biased";
        case Workload::kTwoFrontRunners: return "two-front-runners";
        case Workload::kAdditiveGap: return "gap";
        case Workload::kUniform: return "uniform";
        case Workload::kZipf: return "zipf";
    }
    return "?";
}

bool try_parse_workload(const std::string& name, Workload* out) {
    if (name == "biased") *out = Workload::kBiased;
    else if (name == "two-front-runners") *out = Workload::kTwoFrontRunners;
    else if (name == "gap") *out = Workload::kAdditiveGap;
    else if (name == "uniform") *out = Workload::kUniform;
    else if (name == "zipf") *out = Workload::kZipf;
    else return false;
    return true;
}

namespace {

struct FieldSpec {
    const char* name;
    const char* help;
    std::string (*set)(Scenario&, const std::string&);
    std::string (*get)(const Scenario&);
};

std::string bad_value(const char* field, const std::string& value,
                      const char* expected) {
    return std::string("invalid value '") + value + "' for field '" + field +
           "' (expected " + expected + ")";
}

std::string format_double_field(double value) {
    std::ostringstream out;
    out << value;
    return out.str();
}

// One row per Scenario field. The macro-free table is verbose but keeps
// every field's parse/print/help in one place.
const FieldSpec kFields[] = {
    {"protocol", "protocol name from the registry (see --list-protocols)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (v.empty()) return bad_value("protocol", v, "a protocol name");
         s.protocol = v;
         return {};
     },
     [](const Scenario& s) { return s.protocol; }},
    {"n", "population size",
     [](Scenario& s, const std::string& v) -> std::string {
         std::uint64_t parsed = 0;
         if (!try_parse_u64(v, &parsed)) {
             return bad_value("n", v, "a non-negative integer");
         }
         s.n = static_cast<std::size_t>(parsed);
         return {};
     },
     [](const Scenario& s) { return std::to_string(s.n); }},
    {"k", "number of opinions",
     [](Scenario& s, const std::string& v) -> std::string {
         std::uint64_t parsed = 0;
         if (!try_parse_u64(v, &parsed) || parsed > 0xFFFFFFFFULL) {
             return bad_value("k", v, "a non-negative integer");
         }
         s.k = static_cast<std::uint32_t>(parsed);
         return {};
     },
     [](const Scenario& s) { return std::to_string(s.k); }},
    {"alpha", "initial multiplicative bias of opinion 0",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.alpha)) {
             return bad_value("alpha", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.alpha); }},
    {"workload", "biased | two-front-runners | gap | uniform | zipf",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_workload(v, &s.workload)) {
             return bad_value("workload", v,
                              "biased, two-front-runners, gap, uniform or zipf");
         }
         return {};
     },
     [](const Scenario& s) { return std::string(to_string(s.workload)); }},
    {"zipf-s", "Zipf exponent (workload=zipf)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.zipf_s)) {
             return bad_value("zipf-s", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.zipf_s); }},
    {"gap", "additive gap in nodes (workload=gap; 0 = n/10)",
     [](Scenario& s, const std::string& v) -> std::string {
         std::uint64_t parsed = 0;
         if (!try_parse_u64(v, &parsed)) {
             return bad_value("gap", v, "a non-negative integer");
         }
         s.gap = static_cast<std::size_t>(parsed);
         return {};
     },
     [](const Scenario& s) { return std::to_string(s.gap); }},
    {"tail-fraction", "background mass (workload=two-front-runners)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.tail_fraction)) {
             return bad_value("tail-fraction", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.tail_fraction); }},
    {"lambda", "channel-establishment rate (async/cluster families)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.lambda)) {
             return bad_value("lambda", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.lambda); }},
    {"msg-rate", "per-message rate (validated protocol)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.msg_rate)) {
             return bad_value("msg-rate", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.msg_rate); }},
    {"gamma", "generation-density threshold (sync Algorithm 1)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.gamma)) {
             return bad_value("gamma", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.gamma); }},
    {"threads", "intra-run worker threads (sync + event-driven families; "
                "results identical at any count)",
     [](Scenario& s, const std::string& v) -> std::string {
         std::uint64_t parsed = 0;
         if (!try_parse_u64(v, &parsed)) {
             return bad_value("threads", v, "a positive integer");
         }
         s.threads = static_cast<std::size_t>(parsed);
         return {};
     },
     [](const Scenario& s) { return std::to_string(s.threads); }},
    {"window", "event-executor window width in time units (0 = auto from "
               "lambda)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.window)) {
             return bad_value("window", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.window); }},
    {"epsilon", "(1-eps)-agreement threshold",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.epsilon)) {
             return bad_value("epsilon", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.epsilon); }},
    {"max-steps", "round/interaction budget (0 = family default)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_u64(v, &s.max_steps)) {
             return bad_value("max-steps", v, "a non-negative integer");
         }
         return {};
     },
     [](const Scenario& s) { return std::to_string(s.max_steps); }},
    {"max-time", "simulated-time budget (event-driven families)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.max_time)) {
             return bad_value("max-time", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.max_time); }},
    {"record-series", "record the plurality-fraction series (true/false)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_bool(v, &s.record_series)) {
             return bad_value("record-series", v, "true or false");
         }
         return {};
     },
     [](const Scenario& s) {
         return std::string(s.record_series ? "true" : "false");
     }},
    {"record-every", "recording cadence in rounds/interactions (0 = default)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_u64(v, &s.record_every)) {
             return bad_value("record-every", v, "a non-negative integer");
         }
         return {};
     },
     [](const Scenario& s) { return std::to_string(s.record_every); }},
    {"sample-interval", "event-driven sampling metronome (time steps)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.sample_interval)) {
             return bad_value("sample-interval", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.sample_interval); }},
    {"queue", "heap | calendar | ladder scheduler queue (event-driven "
              "families)",
     [](Scenario& s, const std::string& v) -> std::string {
         const auto parsed = sim::try_parse_queue_kind(v);
         if (!parsed.has_value()) {
             return bad_value("queue", v, "heap, calendar or ladder");
         }
         s.queue_kind = *parsed;
         return {};
     },
     [](const Scenario& s) { return std::string(sim::to_string(s.queue_kind)); }},
    {"fault_loss", "per-message drop probability (fault layer)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.fault_loss)) {
             return bad_value("fault_loss", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.fault_loss); }},
    {"fault_dup", "per-message duplication probability (fault layer)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.fault_dup)) {
             return bad_value("fault_dup", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.fault_dup); }},
    {"fault_corrupt", "per-message payload-corruption probability (fault "
                      "layer)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.fault_corrupt)) {
             return bad_value("fault_corrupt", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.fault_corrupt); }},
    {"fault_crash_rate", "per-node exponential crash rate (fault layer)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.fault_crash_rate)) {
             return bad_value("fault_crash_rate", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.fault_crash_rate); }},
    {"fault_recover_rate", "per-node exponential recover rate (0 = crashed "
                           "nodes stay down)",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.fault_recover_rate)) {
             return bad_value("fault_recover_rate", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) {
         return format_double_field(s.fault_recover_rate);
     }},
    {"fault_straggler_frac", "fraction of messages with heavy-tailed extra "
                             "delay",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.fault_straggler_frac)) {
             return bad_value("fault_straggler_frac", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) {
         return format_double_field(s.fault_straggler_frac);
     }},
    {"fault_straggler_scale", "scale of the Pareto straggler multiplier",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.fault_straggler_scale)) {
             return bad_value("fault_straggler_scale", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) {
         return format_double_field(s.fault_straggler_scale);
     }},
    {"byzantine_frac", "fraction of byzantine (adversarial) nodes",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!try_parse_double(v, &s.byzantine_frac)) {
             return bad_value("byzantine_frac", v, "a number");
         }
         return {};
     },
     [](const Scenario& s) { return format_double_field(s.byzantine_frac); }},
    {"byzantine_policy", "fixed | random | adaptive byzantine reporting "
                         "policy",
     [](Scenario& s, const std::string& v) -> std::string {
         if (!fault::try_parse_byzantine_policy(v, &s.byzantine_policy)) {
             return bad_value("byzantine_policy", v,
                              "fixed, random or adaptive");
         }
         return {};
     },
     [](const Scenario& s) {
         return std::string(fault::to_string(s.byzantine_policy));
     }},
};

const FieldSpec* find_field(const std::string& name) {
    for (const FieldSpec& spec : kFields) {
        if (name == spec.name) return &spec;
    }
    return nullptr;
}

}  // namespace

std::vector<std::string> validate(const Scenario& scenario) {
    std::vector<std::string> problems;
    const auto complain = [&problems](const std::string& message) {
        problems.push_back(message);
    };
    if (scenario.protocol.empty()) complain("protocol must be non-empty");
    if (scenario.n < 2) complain("n must be >= 2");
    if (scenario.k < 2) complain("k must be >= 2");
    if (!(scenario.alpha >= 1.0) || !std::isfinite(scenario.alpha)) {
        complain("alpha must be >= 1");
    }
    if (!(scenario.zipf_s > 0.0)) complain("zipf-s must be > 0");
    if (scenario.gap >= scenario.n && scenario.gap != 0) {
        complain("gap must be < n");
    }
    if (!(scenario.tail_fraction >= 0.0) || scenario.tail_fraction >= 1.0) {
        complain("tail-fraction must be in [0, 1)");
    }
    if (!(scenario.lambda > 0.0)) complain("lambda must be > 0");
    if (!(scenario.msg_rate > 0.0)) complain("msg-rate must be > 0");
    if (!(scenario.gamma > 0.0) || scenario.gamma > 1.0) {
        complain("gamma must be in (0, 1]");
    }
    if (scenario.threads < 1 || scenario.threads > 1024) {
        complain("threads must be in [1, 1024]");
    }
    if (!(scenario.window >= 0.0) || !std::isfinite(scenario.window)) {
        complain("window must be >= 0");
    }
    if (!(scenario.epsilon > 0.0) || scenario.epsilon >= 1.0) {
        complain("epsilon must be in (0, 1)");
    }
    if (!(scenario.max_time > 0.0)) complain("max-time must be > 0");
    if (!(scenario.sample_interval > 0.0)) {
        complain("sample-interval must be > 0");
    }
    // Fault-field constraints live with the plan (the messages name the
    // scenario fields).
    fault_plan(scenario).validate(&problems);
    return problems;
}

fault::FaultPlan fault_plan(const Scenario& scenario) {
    fault::FaultPlan plan;
    plan.loss = scenario.fault_loss;
    plan.duplication = scenario.fault_dup;
    plan.corruption = scenario.fault_corrupt;
    plan.crash_rate = scenario.fault_crash_rate;
    plan.recover_rate = scenario.fault_recover_rate;
    plan.straggler_fraction = scenario.fault_straggler_frac;
    plan.straggler_scale = scenario.fault_straggler_scale;
    plan.byzantine_fraction = scenario.byzantine_frac;
    plan.byzantine_policy = scenario.byzantine_policy;
    return plan;
}

const std::vector<std::string>& scenario_field_names() {
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const FieldSpec& spec : kFields) out.emplace_back(spec.name);
        return out;
    }();
    return names;
}

std::string set_field(Scenario& scenario, const std::string& field,
                      const std::string& value) {
    const FieldSpec* spec = find_field(field);
    if (spec == nullptr) return "unknown scenario field '" + field + "'";
    return spec->set(scenario, value);
}

std::string get_field(const Scenario& scenario, const std::string& field) {
    const FieldSpec* spec = find_field(field);
    if (spec == nullptr) return {};
    return spec->get(scenario);
}

std::string field_help(const std::string& field) {
    const FieldSpec* spec = find_field(field);
    if (spec == nullptr) return {};
    return spec->help;
}

void write_json(JsonWriter& writer, const Scenario& scenario) {
    writer.begin_object();
    writer.kv("protocol", scenario.protocol);
    writer.kv("n", static_cast<std::uint64_t>(scenario.n));
    writer.kv("k", static_cast<std::uint64_t>(scenario.k));
    writer.kv("alpha", scenario.alpha);
    writer.kv("workload", to_string(scenario.workload));
    writer.kv("zipf-s", scenario.zipf_s);
    writer.kv("gap", static_cast<std::uint64_t>(scenario.gap));
    writer.kv("tail-fraction", scenario.tail_fraction);
    writer.kv("lambda", scenario.lambda);
    writer.kv("msg-rate", scenario.msg_rate);
    writer.kv("gamma", scenario.gamma);
    writer.kv("threads", static_cast<std::uint64_t>(scenario.threads));
    writer.kv("window", scenario.window);
    writer.kv("epsilon", scenario.epsilon);
    writer.kv("max-steps", scenario.max_steps);
    writer.kv("max-time", scenario.max_time);
    writer.kv("record-series", scenario.record_series);
    writer.kv("record-every", scenario.record_every);
    writer.kv("sample-interval", scenario.sample_interval);
    writer.kv("queue", sim::to_string(scenario.queue_kind));
    writer.kv("fault_loss", scenario.fault_loss);
    writer.kv("fault_dup", scenario.fault_dup);
    writer.kv("fault_corrupt", scenario.fault_corrupt);
    writer.kv("fault_crash_rate", scenario.fault_crash_rate);
    writer.kv("fault_recover_rate", scenario.fault_recover_rate);
    writer.kv("fault_straggler_frac", scenario.fault_straggler_frac);
    writer.kv("fault_straggler_scale", scenario.fault_straggler_scale);
    writer.kv("byzantine_frac", scenario.byzantine_frac);
    writer.kv("byzantine_policy", fault::to_string(scenario.byzantine_policy));
    writer.end_object();
}

}  // namespace papc::api
