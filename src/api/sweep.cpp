#include "api/sweep.hpp"

#include "support/check.hpp"
#include "support/parse.hpp"
#include "support/random.hpp"

namespace papc::api {

namespace {

/// Splits on a separator, keeping empty tokens (they become errors).
std::vector<std::string> split(const std::string& text, char separator) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t pos = text.find(separator, start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

/// A range axis with more values than this is a typo, not an experiment
/// plan (it also bounds memory before any validation runs).
constexpr std::uint64_t kMaxRangeValues = 100000;

/// Expands one comma-separated value item: either a literal, or an
/// inclusive integer range "lo..hi" / "lo..hi..step".
std::string expand_value_item(const std::string& item,
                              std::vector<std::string>* values) {
    const std::size_t range_pos = item.find("..");
    if (range_pos == std::string::npos) {
        if (item.empty()) return "empty value in sweep axis";
        values->push_back(item);
        return {};
    }
    const std::string lo_text = item.substr(0, range_pos);
    std::string hi_text = item.substr(range_pos + 2);
    std::int64_t step = 1;
    const std::size_t step_pos = hi_text.find("..");
    if (step_pos != std::string::npos) {
        const std::string step_text = hi_text.substr(step_pos + 2);
        hi_text = hi_text.substr(0, step_pos);
        if (!try_parse_i64(step_text, &step) || step <= 0) {
            return "invalid range step in '" + item + "' (expected a positive integer)";
        }
    }
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!try_parse_i64(lo_text, &lo) || !try_parse_i64(hi_text, &hi)) {
        return "invalid range '" + item + "' (expected lo..hi integers)";
    }
    if (hi < lo) {
        return "empty range '" + item + "' (hi < lo)";
    }
    // Count first (in unsigned arithmetic, immune to hi near INT64_MAX),
    // then step exactly count-1 times so the counter never overflows.
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    const std::uint64_t count = span / static_cast<std::uint64_t>(step) + 1;
    if (count > kMaxRangeValues) {
        return "range '" + item + "' expands to " + std::to_string(count) +
               " values (limit " + std::to_string(kMaxRangeValues) + ")";
    }
    std::int64_t v = lo;
    for (std::uint64_t i = 0;; ++i) {
        values->push_back(std::to_string(v));
        if (i + 1 == count) break;
        v += step;  // stays <= hi: i + 1 < count implies v + step <= hi
    }
    return {};
}

}  // namespace

SweepSpecParse parse_sweep_spec(const std::string& spec) {
    SweepSpecParse out;
    if (spec.empty()) {
        out.error = "empty sweep specification";
        return out;
    }
    for (const std::string& axis_text : split(spec, ';')) {
        const std::size_t eq = axis_text.find('=');
        if (eq == std::string::npos || eq == 0) {
            out.error = "sweep axis '" + axis_text +
                        "' is not of the form field=value,value,...";
            return out;
        }
        SweepAxis axis;
        axis.field = axis_text.substr(0, eq);
        for (const SweepAxis& existing : out.axes) {
            if (existing.field == axis.field) {
                out.error = "duplicate sweep axis '" + axis.field + "'";
                return out;
            }
        }
        for (const std::string& item : split(axis_text.substr(eq + 1), ',')) {
            const std::string error = expand_value_item(item, &axis.values);
            if (!error.empty()) {
                out.error = error;
                return out;
            }
        }
        if (axis.values.empty()) {
            out.error = "sweep axis '" + axis.field + "' has no values";
            return out;
        }
        out.axes.push_back(std::move(axis));
    }
    return out;
}

std::string expand(const Sweep& sweep, std::vector<SweepCell>* cells) {
    cells->clear();
    std::size_t total = 1;
    for (const SweepAxis& axis : sweep.axes) {
        if (axis.field.empty() || axis.values.empty()) {
            return "sweep axis '" + axis.field + "' has no values";
        }
        total *= axis.values.size();
    }
    cells->reserve(total);
    // Odometer over the axes, last axis fastest.
    std::vector<std::size_t> index(sweep.axes.size(), 0);
    for (;;) {
        SweepCell cell;
        cell.scenario = sweep.base;
        for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
            const SweepAxis& axis = sweep.axes[a];
            const std::string& value = axis.values[index[a]];
            const std::string error =
                set_field(cell.scenario, axis.field, value);
            if (!error.empty()) return error;
            cell.coordinates.emplace_back(axis.field, value);
        }
        cells->push_back(std::move(cell));
        // Advance the odometer.
        std::size_t a = sweep.axes.size();
        for (;;) {
            if (a == 0) return {};
            --a;
            if (++index[a] < sweep.axes[a].values.size()) break;
            index[a] = 0;
        }
    }
}

SweepResult run_sweep(const Sweep& sweep) {
    SweepResult out;
    out.base = sweep.base;
    out.reps = sweep.reps;
    for (const SweepAxis& axis : sweep.axes) {
        out.axis_names.push_back(axis.field);
    }
    const std::string error = expand(sweep, &out.cells);
    PAPC_CHECK(error.empty());
    const ProtocolRegistry& registry = ProtocolRegistry::instance();
    for (std::size_t i = 0; i < out.cells.size(); ++i) {
        SweepCell& cell = out.cells[i];
        PAPC_CHECK(registry.check(cell.scenario).empty());
        const Scenario& scenario = cell.scenario;
        const runner::TrialFn trial =
            [&scenario, &registry](std::uint64_t seed) {
                const ScenarioResult r = registry.run(scenario, seed);
                runner::TrialMetrics metrics = runner::metrics_from(r.run);
                for (const auto& [name, value] : r.extras) {
                    metrics[name] = value;
                }
                return metrics;
            };
        // Cell seeds derive from (base_seed, cell index): reproducible and
        // independent of how many cells or threads run.
        cell.outcome = runner::run_experiment_parallel(
            trial, sweep.reps, derive_seed(sweep.base_seed, i),
            sweep.threads > 0 ? sweep.threads : 1);
    }
    return out;
}

void write_json(JsonWriter& writer, const SweepResult& result) {
    writer.begin_object();
    writer.key("base");
    write_json(writer, result.base);
    writer.key("axes");
    writer.begin_array();
    for (const std::string& name : result.axis_names) writer.value(name);
    writer.end_array();
    writer.kv("reps", static_cast<std::uint64_t>(result.reps));
    writer.key("cells");
    writer.begin_array();
    for (const SweepCell& cell : result.cells) {
        writer.begin_object();
        writer.key("coordinates");
        writer.begin_object();
        for (const auto& [field, value] : cell.coordinates) {
            writer.kv(field, value);
        }
        writer.end_object();
        writer.key("outcome");
        runner::write_json(writer, cell.outcome);
        writer.end_object();
    }
    writer.end_array();
    writer.end_object();
}

}  // namespace papc::api
