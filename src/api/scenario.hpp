#pragma once

/// \file scenario.hpp
/// The declarative experiment description at the heart of the api layer:
/// one plain value type naming a protocol plus every cross-family knob.
/// A Scenario says *what* to run; api::run (registry.hpp) resolves the
/// protocol name and drives the right engine family, and api::Sweep
/// (sweep.hpp) expands axes over any Scenario field.
///
/// Every knob has a canonical string field name (the same name is a CLI
/// flag of papc_cli and a sweep-axis key); set_field() is the single
/// table-driven mutation path, so the CLI, the sweep expander and any
/// config file share one parser and one set of defaults.

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "sim/queue_kind.hpp"
#include "support/json_writer.hpp"

namespace papc::api {

/// Initial-opinion workload family (opinion/assignment.hpp generators).
/// Opinion 0 is the intended plurality for every workload (uniform has no
/// real plurality; 0 is still the reported target).
enum class Workload {
    kBiased,          ///< make_biased_plurality(alpha)
    kTwoFrontRunners, ///< make_two_front_runners(alpha, tail_fraction)
    kAdditiveGap,     ///< make_additive_gap(gap; 0 = n/10)
    kUniform,         ///< make_uniform (alpha ignored)
    kZipf,            ///< make_zipf(zipf_s)
};

[[nodiscard]] const char* to_string(Workload workload);
/// Parses "biased" / "two-front-runners" / "gap" / "uniform" / "zipf";
/// nullptr error message on success, else a description of the problem.
[[nodiscard]] bool try_parse_workload(const std::string& name, Workload* out);

/// A fully described run: protocol + population + workload + all
/// cross-family knobs. Knobs a protocol does not consume are ignored by
/// it (each registry entry lists the knobs that apply).
struct Scenario {
    std::string protocol = "async";  ///< registry name (registry.hpp)

    // Population and workload.
    std::size_t n = 10000;       ///< population size
    std::uint32_t k = 4;         ///< number of opinions
    double alpha = 1.8;          ///< multiplicative bias of opinion 0
    Workload workload = Workload::kBiased;
    double zipf_s = 1.0;         ///< Zipf exponent (workload=zipf)
    std::size_t gap = 0;         ///< additive gap (workload=gap; 0 = n/10)
    double tail_fraction = 0.2;  ///< background mass (two-front-runners)

    // Family knobs.
    double lambda = 1.0;    ///< channel-establishment rate (async/cluster)
    double msg_rate = 2.0;  ///< per-message rate (validated)
    double gamma = 0.5;     ///< generation-density threshold (sync Alg. 1)

    /// Intra-run worker threads (sync family: sharded round execution;
    /// event-driven families: sharded windowed executor). Results are
    /// bit-identical at every thread count; only throughput changes.
    /// Sweepable like any field ("threads=1,2,4").
    std::size_t threads = 1;

    /// Conservative window width of the event-driven executor in time
    /// units (0 = derive from lambda). Part of the trajectory: two runs
    /// only reproduce each other with equal windows.
    double window = 0.0;

    // Convergence reporting.
    double epsilon = 0.02;  ///< (1-eps)-agreement threshold

    // Budgets: steps for round/interaction families (0 = family default),
    // simulated time for the event-driven families.
    std::uint64_t max_steps = 0;
    double max_time = 3000.0;

    // Record cadence. record_series gates all series recording;
    // record_every is the round/interaction cadence (0 = family default:
    // every round / once per parallel step), sample_interval the
    // event-driven metronome in time steps.
    bool record_series = true;
    std::uint64_t record_every = 0;
    double sample_interval = 0.25;

    /// Scheduler queue behind the event-driven families (results are
    /// queue-independent; throughput is not).
    sim::QueueKind queue_kind = sim::QueueKind::kBinaryHeap;

    // Fault & adversary injection (src/fault/plan.hpp; every family).
    // All rates default to 0 = fault-free, and a zero plan is
    // byte-identical to no plan. These field names use underscores so
    // sweep axis specs like "fault_loss=0,0.2" need no quoting.
    double fault_loss = 0.0;             ///< per-message drop probability
    double fault_dup = 0.0;              ///< per-message duplication prob.
    double fault_corrupt = 0.0;          ///< per-message corruption prob.
    double fault_crash_rate = 0.0;       ///< per-node Exp crash rate
    double fault_recover_rate = 0.0;     ///< per-node Exp recover rate
                                         ///< (0 = crashed nodes stay down)
    double fault_straggler_frac = 0.0;   ///< fraction of messages delayed
    double fault_straggler_scale = 1.0;  ///< heavy-tail delay scale
    double byzantine_frac = 0.0;         ///< byzantine node fraction
    fault::ByzantinePolicy byzantine_policy = fault::ByzantinePolicy::kFixed;
};

/// The scenario's fault fields assembled as a FaultPlan (the registry
/// hands this to every engine family).
[[nodiscard]] fault::FaultPlan fault_plan(const Scenario& scenario);

/// All validation problems with the scenario's knob values (empty = valid).
/// Protocol-specific constraints (unknown name, k-range of the two-opinion
/// population protocols) are checked by the registry on top of this.
[[nodiscard]] std::vector<std::string> validate(const Scenario& scenario);

/// Canonical field names accepted by set_field, in declaration order.
[[nodiscard]] const std::vector<std::string>& scenario_field_names();

/// Sets one field from its string form ("n"="10000", "workload"="zipf",
/// "queue"="calendar", ...). Returns an empty string on success, else an
/// error message naming the field and the problem. This is the single
/// mutation path shared by the CLI flags and the sweep axes.
[[nodiscard]] std::string set_field(Scenario& scenario,
                                    const std::string& field,
                                    const std::string& value);

/// Reads one field back in its string form (inverse of set_field).
[[nodiscard]] std::string get_field(const Scenario& scenario,
                                    const std::string& field);

/// One-line usage help per field ("n: population size (default 10000)").
[[nodiscard]] std::string field_help(const std::string& field);

/// Emits the scenario as one JSON object (all fields, canonical names).
void write_json(JsonWriter& writer, const Scenario& scenario);

}  // namespace papc::api
