#include "api/registry.hpp"

#include <algorithm>
#include <utility>

#include "async/sequential_simulation.hpp"
#include "async/simulation.hpp"
#include "async/validated_simulation.hpp"
#include "cluster/clustering.hpp"
#include "cluster/simulation.hpp"
#include "fault/injector.hpp"
#include "opinion/assignment.hpp"
#include "population/four_state.hpp"
#include "population/k_undecided.hpp"
#include "population/three_state.hpp"
#include "sim/latency.hpp"
#include "support/check.hpp"
#include "support/random.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"

namespace papc::api {

namespace {

Assignment build_assignment(const Scenario& s, Rng& rng) {
    switch (s.workload) {
        case Workload::kBiased:
            return make_biased_plurality(s.n, s.k, s.alpha, rng);
        case Workload::kTwoFrontRunners:
            return make_two_front_runners(s.n, s.k, s.alpha, s.tail_fraction,
                                          rng);
        case Workload::kAdditiveGap:
            return make_additive_gap(s.n, s.k, s.gap > 0 ? s.gap : s.n / 10,
                                     rng);
        case Workload::kUniform:
            return make_uniform(s.n, s.k, rng);
        case Workload::kZipf:
            return make_zipf(s.n, s.k, s.zipf_s, rng);
    }
    PAPC_CHECK(false);
    return {};
}

// ------------------------------------------------------------- fault layer

/// Every protocol consumes the same scenario fault knobs and reports the
/// same fault-counter extras — zeros when the plan is inactive — so a
/// degradation sweep can compare cells across families without
/// special-casing keys (and the registry test's produced == declared pin
/// stays a single uniform rule).
const std::vector<std::string> kFaultKnobs = {
    "fault_loss",          "fault_dup",
    "fault_corrupt",       "fault_crash_rate",
    "fault_recover_rate",  "fault_straggler_frac",
    "fault_straggler_scale", "byzantine_frac",
    "byzantine_policy"};

const std::vector<std::string> kFaultExtraNames = {
    "faults_injected",  "messages_lost", "messages_duplicated",
    "messages_corrupted", "messages_delayed", "crash_skips",
    "nodes_crashed",    "byzantine_nodes"};

std::vector<std::string> with_fault_knobs(std::vector<std::string> knobs) {
    knobs.insert(knobs.end(), kFaultKnobs.begin(), kFaultKnobs.end());
    return knobs;
}

std::vector<std::string> with_fault_extras(std::vector<std::string> names) {
    names.insert(names.end(), kFaultExtraNames.begin(),
                 kFaultExtraNames.end());
    return names;
}

void add_fault_extras(std::map<std::string, double>& extras,
                      const fault::FaultCounters& counters,
                      std::uint64_t nodes_crashed,
                      std::uint64_t byzantine_nodes) {
    extras["faults_injected"] = static_cast<double>(counters.total());
    extras["messages_lost"] = static_cast<double>(counters.lost);
    extras["messages_duplicated"] = static_cast<double>(counters.duplicated);
    extras["messages_corrupted"] = static_cast<double>(counters.corrupted);
    extras["messages_delayed"] = static_cast<double>(counters.delayed);
    extras["crash_skips"] = static_cast<double>(counters.crash_skips);
    extras["nodes_crashed"] = static_cast<double>(nodes_crashed);
    extras["byzantine_nodes"] = static_cast<double>(byzantine_nodes);
}

// ------------------------------------------------------------- sync family

using SyncFactory = std::unique_ptr<sync::SyncDynamics> (*)(const Scenario&,
                                                            const Assignment&);

/// Shared driver for the synchronous dynamics. The RNG scheme (run rng
/// seeded directly, workload rng from derive_seed(seed, 1)) matches what
/// papc_cli has always done, so historical CLI invocations reproduce.
ScenarioResult run_sync_family(const Scenario& s, std::uint64_t seed,
                               SyncFactory factory) {
    Rng rng(seed);
    Rng workload_rng(derive_seed(seed, 1));
    const Assignment assignment = build_assignment(s, workload_rng);
    const std::unique_ptr<sync::SyncDynamics> dynamics =
        factory(s, assignment);

    sync::RunOptions options;
    if (s.max_steps > 0) options.max_rounds = s.max_steps;
    options.record_every =
        s.record_series ? (s.record_every > 0 ? s.record_every : 1) : 0;
    options.epsilon = s.epsilon;
    options.plurality = 0;

    // Fault layer: the injector reads `rng` through pure substreams (the
    // parent is never advanced), so a zero plan leaves the trajectory
    // byte-identical to the fault-free run.
    const fault::FaultPlan plan = fault_plan(s);
    std::unique_ptr<fault::Injector> injector;
    if (plan.active()) {
        injector = std::make_unique<fault::Injector>(
            plan, s.n, static_cast<double>(options.max_rounds), rng);
        dynamics->set_fault_injector(injector.get());
    }

    ScenarioResult out;
    out.run = sync::run_to_consensus(*dynamics, rng, options);
    fault::FaultCounters counters;
    counters.crash_skips = dynamics->fault_crash_skips();
    add_fault_extras(out.extras, counters,
                     injector ? injector->nodes_crashed() : 0,
                     injector ? injector->byzantine_count() : 0);
    return out;
}

// ------------------------------------------------------- population family

const std::uint64_t kPopulationWorkloadSalt = 0xB00;
const std::uint64_t kPopulationRunSalt = 0xB1;

population::PopulationRunOptions population_options(const Scenario& s) {
    population::PopulationRunOptions options;
    options.max_interactions = s.max_steps;
    options.record_every =
        s.record_series
            ? (s.record_every > 0 ? s.record_every : s.n)
            : 0;
    options.epsilon = s.epsilon;
    options.plurality = 0;
    return options;
}

/// Stack-frame bundle wiring one population run to the fault layer: the
/// plan plus the scheduler's out-params, folded into extras afterwards.
struct PopulationFaultHook {
    fault::FaultPlan plan;
    fault::FaultCounters counters;
    std::uint64_t crashed = 0;
    std::uint64_t byzantine = 0;

    explicit PopulationFaultHook(const Scenario& s) : plan(fault_plan(s)) {}

    void attach(population::PopulationRunOptions& options) {
        options.fault = &plan;
        options.fault_counters = &counters;
        options.nodes_crashed = &crashed;
        options.byzantine_nodes = &byzantine;
    }

    void fill(std::map<std::string, double>& extras) const {
        add_fault_extras(extras, counters, crashed, byzantine);
    }
};

/// Per-opinion counts of the workload assignment (the population protocols
/// take counts, not per-node vectors; the node shuffle is irrelevant to
/// their exchangeable dynamics).
std::vector<std::size_t> workload_counts(const Scenario& s,
                                         std::uint64_t seed) {
    Rng workload_rng(derive_seed(seed, kPopulationWorkloadSalt));
    const Assignment assignment = build_assignment(s, workload_rng);
    std::vector<std::size_t> counts(s.k, 0);
    for (const Opinion opinion : assignment.opinions) ++counts[opinion];
    return counts;
}

// ------------------------------------------------------------ async family

async::AsyncConfig async_config_from(const Scenario& s) {
    async::AsyncConfig config;
    config.lambda = s.lambda;
    config.alpha_hint = std::max(s.alpha, 1.05);
    config.epsilon = s.epsilon;
    config.max_time = s.max_time;
    config.sample_interval = s.sample_interval;
    config.record_series = s.record_series;
    config.queue_kind = s.queue_kind;
    config.threads = s.threads;
    config.window = s.window;
    config.fault = fault_plan(s);
    return config;
}

std::map<std::string, double> async_extras(const async::AsyncResult& r) {
    std::map<std::string, double> extras = {
        {"ticks", static_cast<double>(r.ticks)},
        {"good_ticks", static_cast<double>(r.good_ticks)},
        {"exchanges", static_cast<double>(r.exchanges)},
        {"two_choices", static_cast<double>(r.two_choices_count)},
        {"propagation", static_cast<double>(r.propagation_count)},
        {"refreshes", static_cast<double>(r.refresh_count)},
        {"final_top_generation", static_cast<double>(r.final_top_generation)},
        {"steps_per_unit", r.steps_per_unit},
        {"channels_opened", static_cast<double>(r.channels_opened)},
        {"signals_delivered", static_cast<double>(r.signals_delivered)},
        {"leader_peak_load", r.leader_peak_load},
        {"events_processed", static_cast<double>(r.events_processed)},
        {"windows", static_cast<double>(r.windows)},
        {"window_stragglers", static_cast<double>(r.window_stragglers)},
    };
    // Byzantine reporting is a sampling-layer fault; the event-driven
    // families have no sampled-state channel to lie on, so the count is
    // structurally zero there.
    add_fault_extras(extras, r.faults, r.nodes_crashed, 0);
    return extras;
}

const std::vector<std::string> kAsyncExtraNames = with_fault_extras({
    "ticks",          "good_ticks",        "exchanges",
    "two_choices",    "propagation",       "refreshes",
    "final_top_generation", "steps_per_unit", "channels_opened",
    "signals_delivered", "leader_peak_load", "events_processed",
    "windows", "window_stragglers",
});

// ---------------------------------------------------------- cluster family

cluster::ClusterConfig cluster_config_from(const Scenario& s) {
    cluster::ClusterConfig config;
    config.lambda = s.lambda;
    config.alpha_hint = std::max(s.alpha, 1.05);
    config.epsilon = s.epsilon;
    config.max_time = s.max_time;
    config.sample_interval = s.sample_interval;
    config.record_series = s.record_series;
    config.queue_kind = s.queue_kind;
    config.threads = s.threads;
    config.window = s.window;
    config.fault = fault_plan(s);
    return config;
}

// ----------------------------------------------------------- registration

void register_builtins(ProtocolRegistry& registry) {
    const std::vector<std::string> sync_knobs =
        with_fault_knobs({"threads", "max-steps", "record-every"});
    const std::vector<std::string> population_knobs =
        with_fault_knobs({"max-steps", "record-every"});
    const std::vector<std::string> event_knobs = with_fault_knobs(
        {"lambda", "max-time", "sample-interval", "queue", "threads",
         "window"});
    const std::vector<std::string> sync_extras = with_fault_extras({});

    // --- synchronous round dynamics -------------------------------------
    registry.register_protocol(
        ProtocolInfo{"sync", "sync",
                     "Algorithm 1 (generation-based synchronous protocol)",
                     with_fault_knobs(
                         {"gamma", "threads", "max-steps", "record-every"}),
                     sync_extras,
                     2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            return run_sync_family(
                s, seed,
                [](const Scenario& scenario, const Assignment& assignment)
                    -> std::unique_ptr<sync::SyncDynamics> {
                    sync::ScheduleParams params;
                    params.n = scenario.n;
                    params.k = scenario.k;
                    params.alpha = std::max(scenario.alpha, 1.01);
                    params.gamma = scenario.gamma;
                    return std::make_unique<sync::Algorithm1>(
                        assignment, sync::Schedule(params), scenario.threads);
                });
        });
    registry.register_protocol(
        ProtocolInfo{"two-choices", "sync",
                     "two-choices voting baseline [CER14]",
                     sync_knobs,
                     sync_extras,
                     2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            return run_sync_family(
                s, seed,
                [](const Scenario& scenario, const Assignment& assignment)
                    -> std::unique_ptr<sync::SyncDynamics> {
                    return std::make_unique<sync::TwoChoices>(assignment,
                                                         scenario.threads);
                });
        });
    registry.register_protocol(
        ProtocolInfo{"3-majority", "sync",
                     "3-majority baseline [BCN+14]",
                     sync_knobs,
                     sync_extras,
                     2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            return run_sync_family(
                s, seed,
                [](const Scenario& scenario, const Assignment& assignment)
                    -> std::unique_ptr<sync::SyncDynamics> {
                    return std::make_unique<sync::ThreeMajority>(assignment,
                                                         scenario.threads);
                });
        });
    registry.register_protocol(
        ProtocolInfo{"undecided", "sync",
                     "undecided-state dynamics baseline [AAE08, BCN+15]",
                     sync_knobs,
                     sync_extras,
                     2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            return run_sync_family(
                s, seed,
                [](const Scenario& scenario, const Assignment& assignment)
                    -> std::unique_ptr<sync::SyncDynamics> {
                    return std::make_unique<sync::UndecidedState>(assignment,
                                                         scenario.threads);
                });
        });
    registry.register_protocol(
        ProtocolInfo{"pull", "sync",
                     "pull-voting baseline [HP01, NIY99]",
                     sync_knobs,
                     sync_extras,
                     2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            return run_sync_family(
                s, seed,
                [](const Scenario& scenario, const Assignment& assignment)
                    -> std::unique_ptr<sync::SyncDynamics> {
                    return std::make_unique<sync::PullVoting>(assignment,
                                                         scenario.threads);
                });
        });

    // --- population protocols -------------------------------------------
    registry.register_protocol(
        ProtocolInfo{"pp-3-state", "population",
                     "3-state approximate majority [AAE08]",
                     population_knobs,
                     with_fault_extras({"blank_final"}),
                     2, 2},
        [](const Scenario& s, std::uint64_t seed) {
            const std::vector<std::size_t> counts = workload_counts(s, seed);
            population::ThreeStateMajority protocol(counts[0], counts[1]);
            Rng rng(derive_seed(seed, kPopulationRunSalt));
            PopulationFaultHook hook(s);
            population::PopulationRunOptions options = population_options(s);
            hook.attach(options);
            ScenarioResult out;
            out.run = population::run_population(protocol, rng, options);
            out.extras = {
                {"blank_final", static_cast<double>(protocol.count_blank())}};
            hook.fill(out.extras);
            return out;
        });
    registry.register_protocol(
        ProtocolInfo{"pp-4-state", "population",
                     "4-state exact majority [DV10, MNRS14]",
                     population_knobs,
                     with_fault_extras({"strong_difference"}),
                     2, 2},
        [](const Scenario& s, std::uint64_t seed) {
            const std::vector<std::size_t> counts = workload_counts(s, seed);
            population::FourStateExactMajority protocol(counts[0], counts[1]);
            Rng rng(derive_seed(seed, kPopulationRunSalt));
            PopulationFaultHook hook(s);
            population::PopulationRunOptions options = population_options(s);
            hook.attach(options);
            ScenarioResult out;
            out.run = population::run_population(protocol, rng, options);
            out.extras = {{"strong_difference",
                           static_cast<double>(protocol.strong_difference())}};
            hook.fill(out.extras);
            return out;
        });
    registry.register_protocol(
        ProtocolInfo{"pp-undecided", "population",
                     "k-opinion undecided-state population protocol [BCN+15]",
                     population_knobs,
                     with_fault_extras({"undecided_final"}),
                     2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            const std::vector<std::size_t> counts = workload_counts(s, seed);
            population::KUndecided protocol(counts);
            Rng rng(derive_seed(seed, kPopulationRunSalt));
            PopulationFaultHook hook(s);
            population::PopulationRunOptions options = population_options(s);
            hook.attach(options);
            ScenarioResult out;
            out.run = population::run_population(protocol, rng, options);
            out.extras = {
                {"undecided_final",
                 static_cast<double>(protocol.undecided_count())}};
            hook.fill(out.extras);
            return out;
        });

    // --- asynchronous single-leader family ------------------------------
    registry.register_protocol(
        ProtocolInfo{"async", "async",
                     "asynchronous single-leader protocol (Algorithms 2+3)",
                     event_knobs, kAsyncExtraNames, 2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            // Same seed salts as async::run_single_leader, so the biased
            // workload reproduces it bit-for-bit (pinned by the api tests).
            Rng workload_rng(derive_seed(seed, 0xA551));
            const Assignment assignment = build_assignment(s, workload_rng);
            async::SingleLeaderSimulation simulation(
                assignment, async_config_from(s), derive_seed(seed, 0x51));
            const async::AsyncResult r = simulation.run();
            return ScenarioResult{r, async_extras(r)};
        });
    registry.register_protocol(
        ProtocolInfo{"sequential", "async",
                     "sequentialized single-leader reference (instant channels)",
                     with_fault_knobs(
                         {"max-time", "sample-interval", "window"}),
                     kAsyncExtraNames, 2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            Rng workload_rng(derive_seed(seed, 0xA553));
            const Assignment assignment = build_assignment(s, workload_rng);
            async::SequentialSingleLeaderSimulation simulation(
                assignment, async_config_from(s), derive_seed(seed, 0x53));
            const async::AsyncResult r = simulation.run();
            return ScenarioResult{r, async_extras(r)};
        });
    registry.register_protocol(
        ProtocolInfo{"validated", "async",
                     "single-leader with validated commits under message "
                     "latencies (Section 5)",
                     with_fault_knobs(
                         {"lambda", "msg-rate", "max-time",
                          "sample-interval", "queue", "threads", "window"}),
                     [] {
                         std::vector<std::string> names = kAsyncExtraNames;
                         names.insert(names.end(),
                                      {"commits", "aborts", "abort_rate"});
                         return names;
                     }(),
                     2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            Rng workload_rng(derive_seed(seed, 0xA552));
            const Assignment assignment = build_assignment(s, workload_rng);
            async::ValidatedSingleLeaderSimulation simulation(
                assignment, async_config_from(s),
                sim::make_exponential_latency(s.lambda),
                sim::make_exponential_latency(s.msg_rate),
                derive_seed(seed, 0x52));
            const async::ValidatedResult r = simulation.run();
            ScenarioResult out{r.base, async_extras(r.base)};
            out.extras["commits"] = static_cast<double>(r.commits);
            out.extras["aborts"] = static_cast<double>(r.aborts);
            out.extras["abort_rate"] = r.abort_rate;
            return out;
        });

    // --- decentralized multi-leader protocol ----------------------------
    registry.register_protocol(
        ProtocolInfo{"multi", "cluster",
                     "decentralized multi-leader protocol (Algorithms 4+5)",
                     event_knobs,
                     with_fault_extras(
                         {"clustering_time", "active_clusters",
                          "fraction_clustered", "finished_fraction", "ticks",
                          "exchanges", "two_choices", "propagation",
                          "finished_adoptions", "final_top_generation",
                          "signals_delivered", "leader_peak_load",
                          "total_time", "events_processed", "windows",
                          "window_stragglers"}),
                     2, 0},
        [](const Scenario& s, std::uint64_t seed) {
            // Same seed salts as cluster::run_multi_leader (bit-identical
            // for the biased workload).
            Rng workload_rng(derive_seed(seed, 0xC1A0));
            const Assignment assignment = build_assignment(s, workload_rng);
            const cluster::ClusterConfig config = cluster_config_from(s);
            Rng clustering_rng(derive_seed(seed, 0xC1A1));
            cluster::ClusteringResult clustering =
                cluster::run_clustering(s.n, config, clustering_rng);
            cluster::MultiLeaderSimulation simulation(
                assignment, std::move(clustering), config,
                derive_seed(seed, 0xC1A2));
            const cluster::MultiLeaderResult r = simulation.run();
            ScenarioResult out;
            out.run = r;
            out.extras = {
                {"clustering_time", r.clustering_time},
                {"active_clusters",
                 static_cast<double>(r.clustering.num_active)},
                {"fraction_clustered", r.clustering.fraction_clustered},
                {"finished_fraction", r.finished_fraction},
                {"ticks", static_cast<double>(r.ticks)},
                {"exchanges", static_cast<double>(r.exchanges)},
                {"two_choices", static_cast<double>(r.two_choices_count)},
                {"propagation", static_cast<double>(r.propagation_count)},
                {"finished_adoptions",
                 static_cast<double>(r.finished_adoptions)},
                {"final_top_generation",
                 static_cast<double>(r.final_top_generation)},
                {"signals_delivered",
                 static_cast<double>(r.signals_delivered)},
                {"leader_peak_load", r.leader_peak_load},
                {"total_time", r.total_time()},
                {"events_processed", static_cast<double>(r.events_processed)},
                {"windows", static_cast<double>(r.windows)},
                {"window_stragglers",
                 static_cast<double>(r.window_stragglers)},
            };
            add_fault_extras(out.extras, r.faults, r.nodes_crashed, 0);
            return out;
        });
}

}  // namespace

ProtocolRegistry& ProtocolRegistry::instance() {
    static ProtocolRegistry* registry = [] {
        auto* built = new ProtocolRegistry();
        register_builtins(*built);
        return built;
    }();
    return *registry;
}

void ProtocolRegistry::register_protocol(ProtocolInfo info, RunFn fn) {
    PAPC_CHECK(!info.name.empty());
    PAPC_CHECK(find(info.name) == nullptr);
    PAPC_CHECK(fn != nullptr);
    entries_.push_back(Entry{std::move(info), std::move(fn)});
}

const ProtocolInfo* ProtocolRegistry::find(const std::string& name) const {
    for (const Entry& entry : entries_) {
        if (entry.info.name == name) return &entry.info;
    }
    return nullptr;
}

std::vector<std::string> ProtocolRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& entry : entries_) out.push_back(entry.info.name);
    std::sort(out.begin(), out.end());
    return out;
}

ScenarioResult ProtocolRegistry::run(const Scenario& scenario,
                                     std::uint64_t seed) const {
    PAPC_CHECK(check(scenario).empty());
    for (const Entry& entry : entries_) {
        if (entry.info.name == scenario.protocol) {
            return entry.fn(scenario, seed);
        }
    }
    PAPC_CHECK(false);
    ScenarioResult unreachable;
    return unreachable;
}

std::vector<std::string> ProtocolRegistry::check(
    const Scenario& scenario) const {
    std::vector<std::string> problems = validate(scenario);
    const ProtocolInfo* info = find(scenario.protocol);
    if (info == nullptr) {
        problems.push_back("unknown protocol '" + scenario.protocol +
                           "' (see --list-protocols)");
        return problems;
    }
    if (scenario.k < info->min_k ||
        (info->max_k > 0 && scenario.k > info->max_k)) {
        problems.push_back(
            "protocol '" + info->name + "' requires k in [" +
            std::to_string(info->min_k) + ", " +
            (info->max_k > 0 ? std::to_string(info->max_k) : "inf") +
            "], got " + std::to_string(scenario.k));
    }
    return problems;
}

ScenarioResult run(const Scenario& scenario, std::uint64_t seed) {
    return ProtocolRegistry::instance().run(scenario, seed);
}

void write_json(JsonWriter& writer, const Scenario& scenario,
                std::uint64_t seed, const ScenarioResult& result) {
    writer.begin_object();
    writer.key("scenario");
    write_json(writer, scenario);
    writer.kv("seed", seed);
    writer.key("result");
    core::write_json(writer, result.run);
    writer.key("extras");
    writer.begin_object();
    for (const auto& [name, value] : result.extras) {
        writer.kv(name, value);
    }
    writer.end_object();
    writer.end_object();
}

}  // namespace papc::api
