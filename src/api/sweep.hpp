#pragma once

/// \file sweep.hpp
/// Declarative parameter sweeps over Scenario fields: pick a base
/// Scenario, attach axes ("n" over {1000, 10000}, "k" over 2..8, even
/// "protocol" over names), and run the cartesian product with per-cell
/// repetitions through the parallel experiment harness:
///
///   api::Sweep sweep;
///   sweep.base.protocol = "two-choices";
///   sweep.axes = api::parse_sweep_spec("n=1000,10000;k=2..8").axes;
///   sweep.reps = 5;
///   api::SweepResult table = api::run_sweep(sweep);
///
/// Each cell aggregates the unified metrics (runner::metrics_from) plus
/// the protocol's named extras over `reps` trials with derived per-trial
/// seeds; cell seeds derive from (base_seed, cell index), so results are
/// reproducible and independent of execution order.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "runner/experiment.hpp"
#include "support/json_writer.hpp"

namespace papc::api {

/// One sweep dimension: a Scenario field name (set_field key) and the
/// string values it takes.
struct SweepAxis {
    std::string field;
    std::vector<std::string> values;
};

/// A declarative sweep: base scenario, axes, repetitions.
struct Sweep {
    Scenario base;
    std::vector<SweepAxis> axes;
    std::size_t reps = 1;          ///< trials per cell
    std::uint64_t base_seed = 1;   ///< cell seeds derive from this
    std::size_t threads = 1;       ///< worker threads per cell
};

/// One expanded grid point: the concrete scenario, its axis coordinates
/// (in axis order), and the aggregated trial metrics.
struct SweepCell {
    Scenario scenario;
    std::vector<std::pair<std::string, std::string>> coordinates;
    runner::ExperimentOutcome outcome;
};

/// The full sweep table.
struct SweepResult {
    Scenario base;
    std::vector<std::string> axis_names;
    std::size_t reps = 0;
    std::vector<SweepCell> cells;
};

/// Parses a sweep specification string: axes separated by ';', each
/// `field=values` where values are a comma list of literals and/or
/// integer ranges `lo..hi` / `lo..hi..step` (inclusive). Example:
/// "n=1000,10000;k=2..8" (2 x 7 grid). An empty error means success.
struct SweepSpecParse {
    std::vector<SweepAxis> axes;
    std::string error;

    [[nodiscard]] bool ok() const { return error.empty(); }
};
[[nodiscard]] SweepSpecParse parse_sweep_spec(const std::string& spec);

/// Cartesian expansion of the axes over the base scenario, last axis
/// fastest. Returns the error from the first set_field that rejects a
/// value ("" = success); on success `cells` holds scenario + coordinates
/// for every grid point (outcomes empty).
[[nodiscard]] std::string expand(const Sweep& sweep,
                                 std::vector<SweepCell>* cells);

/// Expands and runs every cell (reps trials each, metrics aggregated via
/// runner::run_experiment_parallel). Every cell's scenario must pass the
/// registry check (PAPC_CHECKed); front ends should pre-flight with
/// expand() + ProtocolRegistry::check for friendly errors.
[[nodiscard]] SweepResult run_sweep(const Sweep& sweep);

/// Emits the sweep table as one JSON object:
/// {"base": ..., "axes": [...], "reps": R, "cells":
///   [{"coordinates": {...}, "outcome": {...}}, ...]}.
void write_json(JsonWriter& writer, const SweepResult& result);

}  // namespace papc::api
