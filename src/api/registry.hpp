#pragma once

/// \file registry.hpp
/// Name -> protocol mapping that makes every engine family in the repo
/// reachable through one call:
///
///   api::Scenario s;
///   s.protocol = "multi";
///   api::ScenarioResult r = api::run(s, /*seed=*/7);
///
/// Each entry carries capability metadata — which Scenario knobs the
/// protocol consumes and which family-specific extras its run reports —
/// so front ends (papc_cli --list-protocols) and sweeps can be fully
/// table-driven. The built-in protocols:
///
///   sync family        sync, two-choices, 3-majority, undecided, pull
///   population family  pp-3-state, pp-4-state, pp-undecided
///   async family       async, sequential, validated
///   cluster family     multi
///
/// The registry wraps the engines without perturbing their RNG streams:
/// for the biased workload, run("async", ...) is bit-identical to
/// async::run_single_leader with the same seed (pinned by the api tests).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "core/run_result.hpp"
#include "support/json_writer.hpp"

namespace papc::api {

/// Capability metadata of one registered protocol.
struct ProtocolInfo {
    std::string name;         ///< registry key ("async", "pp-3-state", ...)
    std::string family;       ///< "sync" | "population" | "async" | "cluster"
    std::string description;  ///< one-line summary for --list-protocols
    /// Scenario fields (canonical set_field names) this protocol consumes
    /// beyond the universal n/k/alpha/workload/epsilon/record block.
    std::vector<std::string> knobs;
    /// Names of the extras its run reports; ScenarioResult.extras holds
    /// exactly these keys (pinned by the registry tests).
    std::vector<std::string> extra_metrics;
    /// Opinion-count range ([min_k, max_k]; max_k 0 = unbounded). The
    /// two-opinion population protocols set both to 2.
    std::uint32_t min_k = 2;
    std::uint32_t max_k = 0;
};

/// Outcome of one scenario run: the unified result plus the family extras
/// flattened into named metrics (e.g. "exchanges", "abort_rate",
/// "clustering_time").
struct ScenarioResult {
    core::RunResult run;
    std::map<std::string, double> extras;
};

class ProtocolRegistry {
public:
    using RunFn =
        std::function<ScenarioResult(const Scenario&, std::uint64_t seed)>;

    /// The process-wide registry, with every built-in protocol registered.
    [[nodiscard]] static ProtocolRegistry& instance();

    /// Registers a protocol; the name must be new. Open for downstream
    /// users — a custom engine only needs a RunFn to join sweeps and CLI.
    void register_protocol(ProtocolInfo info, RunFn fn);

    /// Metadata lookup; nullptr when the name is unknown.
    [[nodiscard]] const ProtocolInfo* find(const std::string& name) const;

    /// All registered names, sorted.
    [[nodiscard]] std::vector<std::string> names() const;

    /// Runs a scenario. The scenario must validate() cleanly, the protocol
    /// must exist and k must lie in the protocol's range (PAPC_CHECKed —
    /// front ends should call check() first for a friendly error).
    [[nodiscard]] ScenarioResult run(const Scenario& scenario,
                                     std::uint64_t seed) const;

    /// Full validation for front ends: scenario knob problems
    /// (api::validate) plus protocol existence and k-range.
    [[nodiscard]] std::vector<std::string> check(
        const Scenario& scenario) const;

private:
    ProtocolRegistry() = default;

    struct Entry {
        ProtocolInfo info;
        RunFn fn;
    };
    std::vector<Entry> entries_;
};

/// Convenience: ProtocolRegistry::instance().run(scenario, seed).
[[nodiscard]] ScenarioResult run(const Scenario& scenario, std::uint64_t seed);

/// Emits {"scenario": ..., "seed": ..., "result": ..., "extras": {...}}.
void write_json(JsonWriter& writer, const Scenario& scenario,
                std::uint64_t seed, const ScenarioResult& result);

}  // namespace papc::api
