#pragma once

/// \file experiment.hpp
/// Repetition harness: runs a seeded trial function `reps` times with
/// derived per-trial seeds and aggregates named metrics.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/random.hpp"
#include "support/stats.hpp"

namespace papc::runner {

/// Metrics reported by one trial: name -> value. Missing metrics in some
/// trials are allowed (e.g. "consensus_time" only when converged).
using TrialMetrics = std::map<std::string, double>;

/// One trial: receives the derived seed, returns its metrics.
using TrialFn = std::function<TrialMetrics(std::uint64_t seed)>;

/// Aggregated metrics over all repetitions.
struct ExperimentOutcome {
    std::size_t repetitions = 0;
    std::map<std::string, Summary> metrics;

    /// Mean of a metric (0 if absent).
    [[nodiscard]] double mean(const std::string& name) const;
    /// Median of a metric (0 if absent).
    [[nodiscard]] double median(const std::string& name) const;
    /// Number of trials that reported the metric.
    [[nodiscard]] std::size_t count(const std::string& name) const;
};

/// Runs `trial` `reps` times with seeds derived from `base_seed`.
[[nodiscard]] ExperimentOutcome run_experiment(const TrialFn& trial,
                                               std::size_t reps,
                                               std::uint64_t base_seed);

/// Same, with trials distributed over `threads` worker threads. The trial
/// function must be thread-safe (all papc simulations are: they share no
/// mutable state and derive their randomness from the per-trial seed).
/// Aggregated results are identical to the serial runner for the same
/// base_seed — per-trial seeds do not depend on scheduling.
[[nodiscard]] ExperimentOutcome run_experiment_parallel(const TrialFn& trial,
                                                        std::size_t reps,
                                                        std::uint64_t base_seed,
                                                        std::size_t threads);

}  // namespace papc::runner
