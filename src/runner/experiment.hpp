#pragma once

/// \file experiment.hpp
/// Repetition harness: runs a seeded trial function `reps` times with
/// derived per-trial seeds and aggregates named metrics.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/run_result.hpp"
#include "support/json_writer.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

namespace papc::runner {

/// Metrics reported by one trial: name -> value. Missing metrics in some
/// trials are allowed (e.g. "consensus_time" only when converged).
using TrialMetrics = std::map<std::string, double>;

/// One trial: receives the derived seed, returns its metrics.
using TrialFn = std::function<TrialMetrics(std::uint64_t seed)>;

/// Aggregated metrics over all repetitions.
struct ExperimentOutcome {
    std::size_t repetitions = 0;
    std::map<std::string, Summary> metrics;

    /// Mean of a metric (0 if absent).
    [[nodiscard]] double mean(const std::string& name) const;
    /// Median of a metric (0 if absent).
    [[nodiscard]] double median(const std::string& name) const;
    /// Number of trials that reported the metric.
    [[nodiscard]] std::size_t count(const std::string& name) const;
};

/// Runs `trial` `reps` times with seeds derived from `base_seed`.
[[nodiscard]] ExperimentOutcome run_experiment(const TrialFn& trial,
                                               std::size_t reps,
                                               std::uint64_t base_seed);

/// Same, with trials distributed over `threads` worker threads. The trial
/// function must be thread-safe (all papc simulations are: they share no
/// mutable state and derive their randomness from the per-trial seed).
/// Aggregated results are identical to the serial runner for the same
/// base_seed — per-trial seeds do not depend on scheduling.
[[nodiscard]] ExperimentOutcome run_experiment_parallel(const TrialFn& trial,
                                                        std::size_t reps,
                                                        std::uint64_t base_seed,
                                                        std::size_t threads);

/// Standard metrics of a unified core::RunResult: "converged",
/// "plurality_won", "steps" and "end_time" are always present;
/// "epsilon_time" and "consensus_time" only when the threshold was reached
/// (so their aggregates summarize converged trials only).
[[nodiscard]] TrialMetrics metrics_from(const core::RunResult& result);

/// One unified-result trial: receives the derived seed, runs an engine
/// family through core::run, returns the RunResult.
using RunResultFn = std::function<core::RunResult(std::uint64_t seed)>;

/// Runs a RunResult-producing trial `reps` times and aggregates the
/// standard metrics (metrics_from). `threads` > 1 distributes the trials.
[[nodiscard]] ExperimentOutcome run_result_experiment(const RunResultFn& trial,
                                                      std::size_t reps,
                                                      std::uint64_t base_seed,
                                                      std::size_t threads = 1);

/// Emits the aggregated outcome as one JSON object:
/// {"repetitions": R, "metrics": {name: {count, mean, stddev, min, max,
/// p10, p50, p90, p99}, ...}}. Metric order follows the map (sorted).
void write_json(JsonWriter& writer, const ExperimentOutcome& outcome);

}  // namespace papc::runner
