#include "runner/experiment.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace papc::runner {

double ExperimentOutcome::mean(const std::string& name) const {
    const auto it = metrics.find(name);
    return it == metrics.end() ? 0.0 : it->second.mean;
}

double ExperimentOutcome::median(const std::string& name) const {
    const auto it = metrics.find(name);
    return it == metrics.end() ? 0.0 : it->second.p50;
}

std::size_t ExperimentOutcome::count(const std::string& name) const {
    const auto it = metrics.find(name);
    return it == metrics.end() ? 0 : it->second.count;
}

namespace {

ExperimentOutcome aggregate(std::vector<TrialMetrics> per_trial) {
    std::map<std::string, std::vector<double>> samples;
    for (const TrialMetrics& metrics : per_trial) {
        for (const auto& [name, value] : metrics) {
            samples[name].push_back(value);
        }
    }
    ExperimentOutcome outcome;
    outcome.repetitions = per_trial.size();
    for (auto& [name, values] : samples) {
        outcome.metrics[name] = summarize(std::move(values));
    }
    return outcome;
}

}  // namespace

ExperimentOutcome run_experiment(const TrialFn& trial, std::size_t reps,
                                 std::uint64_t base_seed) {
    PAPC_CHECK(reps > 0);
    std::vector<TrialMetrics> per_trial(reps);
    for (std::size_t r = 0; r < reps; ++r) {
        per_trial[r] = trial(derive_seed(base_seed, r));
    }
    return aggregate(std::move(per_trial));
}

ExperimentOutcome run_experiment_parallel(const TrialFn& trial,
                                          std::size_t reps,
                                          std::uint64_t base_seed,
                                          std::size_t threads) {
    PAPC_CHECK(reps > 0);
    PAPC_CHECK(threads >= 1);
    if (threads == 1 || reps == 1) {
        return run_experiment(trial, reps, base_seed);
    }
    threads = std::min(threads, reps);
    // Trial r writes only per_trial[r] and seeds derive from (base, r),
    // so results are identical at any thread count regardless of which
    // pool worker runs which trial.
    std::vector<TrialMetrics> per_trial(reps);
    support::ThreadPool pool(threads);
    pool.parallel_for(reps, [&](std::size_t r, std::size_t /*worker*/) {
        per_trial[r] = trial(derive_seed(base_seed, r));
    });
    return aggregate(std::move(per_trial));
}

TrialMetrics metrics_from(const core::RunResult& result) {
    TrialMetrics metrics;
    metrics["converged"] = result.converged ? 1.0 : 0.0;
    metrics["plurality_won"] = result.plurality_won ? 1.0 : 0.0;
    metrics["steps"] = static_cast<double>(result.steps);
    metrics["end_time"] = result.end_time;
    if (result.epsilon_time >= 0.0) metrics["epsilon_time"] = result.epsilon_time;
    if (result.consensus_time >= 0.0) {
        metrics["consensus_time"] = result.consensus_time;
    }
    return metrics;
}

ExperimentOutcome run_result_experiment(const RunResultFn& trial,
                                        std::size_t reps,
                                        std::uint64_t base_seed,
                                        std::size_t threads) {
    auto metrics_trial = [&trial](std::uint64_t seed) {
        return metrics_from(trial(seed));
    };
    if (threads <= 1) return run_experiment(metrics_trial, reps, base_seed);
    return run_experiment_parallel(metrics_trial, reps, base_seed, threads);
}

void write_json(JsonWriter& writer, const ExperimentOutcome& outcome) {
    writer.begin_object();
    writer.kv("repetitions", static_cast<std::uint64_t>(outcome.repetitions));
    writer.key("metrics");
    writer.begin_object();
    for (const auto& [name, summary] : outcome.metrics) {
        writer.key(name);
        writer.begin_object();
        writer.kv("count", static_cast<std::uint64_t>(summary.count));
        writer.kv("mean", summary.mean);
        writer.kv("stddev", summary.stddev);
        writer.kv("min", summary.min);
        writer.kv("max", summary.max);
        writer.kv("p10", summary.p10);
        writer.kv("p50", summary.p50);
        writer.kv("p90", summary.p90);
        writer.kv("p99", summary.p99);
        writer.end_object();
    }
    writer.end_object();
    writer.end_object();
}

}  // namespace papc::runner
