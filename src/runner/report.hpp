#pragma once

/// \file report.hpp
/// Shared formatting helpers for the benchmark binaries: section banners
/// and sparkline rendering of time series.

#include <iosfwd>
#include <string>

#include "support/timeseries.hpp"

namespace papc::runner {

/// Prints a boxed section header to the stream.
void print_banner(std::ostream& out, const std::string& title);

/// Prints a sub-section heading.
void print_heading(std::ostream& out, const std::string& title);

/// Renders a time series as a one-line unicode sparkline with the time
/// range, e.g. "plurality: 0.52 ▁▂▃▅▇█ 1.00  [t=0 .. 37.5]".
[[nodiscard]] std::string sparkline(const TimeSeries& series,
                                    std::size_t width = 48);

}  // namespace papc::runner
