#include "runner/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "support/table.hpp"

namespace papc::runner {

void print_banner(std::ostream& out, const std::string& title) {
    const std::string rule(title.size() + 4, '=');
    out << rule << "\n= " << title << " =\n" << rule << "\n";
}

void print_heading(std::ostream& out, const std::string& title) {
    out << "\n-- " << title << " --\n";
}

std::string sparkline(const TimeSeries& series, std::size_t width) {
    static const char* kLevels[] = {" ", "_", ".", "-", "=", "+", "*", "#"};
    constexpr std::size_t kNumLevels = 8;
    if (series.empty()) return "(empty)";

    const TimeSeries compact = series.downsample(std::max<std::size_t>(2, width));
    double lo = compact[0].value;
    double hi = compact[0].value;
    for (std::size_t i = 0; i < compact.size(); ++i) {
        lo = std::min(lo, compact[i].value);
        hi = std::max(hi, compact[i].value);
    }
    const double range = hi - lo;
    std::ostringstream out;
    out << format_double(lo, 2) << " [";
    for (std::size_t i = 0; i < compact.size(); ++i) {
        std::size_t level = 0;
        if (range > 0.0) {
            level = static_cast<std::size_t>((compact[i].value - lo) / range *
                                             (kNumLevels - 1));
        }
        out << kLevels[std::min(level, kNumLevels - 1)];
    }
    out << "] " << format_double(hi, 2);
    out << "  (t = " << format_double(compact[0].time, 1) << " .. "
        << format_double(compact[compact.size() - 1].time, 1) << ")";
    return out.str();
}

}  // namespace papc::runner
