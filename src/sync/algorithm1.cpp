#include "sync/algorithm1.hpp"

#include <utility>

#include "support/check.hpp"

namespace papc::sync {

Algorithm1::Algorithm1(const Assignment& assignment, Schedule schedule)
    : k_(assignment.num_opinions),
      schedule_(std::move(schedule)),
      colors_(assignment.opinions),
      generations_(assignment.size(), 0),
      next_colors_(assignment.size()),
      next_generations_(assignment.size()),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    census_.reset(colors_);
    record_new_births();
}

void Algorithm1::step(Rng& rng) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    ++round_;
    const bool two_choices = schedule_.is_two_choices_step(round_);

    for (NodeId v = 0; v < n; ++v) {
        auto a = static_cast<NodeId>(rng.uniform_index(n));
        auto b = static_cast<NodeId>(rng.uniform_index(n));
        // wlog gen(a) >= gen(b)  (Algorithm 1 line 2)
        if (generations_[a] < generations_[b]) std::swap(a, b);

        Opinion new_color = colors_[v];
        Generation new_generation = generations_[v];

        if (two_choices && generations_[v] <= generations_[a] &&
            generations_[a] == generations_[b] && colors_[a] == colors_[b]) {
            // Two-choices step (line 3-5): promote past the samples.
            new_generation = generations_[a] + 1;
            new_color = colors_[a];
        } else if (generations_[a] > generations_[v]) {
            // Propagation step (line 6-8): pull from the higher generation.
            new_generation = generations_[a];
            new_color = colors_[a];
        }
        next_colors_[v] = new_color;
        next_generations_[v] = new_generation;
    }

    colors_.swap(next_colors_);
    generations_.swap(next_generations_);
    census_.rebuild(generations_, colors_);
    record_new_births();
}

std::uint64_t Algorithm1::opinion_count(Opinion j) const {
    std::uint64_t total = 0;
    for (Generation g = 0; g <= census_.highest_populated(); ++g) {
        total += census_.count(g, j);
    }
    return total;
}

void Algorithm1::record_new_births() {
    const Generation highest = census_.highest_populated();
    while (births_.size() <= highest) {
        const auto g = static_cast<Generation>(births_.size());
        const BiasStats stats = census_.stats(g);
        GenerationBirth birth;
        birth.generation = g;
        birth.round = round_;
        birth.size = stats.total;
        birth.alpha = stats.alpha;
        birth.collision_probability = stats.collision_probability;
        births_.push_back(birth);
    }
}

}  // namespace papc::sync
