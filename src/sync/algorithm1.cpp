#include "sync/algorithm1.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace papc::sync {

Algorithm1::Algorithm1(const Assignment& assignment, Schedule schedule,
                       std::size_t threads)
    : k_(assignment.num_opinions),
      schedule_(std::move(schedule)),
      state_(assignment.size()),
      next_state_(assignment.size()),
      driver_(assignment.size(), threads),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    for (std::size_t v = 0; v < assignment.size(); ++v) {
        state_[v] = pack_state(0, assignment.opinions[v]);
    }
    census_.reset(assignment.opinions);
    record_new_births();
}

void Algorithm1::step(Rng& rng) {
    ++round_;
    const bool two_choices = schedule_.is_two_choices_step(round_);
    if (fault_on_) begin_faulted_round();

    // A round can populate at most one generation above the current top
    // (two-choices promotes to gen(a) + 1 with gen(a) <= highest), so the
    // delta block covers exactly [0, highest + 2).
    const Generation rows = census_.highest_populated() + 2;
    const std::size_t delta_size = static_cast<std::size_t>(rows) * k_;

    const RawGather64 gather(
        byz_round_ ? reported_state_.data() : state_.data(), state_.size());
    const PackedState* state = state_.data();
    PackedState* next = next_state_.data();
    driver_.run_batched<2>(rng, round_,
                           [&](std::size_t, std::size_t base,
                               std::size_t count, const std::uint64_t* idx,
                               ShardedRoundDriver::Arena& arena) {
        arena.ensure_deltas(delta_size);
        std::int64_t* deltas = arena.deltas.data();
        gather_decide<2>(gather, idx, count,
                         [&](std::size_t i, const std::uint64_t* v) {
            const PackedState wa = v[0];
            const PackedState wb = v[1];
            // wlog gen(a) >= gen(b)  (Algorithm 1 line 2); branchless
            // select — the generation order of two random peers is the
            // least predictable branch of the round.
            const PackedState hi = (wa >> 32U) >= (wb >> 32U) ? wa : wb;
            const PackedState wv = state[base + i];

            PackedState wn = wv;
            if (two_choices && (wv >> 32U) <= (hi >> 32U) && wa == wb) {
                // Two-choices step (line 3-5): same generation AND same
                // color collapses to one 64-bit equality; promotion past
                // the samples is one add on the packed word.
                wn = hi + (1ULL << 32U);
            } else if ((hi >> 32U) > (wv >> 32U)) {
                // Propagation step (line 6-8): pull color and generation
                // from the higher-generation sample in one word copy.
                wn = hi;
            }
            next[base + i] = wn;
            if (wn != wv) {
                --deltas[(wv >> 32U) * k_ + packed_opinion(wv)];
                ++deltas[(wn >> 32U) * k_ + packed_opinion(wn)];
            }
        });
    });

    if (fault_on_) revert_frozen_round();
    state_.swap(next_state_);
    // Worker-order merge on the driving thread; integer deltas commute, so
    // any shard-to-worker assignment sums to the same census. Every
    // subset-of-shards' departures from a (gen, opinion) cell are bounded
    // by the cell's global count, so intermediate per-worker applications
    // never underflow. Arenas a worker never touched this round keep
    // their all-zero (possibly undersized) buffers and are skipped.
    for (std::size_t w = 0; w < driver_.threads(); ++w) {
        ShardedRoundDriver::Arena& arena = driver_.arena(w);
        if (arena.deltas.size() < delta_size) continue;
        census_.apply_deltas(arena.deltas, rows);
        std::fill(arena.deltas.begin(),
                  arena.deltas.begin() + static_cast<std::ptrdiff_t>(delta_size),
                  0);
    }
    // Undo the census effect of the reverted frozen-node updates before
    // birth recording sees the round's final census.
    for (const auto& [applied, restored] : reverts_) {
        census_.transition(packed_generation(applied), packed_opinion(applied),
                           packed_generation(restored),
                           packed_opinion(restored));
    }
    reverts_.clear();
    record_new_births();
}

void Algorithm1::set_fault_injector(const fault::Injector* injector) {
    injector_ = injector;
    fault_on_ = injector != nullptr &&
                (injector->crash_active() || injector->byzantine_active());
    byz_round_ = false;
}

void Algorithm1::begin_faulted_round() {
    byz_round_ = injector_->byzantine_active();
    if (!byz_round_) return;
    reported_state_ = state_;
    const auto rewrite = [this](NodeId v, Opinion target) {
        reported_state_[v] =
            (reported_state_[v] & ~0xFFFFFFFFULL) | target;
    };
    switch (injector_->byzantine_policy()) {
        case fault::ByzantinePolicy::kFixed:
            for (const NodeId v : injector_->byzantine_nodes()) {
                rewrite(v, static_cast<Opinion>(k_ - 1));
            }
            break;
        case fault::ByzantinePolicy::kRandom: {
            Rng stream = injector_->byzantine_round_stream(round_);
            for (const NodeId v : injector_->byzantine_nodes()) {
                rewrite(v, static_cast<Opinion>(stream.uniform_index(k_)));
            }
            break;
        }
        case fault::ByzantinePolicy::kAdaptive: {
            const Opinion target = fault::strongest_minority(
                k_, [this](Opinion j) { return census_.opinion_total(j); });
            for (const NodeId v : injector_->byzantine_nodes()) {
                rewrite(v, target);
            }
            break;
        }
    }
}

void Algorithm1::freeze_node(NodeId v) {
    const PackedState restored = state_[v];
    const PackedState applied = next_state_[v];
    if (applied != restored) {
        next_state_[v] = restored;
        reverts_.emplace_back(applied, restored);
    }
}

void Algorithm1::revert_frozen_round() {
    if (injector_->crash_active()) {
        const auto t = static_cast<double>(round_);
        const std::size_t n = state_.size();
        for (NodeId v = 0; v < n; ++v) {
            if (!injector_->is_down(v, t)) continue;
            ++crash_skips_;
            freeze_node(v);
        }
    }
    for (const NodeId v : injector_->byzantine_nodes()) freeze_node(v);
}

std::uint64_t Algorithm1::opinion_count(Opinion j) const {
    return census_.opinion_total(j);
}

std::size_t Algorithm1::memory_bytes() const {
    return (state_.capacity() + next_state_.capacity()) * sizeof(PackedState) +
           census_.memory_bytes() + driver_.arena_bytes();
}

void Algorithm1::record_new_births() {
    // Only generations first populated this round are summarized; the
    // cached highest_populated makes a quiet round O(1) here.
    const Generation highest = census_.highest_populated();
    while (births_.size() <= highest) {
        const auto g = static_cast<Generation>(births_.size());
        const BiasStats stats = census_.stats(g);
        GenerationBirth birth;
        birth.generation = g;
        birth.round = round_;
        birth.size = stats.total;
        birth.alpha = stats.alpha;
        birth.collision_probability = stats.collision_probability;
        births_.push_back(birth);
    }
}

}  // namespace papc::sync
