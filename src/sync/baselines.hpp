#pragma once

/// \file baselines.hpp
/// Synchronous baseline dynamics the paper positions itself against (§1.1):
///   - pull voting           [HP01, NIY99]: adopt one random sample.
///   - two-choices voting    [CER14]: adopt iff two samples agree.
///   - 3-majority            [BCN+14]: adopt the majority of three samples,
///                           ties broken by adopting a random sample.
///   - undecided-state       [AAE08, BCN+15]: one sample; conflicting colors
///                           make a node undecided, undecided nodes adopt.
/// All run in the same synchronous double-buffered round model as
/// Algorithm 1 and satisfy the SyncDynamics interface. Since PR 4 the
/// rounds run through the batched block kernels of round_kernel.hpp
/// (index batch + prefetched gather + fused census deltas); 3-majority's
/// data-dependent tie-break keeps the scalar decide order and batches
/// only the raw RNG stream through a BufferedSampler.

#include <cstdint>
#include <string>
#include <vector>

#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "opinion/types.hpp"
#include "sync/engine.hpp"
#include "sync/round_kernel.hpp"

namespace papc::sync {

/// Shared state/bookkeeping for color-vector dynamics.
class ColorVectorDynamics : public SyncDynamics {
public:
    ColorVectorDynamics(const Assignment& assignment, bool allow_undecided);

    [[nodiscard]] std::size_t population() const override { return colors_.size(); }
    [[nodiscard]] std::uint32_t num_opinions() const override {
        return census_.num_opinions();
    }
    [[nodiscard]] std::uint64_t opinion_count(Opinion j) const override {
        return census_.count(j);
    }
    [[nodiscard]] std::uint64_t undecided_count() const override {
        return census_.undecided_count();
    }
    [[nodiscard]] std::uint64_t rounds() const override { return round_; }

    [[nodiscard]] Opinion color(NodeId v) const { return colors_[v]; }

protected:
    /// Applies the buffered next_colors_ and commits the fused census
    /// deltas accumulated by the round kernel.
    void commit_round();

    std::vector<Opinion> colors_;
    std::vector<Opinion> next_colors_;
    OpinionCensus census_;
    std::vector<std::uint64_t> scratch_;   ///< per-block peer-index batch
    OpinionDeltaAccumulator deltas_;
    std::uint64_t round_ = 0;
};

/// Pull voting: adopt the opinion of one uniformly random node.
class PullVoting final : public ColorVectorDynamics {
public:
    explicit PullVoting(const Assignment& assignment);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "pull-voting"; }
};

/// Two-choices: sample two nodes, adopt their opinion iff they agree.
class TwoChoices final : public ColorVectorDynamics {
public:
    explicit TwoChoices(const Assignment& assignment);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "two-choices"; }
};

/// 3-majority: sample three nodes; adopt the majority color, or a uniformly
/// random sampled color when all three differ.
class ThreeMajority final : public ColorVectorDynamics {
public:
    explicit ThreeMajority(const Assignment& assignment);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "3-majority"; }

private:
    /// Tie-breaks make the per-node draw count data-dependent, so this
    /// kernel batches the raw stream only (see round_kernel.hpp).
    BufferedSampler sampler_;
};

/// Undecided-state dynamics for k opinions (gossip/pull variant):
/// a decided node seeing a different decided color becomes undecided; an
/// undecided node adopts the sampled color (stays undecided when sampling
/// an undecided node).
class UndecidedState final : public ColorVectorDynamics {
public:
    explicit UndecidedState(const Assignment& assignment);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "undecided-state"; }
};

}  // namespace papc::sync
