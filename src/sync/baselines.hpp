#pragma once

/// \file baselines.hpp
/// Synchronous baseline dynamics the paper positions itself against (§1.1):
///   - pull voting           [HP01, NIY99]: adopt one random sample.
///   - two-choices voting    [CER14]: adopt iff two samples agree.
///   - 3-majority            [BCN+14]: adopt the majority of three samples,
///                           ties broken by adopting a random sample.
///   - undecided-state       [AAE08, BCN+15]: one sample; conflicting colors
///                           make a node undecided, undecided nodes adopt.
/// All run in the same synchronous double-buffered round model as
/// Algorithm 1 and satisfy the SyncDynamics interface. Since PR 4 the
/// rounds run through the batched block kernels of round_kernel.hpp
/// (index batch + prefetched gather + fused census deltas); 3-majority's
/// data-dependent tie-break keeps the scalar decide order and batches
/// only the raw RNG stream through a BufferedSampler. Since PR 5 the
/// blocks are shards of a ShardedRoundDriver: every shard draws from its
/// own Rng::substream(round, shard) and accumulates into its own
/// OpinionDeltaAccumulator (merged in shard order at commit), so a
/// `threads` constructor argument > 1 parallelizes the round without
/// changing any fixed-seed result (bit-identical at every thread count).

#include <cstdint>
#include <string>
#include <vector>

#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "opinion/types.hpp"
#include "sync/engine.hpp"
#include "sync/round_kernel.hpp"

namespace papc::sync {

/// Shared state/bookkeeping for color-vector dynamics.
class ColorVectorDynamics : public SyncDynamics {
public:
    ColorVectorDynamics(const Assignment& assignment, bool allow_undecided,
                        std::size_t threads);

    [[nodiscard]] std::size_t population() const override { return colors_.size(); }
    [[nodiscard]] std::uint32_t num_opinions() const override {
        return census_.num_opinions();
    }
    [[nodiscard]] std::uint64_t opinion_count(Opinion j) const override {
        return census_.count(j);
    }
    [[nodiscard]] std::uint64_t undecided_count() const override {
        return census_.undecided_count();
    }
    [[nodiscard]] std::uint64_t rounds() const override { return round_; }

    [[nodiscard]] Opinion color(NodeId v) const { return colors_[v]; }

protected:
    /// Applies the buffered next_colors_ and commits every shard's fused
    /// census deltas in shard order.
    void commit_round();

    /// Runs the round being computed (round_ + 1) shard by shard with the
    /// per-shard index batch pre-drawn: block(base, count, idx, deltas).
    template <int kDraws, typename BlockFn>
    void run_shards(Rng& rng, BlockFn&& block) {
        driver_.run_batched<kDraws>(
            rng, round_ + 1,
            [&](std::size_t shard, std::size_t base, std::size_t count,
                const std::uint64_t* idx) {
                block(base, count, idx, shard_deltas_[shard]);
            });
    }

    /// Same shard schedule without the index batch — the shard body draws
    /// inline from the substream: fn(base, count, sub, deltas, worker).
    /// Consuming the substream via sub.uniform_index gives bit-identical
    /// results to the batched variant (the uniform_indices contract).
    template <typename ShardFn>
    void run_shards_inline(Rng& rng, ShardFn&& fn) {
        driver_.for_each_shard(
            rng, round_ + 1,
            [&](std::size_t shard, std::size_t base, std::size_t count,
                Rng& sub, std::size_t worker) {
                fn(base, count, sub, shard_deltas_[shard], worker);
            });
    }

    std::vector<Opinion> colors_;
    std::vector<Opinion> next_colors_;
    OpinionCensus census_;
    ShardedRoundDriver driver_;
    std::vector<OpinionDeltaAccumulator> shard_deltas_;  ///< one per shard
    std::uint64_t round_ = 0;
};

/// Below this population pull voting decides inline (BufferedSampler
/// draw + gather + write per node) instead of running the batched
/// index-then-gather kernel. The cutover switches execution strategy
/// only — both paths consume the shard substreams identically, so
/// results are bit-identical across the threshold (pinned in
/// tests/sync/thread_equivalence_test.cpp).
///
/// Where to put it is a hardware question. PR 4's matrix (its VM)
/// measured the batched kernel 0.7-0.9x below 2^18 where the color
/// vector is cache-resident; re-measured for PR 5 on the current 1-core
/// reference container the batched kernel wins at *every* size
/// (1.2-1.4x, mixed-state rounds, interleaved runs — uniform_indices'
/// in-register bulk generation beats the sampler loop even L1-resident).
/// The constant therefore ships conservatively at one round block: only
/// sub-single-shard populations (where a round costs microseconds either
/// way) take the inline path, keeping it exercised and pinned. Raise it
/// on hardware where the inline loop measures faster.
inline constexpr std::size_t kPullVotingBatchCutover = kRoundBlock;

/// Pull voting: adopt the opinion of one uniformly random node.
class PullVoting final : public ColorVectorDynamics {
public:
    explicit PullVoting(const Assignment& assignment, std::size_t threads = 1);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "pull-voting"; }

private:
    void run_shard(std::size_t base, std::size_t count, Rng& sub,
                   OpinionDeltaAccumulator& deltas, BufferedSampler& sampler);

    /// One per worker for the sub-cutover inline path (reset per shard).
    std::vector<BufferedSampler> samplers_;
};

/// Two-choices: sample two nodes, adopt their opinion iff they agree.
class TwoChoices final : public ColorVectorDynamics {
public:
    explicit TwoChoices(const Assignment& assignment, std::size_t threads = 1);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "two-choices"; }
};

/// 3-majority: sample three nodes; adopt the majority color, or a uniformly
/// random sampled color when all three differ.
class ThreeMajority final : public ColorVectorDynamics {
public:
    explicit ThreeMajority(const Assignment& assignment,
                           std::size_t threads = 1);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "3-majority"; }

private:
    void run_shard(std::size_t base, std::size_t count, Rng& sub,
                   OpinionDeltaAccumulator& deltas, BufferedSampler& sampler);

    /// Tie-breaks make the per-node draw count data-dependent, so this
    /// kernel batches the raw stream only (see round_kernel.hpp). One
    /// sampler per worker, reset at every shard boundary.
    std::vector<BufferedSampler> samplers_;
};

/// Undecided-state dynamics for k opinions (gossip/pull variant):
/// a decided node seeing a different decided color becomes undecided; an
/// undecided node adopts the sampled color (stays undecided when sampling
/// an undecided node).
class UndecidedState final : public ColorVectorDynamics {
public:
    explicit UndecidedState(const Assignment& assignment,
                            std::size_t threads = 1);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "undecided-state"; }
};

}  // namespace papc::sync
