#pragma once

/// \file baselines.hpp
/// Synchronous baseline dynamics the paper positions itself against (§1.1):
///   - pull voting           [HP01, NIY99]: adopt one random sample.
///   - two-choices voting    [CER14]: adopt iff two samples agree.
///   - 3-majority            [BCN+14]: adopt the majority of three samples,
///                           ties broken by adopting a random sample.
///   - undecided-state       [AAE08, BCN+15]: one sample; conflicting colors
///                           make a node undecided, undecided nodes adopt.
/// All run in the same synchronous double-buffered round model as
/// Algorithm 1 and satisfy the SyncDynamics interface. Since PR 4 the
/// rounds run through the batched block kernels of round_kernel.hpp
/// (index batch + prefetched gather + fused census deltas); 3-majority's
/// data-dependent tie-break keeps the scalar decide order and batches
/// only the raw RNG stream through a BufferedSampler. Since PR 5 the
/// blocks are shards of a ShardedRoundDriver: every shard draws from its
/// own Rng::substream(round, shard), so a `threads` constructor argument
/// > 1 parallelizes the round without changing any fixed-seed result
/// (bit-identical at every thread count).
///
/// Since PR 7 the color state is a PackedOpinionArray — ⌈log2(k+1)⌉-bit
/// lanes rounded to a power of two, so a k <= 15 run stores 4 bits per
/// node instead of 32 and the random-gather working set shrinks 8x (the
/// hot-path win at huge n; see opinion/packed_array.hpp). Samples are
/// gathered through the SIMD-dispatched PackedGather into strip buffers;
/// next-state writes stream through PackedOpinionArray::Writer (shards
/// never share a packed word). Census deltas accumulate per WORKER in the
/// driver's arenas and commit in worker order — integer deltas commute,
/// so results stay bit-identical to the per-shard scheme (unchanged
/// golden hashes in tests/sync/kernel_golden_test.cpp).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "opinion/packed_array.hpp"
#include "opinion/types.hpp"
#include "sync/engine.hpp"
#include "sync/round_kernel.hpp"

namespace papc::sync {

/// Shared state/bookkeeping for color-vector dynamics.
class ColorVectorDynamics : public SyncDynamics {
public:
    ColorVectorDynamics(const Assignment& assignment, bool allow_undecided,
                        std::size_t threads);

    [[nodiscard]] std::size_t population() const override { return colors_.size(); }
    [[nodiscard]] std::uint32_t num_opinions() const override {
        return census_.num_opinions();
    }
    [[nodiscard]] std::uint64_t opinion_count(Opinion j) const override {
        return census_.count(j);
    }
    [[nodiscard]] std::uint64_t undecided_count() const override {
        return census_.undecided_count();
    }
    [[nodiscard]] std::uint64_t rounds() const override { return round_; }
    [[nodiscard]] std::size_t memory_bytes() const override;

    [[nodiscard]] Opinion color(NodeId v) const { return colors_.get(v); }

    /// Bits per node of the packed color state (memory-anatomy counters).
    [[nodiscard]] unsigned lane_bits() const { return colors_.lane_bits(); }

    void set_fault_injector(const fault::Injector* injector) override;
    [[nodiscard]] std::uint64_t fault_crash_skips() const override {
        return crash_skips_;
    }

protected:
    /// Pre-round fault hook (call at step() start when fault_on_): builds
    /// the byzantine "reported" overlay for the round being computed.
    /// Byzantine nodes lie to samplers; their true colors_ state (and the
    /// own-color reads of the kernels) is untouched.
    void begin_faulted_round();

    /// Where samplers read from this round: the byzantine overlay when one
    /// is active, else the true colors. Kernels must gather through this.
    [[nodiscard]] const PackedOpinionArray& sample_source() const {
        return byz_round_ ? reported_ : colors_;
    }

    /// True when a crash or byzantine layer is attached (fast-path gate).
    [[nodiscard]] bool fault_on() const { return fault_on_; }
    /// Applies the buffered next_colors_ and commits every worker arena's
    /// fused census deltas in worker order (re-establishing the arenas'
    /// all-zero invariant).
    void commit_round();

    /// Runs the round being computed (round_ + 1) shard by shard with the
    /// per-shard index batch pre-drawn: block(base, count, idx, own, note)
    /// where own[i] is node base + i's current color and `note`
    /// accumulates census deltas into the running worker's arena. The
    /// shard's own colors are decoded word-wise into arena scratch up
    /// front (PackedOpinionArray::decode_range) — sequential decode is
    /// ~8 lanes per word load, where per-node colors_.get(base + i)
    /// inside the decide loop pays a load, a variable shift, and a
    /// sentinel compare every node.
    template <int kDraws, typename BlockFn>
    void run_shards(Rng& rng, BlockFn&& block) {
        driver_.run_batched<kDraws>(
            rng, round_ + 1,
            [&](std::size_t, std::size_t base, std::size_t count,
                const std::uint64_t* idx, ShardedRoundDriver::Arena& arena) {
                arena.ensure_lanes(count);
                colors_.decode_range(base, count, arena.lanes.data());
                block(base, count, idx,
                      static_cast<const Opinion*>(arena.lanes.data()),
                      OpinionDeltaAccumulator::View(arena.deltas.data(),
                                                    &arena.undecided));
            });
    }

    /// Same shard schedule without the index batch — the shard body draws
    /// inline from the substream: fn(base, count, sub, note, sampler)
    /// with `sampler` the worker arena's raw-stream sampler. Consuming
    /// the substream via sampler.uniform_index gives bit-identical
    /// results to the batched variant (the uniform_indices contract).
    template <typename ShardFn>
    void run_shards_inline(Rng& rng, ShardFn&& fn) {
        driver_.for_each_shard(
            rng, round_ + 1,
            [&](std::size_t, std::size_t base, std::size_t count,
                Rng& sub, std::size_t worker) {
                ShardedRoundDriver::Arena& arena = driver_.arena(worker);
                fn(base, count, sub,
                   OpinionDeltaAccumulator::View(arena.deltas.data(),
                                                 &arena.undecided),
                   arena.sampler);
            });
    }

    PackedOpinionArray colors_;
    PackedOpinionArray next_colors_;
    OpinionCensus census_;
    ShardedRoundDriver driver_;
    std::uint64_t round_ = 0;

private:
    /// Pre-swap revert of frozen (crashed or byzantine) nodes' updates in
    /// next_colors_, queueing census corrections for commit_round.
    void revert_frozen_round();
    void freeze_node(NodeId v);

    const fault::Injector* injector_ = nullptr;
    bool fault_on_ = false;   ///< crash or byzantine layer attached
    bool byz_round_ = false;  ///< reported_ overlay valid this round
    PackedOpinionArray reported_;
    /// (applied, restored) color pairs to undo in the census at commit.
    std::vector<std::pair<Opinion, Opinion>> reverts_;
    std::uint64_t crash_skips_ = 0;
};

/// Below this population pull voting decides inline (BufferedSampler
/// draw + gather + write per node) instead of running the batched
/// index-then-gather kernel. The cutover switches execution strategy
/// only — both paths consume the shard substreams identically, so
/// results are bit-identical across the threshold (pinned in
/// tests/sync/thread_equivalence_test.cpp).
///
/// Where to put it is a hardware question. PR 4's matrix (its VM)
/// measured the batched kernel 0.7-0.9x below 2^18 where the color
/// vector is cache-resident; re-measured for PR 5 on the current 1-core
/// reference container the batched kernel wins at *every* size
/// (1.2-1.4x, mixed-state rounds, interleaved runs — uniform_indices'
/// in-register bulk generation beats the sampler loop even L1-resident).
/// The constant therefore ships conservatively at one round block: only
/// sub-single-shard populations (where a round costs microseconds either
/// way) take the inline path, keeping it exercised and pinned. Raise it
/// on hardware where the inline loop measures faster.
inline constexpr std::size_t kPullVotingBatchCutover = kRoundBlock;

/// Pull voting: adopt the opinion of one uniformly random node.
class PullVoting final : public ColorVectorDynamics {
public:
    explicit PullVoting(const Assignment& assignment, std::size_t threads = 1);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "pull-voting"; }

private:
    void run_shard(std::size_t base, std::size_t count, Rng& sub,
                   OpinionDeltaAccumulator::View note, BufferedSampler& sampler);
};

/// Two-choices: sample two nodes, adopt their opinion iff they agree.
class TwoChoices final : public ColorVectorDynamics {
public:
    explicit TwoChoices(const Assignment& assignment, std::size_t threads = 1);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "two-choices"; }
};

/// 3-majority: sample three nodes; adopt the majority color, or a uniformly
/// random sampled color when all three differ.
class ThreeMajority final : public ColorVectorDynamics {
public:
    explicit ThreeMajority(const Assignment& assignment,
                           std::size_t threads = 1);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "3-majority"; }

private:
    /// Tie-breaks make the per-node draw count data-dependent, so this
    /// kernel batches the raw stream only (see round_kernel.hpp), through
    /// the worker arena's sampler (reset at every shard boundary).
    void run_shard(std::size_t base, std::size_t count, Rng& sub,
                   OpinionDeltaAccumulator::View note, BufferedSampler& sampler);
};

/// Undecided-state dynamics for k opinions (gossip/pull variant):
/// a decided node seeing a different decided color becomes undecided; an
/// undecided node adopts the sampled color (stays undecided when sampling
/// an undecided node).
class UndecidedState final : public ColorVectorDynamics {
public:
    explicit UndecidedState(const Assignment& assignment,
                            std::size_t threads = 1);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "undecided-state"; }
};

}  // namespace papc::sync
