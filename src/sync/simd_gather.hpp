#pragma once

/// \file simd_gather.hpp
/// Gather primitives of the sync round kernels (PR 7): fill a contiguous
/// strip buffer with array[idx[i]] so the decide loops read sequentially.
///
/// Each function has a scalar loop and an AVX2 path
/// (`_mm256_i64gather_epi64` — 4 random 64-bit loads per instruction,
/// plus variable shifts for the bit-packed lane extraction) selected at
/// runtime through support::active_simd(). The two paths load the same
/// memory and produce byte-identical output buffers — SIMD dispatch can
/// never change a trajectory, only the rate (pinned by
/// tests/sync/simd_equivalence_test.cpp). The AVX2 bodies live in
/// simd_gather.cpp behind __attribute__((target("avx2"))) so the rest of
/// the library still compiles for baseline x86-64 (and the
/// -DPAPC_DISABLE_SIMD build compiles them out entirely).

#include <cstddef>
#include <cstdint>

#include "opinion/types.hpp"

namespace papc::sync::simd {

/// out[i] = array[idx[i]] for i in [0, count) — the packed-word
/// (generation << 32 | opinion) gather of Algorithm 1.
void gather_u64(const std::uint64_t* array, const std::uint64_t* idx,
                std::size_t count, std::uint64_t* out);

/// The scalar path unconditionally (callers with their own dispatch
/// policy, e.g. the u64 size gate below).
void gather_u64_scalar_path(const std::uint64_t* array,
                            const std::uint64_t* idx, std::size_t count,
                            std::uint64_t* out);

/// Size gate for the u64 gather: `vpgatherqq` only pays when the
/// gathered array is LLC-resident. Measured on the reference Xeon
/// (Algorithm 1 rounds/s, AVX2 vs forced scalar): 0.88x with the state
/// L2-resident (n = 2^14), 1.22x in L3 (n = 2^18), 1.00x at the LLC
/// boundary (n = 2^20), 0.78x from DRAM (n = 2^22) — the microcoded
/// gather serializes address generation that out-of-order scalar loads
/// overlap with the strip prefetches. Both bounds are gated; a test
/// override (support::set_simd_override) bypasses the gate so the
/// equivalence suites exercise the AVX2 path at any size. The packed
/// gather needs no gate: its arrays are 4-16x smaller per node, so the
/// resident band covers every practical n (and it also decodes lanes,
/// amortizing the gather latency over more work).
inline constexpr std::size_t kU64GatherSimdMinBytes = std::size_t{1} << 20U;
inline constexpr std::size_t kU64GatherSimdMaxBytes = std::size_t{16} << 20U;
[[nodiscard]] bool u64_gather_profitable(std::size_t array_bytes);

/// Bit-packed lane gather: element i lives in
///   words[idx[i] >> index_shift], bits [(idx[i] & offset_mask) * w, +w)
/// with w = 1 << log2_lane_bits and lane_mask = (all-ones w-bit value).
/// A lane equal to lane_mask is the undecided sentinel and decodes to
/// kUndecided (for 32-bit lanes the sentinel already IS kUndecided, so
/// the decode is the identity there). This is PackedOpinionArray's
/// gather kernel — see opinion/packed_array.hpp for the layout contract.
void gather_packed(const std::uint64_t* words, const std::uint64_t* idx,
                   std::size_t count, unsigned log2_lane_bits, Opinion* out);

}  // namespace papc::sync::simd
