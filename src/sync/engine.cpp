#include "sync/engine.hpp"

#include "support/check.hpp"

namespace papc::sync {

bool SyncDynamics::converged() const {
    const auto n = static_cast<std::uint64_t>(population());
    for (Opinion j = 0; j < num_opinions(); ++j) {
        if (opinion_count(j) == n) return true;
    }
    return false;
}

Opinion SyncDynamics::dominant_opinion() const {
    Opinion best = 0;
    std::uint64_t best_count = opinion_count(0);
    for (Opinion j = 1; j < num_opinions(); ++j) {
        const std::uint64_t c = opinion_count(j);
        if (c > best_count) {
            best_count = c;
            best = j;
        }
    }
    return best;
}

double SyncDynamics::opinion_fraction(Opinion j) const {
    return static_cast<double>(opinion_count(j)) /
           static_cast<double>(population());
}

SyncResult run_to_consensus(SyncDynamics& dynamics, Rng& rng,
                            const RunOptions& options) {
    PAPC_CHECK(options.max_rounds > 0);
    SyncResult result;
    result.dominant_fraction = TimeSeries(dynamics.name());

    const double epsilon_target = 1.0 - options.epsilon;
    auto observe = [&](std::uint64_t round) {
        const double frac = dynamics.opinion_fraction(options.plurality);
        if (result.epsilon_time < 0.0 && frac >= epsilon_target) {
            result.epsilon_time = static_cast<double>(round);
        }
        if (options.record_every > 0 &&
            (round % options.record_every == 0 || dynamics.converged())) {
            result.dominant_fraction.record(static_cast<double>(round), frac);
        }
    };

    observe(0);
    std::uint64_t round = 0;
    while (round < options.max_rounds && !dynamics.converged()) {
        dynamics.step(rng);
        ++round;
        observe(round);
    }

    result.rounds = dynamics.rounds();
    result.converged = dynamics.converged();
    result.winner = dynamics.dominant_opinion();
    return result;
}

}  // namespace papc::sync
