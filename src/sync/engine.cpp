#include "sync/engine.hpp"

#include "support/check.hpp"

namespace papc::sync {

bool SyncDynamics::converged() const {
    const auto n = static_cast<std::uint64_t>(population());
    for (Opinion j = 0; j < num_opinions(); ++j) {
        if (opinion_count(j) == n) return true;
    }
    return false;
}

Opinion SyncDynamics::dominant_opinion() const {
    Opinion best = 0;
    std::uint64_t best_count = opinion_count(0);
    for (Opinion j = 1; j < num_opinions(); ++j) {
        const std::uint64_t c = opinion_count(j);
        if (c > best_count) {
            best_count = c;
            best = j;
        }
    }
    return best;
}

double SyncDynamics::opinion_fraction(Opinion j) const {
    return static_cast<double>(opinion_count(j)) /
           static_cast<double>(population());
}

namespace {

/// Adapts a SyncDynamics to the core step interface; the time axis is the
/// number of rounds driven.
class SyncEngine final : public core::Engine {
public:
    SyncEngine(SyncDynamics& dynamics, Rng& rng)
        : dynamics_(dynamics), rng_(rng) {}

    bool advance() override {
        dynamics_.step(rng_);
        ++rounds_;
        return true;
    }
    [[nodiscard]] double now() const override {
        return static_cast<double>(rounds_);
    }
    [[nodiscard]] bool converged() const override {
        return dynamics_.converged();
    }
    [[nodiscard]] Opinion dominant() const override {
        return dynamics_.dominant_opinion();
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return dynamics_.opinion_fraction(j);
    }

private:
    SyncDynamics& dynamics_;
    Rng& rng_;
    std::uint64_t rounds_ = 0;
};

}  // namespace

SyncResult run_to_consensus(SyncDynamics& dynamics, Rng& rng,
                            const RunOptions& options) {
    PAPC_CHECK(options.max_rounds > 0);
    SyncEngine engine(dynamics, rng);
    core::EngineOptions run_options;
    run_options.max_steps = options.max_rounds;
    run_options.check_every = 1;
    run_options.record_every = options.record_every;
    run_options.record = options.record_every > 0;
    run_options.sample_at_start = true;
    run_options.plurality = options.plurality;
    run_options.epsilon = options.epsilon;
    run_options.series_name = dynamics.name();
    return core::run(engine, run_options);
}

}  // namespace papc::sync
