#pragma once

/// \file round_kernel.hpp
/// Shared building blocks of the batched synchronous round kernels (PR 4)
/// and the sharded round executor on top of them (PR 5).
///
/// Every sync-family engine advances n independent nodes per round, each
/// node deciding from one to three uniform peer samples. The scalar loops
/// interleaved the (serially dependent) RNG state update, the random
/// gather, and the decide branch per node; the kernels here split a round
/// into blocks of kRoundBlock nodes and run three phases per block:
///
///   1. index batch — Rng::uniform_indices fills a block of peer indices
///      in one tight Lemire loop (bit-identical to scalar draw order);
///   2. gather + decide — software-pipelined in kGatherStrip-node strips
///      (strip s + 1's random loads prefetched while strip s decides), so
///      the memory-level parallelism is bounded by the cache hierarchy
///      and not by the RNG dependency chain;
///   3. fused census — count deltas accumulate inside the write loop and
///      are applied at commit, deleting the per-round census rescan.
///
/// Sharding (PR 5): the kRoundBlock block is also the parallel unit.
/// ShardedRoundDriver gives shard s of round r its own RNG substream
/// Rng::substream(r, s) — a pure function of the run generator's state
/// and the labels — and runs shards on a reusable support::ThreadPool.
/// Each shard writes only its own next-state slice and its own delta
/// buffer; deltas merge at commit in shard order on the driving thread.
///
/// Determinism contract (since PR 5): a round's draw schedule is fixed by
/// (run seed, round, shard index) alone — never by the thread count, the
/// worker a shard lands on, or shard completion order — so fixed-seed
/// trajectories are bit-identical at every thread count (pinned by
/// tests/sync/thread_equivalence_test.cpp and the full-state goldens in
/// tests/sync/kernel_golden_test.cpp). Protocols whose draw count is
/// data-dependent (3-majority's tie-break) keep the scalar decide order
/// within a shard by drawing through BufferedSampler, which batches the
/// raw substream but decides inline.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "opinion/census.hpp"
#include "opinion/types.hpp"
#include "support/check.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"

namespace papc::sync {

/// Nodes per kernel block: 4096 nodes keep the index batch (32 KiB of
/// u64), the sampled colors and the per-block deltas inside L1/L2 while
/// amortizing the batched-RNG refills.
inline constexpr std::size_t kRoundBlock = 4096;

/// How many nodes ahead the inline-sampling kernels (BufferedSampler
/// consumers) prefetch speculative gather targets.
inline constexpr std::size_t kPrefetchAhead = 16;

inline void prefetch_read(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(address, 0 /*read*/, 1 /*low temporal locality*/);
#else
    (void)address;
#endif
}

/// Issues a read prefetch for every array[idx[i]] of one block — a pure
/// load/prefetch loop whose memory-level parallelism is bounded only by
/// the cache hierarchy (the serially dependent RNG already ran in the
/// index-batch phase). One kernel block's gather set (<= 2 * 4096 lines,
/// ~512 KiB worst case) fits L2, so the decide loop that follows hits L2
/// instead of paying DRAM/L3 latency per random load.
template <typename T>
inline void prefetch_gather(const T* array, const std::uint64_t* idx,
                            std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
#if defined(__GNUC__) || defined(__clang__)
        // locality 2: keep the block's gather set in L2 for the decide loop.
        __builtin_prefetch(array + idx[i], 0, 2);
#else
        (void)array;
        (void)idx;
#endif
    }
}

/// Strip size of the software-pipelined gather phase: prefetching one
/// strip ahead bounds the in-flight hints to what the line-fill buffers
/// can track, while one strip of decide work (~a few µs) gives every
/// prefetched line time to arrive before it is loaded.
inline constexpr std::size_t kGatherStrip = 256;

/// Gather + decide phase of one kernel block: runs decide(i) for every
/// i in [0, count) with the kDraws gather targets of strip s + 1
/// prefetched while strip s decides.
template <int kDraws, typename T, typename DecideFn>
inline void gather_decide(const T* array, const std::uint64_t* idx,
                          std::size_t count, DecideFn&& decide) {
    prefetch_gather(array, idx,
                    static_cast<std::size_t>(kDraws) *
                        std::min(kGatherStrip, count));
    for (std::size_t s = 0; s < count; s += kGatherStrip) {
        const std::size_t end = std::min(s + kGatherStrip, count);
        if (end < count) {
            const std::size_t next_end = std::min(end + kGatherStrip, count);
            prefetch_gather(array, idx + static_cast<std::size_t>(kDraws) * end,
                            static_cast<std::size_t>(kDraws) * (next_end - end));
        }
        for (std::size_t i = s; i < end; ++i) decide(i);
    }
}

/// Sharded round executor: partitions n nodes into kRoundBlock shards,
/// derives shard s of round r its private substream rng.substream(r, s),
/// and runs shards on a reusable worker pool. The shard-to-worker
/// assignment is scheduling-dependent; results are not, because every
/// per-shard output (next-state slice, delta buffer, index scratch) is
/// either owned by the shard or merged in shard order by the caller.
/// threads == 1 costs nothing: no pool is created and shards run inline.
class ShardedRoundDriver {
public:
    ShardedRoundDriver(std::size_t n, std::size_t threads)
        : n_(n), threads_(std::max<std::size_t>(1, threads)) {
        if (threads_ > 1) {
            pool_ = std::make_unique<support::ThreadPool>(threads_);
        }
        scratch_.resize(threads_);
    }

    [[nodiscard]] std::size_t num_shards() const {
        return (n_ + kRoundBlock - 1) / kRoundBlock;
    }
    [[nodiscard]] std::size_t threads() const { return threads_; }

    /// Runs fn(shard, base, count, sub, worker) for every shard: nodes
    /// [base, base + count) with private substream `sub`; `worker` indexes
    /// per-worker scratch in [0, threads()).
    ///
    /// The parent generator advances by ONE draw per round (on the
    /// driving thread, before any shard dispatches — thread-count
    /// invariance is untouched). Without it, two sequential runs driven
    /// through the same Rng object would derive identical (round, shard)
    /// substreams and replay word-for-word correlated trajectories; the
    /// per-round advance keeps a shared generator's runs independent,
    /// matching the pre-shard sequential-tape behaviour.
    template <typename ShardFn>
    void for_each_shard(Rng& rng, std::uint64_t round, ShardFn&& fn) {
        rng.next_u64();
        const Rng base_rng = rng;
        const std::size_t shards = num_shards();
        const auto body = [&](std::size_t shard, std::size_t worker) {
            const std::size_t base = shard * kRoundBlock;
            const std::size_t count = std::min(kRoundBlock, n_ - base);
            Rng sub = base_rng.substream(round, shard);
            fn(shard, base, count, sub, worker);
        };
        if (pool_ == nullptr) {
            for (std::size_t shard = 0; shard < shards; ++shard) {
                body(shard, 0);
            }
        } else {
            pool_->parallel_for(shards, body);
        }
    }

    /// Batched variant for fixed-draw-count kernels: fills the worker's
    /// index scratch with count * kDraws uniform draws from the shard
    /// substream (node base's draws first, then base+1's, ...) and calls
    /// block(shard, base, count, idx) with idx[i * kDraws + d] the d-th
    /// sample of node base + i.
    template <int kDraws, typename BlockFn>
    void run_batched(Rng& rng, std::uint64_t round, BlockFn&& block) {
        static_assert(kDraws >= 1);
        for_each_shard(rng, round,
                       [&](std::size_t shard, std::size_t base,
                           std::size_t count, Rng& sub, std::size_t worker) {
            std::vector<std::uint64_t>& idx = scratch_[worker];
            idx.resize(kRoundBlock * static_cast<std::size_t>(kDraws));
            sub.uniform_indices(static_cast<std::uint64_t>(n_), idx.data(),
                                count * static_cast<std::size_t>(kDraws));
            block(shard, base, count, idx.data());
        });
    }

private:
    std::size_t n_;
    std::size_t threads_;
    std::unique_ptr<support::ThreadPool> pool_;  ///< null when threads_ == 1
    std::vector<std::vector<std::uint64_t>> scratch_;  ///< per worker
};

/// Fused-census accumulator for the flat (opinion-only) baselines: the
/// write loop notes each changed node and commit() applies the summed
/// per-opinion deltas in one pass — replacing the per-round
/// OpinionCensus::reset rescan of the whole color vector.
class OpinionDeltaAccumulator {
public:
    explicit OpinionDeltaAccumulator(std::uint32_t num_opinions)
        : deltas_(num_opinions, 0) {}

    /// Raw-pointer view for the decide loops: note() through a View kept
    /// in locals costs no per-note reload of the accumulator's data
    /// pointer (reached through a reference, the optimizer must re-load
    /// it every bump — measurably slower on the cheapest kernels).
    /// Invalidated by commit() and by destroying the accumulator.
    class View {
    public:
        void note(Opinion from, Opinion to) const {
            if (from == to) return;
            bump(from, -1);
            bump(to, +1);
        }

    private:
        friend class OpinionDeltaAccumulator;
        View(std::int64_t* deltas, std::int64_t* undecided)
            : deltas_(deltas), undecided_(undecided) {}

        void bump(Opinion op, std::int64_t d) const {
            if (op == kUndecided) {
                *undecided_ += d;
            } else {
                deltas_[op] += d;
            }
        }

        std::int64_t* deltas_;
        std::int64_t* undecided_;
    };

    [[nodiscard]] View view() { return View(deltas_.data(), &undecided_); }

    void note(Opinion from, Opinion to) { view().note(from, to); }

    /// Applies and clears the accumulated deltas.
    void commit(OpinionCensus& census) {
        census.apply_deltas(deltas_, undecided_);
        std::fill(deltas_.begin(), deltas_.end(), 0);
        undecided_ = 0;
    }

private:
    std::vector<std::int64_t> deltas_;
    std::int64_t undecided_ = 0;
};

/// Buffered view over an Rng's raw u64 stream for kernels whose number of
/// draws per node is data-dependent. Consumption order (and hence every
/// sampled value) is identical to calling rng.uniform_index directly; the
/// only difference is that the underlying generator runs ahead by up to
/// one buffer of raw words, which is invisible to any consumer that draws
/// exclusively through this sampler.
class BufferedSampler {
public:
    explicit BufferedSampler(std::size_t capacity = kRoundBlock)
        : buf_(capacity), cursor_(capacity) {
        PAPC_CHECK(capacity > 0);
    }

    /// Discards any buffered raw words, so the next draw refills from the
    /// generator. Sharded kernels reset the per-worker sampler at every
    /// shard boundary: the abandoned words belong to the previous shard's
    /// substream, which no one will draw from again.
    void reset() { cursor_ = buf_.size(); }

    /// Uniform index in [0, n); same lemire_map rejection behaviour (and
    /// hence the same raw-word consumption) as Rng::uniform_index.
    std::uint64_t uniform_index(Rng& rng, std::uint64_t n) {
        return uniform_index(rng, n, lemire_threshold(n));
    }

    /// Same with the caller-hoisted threshold (= lemire_threshold(n)) —
    /// the per-draw 64-bit division is the dominant cost of the inline
    /// sampling kernels when the optimizer cannot hoist it itself.
    std::uint64_t uniform_index(Rng& rng, std::uint64_t n,
                                std::uint64_t threshold) {
        std::uint64_t index;
        while (!lemire_map(next_raw(rng), n, threshold, index)) {
        }
        return index;
    }

    /// Speculative peek at the raw word `ahead` positions past the cursor
    /// (0 when past the buffered window). Kernels use it to prefetch the
    /// gather target a future draw will most likely hit — a rejection in
    /// between shifts the mapping by one word, which only costs one wasted
    /// prefetch hint, never correctness.
    [[nodiscard]] std::uint64_t peek_raw(std::size_t ahead) const {
        const std::size_t at = cursor_ + ahead;
        return at < buf_.size() ? buf_[at] : 0;
    }

private:
    std::uint64_t next_raw(Rng& rng) {
        if (cursor_ == buf_.size()) {
            rng.fill_u64(buf_.data(), buf_.size());
            cursor_ = 0;
        }
        return buf_[cursor_++];
    }

    std::vector<std::uint64_t> buf_;
    std::size_t cursor_;
};

/// Packed per-node Algorithm 1 state: generation in the high 32 bits,
/// opinion in the low 32. The wlog gen(a) >= gen(b) compare, the
/// two-choices match (same generation AND same color ⟺ equal words) and
/// the propagation pull each become one gather + one integer op.
using PackedState = std::uint64_t;

constexpr PackedState pack_state(Generation generation, Opinion opinion) {
    return (static_cast<std::uint64_t>(generation) << 32U) | opinion;
}

constexpr Generation packed_generation(PackedState word) {
    return static_cast<Generation>(word >> 32U);
}

constexpr Opinion packed_opinion(PackedState word) {
    return static_cast<Opinion>(word & 0xFFFFFFFFULL);
}

}  // namespace papc::sync
