#pragma once

/// \file round_kernel.hpp
/// Shared building blocks of the batched synchronous round kernels (PR 4),
/// the sharded round executor on top of them (PR 5), and the SIMD gather +
/// arena layer (PR 7).
///
/// Every sync-family engine advances n independent nodes per round, each
/// node deciding from one to three uniform peer samples. The scalar loops
/// interleaved the (serially dependent) RNG state update, the random
/// gather, and the decide branch per node; the kernels here split a round
/// into blocks of kRoundBlock nodes and run three phases per block:
///
///   1. index batch — Rng::uniform_indices fills a block of peer indices
///      in one tight Lemire loop (bit-identical to scalar draw order);
///   2. gather + decide — a Gatherer fills a kGatherStrip-node strip
///      buffer with the sampled values (AVX2 `vpgatherqq` when the CPU
///      has it — see sync/simd_gather.hpp — with strip s + 1's lines
///      prefetched while strip s fills), then the decide loop reads the
///      strip sequentially;
///   3. fused census — count deltas accumulate inside the write loop and
///      are applied at commit, deleting the per-round census rescan.
///
/// Sharding (PR 5): the kRoundBlock block is also the parallel unit.
/// ShardedRoundDriver gives shard s of round r its own RNG substream
/// Rng::substream(r, s) — a pure function of the run generator's state
/// and the labels — and runs shards on a reusable support::ThreadPool.
///
/// Arenas (PR 7): all per-shard scratch — the index batch, the fused
/// census delta buffer, the raw-stream sampler — lives in one per-WORKER
/// Arena allocated once by the driver, not in per-shard buffers. At
/// n = 2^24 the old per-shard Algorithm 1 delta blocks alone were
/// shards × rows × k × 8 B of RSS (tens of MiB) re-zeroed every round;
/// per-worker arenas cap that at threads × rows × k and zero it once per
/// commit. Integer census deltas commute and every cell's total departures
/// are bounded by its count, so accumulating per worker (shard-to-worker
/// assignment is scheduling-dependent) and committing in worker order
/// yields bit-identical censuses — the PR 5 determinism contract below is
/// untouched (pinned by the unchanged golden hashes).
///
/// Determinism contract (since PR 5): a round's draw schedule is fixed by
/// (run seed, round, shard index) alone — never by the thread count, the
/// worker a shard lands on, or shard completion order — so fixed-seed
/// trajectories are bit-identical at every thread count (pinned by
/// tests/sync/thread_equivalence_test.cpp and the full-state goldens in
/// tests/sync/kernel_golden_test.cpp). Protocols whose draw count is
/// data-dependent (3-majority's tie-break) keep the scalar decide order
/// within a shard by drawing through BufferedSampler, which batches the
/// raw substream but decides inline.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "opinion/census.hpp"
#include "opinion/packed_array.hpp"
#include "opinion/types.hpp"
#include "support/check.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "sync/simd_gather.hpp"

namespace papc::sync {

/// Nodes per kernel block: 4096 nodes keep the index batch (32 KiB of
/// u64), the sampled colors and the per-block deltas inside L1/L2 while
/// amortizing the batched-RNG refills. Also the sharding unit: 4096 is a
/// multiple of the lanes-per-word of every PackedOpinionArray width, so
/// shards never share a packed word (see opinion/packed_array.hpp).
inline constexpr std::size_t kRoundBlock = 4096;
static_assert(kRoundBlock % 32 == 0,
              "shards must cover whole packed words at every lane width");

/// How many nodes ahead the inline-sampling kernels (BufferedSampler
/// consumers) prefetch speculative gather targets.
inline constexpr std::size_t kPrefetchAhead = 16;

inline void prefetch_read(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(address, 0 /*read*/, 1 /*low temporal locality*/);
#else
    (void)address;
#endif
}

/// Issues a read prefetch for every array[idx[i]] of one block — a pure
/// load/prefetch loop whose memory-level parallelism is bounded only by
/// the cache hierarchy (the serially dependent RNG already ran in the
/// index-batch phase). One kernel block's gather set (<= 2 * 4096 lines,
/// ~512 KiB worst case) fits L2, so the gather that follows hits L2
/// instead of paying DRAM/L3 latency per random load.
template <typename T>
inline void prefetch_gather(const T* array, const std::uint64_t* idx,
                            std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
#if defined(__GNUC__) || defined(__clang__)
        // locality 2: keep the block's gather set in L2 for the decide loop.
        __builtin_prefetch(array + idx[i], 0, 2);
#else
        (void)array;
        (void)idx;
#endif
    }
}

/// Strip size of the software-pipelined gather phase: prefetching one
/// strip ahead bounds the in-flight hints to what the line-fill buffers
/// can track, while one strip of gather + decide work gives every
/// prefetched line time to arrive before it is loaded. The strip value
/// buffer (kGatherStrip * draws elements) lives on the stack — at most
/// 4 KiB.
inline constexpr std::size_t kGatherStrip = 256;

/// Gatherer over a plain u64 array: out[i] = array[idx[i]] — Algorithm 1's
/// packed (generation << 32 | opinion) state words.
struct RawGather64 {
    using Value = std::uint64_t;

    const std::uint64_t* array;
    /// Whether the AVX2 path is worth taking for this array's size
    /// (simd::u64_gather_profitable; bit-identical either way).
    bool use_simd;

    RawGather64(const std::uint64_t* a, std::size_t size)
        : array(a), use_simd(simd::u64_gather_profitable(size * 8)) {}

    void prefetch(const std::uint64_t* idx, std::size_t count) const {
        prefetch_gather(array, idx, count);
    }
    void gather(const std::uint64_t* idx, std::size_t count,
                Value* out) const {
        if (use_simd) {
            simd::gather_u64(array, idx, count, out);
        } else {
            simd::gather_u64_scalar_path(array, idx, count, out);
        }
    }
};

/// Gatherer over a bit-packed opinion array: decodes each sampled node's
/// lane (undecided sentinel included) into a plain Opinion strip.
struct PackedGather {
    using Value = Opinion;

    /// Strip prefetch only pays once the packed words outgrow L2: below
    /// ~4 MiB the random loads hit L2/L3 anyway and the per-lane prefetch
    /// instruction (plus its address shift) is pure overhead on the
    /// 1-draw protocols' hot loop. Packing is what pulls most arrays
    /// under this line — n = 2^22 at k = 8 is 2 MiB packed vs 16 MiB raw.
    static constexpr std::size_t kPrefetchMinBytes = std::size_t{4} << 20U;

    explicit PackedGather(const PackedOpinionArray& array)
        : words_(array.words()),
          log2_lane_bits_(array.log2_lane_bits()),
          index_shift_(6U - array.log2_lane_bits()),
          prefetch_(array.memory_bytes() >= kPrefetchMinBytes) {}

    void prefetch(const std::uint64_t* idx, std::size_t count) const {
        if (!prefetch_) return;
        for (std::size_t i = 0; i < count; ++i) {
#if defined(__GNUC__) || defined(__clang__)
            __builtin_prefetch(words_ + (idx[i] >> index_shift_), 0, 2);
#endif
        }
    }
    void gather(const std::uint64_t* idx, std::size_t count,
                Value* out) const {
        simd::gather_packed(words_, idx, count, log2_lane_bits_, out);
    }

private:
    const std::uint64_t* words_;
    unsigned log2_lane_bits_;
    unsigned index_shift_;
    bool prefetch_;
};

/// Gather + decide phase of one kernel block: fills a strip buffer with
/// the kDraws sampled values per node (gatherer.gather — the SIMD hot
/// loop) and runs decide(i, values) for every i in [0, count) with
/// values[d] the node's d-th sample; strip s + 1's random lines are
/// prefetched while strip s gathers and decides. The strip buffer is
/// byte-identical whichever gather path filled it, so SIMD dispatch can
/// never change a decision.
template <int kDraws, typename Gatherer, typename DecideFn>
inline void gather_decide(const Gatherer& gatherer, const std::uint64_t* idx,
                          std::size_t count, DecideFn&& decide) {
    typename Gatherer::Value strip[kGatherStrip * static_cast<std::size_t>(kDraws)];
    gatherer.prefetch(idx, static_cast<std::size_t>(kDraws) *
                               std::min(kGatherStrip, count));
    for (std::size_t s = 0; s < count; s += kGatherStrip) {
        const std::size_t end = std::min(s + kGatherStrip, count);
        if (end < count) {
            const std::size_t next_end = std::min(end + kGatherStrip, count);
            gatherer.prefetch(idx + static_cast<std::size_t>(kDraws) * end,
                              static_cast<std::size_t>(kDraws) * (next_end - end));
        }
        gatherer.gather(idx + static_cast<std::size_t>(kDraws) * s,
                        static_cast<std::size_t>(kDraws) * (end - s), strip);
        for (std::size_t i = s; i < end; ++i) {
            decide(i, strip + static_cast<std::size_t>(kDraws) * (i - s));
        }
    }
}

/// Buffered view over an Rng's raw u64 stream for kernels whose number of
/// draws per node is data-dependent. Consumption order (and hence every
/// sampled value) is identical to calling rng.uniform_index directly; the
/// only difference is that the underlying generator runs ahead by up to
/// one buffer of raw words, which is invisible to any consumer that draws
/// exclusively through this sampler.
class BufferedSampler {
public:
    explicit BufferedSampler(std::size_t capacity = kRoundBlock)
        : buf_(capacity), cursor_(capacity) {
        PAPC_CHECK(capacity > 0);
    }

    /// Discards any buffered raw words, so the next draw refills from the
    /// generator. Sharded kernels reset the per-worker sampler at every
    /// shard boundary: the abandoned words belong to the previous shard's
    /// substream, which no one will draw from again.
    void reset() { cursor_ = buf_.size(); }

    /// Uniform index in [0, n); same lemire_map rejection behaviour (and
    /// hence the same raw-word consumption) as Rng::uniform_index.
    std::uint64_t uniform_index(Rng& rng, std::uint64_t n) {
        return uniform_index(rng, n, lemire_threshold(n));
    }

    /// Same with the caller-hoisted threshold (= lemire_threshold(n)) —
    /// the per-draw 64-bit division is the dominant cost of the inline
    /// sampling kernels when the optimizer cannot hoist it itself.
    std::uint64_t uniform_index(Rng& rng, std::uint64_t n,
                                std::uint64_t threshold) {
        std::uint64_t index;
        while (!lemire_map(next_raw(rng), n, threshold, index)) {
        }
        return index;
    }

    /// Speculative peek at the raw word `ahead` positions past the cursor
    /// (0 when past the buffered window). Kernels use it to prefetch the
    /// gather target a future draw will most likely hit — a rejection in
    /// between shifts the mapping by one word, which only costs one wasted
    /// prefetch hint, never correctness.
    [[nodiscard]] std::uint64_t peek_raw(std::size_t ahead) const {
        const std::size_t at = cursor_ + ahead;
        return at < buf_.size() ? buf_[at] : 0;
    }

private:
    std::uint64_t next_raw(Rng& rng) {
        if (cursor_ == buf_.size()) {
            rng.fill_u64(buf_.data(), buf_.size());
            cursor_ = 0;
        }
        return buf_[cursor_++];
    }

    std::vector<std::uint64_t> buf_;
    std::size_t cursor_;
};

/// Sharded round executor: partitions n nodes into kRoundBlock shards,
/// derives shard s of round r its private substream rng.substream(r, s),
/// and runs shards on a reusable worker pool. The shard-to-worker
/// assignment is scheduling-dependent; results are not, because every
/// per-shard output (next-state slice, arena delta accumulation) is
/// either owned by the shard or commutative-summed per worker and merged
/// in worker order by the caller. threads == 1 costs nothing: no pool is
/// created and shards run inline.
class ShardedRoundDriver {
public:
    /// Per-worker scratch arena, allocated once for the driver's lifetime
    /// (cache-line aligned so workers never false-share). Everything a
    /// shard needs beyond its next-state slice lives here: the index
    /// batch, the fused census delta accumulation (layout is the owning
    /// dynamics' business: flat k for the baselines, row-major
    /// generations × k for Algorithm 1), and the raw-stream sampler of
    /// the inline kernels. The deltas invariant between rounds is
    /// all-zero: writers size with ensure_deltas (zero-fills growth) and
    /// the committer re-zeroes exactly what a round used.
    struct alignas(64) Arena {
        std::vector<std::uint64_t> indices;
        std::vector<std::int64_t> deltas;
        /// Shard-local decode of the shard's own packed colors
        /// (PackedOpinionArray::decode_range) — at most kRoundBlock wide.
        std::vector<Opinion> lanes;
        std::int64_t undecided = 0;
        BufferedSampler sampler;

        void ensure_deltas(std::size_t size) {
            if (deltas.size() < size) deltas.resize(size, 0);
        }

        void ensure_lanes(std::size_t size) {
            if (lanes.size() < size) lanes.resize(size);
        }
    };

    ShardedRoundDriver(std::size_t n, std::size_t threads)
        : n_(n), threads_(std::max<std::size_t>(1, threads)) {
        if (threads_ > 1) {
            pool_ = std::make_unique<support::ThreadPool>(threads_);
        }
        arenas_.reserve(threads_);
        for (std::size_t w = 0; w < threads_; ++w) {
            arenas_.push_back(std::make_unique<Arena>());
        }
    }

    [[nodiscard]] std::size_t num_shards() const {
        return (n_ + kRoundBlock - 1) / kRoundBlock;
    }
    [[nodiscard]] std::size_t threads() const { return threads_; }

    [[nodiscard]] Arena& arena(std::size_t worker) { return *arenas_[worker]; }

    /// Heap bytes currently held by the worker arenas (RSS accounting).
    [[nodiscard]] std::size_t arena_bytes() const {
        std::size_t bytes = 0;
        for (const auto& arena : arenas_) {
            bytes += sizeof(Arena) +
                     arena->indices.capacity() * sizeof(std::uint64_t) +
                     arena->deltas.capacity() * sizeof(std::int64_t) +
                     arena->lanes.capacity() * sizeof(Opinion) +
                     kRoundBlock * sizeof(std::uint64_t);  // sampler buffer
        }
        return bytes;
    }

    /// Runs fn(shard, base, count, sub, worker) for every shard: nodes
    /// [base, base + count) with private substream `sub`; `worker` indexes
    /// arena(worker) in [0, threads()).
    ///
    /// The parent generator advances by ONE draw per round (on the
    /// driving thread, before any shard dispatches — thread-count
    /// invariance is untouched). Without it, two sequential runs driven
    /// through the same Rng object would derive identical (round, shard)
    /// substreams and replay word-for-word correlated trajectories; the
    /// per-round advance keeps a shared generator's runs independent,
    /// matching the pre-shard sequential-tape behaviour.
    template <typename ShardFn>
    void for_each_shard(Rng& rng, std::uint64_t round, ShardFn&& fn) {
        rng.next_u64();
        const Rng base_rng = rng;
        const std::size_t shards = num_shards();
        const auto body = [&](std::size_t shard, std::size_t worker) {
            const std::size_t base = shard * kRoundBlock;
            const std::size_t count = std::min(kRoundBlock, n_ - base);
            Rng sub = base_rng.substream(round, shard);
            fn(shard, base, count, sub, worker);
        };
        if (pool_ == nullptr) {
            for (std::size_t shard = 0; shard < shards; ++shard) {
                body(shard, 0);
            }
        } else {
            pool_->parallel_for(shards, body);
        }
    }

    /// Batched variant for fixed-draw-count kernels: fills the worker
    /// arena's index block with count * kDraws uniform draws from the
    /// shard substream (node base's draws first, then base+1's, ...) and
    /// calls block(shard, base, count, idx, arena) with
    /// idx[i * kDraws + d] the d-th sample of node base + i and `arena`
    /// the running worker's scratch arena.
    template <int kDraws, typename BlockFn>
    void run_batched(Rng& rng, std::uint64_t round, BlockFn&& block) {
        static_assert(kDraws >= 1);
        for_each_shard(rng, round,
                       [&](std::size_t shard, std::size_t base,
                           std::size_t count, Rng& sub, std::size_t worker) {
            Arena& arena = *arenas_[worker];
            std::vector<std::uint64_t>& idx = arena.indices;
            idx.resize(kRoundBlock * static_cast<std::size_t>(kDraws));
            sub.uniform_indices(static_cast<std::uint64_t>(n_), idx.data(),
                                count * static_cast<std::size_t>(kDraws));
            block(shard, base, count, idx.data(), arena);
        });
    }

private:
    std::size_t n_;
    std::size_t threads_;
    std::unique_ptr<support::ThreadPool> pool_;  ///< null when threads_ == 1
    std::vector<std::unique_ptr<Arena>> arenas_;  ///< one per worker
};

/// Fused-census accumulator for the flat (opinion-only) baselines: the
/// write loop notes each changed node and commit() applies the summed
/// per-opinion deltas in one pass — replacing the per-round
/// OpinionCensus::reset rescan of the whole color vector. The sharded
/// dynamics accumulate straight into their worker Arena through a View
/// over the arena's storage; the owning class remains for single-buffer
/// uses and the kernel unit tests.
class OpinionDeltaAccumulator {
public:
    explicit OpinionDeltaAccumulator(std::uint32_t num_opinions)
        : deltas_(num_opinions, 0) {}

    /// Raw-pointer view for the decide loops: note() through a View kept
    /// in locals costs no per-note reload of the accumulator's data
    /// pointer (reached through a reference, the optimizer must re-load
    /// it every bump — measurably slower on the cheapest kernels).
    /// Constructible over any external (deltas[k], undecided) pair — the
    /// worker arenas. Invalidated by commit() and by destroying or
    /// reallocating the underlying storage.
    class View {
    public:
        View(std::int64_t* deltas, std::int64_t* undecided)
            : deltas_(deltas), undecided_(undecided) {}

        void note(Opinion from, Opinion to) const {
            if (from == to) return;
            bump(from, -1);
            bump(to, +1);
        }

    private:
        void bump(Opinion op, std::int64_t d) const {
            if (op == kUndecided) {
                *undecided_ += d;
            } else {
                deltas_[op] += d;
            }
        }

        std::int64_t* deltas_;
        std::int64_t* undecided_;
    };

    [[nodiscard]] View view() { return View(deltas_.data(), &undecided_); }

    void note(Opinion from, Opinion to) { view().note(from, to); }

    /// Applies and clears the accumulated deltas.
    void commit(OpinionCensus& census) {
        census.apply_deltas(deltas_, undecided_);
        std::fill(deltas_.begin(), deltas_.end(), 0);
        undecided_ = 0;
    }

private:
    std::vector<std::int64_t> deltas_;
    std::int64_t undecided_ = 0;
};

/// Packed per-node Algorithm 1 state: generation in the high 32 bits,
/// opinion in the low 32. The wlog gen(a) >= gen(b) compare, the
/// two-choices match (same generation AND same color ⟺ equal words) and
/// the propagation pull each become one gather + one integer op.
using PackedState = std::uint64_t;

constexpr PackedState pack_state(Generation generation, Opinion opinion) {
    return (static_cast<std::uint64_t>(generation) << 32U) | opinion;
}

constexpr Generation packed_generation(PackedState word) {
    return static_cast<Generation>(word >> 32U);
}

constexpr Opinion packed_opinion(PackedState word) {
    return static_cast<Opinion>(word & 0xFFFFFFFFULL);
}

}  // namespace papc::sync
