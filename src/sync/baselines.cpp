#include "sync/baselines.hpp"

#include "support/check.hpp"

namespace papc::sync {

ColorVectorDynamics::ColorVectorDynamics(const Assignment& assignment,
                                         bool allow_undecided)
    : colors_(assignment.opinions),
      next_colors_(assignment.size()),
      census_(assignment.size(), assignment.num_opinions),
      deltas_(assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    if (!allow_undecided) {
        for (const Opinion c : colors_) PAPC_CHECK(c != kUndecided);
    }
    census_.reset(colors_);
}

void ColorVectorDynamics::commit_round() {
    colors_.swap(next_colors_);
    deltas_.commit(census_);
    ++round_;
}

PullVoting::PullVoting(const Assignment& assignment)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false) {}

void PullVoting::step(Rng& rng) {
    const std::size_t n = colors_.size();
    const Opinion* colors = colors_.data();
    blocked_round<1>(rng, n, scratch_,
                     [&](std::size_t base, std::size_t count,
                         const std::uint64_t* idx) {
        gather_decide<1>(colors, idx, count, [&](std::size_t i) {
            const Opinion seen = colors[idx[i]];
            deltas_.note(colors[base + i], seen);
            next_colors_[base + i] = seen;
        });
    });
    commit_round();
}

TwoChoices::TwoChoices(const Assignment& assignment)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false) {}

void TwoChoices::step(Rng& rng) {
    const std::size_t n = colors_.size();
    const Opinion* colors = colors_.data();
    blocked_round<2>(rng, n, scratch_,
                     [&](std::size_t base, std::size_t count,
                         const std::uint64_t* idx) {
        gather_decide<2>(colors, idx, count, [&](std::size_t i) {
            const Opinion a = colors[idx[2 * i]];
            const Opinion b = colors[idx[2 * i + 1]];
            const Opinion mine = colors[base + i];
            const Opinion next = (a == b) ? a : mine;
            deltas_.note(mine, next);
            next_colors_[base + i] = next;
        });
    });
    commit_round();
}

ThreeMajority::ThreeMajority(const Assignment& assignment)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false) {}

void ThreeMajority::step(Rng& rng) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    const Opinion* colors = colors_.data();
    // Predicts the gather target of the draw ~12 nodes ahead from the
    // sampler's buffered raw words (exact unless a rejection or tie-break
    // shifts the stream in between — then it is merely a wasted hint).
    const auto prefetch_future = [&](std::size_t ahead) {
        std::uint64_t target = 0;
        // threshold 0: never reject — a stale word only wastes the hint.
        (void)lemire_map(sampler_.peek_raw(ahead), n, 0, target);
        prefetch_read(colors + target);
    };
    for (NodeId v = 0; v < n; ++v) {
        prefetch_future(3 * kPrefetchAhead);
        prefetch_future(3 * kPrefetchAhead + 1);
        prefetch_future(3 * kPrefetchAhead + 2);
        const Opinion a = colors_[sampler_.uniform_index(rng, n)];
        const Opinion b = colors_[sampler_.uniform_index(rng, n)];
        const Opinion c = colors_[sampler_.uniform_index(rng, n)];
        Opinion adopted;
        if (a == b || a == c) {
            adopted = a;
        } else if (b == c) {
            adopted = b;
        } else {
            // All three differ: adopt one of the samples u.a.r. [BCN+14].
            const std::uint64_t pick = sampler_.uniform_index(rng, 3);
            adopted = pick == 0 ? a : (pick == 1 ? b : c);
        }
        deltas_.note(colors_[v], adopted);
        next_colors_[v] = adopted;
    }
    commit_round();
}

UndecidedState::UndecidedState(const Assignment& assignment)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/true) {}

void UndecidedState::step(Rng& rng) {
    const std::size_t n = colors_.size();
    const Opinion* colors = colors_.data();
    blocked_round<1>(rng, n, scratch_,
                     [&](std::size_t base, std::size_t count,
                         const std::uint64_t* idx) {
        gather_decide<1>(colors, idx, count, [&](std::size_t i) {
            const Opinion mine = colors[base + i];
            const Opinion seen = colors[idx[i]];
            Opinion next = mine;
            if (mine == kUndecided) {
                next = seen;  // may remain undecided
            } else if (seen != kUndecided && seen != mine) {
                next = kUndecided;
            }
            deltas_.note(mine, next);
            next_colors_[base + i] = next;
        });
    });
    commit_round();
}

}  // namespace papc::sync
