#include "sync/baselines.hpp"

#include "support/check.hpp"

namespace papc::sync {

ColorVectorDynamics::ColorVectorDynamics(const Assignment& assignment,
                                         bool allow_undecided,
                                         std::size_t threads)
    : colors_(assignment.opinions),
      next_colors_(assignment.size()),
      census_(assignment.size(), assignment.num_opinions),
      driver_(assignment.size(), threads) {
    PAPC_CHECK(assignment.size() >= 2);
    if (!allow_undecided) {
        for (const Opinion c : colors_) PAPC_CHECK(c != kUndecided);
    }
    census_.reset(colors_);
    shard_deltas_.reserve(driver_.num_shards());
    for (std::size_t s = 0; s < driver_.num_shards(); ++s) {
        shard_deltas_.emplace_back(assignment.num_opinions);
    }
}

void ColorVectorDynamics::commit_round() {
    colors_.swap(next_colors_);
    // Shard order: deterministic regardless of which worker ran a shard
    // (integer deltas commute anyway, but the fixed order keeps the
    // commit trivially schedule-independent).
    for (OpinionDeltaAccumulator& deltas : shard_deltas_) {
        deltas.commit(census_);
    }
    ++round_;
}

PullVoting::PullVoting(const Assignment& assignment, std::size_t threads)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false, threads),
      samplers_(driver_.threads()) {}

void PullVoting::step(Rng& rng) {
    const std::size_t n = colors_.size();
    const Opinion* colors = colors_.data();
    if (n < kPullVotingBatchCutover) {
        // Sub-block population: decide inline instead of paying the
        // index-scratch round-trip of the batched path (see the cutover
        // constant's comment for the measured trade-off). The raw stream
        // still comes in fill_u64 blocks (BufferedSampler) with the
        // xoshiro state in registers, and the hand-hoisted threshold
        // keeps the 64-bit division out of the loop. Same substream
        // consumption as the batched path, so the cutover never changes
        // a result.
        run_shards_inline(rng, [&](std::size_t base, std::size_t count,
                                   Rng& sub, OpinionDeltaAccumulator& deltas,
                                   std::size_t worker) {
            run_shard(base, count, sub, deltas, samplers_[worker]);
        });
    } else {
        run_shards<1>(rng, [&](std::size_t base, std::size_t count,
                               const std::uint64_t* idx,
                               OpinionDeltaAccumulator& deltas) {
            const OpinionDeltaAccumulator::View note = deltas.view();
            gather_decide<1>(colors, idx, count, [&](std::size_t i) {
                const Opinion seen = colors[idx[i]];
                note.note(colors[base + i], seen);
                next_colors_[base + i] = seen;
            });
        });
    }
    commit_round();
}

/// One cache-resident shard of pull voting: draw, gather, decide per node
/// in a single pass. A named function for the same reason as
/// ThreeMajority::run_shard — one optimization unit, hand-hoisted
/// rejection threshold.
void PullVoting::run_shard(std::size_t base, std::size_t count, Rng& sub,
                           OpinionDeltaAccumulator& deltas,
                           BufferedSampler& sampler) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    const std::uint64_t threshold = lemire_threshold(n);
    const Opinion* colors = colors_.data();
    const OpinionDeltaAccumulator::View note = deltas.view();
    sampler.reset();
    for (std::size_t i = 0; i < count; ++i) {
        const Opinion seen = colors[sampler.uniform_index(sub, n, threshold)];
        note.note(colors[base + i], seen);
        next_colors_[base + i] = seen;
    }
}

TwoChoices::TwoChoices(const Assignment& assignment, std::size_t threads)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false, threads) {}

void TwoChoices::step(Rng& rng) {
    const Opinion* colors = colors_.data();
    run_shards<2>(rng, [&](std::size_t base, std::size_t count,
                           const std::uint64_t* idx,
                           OpinionDeltaAccumulator& deltas) {
        const OpinionDeltaAccumulator::View note = deltas.view();
        gather_decide<2>(colors, idx, count, [&](std::size_t i) {
            const Opinion a = colors[idx[2 * i]];
            const Opinion b = colors[idx[2 * i + 1]];
            const Opinion mine = colors[base + i];
            const Opinion next = (a == b) ? a : mine;
            note.note(mine, next);
            next_colors_[base + i] = next;
        });
    });
    commit_round();
}

ThreeMajority::ThreeMajority(const Assignment& assignment, std::size_t threads)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false, threads),
      samplers_(driver_.threads()) {}

void ThreeMajority::step(Rng& rng) {
    run_shards_inline(rng, [&](std::size_t base, std::size_t count, Rng& sub,
                               OpinionDeltaAccumulator& deltas,
                               std::size_t worker) {
        run_shard(base, count, sub, deltas, samplers_[worker]);
    });
    commit_round();
}

/// One shard's inline decide loop, a named function so the optimizer
/// treats it as a single unit (hoists, schedules) instead of a lambda
/// nest; thresholds are hoisted by hand like PullVoting's.
void ThreeMajority::run_shard(std::size_t base, std::size_t count, Rng& sub,
                              OpinionDeltaAccumulator& deltas,
                              BufferedSampler& sampler) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    const std::uint64_t threshold = lemire_threshold(n);
    const std::uint64_t tie_threshold = lemire_threshold(3);
    const Opinion* colors = colors_.data();
    const OpinionDeltaAccumulator::View note = deltas.view();
    sampler.reset();  // previous shard's substream words are dead
    // Predicts the gather target of the draw ~12 nodes ahead from the
    // sampler's buffered raw words (exact unless a rejection or tie-break
    // shifts the stream in between — then it is merely a wasted hint).
    const auto prefetch_future = [&](std::size_t ahead) {
        std::uint64_t target = 0;
        // threshold 0: never reject — a stale word only wastes the hint.
        (void)lemire_map(sampler.peek_raw(ahead), n, 0, target);
        prefetch_read(colors + target);
    };
    for (std::size_t i = 0; i < count; ++i) {
        prefetch_future(3 * kPrefetchAhead);
        prefetch_future(3 * kPrefetchAhead + 1);
        prefetch_future(3 * kPrefetchAhead + 2);
        const Opinion a = colors[sampler.uniform_index(sub, n, threshold)];
        const Opinion b = colors[sampler.uniform_index(sub, n, threshold)];
        const Opinion c = colors[sampler.uniform_index(sub, n, threshold)];
        Opinion adopted;
        if (a == b || a == c) {
            adopted = a;
        } else if (b == c) {
            adopted = b;
        } else {
            // All three differ: adopt one of the samples u.a.r. [BCN+14].
            const std::uint64_t pick =
                sampler.uniform_index(sub, 3, tie_threshold);
            adopted = pick == 0 ? a : (pick == 1 ? b : c);
        }
        note.note(colors[base + i], adopted);
        next_colors_[base + i] = adopted;
    }
}

UndecidedState::UndecidedState(const Assignment& assignment,
                               std::size_t threads)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/true, threads) {}

void UndecidedState::step(Rng& rng) {
    const Opinion* colors = colors_.data();
    run_shards<1>(rng, [&](std::size_t base, std::size_t count,
                           const std::uint64_t* idx,
                           OpinionDeltaAccumulator& deltas) {
        const OpinionDeltaAccumulator::View note = deltas.view();
        gather_decide<1>(colors, idx, count, [&](std::size_t i) {
            const Opinion mine = colors[base + i];
            const Opinion seen = colors[idx[i]];
            Opinion next = mine;
            if (mine == kUndecided) {
                next = seen;  // may remain undecided
            } else if (seen != kUndecided && seen != mine) {
                next = kUndecided;
            }
            note.note(mine, next);
            next_colors_[base + i] = next;
        });
    });
    commit_round();
}

}  // namespace papc::sync
