#include "sync/baselines.hpp"

#include "support/check.hpp"

namespace papc::sync {

ColorVectorDynamics::ColorVectorDynamics(const Assignment& assignment,
                                         bool allow_undecided)
    : colors_(assignment.opinions),
      next_colors_(assignment.size()),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(assignment.size() >= 2);
    if (!allow_undecided) {
        for (const Opinion c : colors_) PAPC_CHECK(c != kUndecided);
    }
    census_.reset(colors_);
}

void ColorVectorDynamics::commit_round() {
    colors_.swap(next_colors_);
    census_.reset(colors_);
    ++round_;
}

PullVoting::PullVoting(const Assignment& assignment)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false) {}

void PullVoting::step(Rng& rng) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    for (NodeId v = 0; v < n; ++v) {
        next_colors_[v] = colors_[rng.uniform_index(n)];
    }
    commit_round();
}

TwoChoices::TwoChoices(const Assignment& assignment)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false) {}

void TwoChoices::step(Rng& rng) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    for (NodeId v = 0; v < n; ++v) {
        const Opinion a = colors_[rng.uniform_index(n)];
        const Opinion b = colors_[rng.uniform_index(n)];
        next_colors_[v] = (a == b) ? a : colors_[v];
    }
    commit_round();
}

ThreeMajority::ThreeMajority(const Assignment& assignment)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false) {}

void ThreeMajority::step(Rng& rng) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    for (NodeId v = 0; v < n; ++v) {
        const Opinion a = colors_[rng.uniform_index(n)];
        const Opinion b = colors_[rng.uniform_index(n)];
        const Opinion c = colors_[rng.uniform_index(n)];
        Opinion adopted;
        if (a == b || a == c) {
            adopted = a;
        } else if (b == c) {
            adopted = b;
        } else {
            // All three differ: adopt one of the samples u.a.r. [BCN+14].
            const std::uint64_t pick = rng.uniform_index(3);
            adopted = pick == 0 ? a : (pick == 1 ? b : c);
        }
        next_colors_[v] = adopted;
    }
    commit_round();
}

UndecidedState::UndecidedState(const Assignment& assignment)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/true) {}

void UndecidedState::step(Rng& rng) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    for (NodeId v = 0; v < n; ++v) {
        const Opinion mine = colors_[v];
        const Opinion seen = colors_[rng.uniform_index(n)];
        Opinion next = mine;
        if (mine == kUndecided) {
            next = seen;  // may remain undecided
        } else if (seen != kUndecided && seen != mine) {
            next = kUndecided;
        }
        next_colors_[v] = next;
    }
    commit_round();
}

}  // namespace papc::sync
