#include "sync/baselines.hpp"

#include "support/check.hpp"

namespace papc::sync {

ColorVectorDynamics::ColorVectorDynamics(const Assignment& assignment,
                                         bool allow_undecided,
                                         std::size_t threads)
    : colors_(assignment.opinions, assignment.num_opinions),
      next_colors_(assignment.size(), assignment.num_opinions),
      census_(assignment.size(), assignment.num_opinions),
      driver_(assignment.size(), threads) {
    PAPC_CHECK(assignment.size() >= 2);
    if (!allow_undecided) {
        for (const Opinion c : assignment.opinions) PAPC_CHECK(c != kUndecided);
    }
    census_.reset(colors_.view());
    // Worker-arena delta buffers: exactly k entries each, zeroed — the
    // between-rounds invariant commit_round() re-establishes.
    for (std::size_t w = 0; w < driver_.threads(); ++w) {
        driver_.arena(w).deltas.assign(assignment.num_opinions, 0);
    }
}

void ColorVectorDynamics::commit_round() {
    if (fault_on_) revert_frozen_round();
    colors_.swap(next_colors_);
    // Worker order: deterministic regardless of which shards a worker ran
    // (integer deltas commute, so any partition of the shard set sums to
    // the same census).
    for (std::size_t w = 0; w < driver_.threads(); ++w) {
        ShardedRoundDriver::Arena& arena = driver_.arena(w);
        census_.apply_deltas(arena.deltas, arena.undecided);
        std::fill(arena.deltas.begin(), arena.deltas.end(), 0);
        arena.undecided = 0;
    }
    // Undo the census effect of the reverted frozen-node updates (their
    // transitions were noted in the arenas during the round).
    for (const auto& [applied, restored] : reverts_) {
        census_.transition(applied, restored);
    }
    reverts_.clear();
    ++round_;
}

void ColorVectorDynamics::set_fault_injector(const fault::Injector* injector) {
    injector_ = injector;
    fault_on_ = injector != nullptr &&
                (injector->crash_active() || injector->byzantine_active());
    byz_round_ = false;
}

void ColorVectorDynamics::begin_faulted_round() {
    byz_round_ = injector_->byzantine_active();
    if (!byz_round_) return;
    // Copy-on-round overlay: byzantine nodes lie to samplers; everything
    // else reports truthfully. O(n/lanes-per-word) words per round, paid
    // only while the byzantine layer is active.
    reported_ = colors_;
    const std::uint32_t k = census_.num_opinions();
    switch (injector_->byzantine_policy()) {
        case fault::ByzantinePolicy::kFixed:
            for (const NodeId v : injector_->byzantine_nodes()) {
                reported_.set(v, static_cast<Opinion>(k - 1));
            }
            break;
        case fault::ByzantinePolicy::kRandom: {
            Rng stream = injector_->byzantine_round_stream(round_ + 1);
            for (const NodeId v : injector_->byzantine_nodes()) {
                reported_.set(v, static_cast<Opinion>(stream.uniform_index(k)));
            }
            break;
        }
        case fault::ByzantinePolicy::kAdaptive: {
            const Opinion target = fault::strongest_minority(
                k, [this](Opinion j) { return census_.count(j); });
            for (const NodeId v : injector_->byzantine_nodes()) {
                reported_.set(v, target);
            }
            break;
        }
    }
}

void ColorVectorDynamics::freeze_node(NodeId v) {
    const Opinion restored = colors_.get(v);
    const Opinion applied = next_colors_.get(v);
    if (applied != restored) {
        next_colors_.set(v, restored);
        reverts_.emplace_back(applied, restored);
    }
}

void ColorVectorDynamics::revert_frozen_round() {
    if (injector_->crash_active()) {
        // Round-number time axis: the round just computed is round_ + 1.
        const auto t = static_cast<double>(round_ + 1);
        const std::size_t n = colors_.size();
        for (NodeId v = 0; v < n; ++v) {
            if (!injector_->is_down(v, t)) continue;
            ++crash_skips_;
            freeze_node(v);
        }
    }
    // Byzantine nodes keep their true state (their kernel draws are
    // discarded — idempotent with the crash freeze above).
    for (const NodeId v : injector_->byzantine_nodes()) freeze_node(v);
}

std::size_t ColorVectorDynamics::memory_bytes() const {
    return colors_.memory_bytes() + next_colors_.memory_bytes() +
           census_.num_opinions() * sizeof(std::uint64_t) +
           driver_.arena_bytes();
}

PullVoting::PullVoting(const Assignment& assignment, std::size_t threads)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false, threads) {}

void PullVoting::step(Rng& rng) {
    if (fault_on()) begin_faulted_round();
    const std::size_t n = colors_.size();
    if (n < kPullVotingBatchCutover) {
        // Sub-block population: decide inline instead of paying the
        // index-scratch round-trip of the batched path (see the cutover
        // constant's comment for the measured trade-off). The raw stream
        // still comes in fill_u64 blocks (BufferedSampler) with the
        // xoshiro state in registers, and the hand-hoisted threshold
        // keeps the 64-bit division out of the loop. Same substream
        // consumption as the batched path, so the cutover never changes
        // a result.
        run_shards_inline(rng, [&](std::size_t base, std::size_t count,
                                   Rng& sub, OpinionDeltaAccumulator::View note,
                                   BufferedSampler& sampler) {
            run_shard(base, count, sub, note, sampler);
        });
    } else {
        const PackedGather gather(sample_source());
        run_shards<1>(rng, [&](std::size_t base, std::size_t count,
                               const std::uint64_t* idx, const Opinion* own,
                               OpinionDeltaAccumulator::View note) {
            PackedOpinionArray::Writer out(next_colors_, base);
            gather_decide<1>(gather, idx, count,
                             [&](std::size_t i, const Opinion* v) {
                const Opinion seen = v[0];
                note.note(own[i], seen);
                out.push(seen);
            });
            out.finish();
        });
    }
    commit_round();
}

/// One cache-resident shard of pull voting: draw, gather, decide per node
/// in a single pass. A named function for the same reason as
/// ThreeMajority::run_shard — one optimization unit, hand-hoisted
/// rejection threshold.
void PullVoting::run_shard(std::size_t base, std::size_t count, Rng& sub,
                           OpinionDeltaAccumulator::View note,
                           BufferedSampler& sampler) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    const std::uint64_t threshold = lemire_threshold(n);
    const PackedOpinionArray& src = sample_source();
    PackedOpinionArray::Writer out(next_colors_, base);
    sampler.reset();
    for (std::size_t i = 0; i < count; ++i) {
        const Opinion seen = src.get(sampler.uniform_index(sub, n, threshold));
        note.note(colors_.get(base + i), seen);
        out.push(seen);
    }
    out.finish();
}

TwoChoices::TwoChoices(const Assignment& assignment, std::size_t threads)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false, threads) {}

void TwoChoices::step(Rng& rng) {
    if (fault_on()) begin_faulted_round();
    const PackedGather gather(sample_source());
    run_shards<2>(rng, [&](std::size_t base, std::size_t count,
                           const std::uint64_t* idx, const Opinion* own,
                           OpinionDeltaAccumulator::View note) {
        PackedOpinionArray::Writer out(next_colors_, base);
        gather_decide<2>(gather, idx, count,
                         [&](std::size_t i, const Opinion* v) {
            const Opinion a = v[0];
            const Opinion b = v[1];
            const Opinion mine = own[i];
            const Opinion next = (a == b) ? a : mine;
            note.note(mine, next);
            out.push(next);
        });
        out.finish();
    });
    commit_round();
}

ThreeMajority::ThreeMajority(const Assignment& assignment, std::size_t threads)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/false, threads) {}

void ThreeMajority::step(Rng& rng) {
    if (fault_on()) begin_faulted_round();
    run_shards_inline(rng, [&](std::size_t base, std::size_t count, Rng& sub,
                               OpinionDeltaAccumulator::View note,
                               BufferedSampler& sampler) {
        run_shard(base, count, sub, note, sampler);
    });
    commit_round();
}

/// One shard's inline decide loop, a named function so the optimizer
/// treats it as a single unit (hoists, schedules) instead of a lambda
/// nest; thresholds are hoisted by hand like PullVoting's.
void ThreeMajority::run_shard(std::size_t base, std::size_t count, Rng& sub,
                              OpinionDeltaAccumulator::View note,
                              BufferedSampler& sampler) {
    const auto n = static_cast<std::uint64_t>(colors_.size());
    const std::uint64_t threshold = lemire_threshold(n);
    const std::uint64_t tie_threshold = lemire_threshold(3);
    const PackedOpinionArray& src = sample_source();
    PackedOpinionArray::Writer out(next_colors_, base);
    sampler.reset();  // previous shard's substream words are dead
    // Predicts the gather target of the draw ~12 nodes ahead from the
    // sampler's buffered raw words (exact unless a rejection or tie-break
    // shifts the stream in between — then it is merely a wasted hint).
    const auto prefetch_future = [&](std::size_t ahead) {
        std::uint64_t target = 0;
        // threshold 0: never reject — a stale word only wastes the hint.
        (void)lemire_map(sampler.peek_raw(ahead), n, 0, target);
        src.prefetch(target);
    };
    for (std::size_t i = 0; i < count; ++i) {
        prefetch_future(3 * kPrefetchAhead);
        prefetch_future(3 * kPrefetchAhead + 1);
        prefetch_future(3 * kPrefetchAhead + 2);
        const Opinion a = src.get(sampler.uniform_index(sub, n, threshold));
        const Opinion b = src.get(sampler.uniform_index(sub, n, threshold));
        const Opinion c = src.get(sampler.uniform_index(sub, n, threshold));
        Opinion adopted;
        if (a == b || a == c) {
            adopted = a;
        } else if (b == c) {
            adopted = b;
        } else {
            // All three differ: adopt one of the samples u.a.r. [BCN+14].
            const std::uint64_t pick =
                sampler.uniform_index(sub, 3, tie_threshold);
            adopted = pick == 0 ? a : (pick == 1 ? b : c);
        }
        note.note(colors_.get(base + i), adopted);
        out.push(adopted);
    }
    out.finish();
}

UndecidedState::UndecidedState(const Assignment& assignment,
                               std::size_t threads)
    : ColorVectorDynamics(assignment, /*allow_undecided=*/true, threads) {}

void UndecidedState::step(Rng& rng) {
    if (fault_on()) begin_faulted_round();
    const PackedGather gather(sample_source());
    run_shards<1>(rng, [&](std::size_t base, std::size_t count,
                           const std::uint64_t* idx, const Opinion* own,
                           OpinionDeltaAccumulator::View note) {
        PackedOpinionArray::Writer out(next_colors_, base);
        gather_decide<1>(gather, idx, count,
                         [&](std::size_t i, const Opinion* v) {
            const Opinion mine = own[i];
            const Opinion seen = v[0];
            Opinion next = mine;
            if (mine == kUndecided) {
                next = seen;  // may remain undecided
            } else if (seen != kUndecided && seen != mine) {
                next = kUndecided;
            }
            note.note(mine, next);
            out.push(next);
        });
        out.finish();
    });
    commit_round();
}

}  // namespace papc::sync
