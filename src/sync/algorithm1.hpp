#pragma once

/// \file algorithm1.hpp
/// The paper's synchronous protocol (Algorithm 1, §2).
///
/// Every node keeps a color and a *generation* (initially 0). Each round
/// every node samples two nodes u.a.r. (with the higher-generation sample
/// called v'):
///   - at scheduled steps t ∈ {t_i} (two-choices step): if both samples are
///     in the same generation g >= gen(v) and agree on a color, v adopts the
///     color and promotes itself to generation g + 1;
///   - otherwise (propagation step): if gen(v') > gen(v), v adopts v''s
///     color and generation.
/// Generations act as a distributed clock: the bias of the dominant color
/// squares with each new generation (Lemma 4), so G* = O(log log_α n)
/// generations suffice.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "opinion/types.hpp"
#include "sync/engine.hpp"
#include "sync/round_kernel.hpp"
#include "sync/schedule.hpp"

namespace papc::sync {

/// Trace entry recorded when a generation first becomes non-empty.
struct GenerationBirth {
    Generation generation = 0;
    std::uint64_t round = 0;         ///< round at whose end it was first seen
    std::uint64_t size = 0;          ///< nodes in it at that round
    double alpha = 0.0;              ///< bias inside the new generation
    double collision_probability = 0.0;
};

/// Algorithm 1 as a synchronous dynamics. `threads` > 1 shards each round
/// over a worker pool (see round_kernel.hpp); fixed-seed results are
/// bit-identical at every thread count.
class Algorithm1 final : public SyncDynamics {
public:
    Algorithm1(const Assignment& assignment, Schedule schedule,
               std::size_t threads = 1);

    void step(Rng& rng) override;

    [[nodiscard]] std::size_t population() const override { return state_.size(); }
    [[nodiscard]] std::uint32_t num_opinions() const override { return k_; }
    [[nodiscard]] std::uint64_t opinion_count(Opinion j) const override;
    [[nodiscard]] std::uint64_t rounds() const override { return round_; }
    [[nodiscard]] std::string name() const override { return "algorithm1"; }
    [[nodiscard]] std::size_t memory_bytes() const override;

    [[nodiscard]] const Schedule& schedule() const { return schedule_; }
    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const std::vector<GenerationBirth>& births() const {
        return births_;
    }

    /// Per-node accessors (tests).
    [[nodiscard]] Opinion color(NodeId v) const {
        return packed_opinion(state_[v]);
    }
    [[nodiscard]] Generation generation(NodeId v) const {
        return packed_generation(state_[v]);
    }

    void set_fault_injector(const fault::Injector* injector) override;
    [[nodiscard]] std::uint64_t fault_crash_skips() const override {
        return crash_skips_;
    }

private:
    void record_new_births();

    /// Builds the byzantine reported overlay for the round being computed:
    /// byzantine nodes' opinion bits are rewritten per policy, their
    /// generation bits kept (a lie about the color, not the clock).
    void begin_faulted_round();

    /// Pre-swap revert of frozen nodes' updates, queueing (applied,
    /// restored) census corrections.
    void revert_frozen_round();
    void freeze_node(NodeId v);

    std::uint32_t k_;
    Schedule schedule_;
    /// Per-node (generation << 32 | opinion) — see round_kernel.hpp.
    std::vector<PackedState> state_;
    std::vector<PackedState> next_state_;
    /// Row-major fused census deltas accumulate in the driver's worker
    /// arenas (PR 7) and merge in worker order — threads × rows × k of
    /// scratch instead of shards × rows × k.
    ShardedRoundDriver driver_;
    GenerationCensus census_;
    std::vector<GenerationBirth> births_;
    std::uint64_t round_ = 0;

    // Fault layer (crash = freeze; byzantine = lie to samplers).
    const fault::Injector* injector_ = nullptr;
    bool fault_on_ = false;
    bool byz_round_ = false;
    std::vector<PackedState> reported_state_;
    std::vector<std::pair<PackedState, PackedState>> reverts_;
    std::uint64_t crash_skips_ = 0;
};

}  // namespace papc::sync
