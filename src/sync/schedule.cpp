#include "sync/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/theory.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace papc::sync {

double life_cycle_exact(double alpha, std::uint32_t k, double gamma, unsigned i) {
    PAPC_CHECK(alpha > 1.0);
    PAPC_CHECK(gamma > 0.0 && gamma < 1.0);
    // ln(α^(2^(i-1)) + k - 1): for i == 0 the exponent 2^(-1) = 1/2.
    const double log_prev =
        (i == 0)
            ? log_add_exp(0.5 * std::log(alpha),
                          k >= 2 ? std::log(static_cast<double>(k - 1))
                                 : -std::numeric_limits<double>::infinity())
            : analysis::log_alpha_pow_plus(alpha, k, i - 1);
    const double log_cur = analysis::log_alpha_pow_plus(alpha, k, i);
    const double numerator = 2.0 * log_prev - log_cur - std::log(gamma);
    return numerator / std::log(2.0 - gamma) + 2.0;
}

Schedule::Schedule(const ScheduleParams& params) : params_(params) {
    PAPC_CHECK(params_.n >= 2);
    PAPC_CHECK(params_.k >= 1);
    PAPC_CHECK(params_.alpha > 1.0);
    PAPC_CHECK(params_.gamma > 0.0 && params_.gamma < 1.0);

    const unsigned g_star = analysis::total_generations(
        params_.alpha, params_.k, params_.n, params_.slack);

    life_cycles_.reserve(g_star);
    birth_steps_.reserve(g_star);
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i < g_star; ++i) {
        const double exact = life_cycle_exact(params_.alpha, params_.k,
                                              params_.gamma, i);
        const auto rounded = static_cast<std::uint64_t>(
            std::max(1.0, std::ceil(exact)));
        life_cycles_.push_back(rounded);
        cumulative += rounded;
        birth_steps_.push_back(cumulative + 1);  // t_{i+1} = Σ X_j + 1
    }

    // Lemma 12 tail: log(γ)/log(3/2) + log2 log2 n, generously rounded.
    const double nd = static_cast<double>(params_.n);
    const double tail = std::ceil(std::log(1.0 / params_.gamma) / std::log(1.5)) +
                        std::ceil(std::log2(std::max(2.0, std::log2(nd)))) + 4.0;
    horizon_ = last_two_choices_step() + static_cast<std::uint64_t>(tail);
}

std::uint64_t Schedule::life_cycle(unsigned i) const {
    PAPC_CHECK(i < life_cycles_.size());
    return life_cycles_[i];
}

std::uint64_t Schedule::birth_step(unsigned i) const {
    PAPC_CHECK(i >= 1);
    PAPC_CHECK(i <= birth_steps_.size());
    return birth_steps_[i - 1];
}

unsigned Schedule::total_generations() const {
    return static_cast<unsigned>(birth_steps_.size());
}

bool Schedule::is_two_choices_step(std::uint64_t t) const {
    return std::binary_search(birth_steps_.begin(), birth_steps_.end(), t);
}

std::uint64_t Schedule::last_two_choices_step() const {
    return birth_steps_.empty() ? 0 : birth_steps_.back();
}

std::uint64_t Schedule::horizon() const { return horizon_; }

}  // namespace papc::sync
