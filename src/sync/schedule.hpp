#pragma once

/// \file schedule.hpp
/// The synchronous protocol's generation schedule (§2.2):
///
///   X_i = (2·ln(α^(2^(i-1)) + k - 1) - ln(α^(2^i) + k - 1) - ln γ)
///           / ln(2 - γ)  + 2
///
/// is the life-cycle length of generation i (steps until it covers a
/// γ-fraction of nodes whp.), and t_i = Σ_{j<i} X_j + 1 is the birth step of
/// generation i. All α^(2^i) terms are evaluated in log space. The schedule
/// caps the number of two-choices steps at G* (the total generation budget).

#include <cstdint>
#include <vector>

namespace papc::sync {

struct ScheduleParams {
    std::size_t n = 0;        ///< number of nodes
    std::uint32_t k = 2;      ///< number of opinions
    double alpha = 1.5;       ///< assumed initial bias (lower bound suffices)
    double gamma = 0.5;       ///< generation-density threshold γ ∈ (0, 1)
    unsigned slack = 2;       ///< extra generations beyond the closed form
};

/// Precomputed deterministic schedule of two-choices steps.
class Schedule {
public:
    explicit Schedule(const ScheduleParams& params);

    /// X_i, in whole time steps (ceil of the closed form, at least 1).
    [[nodiscard]] std::uint64_t life_cycle(unsigned i) const;

    /// t_i: birth step of generation i (i >= 1); t_1 = X_0 + 1.
    [[nodiscard]] std::uint64_t birth_step(unsigned i) const;

    /// Total number of generations scheduled (G*).
    [[nodiscard]] unsigned total_generations() const;

    /// True when round `t` (1-based) is a scheduled two-choices step.
    [[nodiscard]] bool is_two_choices_step(std::uint64_t t) const;

    /// The step after which no further two-choices steps occur.
    [[nodiscard]] std::uint64_t last_two_choices_step() const;

    /// Upper bound on the total schedule horizon: last two-choices step
    /// plus the Lemma 12 tail O(log γ / log 3/2 + log log n).
    [[nodiscard]] std::uint64_t horizon() const;

    [[nodiscard]] const ScheduleParams& params() const { return params_; }

private:
    ScheduleParams params_;
    std::vector<std::uint64_t> life_cycles_;  ///< X_0 .. X_{G*-1}
    std::vector<std::uint64_t> birth_steps_;  ///< t_1 .. t_{G*}
    std::uint64_t horizon_ = 0;
};

/// Raw (unrounded) X_i value; exposed for tests of the closed form.
[[nodiscard]] double life_cycle_exact(double alpha, std::uint32_t k,
                                      double gamma, unsigned i);

}  // namespace papc::sync
