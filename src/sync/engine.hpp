#pragma once

/// \file engine.hpp
/// Round-based driver for synchronous opinion dynamics. A SyncDynamics
/// implementation advances the whole population one synchronous round per
/// step() (all nodes sample the *previous* round's state — double buffered).
/// The run loop itself lives in core::run(); this layer only adapts the
/// dynamics interface and family defaults.

#include <cstdint>
#include <string>

#include "core/engine.hpp"
#include "core/run_result.hpp"
#include "opinion/types.hpp"
#include "support/random.hpp"
#include "support/timeseries.hpp"

namespace papc::fault {
class Injector;
}  // namespace papc::fault

namespace papc::sync {

/// Interface of a synchronous opinion dynamics.
class SyncDynamics {
public:
    virtual ~SyncDynamics() = default;

    /// Advances one synchronous round.
    virtual void step(Rng& rng) = 0;

    /// Attaches the fault layer (src/fault/) for all subsequent rounds.
    /// Borrowed — must outlive the dynamics; nullptr detaches. The round
    /// semantics under faults: a crashed node neither samples nor updates
    /// (its last state stays visible to samplers — crash = freeze);
    /// byzantine nodes answer samples with adversarially chosen opinions
    /// while their true state is frozen. The default ignores the injector,
    /// so dynamics without fault support simply stay fault-free.
    virtual void set_fault_injector(const fault::Injector* injector) {
        (void)injector;
    }

    /// Count of per-round node updates suppressed by crashes so far.
    [[nodiscard]] virtual std::uint64_t fault_crash_skips() const { return 0; }

    [[nodiscard]] virtual std::size_t population() const = 0;
    [[nodiscard]] virtual std::uint32_t num_opinions() const = 0;

    /// Number of nodes currently holding opinion j (excluding undecided).
    [[nodiscard]] virtual std::uint64_t opinion_count(Opinion j) const = 0;

    /// Undecided nodes (0 for dynamics without an undecided state).
    [[nodiscard]] virtual std::uint64_t undecided_count() const { return 0; }

    /// Rounds executed so far.
    [[nodiscard]] virtual std::uint64_t rounds() const = 0;

    /// Heap bytes of the dynamics' state + scratch (0 = not accounted).
    /// Feeds the bytes-per-node counters of the engine benches and the
    /// huge-n smoke budget — see README "Memory anatomy".
    [[nodiscard]] virtual std::size_t memory_bytes() const { return 0; }

    [[nodiscard]] virtual std::string name() const = 0;

    /// True when one opinion is held by the entire population.
    [[nodiscard]] bool converged() const;

    /// The current most common opinion.
    [[nodiscard]] Opinion dominant_opinion() const;

    /// Fraction of the population holding `j`.
    [[nodiscard]] double opinion_fraction(Opinion j) const;
};

/// Outcome of driving a dynamics to consensus: the unified result. The
/// time axis is rounds (steps == end_time == rounds executed).
using SyncResult = core::RunResult;

struct RunOptions {
    std::uint64_t max_rounds = 100000;
    /// Record the plurality fraction every this many rounds
    /// (0 = do not record).
    std::uint64_t record_every = 0;
    /// Opinion expected to win; epsilon_time tracks when its support first
    /// reaches (1 - epsilon).
    Opinion plurality = 0;
    double epsilon = 0.02;
};

/// Runs `dynamics` until convergence or the round limit.
[[nodiscard]] SyncResult run_to_consensus(SyncDynamics& dynamics, Rng& rng,
                                          const RunOptions& options = {});

}  // namespace papc::sync
