#include "sync/simd_gather.hpp"

#include "support/cpu.hpp"

#if defined(__x86_64__) && !defined(PAPC_DISABLE_SIMD)
#define PAPC_SIMD_X86 1
#include <immintrin.h>
#endif

namespace papc::sync::simd {
namespace {

// The AVX2 kernels below hard-code the memory layout: 8-byte gather
// strides over std::uint64_t arrays, and a 16-byte _mm_storeu_si128 that
// writes four Opinion lanes at once. Pin those assumptions so a future
// Opinion retype fails here, at compile time, instead of corrupting the
// gather output.
static_assert(sizeof(std::uint64_t) == 8,
              "gather kernels assume 8-byte index/word strides");
static_assert(sizeof(Opinion) == 4,
              "gather_packed compacts four 4-byte Opinion lanes per store");
static_assert(kUndecided == static_cast<Opinion>(0xFFFFFFFFU),
              "the all-ones sentinel lane must decode to kUndecided");

/// Scalar reference paths. These are also the only paths on non-x86-64
/// or -DPAPC_DISABLE_SIMD builds; the AVX2 kernels must match them bit
/// for bit (they read the same memory, so equality is structural, but
/// the equivalence suite pins it anyway).

void gather_u64_scalar(const std::uint64_t* array, const std::uint64_t* idx,
                       std::size_t count, std::uint64_t* out) {
    for (std::size_t i = 0; i < count; ++i) out[i] = array[idx[i]];
}

inline Opinion packed_lane_scalar(const std::uint64_t* words, std::uint64_t i,
                                  unsigned log2_lane_bits,
                                  unsigned index_shift,
                                  std::uint64_t offset_mask,
                                  std::uint64_t lane_mask) {
    const std::uint64_t word = words[i >> index_shift];
    const std::uint64_t lane =
        (word >> ((i & offset_mask) << log2_lane_bits)) & lane_mask;
    return lane == lane_mask ? kUndecided : static_cast<Opinion>(lane);
}

void gather_packed_scalar(const std::uint64_t* words, const std::uint64_t* idx,
                          std::size_t count, unsigned log2_lane_bits,
                          Opinion* out) {
    const unsigned index_shift = 6U - log2_lane_bits;
    const std::uint64_t offset_mask = (1ULL << index_shift) - 1;
    const std::uint64_t lane_mask =
        (log2_lane_bits == 5U) ? 0xFFFFFFFFULL
                               : (1ULL << (1U << log2_lane_bits)) - 1;
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = packed_lane_scalar(words, idx[i], log2_lane_bits, index_shift,
                                    offset_mask, lane_mask);
    }
}

#if defined(PAPC_SIMD_X86)

__attribute__((target("avx2"))) void gather_u64_avx2(
    const std::uint64_t* array, const std::uint64_t* idx, std::size_t count,
    std::uint64_t* out) {
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256i lanes_idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(idx + i));
        const __m256i values = _mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(array), lanes_idx, 8);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), values);
    }
    for (; i < count; ++i) out[i] = array[idx[i]];
}

__attribute__((target("avx2"))) void gather_packed_avx2(
    const std::uint64_t* words, const std::uint64_t* idx, std::size_t count,
    unsigned log2_lane_bits, Opinion* out) {
    const unsigned index_shift = 6U - log2_lane_bits;
    const std::uint64_t offset_mask = (1ULL << index_shift) - 1;
    const std::uint64_t lane_mask =
        (log2_lane_bits == 5U) ? 0xFFFFFFFFULL
                               : (1ULL << (1U << log2_lane_bits)) - 1;
    const __m256i v_offset_mask = _mm256_set1_epi64x(
        static_cast<long long>(offset_mask));
    const __m256i v_lane_mask = _mm256_set1_epi64x(
        static_cast<long long>(lane_mask));
    // Compact the low u32 of each of the four u64 lanes into one xmm.
    const __m256i v_compact = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256i lanes_idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(idx + i));
        // One gather of the containing 64-bit words, then a variable
        // shift + mask extracts each node's lane.
        const __m256i word_idx = _mm256_srli_epi64(
            lanes_idx, static_cast<int>(index_shift));
        const __m256i gathered = _mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(words), word_idx, 8);
        const __m256i bit_offset = _mm256_slli_epi64(
            _mm256_and_si256(lanes_idx, v_offset_mask),
            static_cast<int>(log2_lane_bits));
        __m256i lanes = _mm256_and_si256(
            _mm256_srlv_epi64(gathered, bit_offset), v_lane_mask);
        // Sentinel (all-ones lane) decodes to kUndecided: widen the
        // equality mask over the whole u64 so the compacted low u32
        // reads 0xFFFFFFFF.
        const __m256i sentinel = _mm256_cmpeq_epi64(lanes, v_lane_mask);
        lanes = _mm256_or_si256(lanes, sentinel);
        const __m128i packed = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(lanes, v_compact));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), packed);
    }
    for (; i < count; ++i) {
        out[i] = packed_lane_scalar(words, idx[i], log2_lane_bits, index_shift,
                                    offset_mask, lane_mask);
    }
}

#endif  // PAPC_SIMD_X86

}  // namespace

void gather_u64_scalar_path(const std::uint64_t* array,
                            const std::uint64_t* idx, std::size_t count,
                            std::uint64_t* out) {
    gather_u64_scalar(array, idx, count, out);
}

bool u64_gather_profitable(std::size_t array_bytes) {
    if (support::simd_override_active()) return true;
    return array_bytes >= kU64GatherSimdMinBytes &&
           array_bytes <= kU64GatherSimdMaxBytes;
}

void gather_u64(const std::uint64_t* array, const std::uint64_t* idx,
                std::size_t count, std::uint64_t* out) {
#if defined(PAPC_SIMD_X86)
    if (support::active_simd() == support::SimdLevel::kAvx2) {
        gather_u64_avx2(array, idx, count, out);
        return;
    }
#endif
    gather_u64_scalar(array, idx, count, out);
}

void gather_packed(const std::uint64_t* words, const std::uint64_t* idx,
                   std::size_t count, unsigned log2_lane_bits, Opinion* out) {
#if defined(PAPC_SIMD_X86)
    if (support::active_simd() == support::SimdLevel::kAvx2) {
        gather_packed_avx2(words, idx, count, log2_lane_bits, out);
        return;
    }
#endif
    gather_packed_scalar(words, idx, count, log2_lane_bits, out);
}

}  // namespace papc::sync::simd
