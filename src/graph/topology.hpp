#pragma once

/// \file topology.hpp
/// Graph topologies for opinion dynamics. The paper's own protocols live on
/// the complete graph K_n, but the literature it positions against runs on
/// general graphs: two-choices voting on random d-regular graphs [CER14],
/// expanders [CER+15, CRRS17], and slow mixing topologies like rings where
/// voting takes Ω(n) time. This module provides the sampling interface the
/// dynamics need (uniform random neighbor) plus standard generators, so the
/// baselines can be compared across topologies (bench/exp_graph_topologies)
/// and the paper's "more general models" future-work direction can be
/// explored.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "opinion/types.hpp"
#include "support/random.hpp"

namespace papc::graph {

/// Interface: a (multi-)graph that supports uniform neighbor sampling.
class Topology {
public:
    virtual ~Topology() = default;

    [[nodiscard]] virtual std::size_t num_nodes() const = 0;
    [[nodiscard]] virtual std::size_t degree(NodeId v) const = 0;

    /// Uniform random neighbor of v. Requires degree(v) > 0.
    [[nodiscard]] virtual NodeId sample_neighbor(NodeId v, Rng& rng) const = 0;

    [[nodiscard]] virtual std::string name() const = 0;
};

/// K_n, kept implicit (no adjacency storage). Self-loops excluded.
class CompleteTopology final : public Topology {
public:
    explicit CompleteTopology(std::size_t n);
    [[nodiscard]] std::size_t num_nodes() const override { return n_; }
    [[nodiscard]] std::size_t degree(NodeId) const override { return n_ - 1; }
    [[nodiscard]] NodeId sample_neighbor(NodeId v, Rng& rng) const override;
    [[nodiscard]] std::string name() const override;

private:
    std::size_t n_;
};

/// Explicit graph in CSR (compressed sparse row) form; undirected edges are
/// stored in both directions.
class CsrGraph final : public Topology {
public:
    /// Builds from an edge list (pairs may repeat: multigraph semantics).
    CsrGraph(std::size_t n, const std::vector<std::pair<NodeId, NodeId>>& edges,
             std::string name);

    [[nodiscard]] std::size_t num_nodes() const override { return offsets_.size() - 1; }
    [[nodiscard]] std::size_t degree(NodeId v) const override;
    [[nodiscard]] NodeId sample_neighbor(NodeId v, Rng& rng) const override;
    [[nodiscard]] std::string name() const override { return name_; }

    [[nodiscard]] std::size_t num_edges() const { return adjacency_.size() / 2; }
    [[nodiscard]] std::size_t min_degree() const;
    [[nodiscard]] std::size_t max_degree() const;

    /// BFS connectivity check.
    [[nodiscard]] bool is_connected() const;

private:
    std::vector<std::size_t> offsets_;
    std::vector<NodeId> adjacency_;
    std::string name_;
};

/// Random d-regular multigraph via the configuration model (pairing random
/// stubs; rejects self-loops by re-drawing, keeps rare parallel edges).
/// Requires n·d even and d < n.
[[nodiscard]] CsrGraph make_random_regular(std::size_t n, std::size_t d, Rng& rng);

/// Erdős–Rényi G(n, p).
[[nodiscard]] CsrGraph make_gnp(std::size_t n, double p, Rng& rng);

/// Ring lattice: node i connected to its d/2 nearest neighbors on each
/// side (d even). The canonical slow-mixing contrast topology.
[[nodiscard]] CsrGraph make_ring(std::size_t n, std::size_t d);

/// 2-D torus with von Neumann (4-)neighborhood; n = side².
[[nodiscard]] CsrGraph make_torus(std::size_t side);

}  // namespace papc::graph
