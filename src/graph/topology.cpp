#include "graph/topology.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <sstream>

#include "support/check.hpp"

namespace papc::graph {

CompleteTopology::CompleteTopology(std::size_t n) : n_(n) {
    PAPC_CHECK(n >= 2);
}

NodeId CompleteTopology::sample_neighbor(NodeId v, Rng& rng) const {
    return static_cast<NodeId>(rng.uniform_index_excluding(n_, v));
}

std::string CompleteTopology::name() const {
    std::ostringstream s;
    s << "complete(n=" << n_ << ")";
    return s.str();
}

CsrGraph::CsrGraph(std::size_t n,
                   const std::vector<std::pair<NodeId, NodeId>>& edges,
                   std::string name)
    : name_(std::move(name)) {
    PAPC_CHECK(n >= 1);
    std::vector<std::size_t> degree_count(n, 0);
    for (const auto& [a, b] : edges) {
        PAPC_CHECK(a < n && b < n);
        ++degree_count[a];
        ++degree_count[b];
    }
    offsets_.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
        offsets_[v + 1] = offsets_[v] + degree_count[v];
    }
    adjacency_.resize(offsets_[n]);
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const auto& [a, b] : edges) {
        adjacency_[cursor[a]++] = b;
        adjacency_[cursor[b]++] = a;
    }
}

std::size_t CsrGraph::degree(NodeId v) const {
    PAPC_CHECK(v + 1 < offsets_.size());
    return offsets_[v + 1] - offsets_[v];
}

NodeId CsrGraph::sample_neighbor(NodeId v, Rng& rng) const {
    const std::size_t d = degree(v);
    PAPC_CHECK(d > 0);
    return adjacency_[offsets_[v] + rng.uniform_index(d)];
}

std::size_t CsrGraph::min_degree() const {
    std::size_t best = degree(0);
    for (NodeId v = 1; v < num_nodes(); ++v) best = std::min(best, degree(v));
    return best;
}

std::size_t CsrGraph::max_degree() const {
    std::size_t best = degree(0);
    for (NodeId v = 1; v < num_nodes(); ++v) best = std::max(best, degree(v));
    return best;
}

bool CsrGraph::is_connected() const {
    const std::size_t n = num_nodes();
    if (n == 0) return true;
    std::vector<bool> seen(n, false);
    std::queue<NodeId> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t visited = 1;
    while (!frontier.empty()) {
        const NodeId v = frontier.front();
        frontier.pop();
        for (std::size_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
            const NodeId u = adjacency_[i];
            if (!seen[u]) {
                seen[u] = true;
                ++visited;
                frontier.push(u);
            }
        }
    }
    return visited == n;
}

CsrGraph make_random_regular(std::size_t n, std::size_t d, Rng& rng) {
    PAPC_CHECK(d >= 1 && d < n);
    PAPC_CHECK((n * d) % 2 == 0);
    // Configuration model: pair up n·d stubs uniformly; re-shuffle the tail
    // on self-loops (parallel edges are kept — multigraph semantics are
    // fine for sampling-based dynamics and vanish asymptotically).
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (NodeId v = 0; v < n; ++v) {
        for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(n * d / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
        NodeId a = stubs[i];
        NodeId b = stubs[i + 1];
        int retries = 0;
        while (a == b && retries < 64) {
            // Swap the second stub with a random later stub to break the
            // self-loop without biasing the pairing noticeably.
            const std::size_t j =
                i + 1 + rng.uniform_index(stubs.size() - i - 1);
            std::swap(stubs[i + 1], stubs[j]);
            b = stubs[i + 1];
            ++retries;
        }
        if (a == b) {
            // Give up on this stub pair (vanishing probability): connect to
            // the next node cyclically to keep degrees close to d.
            b = static_cast<NodeId>((a + 1) % n);
        }
        edges.emplace_back(a, b);
    }
    std::ostringstream name;
    name << "random-regular(n=" << n << ", d=" << d << ")";
    return CsrGraph(n, edges, name.str());
}

CsrGraph make_gnp(std::size_t n, double p, Rng& rng) {
    PAPC_CHECK(p >= 0.0 && p <= 1.0);
    std::vector<std::pair<NodeId, NodeId>> edges;
    if (p > 0.0) {
        // Geometric skipping over the implicit edge enumeration.
        const double log1mp = std::log1p(-std::min(p, 1.0 - 1e-15));
        const double total_pairs =
            static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
        double index = -1.0;
        for (;;) {
            const double u = std::max(rng.uniform(), 1e-300);
            index += 1.0 + std::floor(std::log(u) / log1mp);
            if (index >= total_pairs) break;
            // Invert the pair index into (a, b), a < b.
            const auto idx = static_cast<std::uint64_t>(index);
            // Row a satisfies: a·n - a(a+1)/2 <= idx.
            auto a = static_cast<std::uint64_t>(
                static_cast<double>(n) - 0.5 -
                std::sqrt((static_cast<double>(n) - 0.5) *
                              (static_cast<double>(n) - 0.5) -
                          2.0 * static_cast<double>(idx)));
            auto row_start = a * n - a * (a + 1) / 2;
            while (row_start > idx) {
                --a;
                row_start = a * n - a * (a + 1) / 2;
            }
            while (a + 1 < n && (a + 1) * n - (a + 1) * (a + 2) / 2 <= idx) {
                ++a;
                row_start = a * n - a * (a + 1) / 2;
            }
            const std::uint64_t b = a + 1 + (idx - row_start);
            if (b < n) {
                edges.emplace_back(static_cast<NodeId>(a),
                                   static_cast<NodeId>(b));
            }
        }
    }
    std::ostringstream name;
    name << "gnp(n=" << n << ", p=" << p << ")";
    return CsrGraph(n, edges, name.str());
}

CsrGraph make_ring(std::size_t n, std::size_t d) {
    PAPC_CHECK(d >= 2 && d % 2 == 0);
    PAPC_CHECK(n > d);
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(n * d / 2);
    for (NodeId v = 0; v < n; ++v) {
        for (std::size_t hop = 1; hop <= d / 2; ++hop) {
            edges.emplace_back(v, static_cast<NodeId>((v + hop) % n));
        }
    }
    std::ostringstream name;
    name << "ring(n=" << n << ", d=" << d << ")";
    return CsrGraph(n, edges, name.str());
}

CsrGraph make_torus(std::size_t side) {
    PAPC_CHECK(side >= 3);
    const std::size_t n = side * side;
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(2 * n);
    auto id = [side](std::size_t x, std::size_t y) {
        return static_cast<NodeId>(y * side + x);
    };
    for (std::size_t y = 0; y < side; ++y) {
        for (std::size_t x = 0; x < side; ++x) {
            edges.emplace_back(id(x, y), id((x + 1) % side, y));
            edges.emplace_back(id(x, y), id(x, (y + 1) % side));
        }
    }
    std::ostringstream name;
    name << "torus(" << side << "x" << side << ")";
    return CsrGraph(n, edges, name.str());
}

}  // namespace papc::graph
