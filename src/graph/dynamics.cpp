#include "graph/dynamics.hpp"

#include <utility>

#include "support/check.hpp"

namespace papc::graph {

GraphColorDynamics::GraphColorDynamics(const Assignment& assignment,
                                       std::shared_ptr<const Topology> topology)
    : topology_(std::move(topology)),
      colors_(assignment.opinions),
      next_colors_(assignment.size()),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(topology_ != nullptr);
    PAPC_CHECK(topology_->num_nodes() == assignment.size());
    census_.reset(colors_);
}

void GraphColorDynamics::commit_round() {
    colors_.swap(next_colors_);
    census_.reset(colors_);
    ++round_;
}

GraphPullVoting::GraphPullVoting(const Assignment& assignment,
                                 std::shared_ptr<const Topology> topology)
    : GraphColorDynamics(assignment, std::move(topology)) {}

void GraphPullVoting::step(Rng& rng) {
    const auto n = static_cast<NodeId>(colors_.size());
    for (NodeId v = 0; v < n; ++v) {
        next_colors_[v] = colors_[topology_->sample_neighbor(v, rng)];
    }
    commit_round();
}

std::string GraphPullVoting::name() const {
    return "pull-voting@" + topology_->name();
}

GraphTwoChoices::GraphTwoChoices(const Assignment& assignment,
                                 std::shared_ptr<const Topology> topology)
    : GraphColorDynamics(assignment, std::move(topology)) {}

void GraphTwoChoices::step(Rng& rng) {
    const auto n = static_cast<NodeId>(colors_.size());
    for (NodeId v = 0; v < n; ++v) {
        const Opinion a = colors_[topology_->sample_neighbor(v, rng)];
        const Opinion b = colors_[topology_->sample_neighbor(v, rng)];
        next_colors_[v] = (a == b) ? a : colors_[v];
    }
    commit_round();
}

std::string GraphTwoChoices::name() const {
    return "two-choices@" + topology_->name();
}

GraphThreeMajority::GraphThreeMajority(const Assignment& assignment,
                                       std::shared_ptr<const Topology> topology)
    : GraphColorDynamics(assignment, std::move(topology)) {}

void GraphThreeMajority::step(Rng& rng) {
    const auto n = static_cast<NodeId>(colors_.size());
    for (NodeId v = 0; v < n; ++v) {
        const Opinion a = colors_[topology_->sample_neighbor(v, rng)];
        const Opinion b = colors_[topology_->sample_neighbor(v, rng)];
        const Opinion c = colors_[topology_->sample_neighbor(v, rng)];
        Opinion adopted;
        if (a == b || a == c) {
            adopted = a;
        } else if (b == c) {
            adopted = b;
        } else {
            const std::uint64_t pick = rng.uniform_index(3);
            adopted = pick == 0 ? a : (pick == 1 ? b : c);
        }
        next_colors_[v] = adopted;
    }
    commit_round();
}

std::string GraphThreeMajority::name() const {
    return "3-majority@" + topology_->name();
}

GraphAlgorithm1::GraphAlgorithm1(const Assignment& assignment,
                                 std::shared_ptr<const Topology> topology,
                                 sync::Schedule schedule)
    : topology_(std::move(topology)),
      schedule_(std::move(schedule)),
      colors_(assignment.opinions),
      generations_(assignment.size(), 0),
      next_colors_(assignment.size()),
      next_generations_(assignment.size()),
      census_(assignment.size(), assignment.num_opinions) {
    PAPC_CHECK(topology_ != nullptr);
    PAPC_CHECK(topology_->num_nodes() == assignment.size());
    census_.reset(colors_);
}

void GraphAlgorithm1::step(Rng& rng) {
    const auto n = static_cast<NodeId>(colors_.size());
    ++round_;
    const bool two_choices = schedule_.is_two_choices_step(round_);
    for (NodeId v = 0; v < n; ++v) {
        NodeId a = topology_->sample_neighbor(v, rng);
        NodeId b = topology_->sample_neighbor(v, rng);
        if (generations_[a] < generations_[b]) std::swap(a, b);

        Opinion new_color = colors_[v];
        Generation new_generation = generations_[v];
        if (two_choices && generations_[v] <= generations_[a] &&
            generations_[a] == generations_[b] && colors_[a] == colors_[b]) {
            new_generation = generations_[a] + 1;
            new_color = colors_[a];
        } else if (generations_[a] > generations_[v]) {
            new_generation = generations_[a];
            new_color = colors_[a];
        }
        next_colors_[v] = new_color;
        next_generations_[v] = new_generation;
    }
    colors_.swap(next_colors_);
    generations_.swap(next_generations_);
    census_.rebuild(generations_, colors_);
}

std::uint64_t GraphAlgorithm1::opinion_count(Opinion j) const {
    std::uint64_t total = 0;
    for (Generation g = 0; g <= census_.highest_populated(); ++g) {
        total += census_.count(g, j);
    }
    return total;
}

std::string GraphAlgorithm1::name() const {
    return "algorithm1@" + topology_->name();
}

}  // namespace papc::graph
