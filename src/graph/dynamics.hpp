#pragma once

/// \file dynamics.hpp
/// Opinion dynamics over arbitrary topologies. Mirrors sync/baselines.hpp
/// but samples from a Topology instead of the implicit clique:
///   - GraphPullVoting    — [HP01] pull voting on general graphs
///   - GraphTwoChoices    — [CER14] two-choices voting (d-regular analysis)
///   - GraphThreeMajority — [BCN+14] dynamics transplanted to graphs
///   - GraphAlgorithm1    — exploratory: the paper's generation protocol
///     with neighbor sampling. The paper analyzes it on K_n only; on good
///     expanders it behaves clique-like, on slow-mixing topologies the
///     generation hand-over breaks — bench/exp_graph_topologies measures
///     exactly this (the paper's "more general models" future work).

#include <memory>

#include "graph/topology.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "sync/engine.hpp"
#include "sync/schedule.hpp"

namespace papc::graph {

/// Shared machinery: color vector + census over a topology.
class GraphColorDynamics : public sync::SyncDynamics {
public:
    GraphColorDynamics(const Assignment& assignment,
                       std::shared_ptr<const Topology> topology);

    [[nodiscard]] std::size_t population() const override { return colors_.size(); }
    [[nodiscard]] std::uint32_t num_opinions() const override {
        return census_.num_opinions();
    }
    [[nodiscard]] std::uint64_t opinion_count(Opinion j) const override {
        return census_.count(j);
    }
    [[nodiscard]] std::uint64_t rounds() const override { return round_; }
    [[nodiscard]] const Topology& topology() const { return *topology_; }

protected:
    void commit_round();

    std::shared_ptr<const Topology> topology_;
    std::vector<Opinion> colors_;
    std::vector<Opinion> next_colors_;
    OpinionCensus census_;
    std::uint64_t round_ = 0;
};

class GraphPullVoting final : public GraphColorDynamics {
public:
    GraphPullVoting(const Assignment& assignment,
                    std::shared_ptr<const Topology> topology);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override;
};

class GraphTwoChoices final : public GraphColorDynamics {
public:
    GraphTwoChoices(const Assignment& assignment,
                    std::shared_ptr<const Topology> topology);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override;
};

class GraphThreeMajority final : public GraphColorDynamics {
public:
    GraphThreeMajority(const Assignment& assignment,
                       std::shared_ptr<const Topology> topology);
    void step(Rng& rng) override;
    [[nodiscard]] std::string name() const override;
};

/// Algorithm 1 with topology-based sampling (exploratory; see file header).
class GraphAlgorithm1 final : public sync::SyncDynamics {
public:
    GraphAlgorithm1(const Assignment& assignment,
                    std::shared_ptr<const Topology> topology,
                    sync::Schedule schedule);

    void step(Rng& rng) override;
    [[nodiscard]] std::size_t population() const override { return colors_.size(); }
    [[nodiscard]] std::uint32_t num_opinions() const override {
        return census_.num_opinions();
    }
    [[nodiscard]] std::uint64_t opinion_count(Opinion j) const override;
    [[nodiscard]] std::uint64_t rounds() const override { return round_; }
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] const GenerationCensus& census() const { return census_; }

private:
    std::shared_ptr<const Topology> topology_;
    sync::Schedule schedule_;
    std::vector<Opinion> colors_;
    std::vector<Generation> generations_;
    std::vector<Opinion> next_colors_;
    std::vector<Generation> next_generations_;
    GenerationCensus census_;
    std::uint64_t round_ = 0;
};

}  // namespace papc::graph
