#include "population/four_state.hpp"

#include "support/check.hpp"

namespace papc::population {

FourStateExactMajority::FourStateExactMajority(std::size_t a_count,
                                               std::size_t b_count) {
    const std::size_t n = a_count + b_count;
    PAPC_CHECK(n >= 2);
    states_.reserve(n);
    states_.insert(states_.end(), a_count, State::kStrongA);
    states_.insert(states_.end(), b_count, State::kStrongB);
    strong_a_ = a_count;
    strong_b_ = b_count;
    output_a_ = a_count;
}

void FourStateExactMajority::set_state(NodeId v, State s) {
    const State old = states_[v];
    if (old == s) return;
    if (old == State::kStrongA) --strong_a_;
    if (old == State::kStrongB) --strong_b_;
    if (s == State::kStrongA) ++strong_a_;
    if (s == State::kStrongB) ++strong_b_;
    if (outputs_a(old) && !outputs_a(s)) --output_a_;
    if (!outputs_a(old) && outputs_a(s)) ++output_a_;
    states_[v] = s;
}

void FourStateExactMajority::interact(NodeId initiator, NodeId responder) {
    PAPC_CHECK(initiator != responder);
    const State x = states_[initiator];
    const State y = states_[responder];

    // Annihilation: strong opposites both weaken.
    if (x == State::kStrongA && y == State::kStrongB) {
        set_state(initiator, State::kWeakA);
        set_state(responder, State::kWeakB);
        return;
    }
    if (x == State::kStrongB && y == State::kStrongA) {
        set_state(initiator, State::kWeakB);
        set_state(responder, State::kWeakA);
        return;
    }
    // Conversion: a strong agent flips an opposite weak agent (either role).
    if (x == State::kStrongA && y == State::kWeakB) {
        set_state(responder, State::kWeakA);
        return;
    }
    if (x == State::kStrongB && y == State::kWeakA) {
        set_state(responder, State::kWeakB);
        return;
    }
    if (y == State::kStrongA && x == State::kWeakB) {
        set_state(initiator, State::kWeakA);
        return;
    }
    if (y == State::kStrongB && x == State::kWeakA) {
        set_state(initiator, State::kWeakB);
        return;
    }
}

bool FourStateExactMajority::converged() const {
    const auto n = static_cast<std::uint64_t>(states_.size());
    // Stable iff one side has no strong tokens *and* no weak tokens of the
    // other side remain to be converted.
    if (strong_b_ == 0 && output_a_ == n && strong_a_ > 0) return true;
    if (strong_a_ == 0 && output_a_ == 0 && strong_b_ > 0) return true;
    return false;
}

Opinion FourStateExactMajority::current_winner() const {
    const auto n = static_cast<std::uint64_t>(states_.size());
    return output_a_ * 2 >= n ? 0U : 1U;
}

double FourStateExactMajority::output_fraction(Opinion j) const {
    const auto n = static_cast<double>(states_.size());
    if (j == 0) return static_cast<double>(output_a_) / n;
    if (j == 1) return 1.0 - static_cast<double>(output_a_) / n;
    return 0.0;
}

Opinion FourStateExactMajority::output_opinion(NodeId v) const {
    return outputs_a(states_[v]) ? 0U : 1U;
}

std::int64_t FourStateExactMajority::strong_difference() const {
    return static_cast<std::int64_t>(strong_a_) -
           static_cast<std::int64_t>(strong_b_);
}

}  // namespace papc::population
