#pragma once

/// \file scheduler.hpp
/// The standard population-protocol execution model (§1.1): in each discrete
/// step a uniformly random ordered pair of distinct agents interacts and
/// updates its states by a deterministic rule. Run time is reported in
/// *parallel time* = interactions / n, the common normalization [AGV15].

#include <cstdint>
#include <string>

#include "core/run_result.hpp"
#include "fault/plan.hpp"
#include "opinion/types.hpp"
#include "support/random.hpp"
#include "support/timeseries.hpp"

namespace papc::population {

/// Interface of a pairwise-interaction protocol.
class PopulationProtocol {
public:
    virtual ~PopulationProtocol() = default;

    /// Applies one interaction between distinct agents.
    virtual void interact(NodeId initiator, NodeId responder) = 0;

    [[nodiscard]] virtual std::size_t population() const = 0;

    /// Opinions the fault layer may force on an agent (byzantine and
    /// corruption targets). The binary majority protocols default to 2.
    [[nodiscard]] virtual std::uint32_t num_opinions() const { return 2; }

    /// Opaque per-agent state word for the fault layer's
    /// save / impersonate / restore bracket around one interaction.
    /// restore_state(v, save_state(v)) must be exact — output_opinion can
    /// be lossy (e.g. strong vs weak states). Protocols that do not
    /// override the trio simply ignore impersonation.
    [[nodiscard]] virtual std::uint64_t save_state(NodeId v) const {
        (void)v;
        return 0;
    }
    virtual void restore_state(NodeId v, std::uint64_t state) {
        (void)v;
        (void)state;
    }

    /// Makes v hold the strongest state outputting `op` (the byzantine
    /// impersonation applied just before an interaction).
    virtual void force_opinion(NodeId v, Opinion op) {
        (void)v;
        (void)op;
    }

    /// True when the protocol's output is stable and unanimous.
    [[nodiscard]] virtual bool converged() const = 0;

    /// Current output opinion of the population majority/plurality
    /// (meaningful once converged; best guess otherwise).
    [[nodiscard]] virtual Opinion current_winner() const = 0;

    /// Fraction of agents currently outputting `j`.
    [[nodiscard]] virtual double output_fraction(Opinion j) const = 0;

    /// Current output of one agent (kUndecided for blank/undecided states).
    [[nodiscard]] virtual Opinion output_opinion(NodeId v) const = 0;

    [[nodiscard]] virtual std::string name() const = 0;
};

/// Pair-selection policy: the population-protocol model allows random *or
/// adversarial* pair selection (§1.1); an adversary must remain fair (every
/// pair is selected infinitely often) but may bias the order arbitrarily.
class PairPolicy {
public:
    virtual ~PairPolicy() = default;
    /// Returns the next ordered (initiator, responder) pair of distinct
    /// agents for a population of size n.
    [[nodiscard]] virtual std::pair<NodeId, NodeId> next_pair(
        const PopulationProtocol& protocol, std::size_t n, Rng& rng) = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

/// The standard model: uniformly random ordered pairs.
class UniformPairPolicy final : public PairPolicy {
public:
    [[nodiscard]] std::pair<NodeId, NodeId> next_pair(
        const PopulationProtocol& protocol, std::size_t n, Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "uniform"; }
};

/// Deterministic fair rotation of initiators with random responders.
class RoundRobinPairPolicy final : public PairPolicy {
public:
    [[nodiscard]] std::pair<NodeId, NodeId> next_pair(
        const PopulationProtocol& protocol, std::size_t n, Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "round-robin"; }

private:
    NodeId cursor_ = 0;
};

/// Fair adversary that *delays* progress: with probability `stall` it pairs
/// two agents with the same output (a no-op for the protocols here), and
/// falls back to a uniform pair otherwise — so every pair still occurs
/// infinitely often (fairness) but useful interactions are rationed.
class StallingPairPolicy final : public PairPolicy {
public:
    explicit StallingPairPolicy(double stall);
    [[nodiscard]] std::pair<NodeId, NodeId> next_pair(
        const PopulationProtocol& protocol, std::size_t n, Rng& rng) override;
    [[nodiscard]] std::string name() const override { return "stalling"; }

private:
    double stall_;
};

/// Outcome of driving a protocol: the unified result. The time axis is
/// *parallel time* (steps == interactions, end_time == interactions / n).
using PopulationResult = core::RunResult;

struct PopulationRunOptions {
    std::uint64_t max_interactions = 0;  ///< 0: default 64·n·log2(n)
    std::uint64_t check_every = 0;       ///< 0: default n (once per par. step)
    std::uint64_t record_every = 0;      ///< 0: no recording
    Opinion plurality = 0;
    double epsilon = 0.02;               ///< ε for epsilon_time reporting

    /// Fault & adversary plan (borrowed; nullptr = fault-free). The run
    /// builds its own injector (horizon = max parallel time, parent rng
    /// never advanced): a pair with a crashed agent is a no-op that still
    /// advances the clock; message loss / duplication / corruption map
    /// onto whole interactions (drop / apply twice / initiator reports a
    /// uniform opinion); byzantine agents impersonate per policy around
    /// each of their interactions while their true state stays frozen.
    const fault::FaultPlan* fault = nullptr;

    /// Out-params (written when non-null): the run's fault counters, the
    /// number of nodes with a crash inside the horizon, and the size of
    /// the byzantine set.
    fault::FaultCounters* fault_counters = nullptr;
    std::uint64_t* nodes_crashed = nullptr;
    std::uint64_t* byzantine_nodes = nullptr;
};

/// Drives a protocol with uniformly random ordered pairs.
[[nodiscard]] PopulationResult run_population(PopulationProtocol& protocol,
                                              Rng& rng,
                                              const PopulationRunOptions& options = {});

/// Drives a protocol with an arbitrary pair-selection policy.
[[nodiscard]] PopulationResult run_population_with_policy(
    PopulationProtocol& protocol, PairPolicy& policy, Rng& rng,
    const PopulationRunOptions& options = {});

}  // namespace papc::population
