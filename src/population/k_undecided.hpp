#pragma once

/// \file k_undecided.hpp
/// The k-opinion generalization of the undecided-state dynamics in the
/// population-protocol model ([AAE08] generalized as in [BCN+15], §1.1):
/// when an initiator with color x meets a responder with a different color
/// y, the responder becomes undecided; an undecided responder adopts the
/// initiator's color. Needs k + 1 states and converges to the plurality
/// under sufficient bias.

#include <cstdint>
#include <vector>

#include "population/scheduler.hpp"

namespace papc::population {

class KUndecided final : public PopulationProtocol {
public:
    /// counts[j] agents start with opinion j; `undecided` extra agents
    /// start in the undecided state.
    explicit KUndecided(const std::vector<std::size_t>& counts,
                        std::size_t undecided = 0);

    void interact(NodeId initiator, NodeId responder) override;

    [[nodiscard]] std::size_t population() const override { return states_.size(); }
    [[nodiscard]] bool converged() const override;
    [[nodiscard]] Opinion current_winner() const override;
    [[nodiscard]] double output_fraction(Opinion j) const override;
    [[nodiscard]] Opinion output_opinion(NodeId v) const override {
        return states_[v];
    }
    [[nodiscard]] std::string name() const override { return "k-undecided"; }

    [[nodiscard]] std::uint32_t num_opinions() const override {
        return static_cast<std::uint32_t>(counts_.size());
    }
    [[nodiscard]] std::uint64_t count(Opinion j) const { return counts_[j]; }
    [[nodiscard]] std::uint64_t undecided_count() const { return undecided_; }

    // Fault-layer impersonation bracket (see scheduler.hpp).
    [[nodiscard]] std::uint64_t save_state(NodeId v) const override {
        return static_cast<std::uint64_t>(states_[v]);
    }
    void restore_state(NodeId v, std::uint64_t state) override {
        set_state(v, static_cast<Opinion>(state));
    }
    void force_opinion(NodeId v, Opinion op) override { set_state(v, op); }

private:
    void set_state(NodeId v, Opinion s);

    std::vector<Opinion> states_;  ///< kUndecided or an opinion id
    std::vector<std::uint64_t> counts_;
    std::uint64_t undecided_ = 0;
};

}  // namespace papc::population
