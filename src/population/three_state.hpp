#pragma once

/// \file three_state.hpp
/// The 3-state approximate-majority population protocol of Angluin, Aspnes
/// and Eisenstat [AAE08] for two opinions A and B with a blank (undecided)
/// third state:
///   (A, B) -> responder blank      (B, A) -> responder blank
///   (A, _) -> responder A          (B, _) -> responder B
/// With initial additive bias ω(√n log n) the initial majority wins within
/// O(n log n) interactions whp.

#include <cstdint>
#include <vector>

#include "population/scheduler.hpp"

namespace papc::population {

class ThreeStateMajority final : public PopulationProtocol {
public:
    /// Agents 0..a_count-1 start in A, the next b_count in B, the rest blank.
    ThreeStateMajority(std::size_t a_count, std::size_t b_count,
                       std::size_t blank_count = 0);

    void interact(NodeId initiator, NodeId responder) override;

    [[nodiscard]] std::size_t population() const override { return states_.size(); }
    [[nodiscard]] bool converged() const override;
    [[nodiscard]] Opinion current_winner() const override;
    [[nodiscard]] double output_fraction(Opinion j) const override;
    [[nodiscard]] Opinion output_opinion(NodeId v) const override;
    [[nodiscard]] std::string name() const override { return "3-state-majority"; }

    [[nodiscard]] std::uint64_t count_a() const { return count_a_; }
    [[nodiscard]] std::uint64_t count_b() const { return count_b_; }
    [[nodiscard]] std::uint64_t count_blank() const { return count_blank_; }

    // Fault-layer impersonation bracket (see scheduler.hpp).
    [[nodiscard]] std::uint64_t save_state(NodeId v) const override {
        return static_cast<std::uint64_t>(states_[v]);
    }
    void restore_state(NodeId v, std::uint64_t state) override {
        set_state(v, static_cast<State>(state));
    }
    void force_opinion(NodeId v, Opinion op) override {
        set_state(v, op == 0 ? State::kA : op == 1 ? State::kB : State::kBlank);
    }

private:
    enum class State : std::uint8_t { kA, kB, kBlank };

    void set_state(NodeId v, State s);

    std::vector<State> states_;
    std::uint64_t count_a_ = 0;
    std::uint64_t count_b_ = 0;
    std::uint64_t count_blank_ = 0;
};

}  // namespace papc::population
