#pragma once

/// \file four_state.hpp
/// The 4-state *exact* majority population protocol analyzed by Draief and
/// Vojnović [DV10] and Mertzios et al. [MNRS14]. States: strong A/B and
/// weak a/b. Rules (unordered effect, applied to ordered pairs):
///   A + B -> a + b     (strong opposites annihilate to weak)
///   A + b -> A + a     (a strong agent converts an opposite weak agent)
///   B + a -> B + b
///   all other pairs: no change.
/// The strong-token difference #A - #B is invariant, so the protocol always
/// returns the exact majority regardless of the bias — at the price of up
/// to Θ(n² log n) interactions on the clique when the bias is constant. At
/// an exact tie all strong tokens annihilate and the protocol never
/// stabilizes (exact majority is undefined); run_population then reports
/// converged = false.

#include <cstdint>
#include <vector>

#include "population/scheduler.hpp"

namespace papc::population {

class FourStateExactMajority final : public PopulationProtocol {
public:
    FourStateExactMajority(std::size_t a_count, std::size_t b_count);

    void interact(NodeId initiator, NodeId responder) override;

    [[nodiscard]] std::size_t population() const override { return states_.size(); }
    [[nodiscard]] bool converged() const override;
    [[nodiscard]] Opinion current_winner() const override;
    [[nodiscard]] double output_fraction(Opinion j) const override;
    [[nodiscard]] Opinion output_opinion(NodeId v) const override;
    [[nodiscard]] std::string name() const override { return "4-state-exact-majority"; }

    [[nodiscard]] std::uint64_t strong_a() const { return strong_a_; }
    [[nodiscard]] std::uint64_t strong_b() const { return strong_b_; }

    /// Signed strong-token difference #A - #B; invariant over any run.
    [[nodiscard]] std::int64_t strong_difference() const;

    // Fault-layer impersonation bracket (see scheduler.hpp). The opaque
    // word is the full State — output_opinion is lossy (strong vs weak),
    // so restore must not round-trip through opinions. Forcing imperson-
    // ates the *strong* token of the opinion (the influential state).
    [[nodiscard]] std::uint64_t save_state(NodeId v) const override {
        return static_cast<std::uint64_t>(states_[v]);
    }
    void restore_state(NodeId v, std::uint64_t state) override {
        set_state(v, static_cast<State>(state));
    }
    void force_opinion(NodeId v, Opinion op) override {
        set_state(v, op == 0 ? State::kStrongA : State::kStrongB);
    }

private:
    enum class State : std::uint8_t { kStrongA, kStrongB, kWeakA, kWeakB };

    void set_state(NodeId v, State s);
    [[nodiscard]] static bool outputs_a(State s) {
        return s == State::kStrongA || s == State::kWeakA;
    }

    std::vector<State> states_;
    std::uint64_t strong_a_ = 0;
    std::uint64_t strong_b_ = 0;
    std::uint64_t output_a_ = 0;  ///< agents currently outputting A
};

}  // namespace papc::population
