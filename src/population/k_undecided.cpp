#include "population/k_undecided.hpp"

#include "support/check.hpp"

namespace papc::population {

KUndecided::KUndecided(const std::vector<std::size_t>& counts,
                       std::size_t undecided)
    : counts_(counts.size(), 0) {
    PAPC_CHECK(!counts.empty());
    std::size_t n = undecided;
    for (const std::size_t c : counts) n += c;
    PAPC_CHECK(n >= 2);
    states_.reserve(n);
    for (std::size_t j = 0; j < counts.size(); ++j) {
        states_.insert(states_.end(), counts[j], static_cast<Opinion>(j));
        counts_[j] = counts[j];
    }
    states_.insert(states_.end(), undecided, kUndecided);
    undecided_ = undecided;
}

void KUndecided::set_state(NodeId v, Opinion s) {
    const Opinion old = states_[v];
    if (old == s) return;
    if (old == kUndecided) {
        --undecided_;
    } else {
        --counts_[old];
    }
    if (s == kUndecided) {
        ++undecided_;
    } else {
        ++counts_[s];
    }
    states_[v] = s;
}

void KUndecided::interact(NodeId initiator, NodeId responder) {
    PAPC_CHECK(initiator != responder);
    const Opinion x = states_[initiator];
    const Opinion y = states_[responder];
    if (x == kUndecided) return;  // undecided initiators influence no one
    if (y == kUndecided) {
        set_state(responder, x);
    } else if (y != x) {
        set_state(responder, kUndecided);
    }
}

bool KUndecided::converged() const {
    const auto n = static_cast<std::uint64_t>(states_.size());
    for (const auto c : counts_) {
        if (c == n) return true;
    }
    return false;
}

Opinion KUndecided::current_winner() const {
    Opinion best = 0;
    for (Opinion j = 1; j < counts_.size(); ++j) {
        if (counts_[j] > counts_[best]) best = j;
    }
    return best;
}

double KUndecided::output_fraction(Opinion j) const {
    if (j >= counts_.size()) return 0.0;
    return static_cast<double>(counts_[j]) / static_cast<double>(states_.size());
}

}  // namespace papc::population
