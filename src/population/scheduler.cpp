#include "population/scheduler.hpp"

#include <cmath>
#include <memory>

#include "core/engine.hpp"
#include "fault/injector.hpp"
#include "support/check.hpp"

namespace papc::population {

std::pair<NodeId, NodeId> UniformPairPolicy::next_pair(
    const PopulationProtocol&, std::size_t n, Rng& rng) {
    const auto initiator = static_cast<NodeId>(rng.uniform_index(n));
    const auto responder =
        static_cast<NodeId>(rng.uniform_index_excluding(n, initiator));
    return {initiator, responder};
}

std::pair<NodeId, NodeId> RoundRobinPairPolicy::next_pair(
    const PopulationProtocol&, std::size_t n, Rng& rng) {
    const NodeId initiator = cursor_;
    cursor_ = static_cast<NodeId>((cursor_ + 1) % n);
    const auto responder =
        static_cast<NodeId>(rng.uniform_index_excluding(n, initiator));
    return {initiator, responder};
}

StallingPairPolicy::StallingPairPolicy(double stall) : stall_(stall) {
    PAPC_CHECK(stall >= 0.0 && stall < 1.0);
}

std::pair<NodeId, NodeId> StallingPairPolicy::next_pair(
    const PopulationProtocol& protocol, std::size_t n, Rng& rng) {
    if (rng.bernoulli(stall_)) {
        // Try a few times to find a same-output pair (a no-op interaction
        // for the majority protocols); fall back to uniform if unlucky so
        // the policy stays fair.
        for (int attempt = 0; attempt < 8; ++attempt) {
            const auto a = static_cast<NodeId>(rng.uniform_index(n));
            const auto b = static_cast<NodeId>(rng.uniform_index_excluding(n, a));
            if (protocol.output_opinion(a) == protocol.output_opinion(b)) {
                return {a, b};
            }
        }
    }
    const auto initiator = static_cast<NodeId>(rng.uniform_index(n));
    const auto responder =
        static_cast<NodeId>(rng.uniform_index_excluding(n, initiator));
    return {initiator, responder};
}

namespace {

/// Adapts a protocol + pair policy to the core step interface; the time
/// axis is parallel time (interactions / n).
class PopulationEngine final : public core::Engine {
public:
    PopulationEngine(PopulationProtocol& protocol, PairPolicy& policy, Rng& rng,
                     const fault::Injector* injector)
        : protocol_(protocol),
          policy_(policy),
          rng_(rng),
          n_(protocol.population()),
          injector_(injector) {
        if (injector_ != nullptr) {
            crash_on_ = injector_->crash_active();
            msg_on_ = injector_->message_faults_active();
            byz_on_ = injector_->byzantine_active();
            if (msg_on_) fault_rng_ = injector_->serial_stream();
        }
    }

    [[nodiscard]] const fault::FaultCounters& fault_counters() const {
        return faults_;
    }

    bool advance() override {
        const auto [initiator, responder] = policy_.next_pair(protocol_, n_, rng_);
        ++interactions_;
        if (injector_ == nullptr) {
            protocol_.interact(initiator, responder);
            return true;
        }
        if (crash_on_) {
            const double t = now();
            if (injector_->is_down(initiator, t) ||
                injector_->is_down(responder, t)) {
                // A pair with a down agent is a no-op; the clock advances.
                ++faults_.crash_skips;
                return true;
            }
        }
        bool duplicate = false;
        // Agents impersonated for this interaction only: index, saved word.
        NodeId forced[2];
        std::uint64_t saved[2];
        std::size_t num_forced = 0;
        const auto impersonate = [&](NodeId v, Opinion op) {
            saved[num_forced] = protocol_.save_state(v);
            forced[num_forced] = v;
            ++num_forced;
            protocol_.force_opinion(v, op);
        };
        const std::uint32_t k = protocol_.num_opinions();
        if (msg_on_) {
            const fault::MessageFate fate = injector_->draw_fate(fault_rng_);
            if (fate.drop) {
                ++faults_.lost;
                return true;
            }
            if (fate.duplicate) {
                ++faults_.duplicated;
                duplicate = true;
            }
            if (fate.corrupt) {
                // The initiator's reported opinion flips uniformly for
                // this interaction (stragglers have no meaning on the
                // interaction clock and are ignored).
                ++faults_.corrupted;
                impersonate(initiator, static_cast<Opinion>(
                                           fault_rng_.uniform_index(k)));
            }
        }
        if (byz_on_) {
            for (const NodeId v : {initiator, responder}) {
                if (!injector_->is_byzantine(v)) continue;
                // A corrupted initiator is already impersonated.
                if (num_forced > 0 && forced[0] == v) continue;
                impersonate(v, byzantine_target(k));
            }
        }
        protocol_.interact(initiator, responder);
        if (duplicate) protocol_.interact(initiator, responder);
        // Restore in reverse save order (exact even if both brackets hit
        // the same agent).
        while (num_forced > 0) {
            --num_forced;
            protocol_.restore_state(forced[num_forced], saved[num_forced]);
        }
        return true;
    }
    [[nodiscard]] double now() const override {
        return static_cast<double>(interactions_) / static_cast<double>(n_);
    }
    [[nodiscard]] bool converged() const override {
        return protocol_.converged();
    }
    [[nodiscard]] Opinion dominant() const override {
        return protocol_.current_winner();
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return protocol_.output_fraction(j);
    }

private:
    /// Per-interaction byzantine reporting target (policy-dependent).
    [[nodiscard]] Opinion byzantine_target(std::uint32_t k) const {
        switch (injector_->byzantine_policy()) {
            case fault::ByzantinePolicy::kFixed:
                return static_cast<Opinion>(k - 1);
            case fault::ByzantinePolicy::kRandom: {
                Rng stream = injector_->byzantine_round_stream(interactions_);
                return static_cast<Opinion>(stream.uniform_index(k));
            }
            case fault::ByzantinePolicy::kAdaptive:
                return fault::strongest_minority(k, [this](Opinion j) {
                    return static_cast<std::uint64_t>(
                        protocol_.output_fraction(j) * static_cast<double>(n_) +
                        0.5);
                });
        }
        return 0;
    }

    PopulationProtocol& protocol_;
    PairPolicy& policy_;
    Rng& rng_;
    std::size_t n_;
    std::uint64_t interactions_ = 0;

    const fault::Injector* injector_;
    bool crash_on_ = false;
    bool msg_on_ = false;
    bool byz_on_ = false;
    Rng fault_rng_{0};
    fault::FaultCounters faults_;
};

}  // namespace

PopulationResult run_population_with_policy(PopulationProtocol& protocol,
                                            PairPolicy& policy, Rng& rng,
                                            const PopulationRunOptions& options) {
    const auto n = static_cast<std::uint64_t>(protocol.population());
    PAPC_CHECK(n >= 2);

    std::uint64_t max_interactions = options.max_interactions;
    if (max_interactions == 0) {
        const double bound = 64.0 * static_cast<double>(n) *
                             std::log2(static_cast<double>(n));
        max_interactions = static_cast<std::uint64_t>(bound);
    }

    // Fault layer: horizon in parallel time; the parent rng is read, never
    // advanced, so a null/zero plan reproduces the fault-free trajectory.
    std::unique_ptr<fault::Injector> injector;
    if (options.fault != nullptr && options.fault->active()) {
        const double horizon = static_cast<double>(max_interactions) /
                               static_cast<double>(n);
        injector = std::make_unique<fault::Injector>(*options.fault, n,
                                                     horizon, rng);
    }

    PopulationEngine engine(protocol, policy, rng, injector.get());
    core::EngineOptions run_options;
    run_options.max_steps = max_interactions;
    run_options.check_every = options.check_every == 0 ? n : options.check_every;
    run_options.record_every = options.record_every;
    run_options.record = options.record_every > 0;
    run_options.plurality = options.plurality;
    run_options.epsilon = options.epsilon;
    run_options.series_name = protocol.name() + "@" + policy.name();
    PopulationResult result = core::run(engine, run_options);
    if (options.fault_counters != nullptr) {
        *options.fault_counters = engine.fault_counters();
    }
    if (options.nodes_crashed != nullptr) {
        *options.nodes_crashed = injector ? injector->nodes_crashed() : 0;
    }
    if (options.byzantine_nodes != nullptr) {
        *options.byzantine_nodes = injector ? injector->byzantine_count() : 0;
    }
    return result;
}

PopulationResult run_population(PopulationProtocol& protocol, Rng& rng,
                                const PopulationRunOptions& options) {
    UniformPairPolicy policy;
    return run_population_with_policy(protocol, policy, rng, options);
}

}  // namespace papc::population
