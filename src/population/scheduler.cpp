#include "population/scheduler.hpp"

#include <cmath>

#include "support/check.hpp"

namespace papc::population {

std::pair<NodeId, NodeId> UniformPairPolicy::next_pair(
    const PopulationProtocol&, std::size_t n, Rng& rng) {
    const auto initiator = static_cast<NodeId>(rng.uniform_index(n));
    auto responder = static_cast<NodeId>(rng.uniform_index(n - 1));
    if (responder >= initiator) ++responder;
    return {initiator, responder};
}

std::pair<NodeId, NodeId> RoundRobinPairPolicy::next_pair(
    const PopulationProtocol&, std::size_t n, Rng& rng) {
    const NodeId initiator = cursor_;
    cursor_ = static_cast<NodeId>((cursor_ + 1) % n);
    auto responder = static_cast<NodeId>(rng.uniform_index(n - 1));
    if (responder >= initiator) ++responder;
    return {initiator, responder};
}

StallingPairPolicy::StallingPairPolicy(double stall) : stall_(stall) {
    PAPC_CHECK(stall >= 0.0 && stall < 1.0);
}

std::pair<NodeId, NodeId> StallingPairPolicy::next_pair(
    const PopulationProtocol& protocol, std::size_t n, Rng& rng) {
    if (rng.bernoulli(stall_)) {
        // Try a few times to find a same-output pair (a no-op interaction
        // for the majority protocols); fall back to uniform if unlucky so
        // the policy stays fair.
        for (int attempt = 0; attempt < 8; ++attempt) {
            const auto a = static_cast<NodeId>(rng.uniform_index(n));
            auto b = static_cast<NodeId>(rng.uniform_index(n - 1));
            if (b >= a) ++b;
            if (protocol.output_opinion(a) == protocol.output_opinion(b)) {
                return {a, b};
            }
        }
    }
    const auto initiator = static_cast<NodeId>(rng.uniform_index(n));
    auto responder = static_cast<NodeId>(rng.uniform_index(n - 1));
    if (responder >= initiator) ++responder;
    return {initiator, responder};
}

PopulationResult run_population_with_policy(PopulationProtocol& protocol,
                                            PairPolicy& policy, Rng& rng,
                                            const PopulationRunOptions& options) {
    const auto n = static_cast<std::uint64_t>(protocol.population());
    PAPC_CHECK(n >= 2);

    std::uint64_t max_interactions = options.max_interactions;
    if (max_interactions == 0) {
        const double bound = 64.0 * static_cast<double>(n) *
                             std::log2(static_cast<double>(n));
        max_interactions = static_cast<std::uint64_t>(bound);
    }
    const std::uint64_t check_every =
        options.check_every == 0 ? n : options.check_every;

    PopulationResult result;
    result.winner_fraction = TimeSeries(protocol.name() + "@" + policy.name());

    std::uint64_t steps = 0;
    while (steps < max_interactions) {
        const auto [initiator, responder] = policy.next_pair(protocol, n, rng);
        protocol.interact(initiator, responder);
        ++steps;

        if (steps % check_every == 0) {
            if (options.record_every > 0 && steps % options.record_every == 0) {
                result.winner_fraction.record(
                    static_cast<double>(steps) / static_cast<double>(n),
                    protocol.output_fraction(options.plurality));
            }
            if (protocol.converged()) break;
        }
    }

    result.converged = protocol.converged();
    result.winner = protocol.current_winner();
    result.interactions = steps;
    result.parallel_time = static_cast<double>(steps) / static_cast<double>(n);
    return result;
}

PopulationResult run_population(PopulationProtocol& protocol, Rng& rng,
                                const PopulationRunOptions& options) {
    UniformPairPolicy policy;
    return run_population_with_policy(protocol, policy, rng, options);
}

}  // namespace papc::population
