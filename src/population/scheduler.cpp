#include "population/scheduler.hpp"

#include <cmath>

#include "core/engine.hpp"
#include "support/check.hpp"

namespace papc::population {

std::pair<NodeId, NodeId> UniformPairPolicy::next_pair(
    const PopulationProtocol&, std::size_t n, Rng& rng) {
    const auto initiator = static_cast<NodeId>(rng.uniform_index(n));
    const auto responder =
        static_cast<NodeId>(rng.uniform_index_excluding(n, initiator));
    return {initiator, responder};
}

std::pair<NodeId, NodeId> RoundRobinPairPolicy::next_pair(
    const PopulationProtocol&, std::size_t n, Rng& rng) {
    const NodeId initiator = cursor_;
    cursor_ = static_cast<NodeId>((cursor_ + 1) % n);
    const auto responder =
        static_cast<NodeId>(rng.uniform_index_excluding(n, initiator));
    return {initiator, responder};
}

StallingPairPolicy::StallingPairPolicy(double stall) : stall_(stall) {
    PAPC_CHECK(stall >= 0.0 && stall < 1.0);
}

std::pair<NodeId, NodeId> StallingPairPolicy::next_pair(
    const PopulationProtocol& protocol, std::size_t n, Rng& rng) {
    if (rng.bernoulli(stall_)) {
        // Try a few times to find a same-output pair (a no-op interaction
        // for the majority protocols); fall back to uniform if unlucky so
        // the policy stays fair.
        for (int attempt = 0; attempt < 8; ++attempt) {
            const auto a = static_cast<NodeId>(rng.uniform_index(n));
            const auto b = static_cast<NodeId>(rng.uniform_index_excluding(n, a));
            if (protocol.output_opinion(a) == protocol.output_opinion(b)) {
                return {a, b};
            }
        }
    }
    const auto initiator = static_cast<NodeId>(rng.uniform_index(n));
    const auto responder =
        static_cast<NodeId>(rng.uniform_index_excluding(n, initiator));
    return {initiator, responder};
}

namespace {

/// Adapts a protocol + pair policy to the core step interface; the time
/// axis is parallel time (interactions / n).
class PopulationEngine final : public core::Engine {
public:
    PopulationEngine(PopulationProtocol& protocol, PairPolicy& policy, Rng& rng)
        : protocol_(protocol),
          policy_(policy),
          rng_(rng),
          n_(protocol.population()) {}

    bool advance() override {
        const auto [initiator, responder] = policy_.next_pair(protocol_, n_, rng_);
        protocol_.interact(initiator, responder);
        ++interactions_;
        return true;
    }
    [[nodiscard]] double now() const override {
        return static_cast<double>(interactions_) / static_cast<double>(n_);
    }
    [[nodiscard]] bool converged() const override {
        return protocol_.converged();
    }
    [[nodiscard]] Opinion dominant() const override {
        return protocol_.current_winner();
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return protocol_.output_fraction(j);
    }

private:
    PopulationProtocol& protocol_;
    PairPolicy& policy_;
    Rng& rng_;
    std::size_t n_;
    std::uint64_t interactions_ = 0;
};

}  // namespace

PopulationResult run_population_with_policy(PopulationProtocol& protocol,
                                            PairPolicy& policy, Rng& rng,
                                            const PopulationRunOptions& options) {
    const auto n = static_cast<std::uint64_t>(protocol.population());
    PAPC_CHECK(n >= 2);

    std::uint64_t max_interactions = options.max_interactions;
    if (max_interactions == 0) {
        const double bound = 64.0 * static_cast<double>(n) *
                             std::log2(static_cast<double>(n));
        max_interactions = static_cast<std::uint64_t>(bound);
    }

    PopulationEngine engine(protocol, policy, rng);
    core::EngineOptions run_options;
    run_options.max_steps = max_interactions;
    run_options.check_every = options.check_every == 0 ? n : options.check_every;
    run_options.record_every = options.record_every;
    run_options.record = options.record_every > 0;
    run_options.plurality = options.plurality;
    run_options.epsilon = options.epsilon;
    run_options.series_name = protocol.name() + "@" + policy.name();
    return core::run(engine, run_options);
}

PopulationResult run_population(PopulationProtocol& protocol, Rng& rng,
                                const PopulationRunOptions& options) {
    UniformPairPolicy policy;
    return run_population_with_policy(protocol, policy, rng, options);
}

}  // namespace papc::population
