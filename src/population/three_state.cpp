#include "population/three_state.hpp"

#include "support/check.hpp"

namespace papc::population {

ThreeStateMajority::ThreeStateMajority(std::size_t a_count, std::size_t b_count,
                                       std::size_t blank_count) {
    const std::size_t n = a_count + b_count + blank_count;
    PAPC_CHECK(n >= 2);
    states_.reserve(n);
    states_.insert(states_.end(), a_count, State::kA);
    states_.insert(states_.end(), b_count, State::kB);
    states_.insert(states_.end(), blank_count, State::kBlank);
    count_a_ = a_count;
    count_b_ = b_count;
    count_blank_ = blank_count;
}

void ThreeStateMajority::set_state(NodeId v, State s) {
    const State old = states_[v];
    if (old == s) return;
    switch (old) {
        case State::kA: --count_a_; break;
        case State::kB: --count_b_; break;
        case State::kBlank: --count_blank_; break;
    }
    switch (s) {
        case State::kA: ++count_a_; break;
        case State::kB: ++count_b_; break;
        case State::kBlank: ++count_blank_; break;
    }
    states_[v] = s;
}

void ThreeStateMajority::interact(NodeId initiator, NodeId responder) {
    PAPC_CHECK(initiator != responder);
    const State x = states_[initiator];
    const State y = states_[responder];
    switch (x) {
        case State::kA:
            if (y == State::kB) set_state(responder, State::kBlank);
            else if (y == State::kBlank) set_state(responder, State::kA);
            break;
        case State::kB:
            if (y == State::kA) set_state(responder, State::kBlank);
            else if (y == State::kBlank) set_state(responder, State::kB);
            break;
        case State::kBlank:
            break;  // blank initiators do not influence anyone
    }
}

Opinion ThreeStateMajority::output_opinion(NodeId v) const {
    switch (states_[v]) {
        case State::kA: return 0;
        case State::kB: return 1;
        case State::kBlank: return kUndecided;
    }
    return kUndecided;
}

bool ThreeStateMajority::converged() const {
    const auto n = static_cast<std::uint64_t>(states_.size());
    return count_a_ == n || count_b_ == n;
}

Opinion ThreeStateMajority::current_winner() const {
    return count_a_ >= count_b_ ? 0U : 1U;
}

double ThreeStateMajority::output_fraction(Opinion j) const {
    const auto n = static_cast<double>(states_.size());
    if (j == 0) return static_cast<double>(count_a_) / n;
    if (j == 1) return static_cast<double>(count_b_) / n;
    return 0.0;
}

}  // namespace papc::population
