#pragma once

/// \file broadcast.hpp
/// Standalone simulation of the inter-leader broadcast (§4.2, Theorem 28):
/// one leader holds a message; at every Poisson tick each clustered node
/// contacts its own leader and the leaders of two random nodes, and any
/// informed leader among the three informs the other two (push-pull). The
/// theorem asserts O(1) time to inform all leaders of floor-sized clusters;
/// bench/exp_multi_leader and the tests measure this directly.

#include <cstdint>
#include <vector>

#include "cluster/clustering.hpp"
#include "sim/queue_kind.hpp"
#include "support/random.hpp"

namespace papc::cluster {

struct BroadcastResult {
    bool completed = false;       ///< all active leaders informed
    double time_to_all = 0.0;     ///< time until the last leader learned it
    double mean_inform_time = 0.0;
    std::size_t informed = 0;     ///< leaders informed at the end
    std::size_t total_leaders = 0;
};

/// Simulates the broadcast over an existing clustering. `source` is the
/// index of the initially informed cluster. `queue_kind` selects the
/// scheduler queue behind the event loop (results are identical for any
/// kind; only throughput differs).
[[nodiscard]] BroadcastResult run_broadcast(
    const ClusteringResult& clustering, std::size_t source, double lambda,
    double max_time, Rng& rng,
    sim::QueueKind queue_kind = sim::QueueKind::kBinaryHeap);

}  // namespace papc::cluster
