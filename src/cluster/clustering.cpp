#include "cluster/clustering.hpp"

#include <algorithm>
#include <cmath>

#include "sim/latency.hpp"
#include "sim/scheduler_queue.hpp"
#include "support/check.hpp"

namespace papc::cluster {

namespace {

enum class Phase : std::uint8_t {
    kGrowing,   ///< accepting until the floor is reached
    kPaused,    ///< floor reached; rejecting while counting the pause window
    kOpen,      ///< accepting again; counting towards the switch
    kSwitched,  ///< in consensus mode (broadcast source)
};

struct LeaderInfo {
    NodeId node = 0;
    Phase phase = Phase::kGrowing;
    std::uint64_t counter = 0;       ///< 0-signals since the last phase edge
    std::vector<NodeId> members;     ///< member 0 is the leader itself
    bool informed = false;           ///< has heard the consensus-mode message
    double informed_time = -1.0;
};

enum class EventKind : std::uint8_t {
    kTick,
    kJoinAttempt,   ///< latency-delayed completion of a join contact
    kZeroSignal,    ///< member 0-signal arriving at its leader
    kGossip,        ///< latency-delayed leader-gossip contact (broadcast)
};

struct EventPayload {
    EventKind kind = EventKind::kTick;
    NodeId node = 0;
    NodeId s1 = 0;
    NodeId s2 = 0;
    NodeId s3 = 0;
    std::int32_t leader = kNoCluster;  ///< for kZeroSignal: target cluster
};

}  // namespace

ClusteringResult run_clustering(std::size_t n, const ClusterConfig& config,
                                Rng& rng) {
    PAPC_CHECK(n >= 16);
    const std::size_t floor = config.resolved_floor(n);
    const double leader_prob = config.resolved_leader_probability(n);
    const double loglog = std::max(1.0, std::log2(std::log2(static_cast<double>(n))));
    const auto pause_count = static_cast<std::uint64_t>(
        std::ceil(config.pause_factor * static_cast<double>(floor) * loglog));
    const auto switch_count = static_cast<std::uint64_t>(
        std::ceil(config.switch_factor * static_cast<double>(floor) * loglog));

    const sim::ExponentialLatency latency(config.lambda);

    // Coin flips (at time 0; the theorem's proof notes this is equivalent to
    // flipping at the first tick).
    std::vector<std::int32_t> cluster_of(n, kNoCluster);
    std::vector<std::int32_t> leader_index_of(n, kNoCluster);  // node -> leader idx
    std::vector<LeaderInfo> leaders;
    for (NodeId v = 0; v < n; ++v) {
        if (rng.bernoulli(leader_prob)) {
            const auto idx = static_cast<std::int32_t>(leaders.size());
            LeaderInfo info;
            info.node = v;
            info.members.push_back(v);
            leaders.push_back(std::move(info));
            leader_index_of[v] = idx;
            cluster_of[v] = idx;
        }
    }

    ClusteringResult result;
    result.num_leaders = leaders.size();
    result.cluster_of.assign(n, kNoCluster);
    if (leaders.empty()) {
        // Degenerate (tiny n / tiny probability): report failure; caller
        // may retry with another seed or larger probability.
        result.completed = false;
        return result;
    }

    std::vector<bool> join_pending(n, false);
    // Join rank inside the cluster (leader = 0); only ranks < floor keep
    // sending 0-signals after the cluster reopens.
    std::vector<std::uint32_t> join_rank(n, 0);

    // Each node keeps a tick plus at most one join/signal/gossip event in
    // flight; reserve accordingly.
    auto queue =
        sim::make_scheduler_queue<EventPayload>(config.queue_kind, 2 * n);
    for (NodeId v = 0; v < n; ++v) {
        queue->push(rng.exponential(1.0),
                    EventPayload{EventKind::kTick, v, 0, 0, 0, kNoCluster});
    }

    auto accepting = [&](const LeaderInfo& info) {
        return info.phase == Phase::kGrowing || info.phase == Phase::kOpen;
    };

    bool broadcast_started = false;
    std::size_t uninformed = leaders.size();

    auto inform = [&](std::int32_t idx, double now) {
        LeaderInfo& info = leaders[static_cast<std::size_t>(idx)];
        if (info.informed) return;
        info.informed = true;
        info.informed_time = now;
        PAPC_CHECK(uninformed > 0);
        --uninformed;
        result.all_informed_time = now;
    };

    auto sample_node = [&] { return static_cast<NodeId>(rng.uniform_index(n)); };

    double now = 0.0;
    while (!queue->empty()) {
        auto entry = queue->pop();
        now = entry.time;
        if (now > config.clustering_max_time) break;
        if (broadcast_started && uninformed == 0) break;
        const EventPayload& ev = entry.payload;

        switch (ev.kind) {
            case EventKind::kTick: {
                const NodeId v = ev.node;
                const std::int32_t my_cluster = cluster_of[v];
                if (my_cluster != kNoCluster) {
                    // Member (or leader): 0-signal to the own leader, one
                    // latency away. Only the first `floor` members keep
                    // signalling (the paper equalizes counting rates).
                    if (join_rank[v] < floor) {
                        queue->push(now + latency.sample(rng),
                                    EventPayload{EventKind::kZeroSignal, v, 0,
                                                 0, 0, my_cluster});
                    }
                    // Broadcast gossip: contact the own leader and the
                    // leaders of two random nodes (§4.2).
                    if (broadcast_started) {
                        queue->push(
                            now + latency.sample(rng) + latency.sample(rng),
                            EventPayload{EventKind::kGossip, v, sample_node(),
                                         sample_node(), 0, my_cluster});
                    }
                } else if (!join_pending[v]) {
                    // Unassigned follower: try to join via three samples.
                    join_pending[v] = true;
                    const double channels = std::max(
                        {latency.sample(rng), latency.sample(rng), latency.sample(rng)});
                    queue->push(now + channels + latency.sample(rng),
                                EventPayload{EventKind::kJoinAttempt, v,
                                             sample_node(), sample_node(),
                                             sample_node(), kNoCluster});
                }
                queue->push(now + rng.exponential(1.0),
                            EventPayload{EventKind::kTick, v, 0, 0, 0,
                                         kNoCluster});
                break;
            }

            case EventKind::kJoinAttempt: {
                const NodeId v = ev.node;
                join_pending[v] = false;
                if (cluster_of[v] != kNoCluster) break;
                for (const NodeId s : {ev.s1, ev.s2, ev.s3}) {
                    const std::int32_t idx = cluster_of[s];
                    if (idx == kNoCluster) continue;
                    LeaderInfo& info = leaders[static_cast<std::size_t>(idx)];
                    if (!accepting(info)) continue;
                    join_rank[v] = static_cast<std::uint32_t>(info.members.size());
                    info.members.push_back(v);
                    cluster_of[v] = idx;
                    if (info.phase == Phase::kGrowing &&
                        info.members.size() >= floor) {
                        info.phase = Phase::kPaused;
                        info.counter = 0;
                    }
                    break;
                }
                break;
            }

            case EventKind::kZeroSignal: {
                PAPC_CHECK(ev.leader != kNoCluster);
                LeaderInfo& info = leaders[static_cast<std::size_t>(ev.leader)];
                if (info.phase == Phase::kPaused) {
                    if (++info.counter >= pause_count) {
                        info.phase = Phase::kOpen;
                        info.counter = 0;
                    }
                } else if (info.phase == Phase::kOpen) {
                    if (++info.counter >= switch_count) {
                        info.phase = Phase::kSwitched;
                        if (!broadcast_started) {
                            broadcast_started = true;
                            result.first_switch_time = now;
                        }
                        inform(ev.leader, now);
                    }
                }
                break;
            }

            case EventKind::kGossip: {
                // The member learned the leaders of two random nodes plus
                // its own; an informed leader among them informs the rest.
                std::int32_t contacted[3] = {ev.leader, cluster_of[ev.s1],
                                             cluster_of[ev.s2]};
                bool any_informed = false;
                for (const std::int32_t idx : contacted) {
                    if (idx != kNoCluster &&
                        leaders[static_cast<std::size_t>(idx)].informed) {
                        any_informed = true;
                        break;
                    }
                }
                if (any_informed) {
                    for (const std::int32_t idx : contacted) {
                        if (idx != kNoCluster) inform(idx, now);
                    }
                }
                break;
            }
        }
    }

    result.elapsed = now;
    result.completed = broadcast_started && uninformed == 0;

    // Active clusters: reached the floor by the time their leader was
    // informed (Theorem 27). Re-index them densely.
    std::vector<std::int32_t> dense_index(leaders.size(), kNoCluster);
    for (std::size_t i = 0; i < leaders.size(); ++i) {
        LeaderInfo& info = leaders[i];
        const bool active = info.informed && info.members.size() >= floor;
        if (!active) continue;
        dense_index[i] = static_cast<std::int32_t>(result.clusters.size());
        result.clusters.push_back(std::move(info.members));
    }
    for (NodeId v = 0; v < n; ++v) {
        const std::int32_t raw = cluster_of[v];
        result.cluster_of[v] =
            raw == kNoCluster ? kNoCluster : dense_index[static_cast<std::size_t>(raw)];
    }
    result.num_active = result.clusters.size();
    for (const auto& members : result.clusters) {
        result.nodes_in_active += members.size();
    }
    result.fraction_clustered =
        static_cast<double>(result.nodes_in_active) / static_cast<double>(n);
    return result;
}

}  // namespace papc::cluster
