#pragma once

/// \file clustering.hpp
/// The distributed clustering phase (§4.1, Theorem 27).
///
/// Every node flips a coin and becomes a cluster leader with small
/// probability; all other nodes are followers. At each Poisson tick an
/// unassigned follower samples three random nodes, learns their leaders'
/// addresses (a sampled leader returns itself) and, one channel-latency
/// later, joins the first sampled cluster that is accepting. Growth is
/// therefore proportional to current cluster size (the doubling argument in
/// the proof of Theorem 27). A cluster that reaches the participation floor
/// pauses (rejects joins) while its leader counts member 0-signals, then
/// reopens, and after a further counting window switches to consensus mode
/// and broadcasts this among the leaders (§4.2). Leaders whose cluster has
/// reached the floor when the broadcast arrives become *active*; everyone
/// else sits out the consensus phase.

#include <cstdint>
#include <vector>

#include "cluster/config.hpp"
#include "opinion/types.hpp"
#include "support/random.hpp"

namespace papc::cluster {

/// Sentinel for "not in any cluster".
inline constexpr std::int32_t kNoCluster = -1;

/// Outcome of the clustering phase.
struct ClusteringResult {
    /// Per node: index into `clusters`, or kNoCluster.
    std::vector<std::int32_t> cluster_of;
    /// Member lists (including the leader node itself, member 0) of all
    /// clusters that became active.
    std::vector<std::vector<NodeId>> clusters;

    std::size_t num_leaders = 0;       ///< self-elected leaders
    std::size_t num_active = 0;        ///< clusters that reached the floor
    std::size_t nodes_in_active = 0;   ///< nodes inside active clusters
    double fraction_clustered = 0.0;   ///< nodes_in_active / n

    double first_switch_time = -1.0;   ///< t_f: first leader in consensus mode
    double all_informed_time = -1.0;   ///< t_l: last leader informed
    double elapsed = 0.0;              ///< total clustering-phase time
    bool completed = false;            ///< broadcast finished before the cap
};

/// Runs the clustering phase for n nodes.
[[nodiscard]] ClusteringResult run_clustering(std::size_t n,
                                              const ClusterConfig& config,
                                              Rng& rng);

}  // namespace papc::cluster
