#include "cluster/broadcast.hpp"

#include <algorithm>

#include "sim/latency.hpp"
#include "sim/scheduler_queue.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace papc::cluster {

namespace {

enum class EventKind : std::uint8_t { kTick, kContact };

struct EventPayload {
    EventKind kind = EventKind::kTick;
    NodeId node = 0;
    NodeId s1 = 0;
    NodeId s2 = 0;
};

}  // namespace

BroadcastResult run_broadcast(const ClusteringResult& clustering,
                              std::size_t source, double lambda,
                              double max_time, Rng& rng,
                              sim::QueueKind queue_kind) {
    PAPC_CHECK(source < clustering.clusters.size());
    const std::size_t n = clustering.cluster_of.size();
    const std::size_t num_clusters = clustering.clusters.size();
    const sim::ExponentialLatency latency(lambda);

    std::vector<bool> informed(num_clusters, false);
    std::vector<double> inform_time(num_clusters, -1.0);
    informed[source] = true;
    inform_time[source] = 0.0;
    std::size_t informed_count = 1;

    // Every clustered node keeps a tick plus at most one contact in
    // flight; reserve accordingly.
    auto queue = sim::make_scheduler_queue<EventPayload>(queue_kind, 2 * n);
    for (NodeId v = 0; v < n; ++v) {
        if (clustering.cluster_of[v] == kNoCluster) continue;  // passive
        queue->push(rng.exponential(1.0), EventPayload{EventKind::kTick, v, 0, 0});
    }

    auto sample_node = [&] { return static_cast<NodeId>(rng.uniform_index(n)); };

    double now = 0.0;
    while (!queue->empty() && informed_count < num_clusters) {
        auto entry = queue->pop();
        now = entry.time;
        if (now > max_time) break;
        const EventPayload& ev = entry.payload;

        switch (ev.kind) {
            case EventKind::kTick: {
                // Channels: own leader + two random nodes + their leaders;
                // dominated by two latency rounds (§4.2: T2'' ≼ 5·T2).
                const double delay =
                    std::max({latency.sample(rng), latency.sample(rng),
                              latency.sample(rng)}) +
                    std::max(latency.sample(rng), latency.sample(rng));
                queue->push(now + delay, EventPayload{EventKind::kContact, ev.node,
                                                      sample_node(), sample_node()});
                queue->push(now + rng.exponential(1.0),
                            EventPayload{EventKind::kTick, ev.node, 0, 0});
                break;
            }
            case EventKind::kContact: {
                const std::int32_t own = clustering.cluster_of[ev.node];
                const std::int32_t l1 = clustering.cluster_of[ev.s1];
                const std::int32_t l2 = clustering.cluster_of[ev.s2];
                const std::int32_t contacted[3] = {own, l1, l2};
                bool any = false;
                for (const std::int32_t c : contacted) {
                    if (c != kNoCluster && informed[static_cast<std::size_t>(c)]) {
                        any = true;
                        break;
                    }
                }
                if (any) {
                    for (const std::int32_t c : contacted) {
                        if (c == kNoCluster) continue;
                        const auto idx = static_cast<std::size_t>(c);
                        if (!informed[idx]) {
                            informed[idx] = true;
                            inform_time[idx] = now;
                            ++informed_count;
                        }
                    }
                }
                break;
            }
        }
    }

    BroadcastResult result;
    result.total_leaders = num_clusters;
    result.informed = informed_count;
    result.completed = informed_count == num_clusters;
    RunningStat times;
    double last = 0.0;
    for (std::size_t c = 0; c < num_clusters; ++c) {
        if (inform_time[c] >= 0.0) {
            times.add(inform_time[c]);
            last = std::max(last, inform_time[c]);
        }
    }
    result.time_to_all = last;
    result.mean_inform_time = times.mean();
    return result;
}

}  // namespace papc::cluster
