#include "cluster/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/latency_units.hpp"
#include "analysis/theory.hpp"
#include "core/observer.hpp"
#include "sim/windowed_executor.hpp"
#include "support/check.hpp"

namespace papc::cluster {

enum class ClusterEventKind : std::uint8_t {
    kTick,
    kExchange,
    kSignal,     ///< member signal arriving at its own leader
    kAdopt,      ///< finished node pushing its final opinion to a sample
};

struct ClusterEvent {
    ClusterEventKind kind = ClusterEventKind::kTick;
    NodeId node = 0;
    NodeId s1 = 0;
    NodeId s2 = 0;
    NodeId s3 = 0;
    std::int32_t cluster = kNoCluster;  ///< kSignal target
    Generation sig_i = 0;
    LeaderState sig_s = LeaderState::kTwoChoices;
    bool sig_changed = false;
    Opinion col = 0;                    ///< kAdopt payload
};

MultiLeaderSimulation::MultiLeaderSimulation(const Assignment& assignment,
                                             ClusteringResult clustering,
                                             const ClusterConfig& config,
                                             std::uint64_t seed)
    : config_(config),
      clustering_(std::move(clustering)),
      rng_(seed),
      latency_(config.lambda),
      census_(assignment.size(), assignment.num_opinions) {
    const std::size_t n = assignment.size();
    PAPC_CHECK(clustering_.cluster_of.size() == n);

    members_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
        members_[v].col = assignment.opinions[v];
        members_[v].gen = 0;
        members_[v].finished = false;
        members_[v].locked = false;
        members_[v].tmp_gen = 1;
        members_[v].tmp_state = LeaderState::kTwoChoices;
    }
    census_.reset(assignment.opinions);
    plurality_ = census_.pooled_stats().dominant;

    // Measure C1 for the 5-channel member exchange (three samples, then the
    // own leader and the sampled leader concurrently); Monte Carlo,
    // deterministic given the seed.
    Rng c1_rng = rng_.split();
    const double steps_per_unit =
        analysis::cluster_exchange_quantile_monte_carlo(latency_, 0.9, 20000,
                                                        c1_rng);

    max_generation_ = analysis::total_generations(
        std::max(config_.alpha_hint, 1.0 + 1e-9), census_.num_opinions(), n,
        config_.generation_slack);

    leaders_.reserve(clustering_.clusters.size());
    for (const auto& cluster_members : clustering_.clusters) {
        ClusterLeaderConfig lc;
        lc.cardinality = cluster_members.size();
        const double card = static_cast<double>(lc.cardinality);
        lc.sleep_threshold = static_cast<std::uint64_t>(
            std::ceil(config_.sleep_units * steps_per_unit * card));
        lc.prop_threshold = static_cast<std::uint64_t>(
            std::ceil(config_.prop_units * steps_per_unit * card));
        lc.generation_size_threshold = static_cast<std::uint64_t>(
            std::ceil(config_.generation_size_fraction * card));
        lc.max_generation = max_generation_;
        leaders_.push_back(std::make_unique<ClusterLeader>(lc));
    }

    alive_.assign(leaders_.size(), true);
    failure_injected_ = config_.leader_failure_time < 0.0;
    load_bucket_.assign(leaders_.size(), -1);
    load_count_.assign(leaders_.size(), 0);
}

MultiLeaderSimulation::~MultiLeaderSimulation() = default;

std::size_t MultiLeaderSimulation::leader_shard(std::size_t cluster) const {
    return cluster % executor_->num_shards();
}

void MultiLeaderSimulation::mark_finished(ShardScratch& scratch, NodeId v) {
    if (!members_[v].finished) {
        members_[v].finished = true;
        ++scratch.finished;
    }
}

void MultiLeaderSimulation::adopt_finished(ShardScratch& scratch, NodeId v,
                                           Opinion col) {
    MemberState& m = members_[v];
    if (m.finished) return;
    if (m.col != col) {
        scratch.moves.push_back(CensusMove{m.gen, m.col, m.gen, col});
        m.col = col;
    }
    mark_finished(scratch, v);
    ++scratch.adoptions;
}

void MultiLeaderSimulation::maybe_inject_failure() {
    if (failure_injected_ || now_ < config_.leader_failure_time) return;
    failure_injected_ = true;
    const auto to_kill = static_cast<std::size_t>(
        config_.leader_failure_fraction * static_cast<double>(leaders_.size()));
    std::vector<std::size_t> order(leaders_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng_.shuffle(order);
    for (std::size_t i = 0; i < to_kill && i < order.size(); ++i) {
        alive_[order[i]] = false;
    }
}

void MultiLeaderSimulation::record_leader_signal(ShardScratch& scratch,
                                                 std::size_t cluster,
                                                 double time) {
    ++scratch.signals;
    const auto bucket = static_cast<std::int64_t>(time);
    if (bucket != load_bucket_[cluster]) {
        scratch.peak_load = std::max(
            scratch.peak_load, static_cast<double>(load_count_[cluster]));
        load_bucket_[cluster] = bucket;
        load_count_[cluster] = 0;
    }
    ++load_count_[cluster];
}

void MultiLeaderSimulation::begin_window() {
    members_snap_ = members_;
    leader_snap_.resize(leaders_.size());
    for (std::size_t c = 0; c < leaders_.size(); ++c) {
        leader_snap_[c].gen = leaders_[c]->gen();
        leader_snap_[c].state = leaders_[c]->state();
    }
}

void MultiLeaderSimulation::commit_window() {
    for (ShardScratch& scratch : scratch_) {
        for (const CensusMove& move : scratch.moves) {
            census_.transition(move.old_gen, move.old_col, move.new_gen,
                               move.new_col);
        }
        scratch.moves.clear();
    }
}

bool MultiLeaderSimulation::advance() {
    if (executor_->empty()) return false;
    begin_window();
    const bool ran = executor_->run_window(
        [this](sim::WindowedExecutor<ClusterEvent>::ShardContext& ctx, double t,
               ClusterEvent& ev) {
            ShardScratch& scratch = scratch_[ctx.shard()];
            Rng& rng = ctx.rng();
            const auto sample_peer = [&](NodeId self) {
                return static_cast<NodeId>(
                    rng.uniform_index_excluding(members_.size(), self));
            };
            switch (ev.kind) {
                case ClusterEventKind::kTick: {
                    ++scratch.ticks;
                    const NodeId v = ev.node;
                    MemberState& m = members_[v];
                    // A crashed member signals nothing and starts nothing;
                    // its clock keeps running so it resumes on recovery.
                    if (crash_on_ && injector_->is_down(v, t)) {
                        ++scratch.crash_skips;
                        ClusterEvent next;
                        next.kind = ClusterEventKind::kTick;
                        next.node = v;
                        ctx.emit(ctx.shard(), t + rng.exponential(1.0), next);
                        break;
                    }
                    const std::int32_t my_cluster = clustering_.cluster_of[v];
                    // Line 1: clustered members signal their leader each
                    // tick (owned by the leader's shard).
                    if (my_cluster != kNoCluster) {
                        ClusterEvent sig;
                        sig.kind = ClusterEventKind::kSignal;
                        sig.cluster = my_cluster;
                        sig.sig_i = 0;
                        sig.sig_s = LeaderState::kPropagation;  // ignored, i == 0
                        sig.sig_changed = false;
                        ctx.emit_message(
                            leader_shard(static_cast<std::size_t>(my_cluster)),
                            t, t + latency_.sample(rng), sig);
                    }
                    // Line 2-3: lock and open channels.
                    if (!m.locked) {
                        m.locked = true;
                        const double stage1 =
                            std::max({latency_.sample(rng), latency_.sample(rng),
                                      latency_.sample(rng)});
                        const double stage2 =
                            std::max(latency_.sample(rng), latency_.sample(rng));
                        ClusterEvent ex;
                        ex.kind = ClusterEventKind::kExchange;
                        ex.node = v;
                        ex.s1 = sample_peer(v);
                        ex.s2 = sample_peer(v);
                        ex.s3 = sample_peer(v);
                        ctx.emit(ctx.shard(), t + stage1 + stage2, ex);
                    }
                    ClusterEvent next;
                    next.kind = ClusterEventKind::kTick;
                    next.node = v;
                    ctx.emit(ctx.shard(), t + rng.exponential(1.0), next);
                    break;
                }

                case ClusterEventKind::kExchange: {
                    const NodeId v = ev.node;
                    MemberState& m = members_[v];
                    PAPC_CHECK(m.locked);
                    // A member down when its channels complete abandons the
                    // exchange: no reads, no writes, no signal.
                    if (crash_on_ && injector_->is_down(v, t)) {
                        ++scratch.crash_skips;
                        m.locked = false;
                        break;
                    }
                    ++scratch.exchanges;
                    const std::int32_t my_cluster = clustering_.cluster_of[v];

                    if (m.finished) {
                        // Line 5: push the final opinion to all samples.
                        // Remote members belong to other shards, so the
                        // pushes travel as kAdopt events (corruptible: a
                        // flipped push adopts a uniformly random opinion).
                        const std::uint32_t k = census_.num_opinions();
                        for (const NodeId s : {ev.s1, ev.s2, ev.s3}) {
                            ClusterEvent adopt;
                            adopt.kind = ClusterEventKind::kAdopt;
                            adopt.node = s;
                            adopt.col = m.col;
                            ctx.emit_message(
                                executor_->shard_of(s), t, t, adopt,
                                [k](Rng& fault_rng, ClusterEvent& msg) {
                                    msg.col = static_cast<Opinion>(
                                        fault_rng.uniform_index(k));
                                });
                        }
                        m.locked = false;
                        break;
                    }
                    // Lines 6-7: pull the final opinion from a finished
                    // sample (window-start snapshot).
                    const NodeId samples[3] = {ev.s1, ev.s2, ev.s3};
                    bool adopted_final = false;
                    for (const NodeId s : samples) {
                        if (members_snap_[s].finished) {
                            adopt_finished(scratch, v, members_snap_[s].col);
                            adopted_final = true;
                            break;
                        }
                    }
                    if (adopted_final || my_cluster == kNoCluster) {
                        // Passive nodes participate only in the finished
                        // epidemic; clustered nodes are done for this
                        // exchange.
                        m.locked = false;
                        break;
                    }

                    // Line 8: the sampled node must belong to an active
                    // cluster whose leader is still alive (alive_ only
                    // changes between windows).
                    const std::int32_t l_cluster = clustering_.cluster_of[ev.s3];
                    if (l_cluster == kNoCluster ||
                        !alive_[static_cast<std::size_t>(l_cluster)]) {
                        m.locked = false;
                        break;
                    }
                    const LeaderSnap& l =
                        leader_snap_[static_cast<std::size_t>(l_cluster)];
                    const MemberView v1{members_snap_[ev.s1].gen,
                                        members_snap_[ev.s1].col};
                    const MemberView v2{members_snap_[ev.s2].gen,
                                        members_snap_[ev.s2].col};
                    const MemberDecision d =
                        decide_member_exchange(m, l.gen, l.state, v1, v2);

                    if (d.kind != MemberDecision::Kind::kNone) {
                        PAPC_CHECK(d.new_gen > m.gen);
                        scratch.moves.push_back(
                            CensusMove{m.gen, m.col, d.new_gen, d.new_col});
                        m.gen = d.new_gen;
                        m.col = d.new_col;
                        if (d.kind == MemberDecision::Kind::kTwoChoices) {
                            ++scratch.two_choices;
                        } else {
                            ++scratch.propagation;
                        }
                        // Line 20: the last generation carries the final
                        // opinion.
                        if (m.gen >= max_generation_) mark_finished(scratch, v);
                    }
                    // Lines 12/16/18: signal the own leader (one latency
                    // away, on the leader's shard).
                    {
                        ClusterEvent sig;
                        sig.kind = ClusterEventKind::kSignal;
                        sig.cluster = my_cluster;
                        sig.sig_i = d.signal.i;
                        sig.sig_s = d.signal.s;
                        sig.sig_changed = d.signal.has_changed;
                        // Corruption rewrites the counted generation downward
                        // (always protocol-legal: leaders accept any i <= gen).
                        ctx.emit_message(
                            leader_shard(static_cast<std::size_t>(my_cluster)),
                            t, t + latency_.sample(rng), sig,
                            [](Rng& fault_rng, ClusterEvent& msg) {
                                msg.sig_i = static_cast<Generation>(
                                    fault_rng.uniform_index(msg.sig_i + 1));
                            });
                    }
                    // Line 19: refresh tmp_* from the own leader (contacted
                    // concurrently during this exchange); if the own leader
                    // has crashed, fail over to the sampled leader's state.
                    // Both reads are window-start snapshots.
                    if (alive_[static_cast<std::size_t>(my_cluster)]) {
                        const LeaderSnap& own =
                            leader_snap_[static_cast<std::size_t>(my_cluster)];
                        m.tmp_gen = own.gen;
                        m.tmp_state = own.state;
                    } else {
                        m.tmp_gen = l.gen;
                        m.tmp_state = l.state;
                    }
                    m.locked = false;
                    break;
                }

                case ClusterEventKind::kSignal: {
                    PAPC_CHECK(ev.cluster != kNoCluster);
                    const auto idx = static_cast<std::size_t>(ev.cluster);
                    if (!alive_[idx]) break;  // crashed leaders drop signals
                    record_leader_signal(scratch, idx, t);
                    leaders_[idx]->on_signal(t, ev.sig_i, ev.sig_s,
                                             ev.sig_changed);
                    break;
                }

                case ClusterEventKind::kAdopt:
                    // A down target cannot process the push.
                    if (crash_on_ && injector_->is_down(ev.node, t)) {
                        ++scratch.crash_skips;
                        break;
                    }
                    adopt_finished(scratch, ev.node, ev.col);
                    break;
            }
        });
    commit_window();
    now_ = executor_->now();
    return ran;
}

MultiLeaderResult MultiLeaderSimulation::run() {
    PAPC_CHECK(!ran_);
    ran_ = true;

    const std::size_t n = members_.size();
    result_.clustering = clustering_;
    result_.clustering_time = clustering_.elapsed;

    // Fault layer. Leader crashes keep the observer-driven §4 knobs
    // (maybe_inject_failure); the plan covers member crashes and message
    // faults. Derived via pure substream: rng_ is not advanced, so an
    // all-zero plan is byte-identical to no plan.
    if (config_.fault.active()) {
        injector_ = std::make_unique<fault::Injector>(config_.fault, n,
                                                      config_.max_time, rng_);
        crash_on_ = injector_->crash_active();
        result_.nodes_crashed = injector_->nodes_crashed();
    }

    // Windowed executor: pending events stay near 2 per node (next tick +
    // in-flight exchange/signal).
    sim::WindowedOptions executor_options;
    executor_options.shards = config_.event_shards;
    executor_options.threads = config_.threads;
    executor_options.window = config_.window;
    executor_options.lambda = config_.lambda;
    executor_options.queue_kind = config_.queue_kind;
    executor_options.reserve_hint = 2 * n;
    executor_options.injector = injector_.get();
    executor_ = std::make_unique<sim::WindowedExecutor<ClusterEvent>>(
        n, executor_options, rng_.split());
    scratch_.resize(executor_->num_shards());

    for (NodeId v = 0; v < n; ++v) {
        ClusterEvent tick;
        tick.kind = ClusterEventKind::kTick;
        tick.node = v;
        executor_->seed(executor_->shard_of(v), rng_.exponential(1.0), tick);
    }

    core::EngineOptions run_options;
    run_options.max_time = config_.max_time;
    run_options.sample_interval = config_.sample_interval;
    run_options.record = config_.record_series;
    run_options.plurality = plurality_;
    run_options.epsilon = config_.epsilon;
    // Failure injection fires at the sampling cadence, like the old
    // metronome did (between windows: shards never observe a mid-window
    // crash).
    core::FunctionObserver observer(
        [this](double, double) { maybe_inject_failure(); });
    static_cast<core::RunResult&>(result_) =
        core::run(*this, run_options, &observer);

    std::uint64_t finished_count = 0;
    for (const ShardScratch& scratch : scratch_) {
        result_.ticks += scratch.ticks;
        result_.exchanges += scratch.exchanges;
        result_.two_choices_count += scratch.two_choices;
        result_.propagation_count += scratch.propagation;
        result_.finished_adoptions += scratch.adoptions;
        result_.signals_delivered += scratch.signals;
        result_.leader_peak_load =
            std::max(result_.leader_peak_load, scratch.peak_load);
        finished_count += scratch.finished;
        result_.faults.crash_skips += scratch.crash_skips;
    }
    {
        const fault::FaultCounters& mf = executor_->fault_counters();
        result_.faults.lost += mf.lost;
        result_.faults.duplicated += mf.duplicated;
        result_.faults.corrupted += mf.corrupted;
        result_.faults.delayed += mf.delayed;
    }
    for (const std::uint64_t pending : load_count_) {
        result_.leader_peak_load =
            std::max(result_.leader_peak_load, static_cast<double>(pending));
    }
    result_.events_processed = executor_->events_processed();
    result_.windows = executor_->windows_run();
    result_.window_stragglers = executor_->stragglers();
    result_.final_top_generation = census_.highest_populated();
    result_.finished_fraction =
        static_cast<double>(finished_count) / static_cast<double>(n);
    result_.leader_traces.reserve(leaders_.size());
    for (const auto& l : leaders_) {
        result_.leader_traces.push_back(l->trace());
    }
    return std::move(result_);
}

MultiLeaderResult run_multi_leader(std::size_t n, std::uint32_t k, double alpha,
                                   const ClusterConfig& config,
                                   std::uint64_t seed) {
    Rng workload_rng(derive_seed(seed, 0xC1A0));
    const Assignment assignment = make_biased_plurality(n, k, alpha, workload_rng);
    Rng clustering_rng(derive_seed(seed, 0xC1A1));
    ClusteringResult clustering = run_clustering(n, config, clustering_rng);
    MultiLeaderSimulation simulation(assignment, std::move(clustering), config,
                                     derive_seed(seed, 0xC1A2));
    return simulation.run();
}

}  // namespace papc::cluster
