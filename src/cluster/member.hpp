#pragma once

/// \file member.hpp
/// Per-member state and the pure exchange rule of Algorithm 4 (consensus
/// phase of the decentralized protocol). Mirrors async/node.hpp: the
/// decision logic is a pure function, the event wiring lives in
/// cluster/simulation.cpp.

#include <cstdint>

#include "cluster/cluster_leader.hpp"
#include "opinion/types.hpp"

namespace papc::cluster {

/// Mutable consensus-phase state of a clustered node (Algorithm 4).
struct MemberState {
    Opinion col = 0;
    Generation gen = 0;
    bool finished = false;
    bool locked = false;
    /// tmp_gen / tmp_state (line 19): leader state stored at the last
    /// completed exchange with the *own* leader.
    Generation tmp_gen = 1;
    LeaderState tmp_state = LeaderState::kTwoChoices;
};

/// Snapshot of a sampled node.
struct MemberView {
    Generation gen = 0;
    Opinion col = 0;
};

/// Signal (i, s, hasChanged) destined for the member's own leader.
struct MemberSignal {
    Generation i = 0;
    LeaderState s = LeaderState::kTwoChoices;
    bool has_changed = false;
};

/// Outcome of one Algorithm-4 exchange (lines 9–18, given that neither the
/// member nor any sample is `finished` and the sampled leader is active).
struct MemberDecision {
    enum class Kind : std::uint8_t {
        kNone,         ///< out of sync with the sampled leader; no action
        kTwoChoices,   ///< promoted via line 13-16
        kPropagation,  ///< promoted via line 9-12
    };
    Kind kind = Kind::kNone;
    Opinion new_col = 0;
    Generation new_gen = 0;
    MemberSignal signal;  ///< always sent (lines 12, 16, 18)
};

/// Evaluates the promotion rules against the leader `l` of the third
/// sample. The in_sync(·) gate compares the member's stored
/// (tmp_gen, tmp_state) — refreshed from its own leader every exchange —
/// with l's current public state; as in Algorithm 2 this prevents
/// two-choices and propagation promotions into one generation from
/// interleaving. Propagation follows the Algorithm-2 rule referenced by
/// §4.4: a strictly higher-generation sample may be adopted when its
/// generation is below the leader's, or when the leader's state is
/// propagation.
[[nodiscard]] MemberDecision decide_member_exchange(const MemberState& v,
                                                    Generation l_gen,
                                                    LeaderState l_state,
                                                    const MemberView& v1,
                                                    const MemberView& v2);

}  // namespace papc::cluster
