#include "cluster/member.hpp"

#include "support/check.hpp"

namespace papc::cluster {

MemberDecision decide_member_exchange(const MemberState& v, Generation l_gen,
                                      LeaderState l_state, const MemberView& v1,
                                      const MemberView& v2) {
    MemberDecision d;
    // Gossip by default: report the observed leader state to the own leader
    // (line 18); overwritten below on promotions.
    d.signal = MemberSignal{l_gen, l_state, false};

    // in_sync gate: stored own-leader state must match the sampled leader's
    // current state. Out-of-sync members only gossip.
    if (v.tmp_gen != l_gen || v.tmp_state != l_state) {
        d.kind = MemberDecision::Kind::kNone;
        return d;
    }

    // Two-choices (lines 13–16): both samples one generation below the
    // leader's, agreeing on a color, while the leader still runs the
    // two-choices window.
    if (l_state == LeaderState::kTwoChoices && l_gen >= 1 &&
        v1.gen == l_gen - 1 && v2.gen == l_gen - 1 && v1.col == v2.col &&
        v.gen < l_gen) {
        d.kind = MemberDecision::Kind::kTwoChoices;
        d.new_col = v1.col;
        d.new_gen = l_gen;
        d.signal = MemberSignal{d.new_gen, LeaderState::kTwoChoices, true};
        return d;
    }

    // Propagation (lines 9–12, with the Algorithm-2 catch-up rule):
    // adopt a strictly higher-generation sample when that generation is
    // below the leader's (catch-up) or the leader allows propagation.
    const MemberView* chosen = nullptr;
    auto eligible = [&](const MemberView& p) {
        return v.gen < p.gen &&
               (p.gen < l_gen || l_state == LeaderState::kPropagation);
    };
    if (eligible(v1)) chosen = &v1;
    if (eligible(v2) && (chosen == nullptr || v2.gen > chosen->gen)) chosen = &v2;
    if (chosen != nullptr) {
        d.kind = MemberDecision::Kind::kPropagation;
        d.new_col = chosen->col;
        d.new_gen = chosen->gen;
        d.signal = MemberSignal{d.new_gen, LeaderState::kPropagation, true};
        return d;
    }

    d.kind = MemberDecision::Kind::kNone;
    return d;
}

}  // namespace papc::cluster
