#pragma once

/// \file config.hpp
/// Parameters of the decentralized multi-leader protocol (§4). The paper's
/// constants are asymptotic (cluster floor log^(c-1) n, leader probability
/// 1/log^c n, counting thresholds c2/c3·floor·loglog n); the defaults here
/// are tuned so the protocol exhibits the analyzed behaviour at
/// simulation-scale n (2^10 .. 2^20). All are configurable.

#include <cmath>
#include <cstdint>

#include "fault/plan.hpp"
#include "sim/queue_kind.hpp"

namespace papc::cluster {

struct ClusterConfig {
    // ----------------------------------------------------------- clustering
    /// Participation floor: clusters must reach this size to take part in
    /// the consensus phase (paper: log^(c-1) n). 0 = derive from n as
    /// max(8, (log2 n)^1.5).
    std::size_t size_floor = 0;

    /// Probability that a node elects itself cluster leader (paper:
    /// 1/log^c n). 0 = derive as 1/(4·size_floor) so the mean final cluster
    /// size is ≈ 4·floor.
    double leader_probability = 0.0;

    /// Pause window after reaching the floor, counted in 0-signals per
    /// cluster member of the first `floor` members (paper:
    /// c2·floor·loglog n). Expressed as a multiple of floor·loglog2(n).
    double pause_factor = 1.0;

    /// Additional 0-signals after the pause before the leader switches to
    /// consensus mode (paper: c3·floor·loglog n), same units.
    double switch_factor = 2.0;

    /// Hard cap on the clustering phase (time steps).
    double clustering_max_time = 400.0;

    // ------------------------------------------------------------ consensus
    /// Latency rate λ of the Exponential(λ) channel model.
    double lambda = 1.0;

    /// Assumed initial bias (known to nodes, §3.2).
    double alpha_hint = 1.5;

    /// Leader tick-counter thresholds, in *time units* relative to the birth
    /// of the leader's current generation: the two-choices window ends
    /// (sleeping starts) after `sleep_units`, propagation opens after
    /// `prop_units` (paper: C2 = Cbr+1+2/C1, C3 = 2Cbr+1+5/C1 — broadcast
    /// plus slack; defaults chosen empirically).
    double sleep_units = 2.0;
    double prop_units = 3.0;

    /// Per-cluster generation-size gate as a fraction of the cluster
    /// cardinality (paper: 1/2 + 1/√log n).
    double generation_size_fraction = 0.55;

    /// Extra generations beyond the closed-form G*.
    unsigned generation_slack = 2;

    /// Hard cap on the consensus phase (time steps).
    double max_time = 5000.0;

    double epsilon = 0.02;
    double sample_interval = 0.25;
    bool record_series = true;

    /// Adversarial failure injection (§4: resilience against limited
    /// attacks): at `leader_failure_time` a uniformly random
    /// `leader_failure_fraction` of the active cluster leaders crash.
    /// Crashed leaders stop answering: sampled members treat them like
    /// inactive clusters, their signals are dropped, and their own members
    /// fail over to refreshing tmp_* from the sampled leader instead.
    /// Negative time = no failure.
    double leader_failure_time = -1.0;
    double leader_failure_fraction = 0.0;

    /// Fault & adversary plan (src/fault/plan.hpp): message loss /
    /// duplication / corruption / stragglers on the consensus phase's
    /// signal and adopt messages, plus member crash + recover. Leader
    /// crashes keep the dedicated observer-driven knobs above (they model
    /// the paper's §4 attack); the plan's scheduled_crashes address
    /// ordinary members. An all-zero plan is byte-identical to no plan.
    fault::FaultPlan fault;

    /// Scheduler-queue implementation behind both event loops (clustering
    /// phase and consensus phase). All kinds pop in identical (time, seq)
    /// order, so for a fixed seed this knob changes throughput only, never
    /// results. Prefer kCalendar or kLadder for n >> 2^16 pending events.
    sim::QueueKind queue_kind = sim::QueueKind::kBinaryHeap;

    /// Worker threads of the consensus phase's windowed executor. Results
    /// are bit-identical at every thread count; only throughput changes.
    /// (The clustering pre-phase stays single-queue: it is short and its
    /// leader-election writes are global.)
    std::size_t threads = 1;

    /// Conservative window width delta of the windowed executor, in time
    /// units. <= 0 derives sim::default_window(lambda). Part of the
    /// trajectory: two runs only reproduce each other with equal windows.
    double window = 0.0;

    /// Shard count of the windowed executor (0 = default). Part of the
    /// trajectory; never auto-scaled.
    std::size_t event_shards = 0;

    /// Resolved floor for population n.
    [[nodiscard]] std::size_t resolved_floor(std::size_t n) const {
        if (size_floor > 0) return size_floor;
        const double lg = std::log2(static_cast<double>(n));
        const auto derived = static_cast<std::size_t>(std::pow(lg, 1.5));
        return derived < 8 ? 8 : derived;
    }

    /// Resolved leader probability for population n.
    [[nodiscard]] double resolved_leader_probability(std::size_t n) const {
        if (leader_probability > 0.0) return leader_probability;
        return 1.0 / (4.0 * static_cast<double>(resolved_floor(n)));
    }
};

}  // namespace papc::cluster
