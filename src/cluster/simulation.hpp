#pragma once

/// \file simulation.hpp
/// The full decentralized protocol (§4): clustering phase (Theorem 27) +
/// consensus phase (Algorithms 4 + 5, Theorem 26). Nodes in active clusters
/// execute Algorithm 4; everyone else is passive and receives the outcome
/// through the `finished` flag propagation (Algorithm 4 lines 5–7).
/// The run loop (budgets, sampling, ε/consensus detection) is owned by
/// core::run(); failure injection piggybacks on the driver's sample hook.

#include <memory>
#include <vector>

#include "cluster/cluster_leader.hpp"
#include "cluster/clustering.hpp"
#include "cluster/config.hpp"
#include "cluster/member.hpp"
#include "core/engine.hpp"
#include "core/run_result.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "sim/latency.hpp"
#include "sim/scheduler_queue.hpp"
#include "support/random.hpp"
#include "support/timeseries.hpp"

namespace papc::cluster {

/// Aggregate outcome of one full multi-leader run. The unified convergence
/// semantics live in the core::RunResult base (the consensus-phase clock,
/// starting at 0); the fields below are clustering and §4.5 accounting.
struct MultiLeaderResult : core::RunResult {
    // Clustering phase.
    ClusteringResult clustering;
    double clustering_time = 0.0;

    // Consensus phase accounting.
    double finished_fraction = 0.0;  ///< nodes with the finished flag at end

    std::uint64_t ticks = 0;
    std::uint64_t exchanges = 0;
    std::uint64_t two_choices_count = 0;
    std::uint64_t propagation_count = 0;
    std::uint64_t finished_adoptions = 0;

    Generation final_top_generation = 0;

    // §4.5 complexity accounting: the load is spread over all cluster
    // leaders (vs Θ(n) per step on the single leader).
    std::uint64_t signals_delivered = 0;  ///< all signals at any leader
    double leader_peak_load = 0.0;        ///< max signals/step at one leader

    /// Per-active-cluster leader traces (Figure 2 source data).
    std::vector<std::vector<ClusterLeaderTransition>> leader_traces;

    /// Total time: clustering + consensus phases.
    [[nodiscard]] double total_time() const {
        return clustering_time + (consensus_time >= 0.0 ? consensus_time : end_time);
    }
};

/// One event of the multi-leader simulation (defined in the .cpp).
struct ClusterEvent;

/// Runs the consensus phase over an existing clustering.
class MultiLeaderSimulation final : public core::Engine {
public:
    MultiLeaderSimulation(const Assignment& assignment,
                          ClusteringResult clustering,
                          const ClusterConfig& config, std::uint64_t seed);

    ~MultiLeaderSimulation() override;

    /// Runs to full consensus (or config.max_time). Clustering fields of
    /// the result are copied from the provided clustering.
    [[nodiscard]] MultiLeaderResult run();

    // core::Engine driver interface (one event per advance).
    bool advance() override;
    [[nodiscard]] double now() const override { return now_; }
    [[nodiscard]] bool converged() const override { return census_.converged(); }
    [[nodiscard]] Opinion dominant() const override {
        return census_.pooled_stats().dominant;
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return census_.opinion_fraction(j);
    }

    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const MemberState& member(NodeId v) const { return members_[v]; }
    [[nodiscard]] const ClusterLeader& leader(std::size_t c) const {
        return *leaders_[c];
    }
    [[nodiscard]] std::size_t num_clusters() const { return leaders_.size(); }

private:
    [[nodiscard]] NodeId sample_peer(NodeId self);
    void mark_finished(NodeId v);
    void adopt_finished(NodeId v, Opinion col);
    void maybe_inject_failure();
    void record_leader_signal(std::size_t cluster);

    ClusterConfig config_;
    ClusteringResult clustering_;
    Rng rng_;
    sim::ExponentialLatency latency_;
    std::vector<MemberState> members_;
    std::vector<std::unique_ptr<ClusterLeader>> leaders_;
    GenerationCensus census_;
    std::unique_ptr<sim::SchedulerQueue<ClusterEvent>> queue_;
    Opinion plurality_ = 0;
    bool ran_ = false;

    double now_ = 0.0;
    MultiLeaderResult result_;
    std::uint64_t finished_count_ = 0;
    Generation max_generation_ = 0;

    // Failure injection (§4 resilience) + per-leader congestion windows.
    std::vector<bool> alive_;
    bool failure_injected_ = false;
    std::vector<std::int64_t> load_bucket_;
    std::vector<std::uint64_t> load_count_;
};

/// Convenience: clustering + consensus in one call on a biased-plurality
/// workload.
[[nodiscard]] MultiLeaderResult run_multi_leader(std::size_t n, std::uint32_t k,
                                                 double alpha,
                                                 const ClusterConfig& config,
                                                 std::uint64_t seed);

}  // namespace papc::cluster
