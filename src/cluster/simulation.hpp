#pragma once

/// \file simulation.hpp
/// The full decentralized protocol (§4): clustering phase (Theorem 27) +
/// consensus phase (Algorithms 4 + 5, Theorem 26). Nodes in active clusters
/// execute Algorithm 4; everyone else is passive and receives the outcome
/// through the `finished` flag propagation (Algorithm 4 lines 5–7).

#include <memory>
#include <vector>

#include "cluster/cluster_leader.hpp"
#include "cluster/clustering.hpp"
#include "cluster/config.hpp"
#include "cluster/member.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "support/random.hpp"
#include "support/timeseries.hpp"

namespace papc::cluster {

/// Aggregate outcome of one full multi-leader run.
struct MultiLeaderResult {
    // Clustering phase.
    ClusteringResult clustering;
    double clustering_time = 0.0;

    // Consensus phase.
    bool converged = false;        ///< all nodes share one color
    Opinion winner = 0;
    bool plurality_won = false;
    double epsilon_time = -1.0;    ///< consensus-phase clock (starts at 0)
    double consensus_time = -1.0;
    double finished_fraction = 0.0;  ///< nodes with the finished flag at end
    double end_time = 0.0;

    std::uint64_t ticks = 0;
    std::uint64_t exchanges = 0;
    std::uint64_t two_choices_count = 0;
    std::uint64_t propagation_count = 0;
    std::uint64_t finished_adoptions = 0;

    Generation final_top_generation = 0;

    // §4.5 complexity accounting: the load is spread over all cluster
    // leaders (vs Θ(n) per step on the single leader).
    std::uint64_t signals_delivered = 0;  ///< all signals at any leader
    double leader_peak_load = 0.0;        ///< max signals/step at one leader

    /// Per-active-cluster leader traces (Figure 2 source data).
    std::vector<std::vector<ClusterLeaderTransition>> leader_traces;
    TimeSeries plurality_fraction;

    /// Total time: clustering + consensus phases.
    [[nodiscard]] double total_time() const {
        return clustering_time + (consensus_time >= 0.0 ? consensus_time : end_time);
    }
};

/// Runs the consensus phase over an existing clustering.
class MultiLeaderSimulation {
public:
    MultiLeaderSimulation(const Assignment& assignment,
                          ClusteringResult clustering,
                          const ClusterConfig& config, std::uint64_t seed);

    /// Runs to full consensus (or config.max_time). Clustering fields of
    /// the result are copied from the provided clustering.
    [[nodiscard]] MultiLeaderResult run();

    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const MemberState& member(NodeId v) const { return members_[v]; }
    [[nodiscard]] const ClusterLeader& leader(std::size_t c) const {
        return *leaders_[c];
    }
    [[nodiscard]] std::size_t num_clusters() const { return leaders_.size(); }

private:
    ClusterConfig config_;
    ClusteringResult clustering_;
    Rng rng_;
    std::vector<MemberState> members_;
    std::vector<std::unique_ptr<ClusterLeader>> leaders_;
    GenerationCensus census_;
    Opinion plurality_ = 0;
    bool ran_ = false;
};

/// Convenience: clustering + consensus in one call on a biased-plurality
/// workload.
[[nodiscard]] MultiLeaderResult run_multi_leader(std::size_t n, std::uint32_t k,
                                                 double alpha,
                                                 const ClusterConfig& config,
                                                 std::uint64_t seed);

}  // namespace papc::cluster
