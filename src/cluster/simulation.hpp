#pragma once

/// \file simulation.hpp
/// The full decentralized protocol (§4): clustering phase (Theorem 27) +
/// consensus phase (Algorithms 4 + 5, Theorem 26). Nodes in active clusters
/// execute Algorithm 4; everyone else is passive and receives the outcome
/// through the `finished` flag propagation (Algorithm 4 lines 5–7).
/// The run loop (budgets, sampling, ε/consensus detection) is owned by
/// core::run(); failure injection piggybacks on the driver's sample hook.
///
/// Since PR 6 the consensus phase runs on the sharded windowed executor
/// (sim/windowed_executor.hpp; see async/simulation.hpp for the shared
/// porting notes). Multi-leader specifics:
///   - cluster leader c is owned by shard c mod S: all member signals to c
///     route there, and only that shard touches c's counters and per-leader
///     congestion window;
///   - exchanges read sampled members and both leaders from window-start
///     snapshots (members_snap_ / leader_snap_);
///   - the finished-flag epidemic's *push* direction (Algorithm 4 line 5)
///     writes remote members, so it becomes a kAdopt event emitted to the
///     target's shard; the *pull* direction reads the snapshot and writes
///     only the node itself;
///   - failure injection stays observer-driven: leaders crash between
///     windows, so alive_ is read-only while shards run.
/// Fixed-seed trajectories are bit-identical at every thread count.

#include <memory>
#include <vector>

#include "cluster/cluster_leader.hpp"
#include "cluster/clustering.hpp"
#include "cluster/config.hpp"
#include "cluster/member.hpp"
#include "core/engine.hpp"
#include "core/run_result.hpp"
#include "fault/injector.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "sim/latency.hpp"
#include "support/random.hpp"
#include "support/timeseries.hpp"

namespace papc::sim {
template <typename Event>
class WindowedExecutor;
}  // namespace papc::sim

namespace papc::cluster {

/// Aggregate outcome of one full multi-leader run. The unified convergence
/// semantics live in the core::RunResult base (the consensus-phase clock,
/// starting at 0); the fields below are clustering and §4.5 accounting.
/// NOTE: since PR 6 RunResult::steps counts executor *windows*, not
/// events — use events_processed for event throughput.
struct MultiLeaderResult : core::RunResult {
    // Clustering phase.
    ClusteringResult clustering;
    double clustering_time = 0.0;

    // Consensus phase accounting.
    double finished_fraction = 0.0;  ///< nodes with the finished flag at end

    std::uint64_t ticks = 0;
    std::uint64_t exchanges = 0;
    std::uint64_t two_choices_count = 0;
    std::uint64_t propagation_count = 0;
    std::uint64_t finished_adoptions = 0;

    Generation final_top_generation = 0;

    // §4.5 complexity accounting: the load is spread over all cluster
    // leaders (vs Θ(n) per step on the single leader).
    std::uint64_t signals_delivered = 0;  ///< all signals at any leader
    double leader_peak_load = 0.0;        ///< max signals/step at one leader

    // Windowed-executor accounting (PR 6).
    std::uint64_t events_processed = 0;   ///< total events across shards
    std::uint64_t windows = 0;            ///< conservative windows executed
    std::uint64_t window_stragglers = 0;  ///< cross-shard sends behind a
                                          ///< closed window

    // Fault-injection accounting (all zero without an active plan).
    fault::FaultCounters faults;
    std::uint64_t nodes_crashed = 0;

    /// Per-active-cluster leader traces (Figure 2 source data).
    std::vector<std::vector<ClusterLeaderTransition>> leader_traces;

    /// Total time: clustering + consensus phases.
    [[nodiscard]] double total_time() const {
        return clustering_time + (consensus_time >= 0.0 ? consensus_time : end_time);
    }
};

/// One event of the multi-leader simulation (defined in the .cpp).
struct ClusterEvent;

/// Runs the consensus phase over an existing clustering.
class MultiLeaderSimulation final : public core::Engine {
public:
    MultiLeaderSimulation(const Assignment& assignment,
                          ClusteringResult clustering,
                          const ClusterConfig& config, std::uint64_t seed);

    ~MultiLeaderSimulation() override;

    /// Runs to full consensus (or config.max_time). Clustering fields of
    /// the result are copied from the provided clustering.
    [[nodiscard]] MultiLeaderResult run();

    // core::Engine driver interface (one window of events per advance).
    bool advance() override;
    [[nodiscard]] double now() const override { return now_; }
    [[nodiscard]] bool converged() const override { return census_.converged(); }
    [[nodiscard]] Opinion dominant() const override {
        return census_.pooled_stats().dominant;
    }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        return census_.opinion_fraction(j);
    }

    [[nodiscard]] const GenerationCensus& census() const { return census_; }
    [[nodiscard]] const MemberState& member(NodeId v) const { return members_[v]; }
    [[nodiscard]] const ClusterLeader& leader(std::size_t c) const {
        return *leaders_[c];
    }
    [[nodiscard]] std::size_t num_clusters() const { return leaders_.size(); }

private:
    struct CensusMove {
        Generation old_gen;
        Opinion old_col;
        Generation new_gen;
        Opinion new_col;
    };

    /// Shard-owned accumulation (see async/simulation.hpp).
    struct alignas(64) ShardScratch {
        std::uint64_t ticks = 0;
        std::uint64_t exchanges = 0;
        std::uint64_t two_choices = 0;
        std::uint64_t propagation = 0;
        std::uint64_t adoptions = 0;
        std::uint64_t finished = 0;
        std::uint64_t signals = 0;
        std::uint64_t crash_skips = 0;
        double peak_load = 0.0;
        std::vector<CensusMove> moves;
    };

    /// Window-start snapshot of one cluster leader's public state.
    struct LeaderSnap {
        Generation gen = 1;
        LeaderState state = LeaderState::kTwoChoices;
    };

    /// Owning shard of cluster leader `c`'s signal events and counters.
    [[nodiscard]] std::size_t leader_shard(std::size_t cluster) const;

    void begin_window();
    void commit_window();
    void mark_finished(ShardScratch& scratch, NodeId v);
    void adopt_finished(ShardScratch& scratch, NodeId v, Opinion col);
    void maybe_inject_failure();
    void record_leader_signal(ShardScratch& scratch, std::size_t cluster,
                              double time);

    ClusterConfig config_;
    ClusteringResult clustering_;
    /// Fault layer (built in run(); rng_ not advanced — see
    /// async/simulation.hpp).
    std::unique_ptr<fault::Injector> injector_;
    bool crash_on_ = false;
    Rng rng_;
    sim::ExponentialLatency latency_;
    std::vector<MemberState> members_;
    std::vector<MemberState> members_snap_;  ///< window-start copy
    std::vector<std::unique_ptr<ClusterLeader>> leaders_;
    std::vector<LeaderSnap> leader_snap_;    ///< window-start leader states
    GenerationCensus census_;
    std::unique_ptr<sim::WindowedExecutor<ClusterEvent>> executor_;
    std::vector<ShardScratch> scratch_;
    Opinion plurality_ = 0;
    bool ran_ = false;

    double now_ = 0.0;
    MultiLeaderResult result_;
    Generation max_generation_ = 0;

    // Failure injection (§4 resilience) + per-leader congestion windows
    // (each entry only ever touched from leader_shard(cluster)).
    std::vector<bool> alive_;
    bool failure_injected_ = false;
    std::vector<std::int64_t> load_bucket_;
    std::vector<std::uint64_t> load_count_;
};

/// Convenience: clustering + consensus in one call on a biased-plurality
/// workload.
[[nodiscard]] MultiLeaderResult run_multi_leader(std::size_t n, std::uint32_t k,
                                                 double alpha,
                                                 const ClusterConfig& config,
                                                 std::uint64_t seed);

}  // namespace papc::cluster
