#include "cluster/cluster_leader.hpp"

#include "support/check.hpp"

namespace papc::cluster {

bool lex_greater(Generation i, LeaderState s, Generation gen, LeaderState state) {
    if (i != gen) return i > gen;
    return static_cast<std::uint8_t>(s) > static_cast<std::uint8_t>(state);
}

ClusterLeader::ClusterLeader(const ClusterLeaderConfig& config) : config_(config) {
    PAPC_CHECK(config_.cardinality >= 1);
    PAPC_CHECK(config_.sleep_threshold > 0);
    PAPC_CHECK(config_.prop_threshold > config_.sleep_threshold);
    PAPC_CHECK(config_.generation_size_threshold >= 1);
    PAPC_CHECK(config_.max_generation >= 1);
    record(0.0);
}

void ClusterLeader::record(double now) {
    trace_.push_back(ClusterLeaderTransition{now, gen_, state_});
}

void ClusterLeader::on_signal(double now, Generation i, LeaderState s,
                              bool has_changed) {
    // Lines 1–3: adopt a fresher (gen, state) seen elsewhere in the system.
    if (i != 0 && lex_greater(i, s, gen_, state_)) {
        if (i != gen_) gen_size_ = 0;  // counts referred to the old generation
        gen_ = i;
        state_ = s;
        switch (s) {
            case LeaderState::kTwoChoices:
                t_ = 0;
                break;
            case LeaderState::kSleeping:
                t_ = config_.sleep_threshold;
                break;
            case LeaderState::kPropagation:
                t_ = config_.prop_threshold;
                break;
        }
        record(now);
    }

    // Lines 4–9: 0-signals advance the local clock.
    if (i == 0) {
        ++t_;
        if (state_ == LeaderState::kTwoChoices && t_ >= config_.sleep_threshold) {
            state_ = LeaderState::kSleeping;
            record(now);
        } else if (state_ == LeaderState::kSleeping &&
                   t_ >= config_.prop_threshold) {
            state_ = LeaderState::kPropagation;
            record(now);
        }
    }

    // Lines 10–14: promotion reports grow the current generation.
    if (i == gen_ && has_changed) {
        ++gen_size_;
        if (gen_ < config_.max_generation &&
            gen_size_ >= config_.generation_size_threshold) {
            ++gen_;
            t_ = 0;
            gen_size_ = 0;
            state_ = LeaderState::kTwoChoices;
            record(now);
        }
    }
}

}  // namespace papc::cluster
