#pragma once

/// \file cluster_leader.hpp
/// The cluster-leader automaton of the decentralized protocol
/// (Algorithm 5). Each active cluster leader publishes a pair
/// (gen, state) with state ∈ {two-choices, sleeping, propagation} and
/// processes member signals (i, s, hasChanged):
///   lines 1–3: a lexicographically larger (i, s) overwrites (gen, state)
///              — this is how generation births spread between clusters;
///   lines 4–9: 0-signals drive the tick counter; crossing the sleep
///              threshold freezes promotions, crossing the propagation
///              threshold opens pull-propagation;
///   lines 10–14: hasChanged signals matching the current generation grow
///              gen_size; at ⌈card·(1/2 + δ)⌉ the next generation is born.

#include <cstdint>
#include <vector>

#include "opinion/types.hpp"

namespace papc::cluster {

/// Leader state (Algorithm 5 uses the numeric encoding 1/2/3).
enum class LeaderState : std::uint8_t {
    kTwoChoices = 1,
    kSleeping = 2,
    kPropagation = 3,
};

/// One (time, gen, state) transition, for Figure 2 and invariant tests.
struct ClusterLeaderTransition {
    double time = 0.0;
    Generation gen = 1;
    LeaderState state = LeaderState::kTwoChoices;
};

struct ClusterLeaderConfig {
    std::uint64_t cardinality = 0;          ///< cluster size (card)
    std::uint64_t sleep_threshold = 0;      ///< C1·card·C2 ticks
    std::uint64_t prop_threshold = 0;       ///< C1·card·C3 ticks
    std::uint64_t generation_size_threshold = 0;  ///< ⌈card·(1/2+δ)⌉
    Generation max_generation = 1;          ///< G*
};

class ClusterLeader {
public:
    explicit ClusterLeader(const ClusterLeaderConfig& config);

    /// Processes one (i, s, hasChanged) signal at time `now`
    /// (i == 0 encodes a 0-signal; `s` is ignored for those).
    void on_signal(double now, Generation i, LeaderState s, bool has_changed);

    [[nodiscard]] Generation gen() const { return gen_; }
    [[nodiscard]] LeaderState state() const { return state_; }
    [[nodiscard]] std::uint64_t tick_counter() const { return t_; }
    [[nodiscard]] std::uint64_t generation_size() const { return gen_size_; }
    [[nodiscard]] const ClusterLeaderConfig& config() const { return config_; }
    [[nodiscard]] const std::vector<ClusterLeaderTransition>& trace() const {
        return trace_;
    }

private:
    void record(double now);

    ClusterLeaderConfig config_;
    Generation gen_ = 1;
    LeaderState state_ = LeaderState::kTwoChoices;
    std::uint64_t t_ = 0;
    std::uint64_t gen_size_ = 0;
    std::vector<ClusterLeaderTransition> trace_;
};

/// Lexicographic comparison used by Algorithm 5 line 1.
[[nodiscard]] bool lex_greater(Generation i, LeaderState s, Generation gen,
                               LeaderState state);

}  // namespace papc::cluster
