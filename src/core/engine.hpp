#pragma once

/// \file engine.hpp
/// The shared run-loop driver. Each engine family (sync rounds, population
/// interactions, async/cluster event simulations) implements the Engine
/// step interface; core::run() owns the loop: budgets, convergence / ε
/// detection (ConvergenceTracker), series recording, and observer hooks.
/// Families never duplicate this plumbing — they only advance state.
///
/// Two sampling modes cover all families:
///   - step-driven (sample_interval == 0): convergence is checked every
///     `check_every` steps and the series is recorded on the
///     `record_every` cadence — each fires exactly on its own schedule,
///     so the two cadences need not divide each other (sync rounds,
///     population interactions);
///   - time-driven (sample_interval > 0): a check fires at the first step
///     whose time crosses the next multiple of the interval (event
///     simulations; replaces their hand-rolled metronome events).

#include <cstdint>
#include <string>

#include "core/convergence.hpp"
#include "core/observer.hpp"
#include "core/run_result.hpp"
#include "opinion/types.hpp"

namespace papc::core {

/// What the driver needs from an engine family.
class Engine {
public:
    virtual ~Engine() = default;

    /// Advances one unit of work (a round, an interaction, one event).
    /// Returns false when no work remains.
    virtual bool advance() = 0;

    /// Position on the family's time axis (rounds, parallel time,
    /// simulated time). Monotone non-decreasing across advance() calls.
    [[nodiscard]] virtual double now() const = 0;

    [[nodiscard]] virtual bool converged() const = 0;

    /// Current most common opinion (the RunResult winner).
    [[nodiscard]] virtual Opinion dominant() const = 0;

    /// Fraction of the population currently holding `j`.
    [[nodiscard]] virtual double opinion_fraction(Opinion j) const = 0;
};

struct EngineOptions {
    std::uint64_t max_steps = 0;    ///< step budget (0 = unlimited)
    /// Time budget (< 0 = unlimited). The step that crosses the budget is
    /// fully processed — an engine cannot undo an advance, and the old
    /// event loops' discard-the-boundary-event behaviour lost work — but
    /// every reported time saturates at the budget: end_time never
    /// exceeds max_time, a final sample fires at the (clamped) boundary,
    /// and a run that converged by exit reports consensus_time <=
    /// max_time rather than -1.
    double max_time = -1.0;
    std::uint64_t check_every = 1;  ///< steps between convergence checks
                                    ///< (step-driven)
    double sample_interval = 0.0;   ///< > 0: time-driven checks instead
    /// Recording cadence in steps (0 = record at every check). Honored
    /// exactly: a record_every that is not a multiple of check_every
    /// records on its own schedule (convergence can also be detected at
    /// those steps — the tracker observes every sample).
    std::uint64_t record_every = 0;
    bool record = false;            ///< record the plurality series
    bool sample_at_start = false;   ///< check once before the first step
    Opinion plurality = 0;          ///< expected winner for ε-tracking
    double epsilon = 0.02;          ///< ε of the (1-ε) support threshold
    std::string series_name = "plurality-fraction";
};

/// Drives `engine` until convergence or a budget is exhausted. At least
/// one budget (max_steps, max_time) must be set unless the engine can run
/// out of work on its own.
[[nodiscard]] RunResult run(Engine& engine, const EngineOptions& options,
                            Observer* observer = nullptr);

}  // namespace papc::core
