#include "core/run_result.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "support/check.hpp"

namespace papc::core {

bool consistent(const RunResult& result) {
    if (result.epsilon_time >= 0.0 && result.consensus_time >= 0.0 &&
        result.epsilon_time > result.consensus_time) {
        return false;
    }
    if (result.epsilon_time > result.end_time) return false;
    if (result.consensus_time > result.end_time) return false;
    // A plurality win implies the ε-threshold was crossed no later than
    // the consensus sample (support is 1 at consensus).
    if (result.plurality_won && result.consensus_time >= 0.0 &&
        result.epsilon_time < 0.0) {
        return false;
    }
    for (std::size_t i = 1; i < result.plurality_fraction.size(); ++i) {
        if (result.plurality_fraction[i].time <
            result.plurality_fraction[i - 1].time) {
            return false;
        }
    }
    return true;
}

namespace {

void append_double(std::ostringstream& out, const char* key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    out << key << ' ' << buffer << '\n';
}

double parse_double(const std::string& token) {
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    // Reject both trailing garbage and empty tokens (strtod consumes
    // nothing from "" yet leaves *end == '\0').
    PAPC_CHECK(end != token.c_str() && end != nullptr && *end == '\0');
    return value;
}

std::uint64_t parse_u64(const std::string& token) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    PAPC_CHECK(end != token.c_str() && end != nullptr && *end == '\0');
    return static_cast<std::uint64_t>(value);
}

}  // namespace

std::string serialize(const RunResult& result) {
    std::ostringstream out;
    out << "converged " << (result.converged ? 1 : 0) << '\n';
    out << "winner " << result.winner << '\n';
    out << "plurality_won " << (result.plurality_won ? 1 : 0) << '\n';
    append_double(out, "epsilon_time", result.epsilon_time);
    append_double(out, "consensus_time", result.consensus_time);
    append_double(out, "end_time", result.end_time);
    out << "steps " << result.steps << '\n';
    out << "series " << result.plurality_fraction.name() << '\n';
    for (const TimePoint& p : result.plurality_fraction.points()) {
        char time_buffer[64];
        char value_buffer[64];
        std::snprintf(time_buffer, sizeof(time_buffer), "%a", p.time);
        std::snprintf(value_buffer, sizeof(value_buffer), "%a", p.value);
        out << "point " << time_buffer << ' ' << value_buffer << '\n';
    }
    return out.str();
}

RunResult deserialize(const std::string& text) {
    RunResult result;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "converged") {
            std::string v;
            fields >> v;
            result.converged = parse_u64(v) != 0;
        } else if (key == "winner") {
            std::string v;
            fields >> v;
            result.winner = static_cast<Opinion>(parse_u64(v));
        } else if (key == "plurality_won") {
            std::string v;
            fields >> v;
            result.plurality_won = parse_u64(v) != 0;
        } else if (key == "epsilon_time") {
            std::string v;
            fields >> v;
            result.epsilon_time = parse_double(v);
        } else if (key == "consensus_time") {
            std::string v;
            fields >> v;
            result.consensus_time = parse_double(v);
        } else if (key == "end_time") {
            std::string v;
            fields >> v;
            result.end_time = parse_double(v);
        } else if (key == "steps") {
            std::string v;
            fields >> v;
            result.steps = parse_u64(v);
        } else if (key == "series") {
            std::string name;
            std::getline(fields, name);
            if (!name.empty() && name.front() == ' ') name.erase(0, 1);
            result.plurality_fraction = TimeSeries(name);
        } else if (key == "point") {
            std::string t;
            std::string v;
            fields >> t >> v;
            result.plurality_fraction.record(parse_double(t), parse_double(v));
        }
        // Unknown keys: skip (forward compatibility).
    }
    return result;
}

}  // namespace papc::core
