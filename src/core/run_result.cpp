#include "core/run_result.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "support/check.hpp"
#include "support/parse.hpp"

namespace papc::core {

bool consistent(const RunResult& result) {
    if (result.epsilon_time >= 0.0 && result.consensus_time >= 0.0 &&
        result.epsilon_time > result.consensus_time) {
        return false;
    }
    if (result.epsilon_time > result.end_time) return false;
    if (result.consensus_time > result.end_time) return false;
    // A plurality win implies the ε-threshold was crossed no later than
    // the consensus sample (support is 1 at consensus).
    if (result.plurality_won && result.consensus_time >= 0.0 &&
        result.epsilon_time < 0.0) {
        return false;
    }
    for (std::size_t i = 1; i < result.plurality_fraction.size(); ++i) {
        if (result.plurality_fraction[i].time <
            result.plurality_fraction[i - 1].time) {
            return false;
        }
    }
    return true;
}

namespace {

void append_double(std::ostringstream& out, const char* key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    out << key << ' ' << buffer << '\n';
}

double parse_double(const std::string& token) {
    double value = 0.0;
    PAPC_CHECK(try_parse_double(token, &value));
    return value;
}

std::uint64_t parse_u64(const std::string& token) {
    std::uint64_t value = 0;
    PAPC_CHECK(try_parse_u64(token, &value));
    return value;
}

}  // namespace

std::string serialize(const RunResult& result) {
    std::ostringstream out;
    out << "converged " << (result.converged ? 1 : 0) << '\n';
    out << "winner " << result.winner << '\n';
    out << "plurality_won " << (result.plurality_won ? 1 : 0) << '\n';
    append_double(out, "epsilon_time", result.epsilon_time);
    append_double(out, "consensus_time", result.consensus_time);
    append_double(out, "end_time", result.end_time);
    out << "steps " << result.steps << '\n';
    out << "series " << result.plurality_fraction.name() << '\n';
    for (const TimePoint& p : result.plurality_fraction.points()) {
        char time_buffer[64];
        char value_buffer[64];
        std::snprintf(time_buffer, sizeof(time_buffer), "%a", p.time);
        std::snprintf(value_buffer, sizeof(value_buffer), "%a", p.value);
        out << "point " << time_buffer << ' ' << value_buffer << '\n';
    }
    return out.str();
}

RunResult deserialize(const std::string& text) {
    RunResult result;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "converged") {
            std::string v;
            fields >> v;
            result.converged = parse_u64(v) != 0;
        } else if (key == "winner") {
            std::string v;
            fields >> v;
            result.winner = static_cast<Opinion>(parse_u64(v));
        } else if (key == "plurality_won") {
            std::string v;
            fields >> v;
            result.plurality_won = parse_u64(v) != 0;
        } else if (key == "epsilon_time") {
            std::string v;
            fields >> v;
            result.epsilon_time = parse_double(v);
        } else if (key == "consensus_time") {
            std::string v;
            fields >> v;
            result.consensus_time = parse_double(v);
        } else if (key == "end_time") {
            std::string v;
            fields >> v;
            result.end_time = parse_double(v);
        } else if (key == "steps") {
            std::string v;
            fields >> v;
            result.steps = parse_u64(v);
        } else if (key == "series") {
            std::string name;
            std::getline(fields, name);
            if (!name.empty() && name.front() == ' ') name.erase(0, 1);
            result.plurality_fraction = TimeSeries(name);
        } else if (key == "point") {
            std::string t;
            std::string v;
            fields >> t >> v;
            result.plurality_fraction.record(parse_double(t), parse_double(v));
        }
        // Unknown keys: skip (forward compatibility).
    }
    return result;
}

void write_json(JsonWriter& writer, const RunResult& result) {
    writer.begin_object();
    writer.kv("converged", result.converged);
    writer.kv("winner", static_cast<std::uint64_t>(result.winner));
    writer.kv("plurality_won", result.plurality_won);
    writer.kv("epsilon_time", result.epsilon_time);
    writer.kv("consensus_time", result.consensus_time);
    writer.kv("end_time", result.end_time);
    writer.kv("steps", result.steps);
    writer.key("series");
    writer.begin_object();
    writer.kv("name", result.plurality_fraction.name());
    writer.key("points");
    writer.begin_array();
    for (const TimePoint& p : result.plurality_fraction.points()) {
        writer.begin_array();
        writer.value(p.time);
        writer.value(p.value);
        writer.end_array();
    }
    writer.end_array();
    writer.end_object();
    writer.end_object();
}

std::string to_json(const RunResult& result) {
    JsonWriter writer;
    write_json(writer, result);
    return writer.str();
}

RunResult run_result_from_json(const JsonValue& value) {
    PAPC_CHECK(value.is_object());
    RunResult result;
    if (const JsonValue* v = value.find("converged")) {
        result.converged = v->as_bool();
    }
    if (const JsonValue* v = value.find("winner")) {
        result.winner = static_cast<Opinion>(v->as_number());
    }
    if (const JsonValue* v = value.find("plurality_won")) {
        result.plurality_won = v->as_bool();
    }
    result.epsilon_time = value.number_or("epsilon_time", result.epsilon_time);
    result.consensus_time =
        value.number_or("consensus_time", result.consensus_time);
    result.end_time = value.number_or("end_time", result.end_time);
    if (const JsonValue* v = value.find("steps")) {
        result.steps = static_cast<std::uint64_t>(v->as_number());
    }
    if (const JsonValue* series = value.find("series")) {
        PAPC_CHECK(series->is_object());
        std::string name;
        if (const JsonValue* v = series->find("name")) name = v->as_string();
        result.plurality_fraction = TimeSeries(name);
        if (const JsonValue* points = series->find("points")) {
            for (const JsonValue& point : points->elements()) {
                PAPC_CHECK(point.is_array() && point.size() == 2);
                result.plurality_fraction.record(point[0].as_number(),
                                                 point[1].as_number());
            }
        }
    }
    return result;
}

}  // namespace papc::core
