#include "core/engine.hpp"

#include "support/check.hpp"

namespace papc::core {

RunResult run(Engine& engine, const EngineOptions& options,
              Observer* observer) {
    PAPC_CHECK(options.check_every > 0);
    PAPC_CHECK(options.epsilon >= 0.0 && options.epsilon < 1.0);

    RunResult result;
    result.plurality_fraction = TimeSeries(options.series_name);
    ConvergenceTracker tracker(options.epsilon);
    const bool time_driven = options.sample_interval > 0.0;

    // One sample: observer hook, series recording, ε/consensus detection.
    // Returns true once full consensus has been seen.
    auto sample = [&](std::uint64_t steps) {
        const double time = engine.now();
        const double fraction = engine.opinion_fraction(options.plurality);
        const bool now_converged = engine.converged();
        if (observer != nullptr) observer->on_sample(time, fraction);
        if (options.record) {
            const bool on_cadence = time_driven || options.record_every == 0 ||
                                    steps % options.record_every == 0;
            if (on_cadence || now_converged) {
                result.plurality_fraction.record(time, fraction);
            }
        }
        return tracker.observe(time, fraction, now_converged);
    };

    std::uint64_t steps = 0;
    bool done = options.sample_at_start && sample(0);
    double next_sample = options.sample_interval;

    while (!done) {
        if (options.max_steps != 0 && steps >= options.max_steps) break;
        if (!engine.advance()) break;
        ++steps;
        const double time = engine.now();
        if (options.max_time >= 0.0 && time > options.max_time) break;
        if (time_driven) {
            if (time >= next_sample) {
                done = sample(steps);
                // Skip intervals no step landed in; one sample per crossing.
                while (next_sample <= time) next_sample += options.sample_interval;
            }
        } else if (steps % options.check_every == 0) {
            done = sample(steps);
        }
    }

    if (!done && engine.converged()) {
        // The engine converged between the last sample point and loop exit
        // (budget hit or work ran out): take one final detection sample so
        // a converged run never reports consensus_time == -1.
        (void)sample(steps);
    }

    result.steps = steps;
    result.end_time = engine.now();
    result.converged = engine.converged();
    result.winner = engine.dominant();
    result.plurality_won = result.converged && result.winner == options.plurality;
    result.epsilon_time = tracker.epsilon_time();
    result.consensus_time = tracker.consensus_time();
    if (observer != nullptr) observer->on_finish(result);
    return result;
}

}  // namespace papc::core
