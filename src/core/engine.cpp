#include "core/engine.hpp"

#include "support/check.hpp"

namespace papc::core {

RunResult run(Engine& engine, const EngineOptions& options,
              Observer* observer) {
    PAPC_CHECK(options.check_every > 0);
    PAPC_CHECK(options.epsilon >= 0.0 && options.epsilon < 1.0);

    RunResult result;
    result.plurality_fraction = TimeSeries(options.series_name);
    ConvergenceTracker tracker(options.epsilon);
    const bool time_driven = options.sample_interval > 0.0;

    // All reported times saturate at the time budget: the step that
    // crosses max_time is still fully processed (an engine cannot undo an
    // advance), but its time — and therefore end_time, the series, and
    // epsilon/consensus detection — is clamped to the boundary.
    const auto clamped_now = [&] {
        const double time = engine.now();
        return options.max_time >= 0.0 && time > options.max_time
                   ? options.max_time
                   : time;
    };

    // One sample: observer hook, series recording, ε/consensus detection.
    // Returns true once full consensus has been seen. `always_record`
    // forces the series point regardless of cadence (budget boundary).
    auto sample = [&](std::uint64_t steps, bool always_record = false) {
        const double time = clamped_now();
        const double fraction = engine.opinion_fraction(options.plurality);
        const bool now_converged = engine.converged();
        if (observer != nullptr) observer->on_sample(time, fraction);
        if (options.record) {
            const bool on_cadence = time_driven || options.record_every == 0 ||
                                    steps % options.record_every == 0;
            if (on_cadence || now_converged || always_record) {
                result.plurality_fraction.record(time, fraction);
            }
        }
        return tracker.observe(time, fraction, now_converged);
    };

    std::uint64_t steps = 0;
    bool done = options.sample_at_start && sample(0);
    double next_sample = options.sample_interval;

    while (!done) {
        if (options.max_steps != 0 && steps >= options.max_steps) break;
        if (!engine.advance()) break;
        ++steps;
        const double time = engine.now();
        if (options.max_time >= 0.0 && time > options.max_time) {
            // Budget boundary: one final sample (clamped to max_time) so
            // the series and the tracker always see the exit state.
            (void)sample(steps, /*always_record=*/true);
            done = true;
            break;
        }
        if (time_driven) {
            if (time >= next_sample) {
                done = sample(steps);
                // Skip intervals no step landed in; one sample per crossing.
                while (next_sample <= time) next_sample += options.sample_interval;
            }
        } else {
            // Convergence checks fire every check_every steps; recording
            // additionally fires on its own cadence, so a record_every
            // that is not a multiple of check_every is honored exactly
            // rather than silently snapping to check boundaries.
            const bool check_step = steps % options.check_every == 0;
            const bool record_step = options.record &&
                                     options.record_every > 0 &&
                                     steps % options.record_every == 0;
            if (check_step || record_step) done = sample(steps);
        }
    }

    if (!done && engine.converged()) {
        // The engine converged between the last sample point and loop exit
        // (budget hit or work ran out): take one final detection sample so
        // a converged run never reports consensus_time == -1.
        (void)sample(steps);
    }

    result.steps = steps;
    result.end_time = clamped_now();
    result.converged = engine.converged();
    result.winner = engine.dominant();
    result.plurality_won = result.converged && result.winner == options.plurality;
    result.epsilon_time = tracker.epsilon_time();
    result.consensus_time = tracker.consensus_time();
    if (observer != nullptr) observer->on_finish(result);
    return result;
}

}  // namespace papc::core
