#include "core/observer.hpp"

namespace papc::core {

void Observer::on_sample(double, double) {}

void Observer::on_finish(const RunResult&) {}

void FunctionObserver::on_sample(double time, double plurality_fraction) {
    if (sample_) sample_(time, plurality_fraction);
}

void FunctionObserver::on_finish(const RunResult& result) {
    if (finish_) finish_(result);
}

}  // namespace papc::core
