#pragma once

/// \file observer.hpp
/// Metrics-sink interface of the core run-loop driver. The driver invokes
/// the observer at every sample/check point and once at the end of the
/// run; engine families hook family-specific series (leader generation,
/// trace capture, failure injection) in without owning the loop.

#include <functional>

namespace papc::core {

struct RunResult;

class Observer {
public:
    virtual ~Observer() = default;

    /// Called at every sample point with the time-axis position and the
    /// fraction of nodes holding the expected plurality opinion.
    virtual void on_sample(double time, double plurality_fraction);

    /// Called once, after the driver filled the final RunResult.
    virtual void on_finish(const RunResult& result);
};

/// Adapter for callers that want a lambda instead of a subclass.
class FunctionObserver final : public Observer {
public:
    using SampleFn = std::function<void(double, double)>;
    using FinishFn = std::function<void(const RunResult&)>;

    explicit FunctionObserver(SampleFn on_sample, FinishFn on_finish = {})
        : sample_(std::move(on_sample)), finish_(std::move(on_finish)) {}

    void on_sample(double time, double plurality_fraction) override;
    void on_finish(const RunResult& result) override;

private:
    SampleFn sample_;
    FinishFn finish_;
};

}  // namespace papc::core
