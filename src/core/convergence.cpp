#include "core/convergence.hpp"

#include "support/check.hpp"

namespace papc::core {

ConvergenceTracker::ConvergenceTracker(double epsilon)
    : target_(1.0 - epsilon) {
    PAPC_CHECK(epsilon >= 0.0 && epsilon < 1.0);
}

bool ConvergenceTracker::observe(double time, double plurality_fraction,
                                 bool converged) {
    if (epsilon_time_ < 0.0 && plurality_fraction >= target_) {
        epsilon_time_ = time;
    }
    if (consensus_time_ < 0.0 && converged) {
        // Note: epsilon_time stays -1 when a rival of the expected
        // plurality wins — it tracks the expected winner's support only.
        consensus_time_ = time;
    }
    return done();
}

}  // namespace papc::core
