#pragma once

/// \file convergence.hpp
/// Shared ε-threshold and consensus detection. Every engine family feeds
/// its census samples (plurality fraction + converged flag) through one
/// ConvergenceTracker so the RunResult semantics cannot drift apart:
/// epsilon_time is the first sample with support >= 1-ε, consensus_time the
/// first fully-converged sample, and both are latched (monotone — later
/// dips never un-set them).

namespace papc::core {

class ConvergenceTracker {
public:
    /// `epsilon` in [0, 1): the run is ε-converged once the plurality
    /// fraction reaches 1-ε.
    explicit ConvergenceTracker(double epsilon);

    /// Feeds one sample; returns true once full consensus has been seen
    /// (at this or an earlier sample).
    bool observe(double time, double plurality_fraction, bool converged);

    [[nodiscard]] double epsilon_time() const { return epsilon_time_; }
    [[nodiscard]] double consensus_time() const { return consensus_time_; }
    [[nodiscard]] bool epsilon_reached() const { return epsilon_time_ >= 0.0; }
    [[nodiscard]] bool done() const { return consensus_time_ >= 0.0; }

private:
    double target_;
    double epsilon_time_ = -1.0;
    double consensus_time_ = -1.0;
};

}  // namespace papc::core
