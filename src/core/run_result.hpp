#pragma once

/// \file run_result.hpp
/// The unified outcome type shared by every engine family (sync rounds,
/// population interactions, async and cluster event simulations). A run has
/// one time axis (rounds, parallel time, or simulated time — the family
/// decides), and every family reports the same convergence semantics on it:
///
///   epsilon_time    first sample with (1-ε) plurality support (-1: never),
///   consensus_time  first sample with full consensus (-1: never),
///   end_time        axis position when the run stopped,
///   steps           units of work executed (rounds / interactions / events).
///
/// Families with extra accounting derive from RunResult and add fields; the
/// shared semantics always live here.

#include <cstdint>
#include <string>

#include "opinion/types.hpp"
#include "support/json_value.hpp"
#include "support/json_writer.hpp"
#include "support/timeseries.hpp"

namespace papc::core {

struct RunResult {
    bool converged = false;        ///< all nodes agree at exit
    Opinion winner = 0;            ///< final (or current-dominant) opinion
    bool plurality_won = false;    ///< converged && winner == expected plurality
    double epsilon_time = -1.0;    ///< first time (1-ε)·n support is observed
    double consensus_time = -1.0;  ///< first time full consensus is observed
    double end_time = 0.0;         ///< time-axis position at loop exit
    std::uint64_t steps = 0;       ///< work units executed by the driver
    TimeSeries plurality_fraction; ///< recorded when the options request it
};

/// Internal-consistency invariants every engine family must satisfy:
/// ε-time precedes consensus time, both precede end_time, and a converged
/// run has a consensus detection unless it converged before the first
/// sample was possible.
[[nodiscard]] bool consistent(const RunResult& result);

/// Serializes the scalar fields and the recorded series to a stable
/// line-oriented `key value` text form (one key per line, series points as
/// `point <time> <value>` lines). Doubles round-trip exactly (hex floats).
[[nodiscard]] std::string serialize(const RunResult& result);

/// Parses the output of serialize(). Unknown keys are ignored so the format
/// can grow; malformed numeric fields fail a PAPC_CHECK.
[[nodiscard]] RunResult deserialize(const std::string& text);

/// Emits the result as one JSON object. Scalar fields use their struct
/// names; the series becomes {"name": ..., "points": [[time, value], ...]}.
/// Doubles are written with round-trip precision, so
/// run_result_from_json(parse) reproduces the result exactly.
void write_json(JsonWriter& writer, const RunResult& result);

/// Convenience: the JSON document for one result.
[[nodiscard]] std::string to_json(const RunResult& result);

/// Rebuilds a result from the output of write_json. Missing members keep
/// their defaults (forward compatibility); wrong member types fail a
/// PAPC_CHECK.
[[nodiscard]] RunResult run_result_from_json(const JsonValue& value);

}  // namespace papc::core
