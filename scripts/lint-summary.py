#!/usr/bin/env python3
"""Summarize a papc_lint --json report.

Usage:
    python3 tools/papc_lint/papc_lint.py --compdb build --json report.json
    scripts/lint-summary.py report.json [--suppressed]

Prints a per-rule count table from the structured report — the intended
consumer interface for dashboards and scripts (no text parsing). By
default only active violations are tabulated; --suppressed adds the
justified suppressions, which is the quickest way to audit how many
exceptions each rule has accumulated.

Exits 0 when the report contains no active violations, 1 otherwise (so
the script doubles as a gate on a stored report).
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="papc_lint --json output file")
    parser.add_argument("--suppressed", action="store_true",
                        help="also tabulate justified suppressions")
    args = parser.parse_args()

    with open(args.report, encoding="utf-8") as handle:
        report = json.load(handle)
    if report.get("tool") != "papc_lint":
        print(f"{args.report}: not a papc_lint report", file=sys.stderr)
        return 2

    summary = report.get("summary", {})
    findings = report.get("findings", [])
    statuses = {"violation"}
    if args.suppressed:
        statuses.add("suppressed")

    by_rule = {}
    for finding in findings:
        if finding.get("status") in statuses:
            key = (finding["rule"], finding.get("name", ""),
                   finding["status"])
            by_rule[key] = by_rule.get(key, 0) + 1

    print(f"{summary.get('files', '?')} files linted, "
          f"{summary.get('violations', 0)} violation(s), "
          f"{summary.get('suppressed', 0)} suppressed")
    if by_rule:
        width = max(len(f"{r} {n}") for r, n, _ in by_rule)
        for (rule, name, status), count in sorted(by_rule.items()):
            label = f"{rule} {name}"
            print(f"  {label:<{width}}  {count:4d}  {status}")
    return 1 if summary.get("violations", 0) else 0


if __name__ == "__main__":
    sys.exit(main())
