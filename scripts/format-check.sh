#!/usr/bin/env sh
# Reports clang-format drift across the C++ sources. Exit 1 when any file
# needs reformatting (CI runs this as a blocking job; locally use
# `scripts/format-check.sh --fix` to apply).
set -eu

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
    echo "format-check: $CLANG_FORMAT not found; skipping" >&2
    exit 0
fi

files=$(find src tests bench examples -name '*.cpp' -o -name '*.hpp' | sort)

if [ "${1:-}" = "--fix" ]; then
    # shellcheck disable=SC2086
    "$CLANG_FORMAT" -i $files
    echo "format-check: formatted $(echo "$files" | wc -l) files"
    exit 0
fi

status=0
for f in $files; do
    if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
        echo "needs formatting: $f"
        status=1
    fi
done
if [ "$status" -eq 0 ]; then
    echo "format-check: all files clean"
fi
exit "$status"
