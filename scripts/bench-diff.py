#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and print per-benchmark speedups.

Usage:
    scripts/bench-diff.py BEFORE.json AFTER.json [--filter SUBSTRING]
        [--suffix-before SUF] [--suffix-after SUF] [--field COUNTER]

For every benchmark name present in both files the script prints the
throughput ratio after/before (from items_per_second when recorded, falling
back to the inverse real_time ratio), so > 1.0 means AFTER is faster. Used
to produce the README perf table from BENCH_pr4_before.json /
BENCH_pr4.json and to sanity-check future kernel PRs. Names present on
only one side print an `n/a` row instead of being dropped silently.

--field diffs a user counter instead of throughput — google-benchmark
serializes counters as top-level keys on each benchmark object, so e.g.
the PR 7 memory comparison is

    scripts/bench-diff.py BENCH_pr7_before.json BENCH_pr7.json \\
        --filter SyncRound --field bytes_per_node

For counters the ratio is still after/before; for sizes smaller is
better, so read < 1.0 as the win.

--suffix-before/--suffix-after join rows whose names differ only by a
trailing argument — e.g. the PR 5 thread-scaling comparison reads one
recorded file twice and matches .../threads:1 rows against .../threads:4:

    scripts/bench-diff.py BENCH_pr5.json BENCH_pr5.json \\
        --suffix-before /threads:1/real_time --suffix-after /threads:4/real_time

Rows not carrying the requested suffix are dropped from that side.

--extras switches the inputs from google-benchmark recordings to
papc_cli run/sweep JSON documents and diffs the RunResult extras
instead — e.g. a PR 9 degradation comparison between a clean and a
faulted run of the same scenario:

    ./build/papc_cli --protocol async --n 4096 --seed 7 --json clean.json
    ./build/papc_cli --protocol async --n 4096 --seed 7 \\
        --fault_loss 0.2 --json faulted.json
    scripts/bench-diff.py clean.json faulted.json --extras

A single-run document contributes its `extras` map keyed by metric
name; a sweep document contributes every cell's metric means keyed
`axis=value;.../metric`. --filter still applies; ratios stay
after/before (read faults_injected > 0 against a 0 baseline as `n/a`
— there is nothing to divide).
"""

import argparse
import json
import sys


def strip_suffix(table, suffix):
    """Keeps only names ending in `suffix`, keyed without it."""
    if not suffix:
        return table
    return {name[: -len(suffix)]: row
            for name, row in table.items() if name.endswith(suffix)}


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    iterations = {}
    medians = {}
    for bench in doc.get("benchmarks", []):
        name = bench["name"]
        if bench.get("run_type") == "aggregate":
            # Of the aggregate rows (mean/median/stddev/cv) keep the
            # median, keyed by the underlying benchmark name.
            if bench.get("aggregate_name") == "median" and \
                    name.endswith("_median"):
                medians[name[: -len("_median")]] = bench
            continue
        iterations.setdefault(name, []).append(bench)
    out = {}
    for name, rows in iterations.items():
        # Repetitions repeat the same name; represent them by their
        # median real_time row rather than whichever came last.
        rows.sort(key=lambda b: b.get("real_time", 0.0))
        out[name] = rows[len(rows) // 2]
    # An explicit aggregate median is more robust than any single row.
    out.update(medians)
    return out


def load_extras(path):
    """RunResult extras out of a papc_cli run or sweep JSON document.

    Returns {row name: value}. A run document is its `extras` map; a
    sweep document flattens to one row per (cell, metric mean), keyed
    `axis=value;.../metric` so the same cell matches across files.
    """
    with open(path) as handle:
        doc = json.load(handle)
    if "extras" in doc:
        return dict(doc["extras"])
    if "cells" in doc:
        out = {}
        for cell in doc["cells"]:
            coord = ";".join(f"{axis}={value}" for axis, value in
                             sorted(cell.get("coordinates", {}).items()))
            metrics = cell.get("outcome", {}).get("metrics", {})
            for name, stats in metrics.items():
                out[f"{coord}/{name}"] = stats.get("mean")
        return out
    raise SystemExit(f"{path}: neither a run document (no 'extras') nor "
                     f"a sweep document (no 'cells')")


def throughput(bench, field=""):
    """Benchmark throughput (or a user counter) in consistent units."""
    if bench is None:
        return None, None
    if field:
        value = bench.get(field)
        return (value, field) if value is not None else (None, None)
    if "items_per_second" in bench:
        return bench["items_per_second"], "items/s"
    real_time = bench.get("real_time")
    if not real_time:
        return None, None
    return 1.0 / real_time, "1/time"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", help="baseline google-benchmark JSON")
    parser.add_argument("after", help="candidate google-benchmark JSON")
    parser.add_argument("--filter", default="",
                        help="only report names containing this substring")
    parser.add_argument("--suffix-before", default="",
                        help="only BEFORE rows with this name suffix, "
                             "matched with the suffix removed")
    parser.add_argument("--suffix-after", default="",
                        help="same for AFTER rows")
    parser.add_argument("--field", default="",
                        help="diff this user counter (a top-level key on "
                             "each benchmark object) instead of throughput")
    parser.add_argument("--extras", action="store_true",
                        help="inputs are papc_cli run/sweep JSON documents; "
                             "diff their RunResult extras")
    args = parser.parse_args()

    if args.extras:
        # Re-shape each extra as a one-counter benchmark row so the
        # matching/printing path below is shared verbatim.
        args.field = "extra"
        before = {name: {"extra": value}
                  for name, value in load_extras(args.before).items()}
        after = {name: {"extra": value}
                 for name, value in load_extras(args.after).items()}
    else:
        before = strip_suffix(load(args.before), args.suffix_before)
        after = strip_suffix(load(args.after), args.suffix_after)
    # The union, so a row added or removed by the candidate shows as n/a
    # instead of vanishing from the report.
    names = sorted(name for name in set(before) | set(after)
                   if args.filter in name)
    if not names:
        print("no matching benchmark names", file=sys.stderr)
        return 1

    width = max(len(name) for name in names)
    print(f"{'benchmark':<{width}}  {'before':>12}  {'after':>12}  speedup")
    slowdowns = 0
    compared = 0

    def fmt(value, kind):
        if value is None:
            return "-"
        if kind == "items/s":
            # Scale-aware: end-to-end runs report single-digit
            # rounds/s, micro-kernels hundreds of M items/s.
            if value >= 1e6:
                return f"{value / 1e6:.2f} M/s"
            if value >= 1e3:
                return f"{value / 1e3:.2f} k/s"
            return f"{value:.3g} /s"
        return f"{value:.3g}"

    for name in names:
        b_value, b_kind = throughput(before.get(name), args.field)
        a_value, a_kind = throughput(after.get(name), args.field)
        if not b_value or not a_value or b_kind != a_kind:
            print(f"{name:<{width}}  {fmt(b_value, b_kind):>12}  "
                  f"{fmt(a_value, a_kind):>12}  n/a")
            continue
        compared += 1
        ratio = a_value / b_value
        if ratio < 1.0:
            slowdowns += 1
        print(f"{name:<{width}}  {fmt(b_value, b_kind):>12}  "
              f"{fmt(a_value, a_kind):>12}  {ratio:5.2f}x")
    print(f"{compared} compared, {slowdowns} slower")
    if compared == 0 and (args.field or args.extras):
        # Every row printed n/a: a typo'd counter/extra name would
        # otherwise produce a silently-empty comparison.
        what = "extra" if args.extras else f"counter '{args.field}'"
        print(f"error: no row carries the requested {what} on both sides "
              f"— check the name against the JSON inputs", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
