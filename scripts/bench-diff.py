#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and print per-benchmark speedups.

Usage:
    scripts/bench-diff.py BEFORE.json AFTER.json [--filter SUBSTRING]
        [--suffix-before SUF] [--suffix-after SUF]

For every benchmark name present in both files the script prints the
throughput ratio after/before (from items_per_second when recorded, falling
back to the inverse real_time ratio), so > 1.0 means AFTER is faster. Used
to produce the README perf table from BENCH_pr4_before.json /
BENCH_pr4.json and to sanity-check future kernel PRs.

--suffix-before/--suffix-after join rows whose names differ only by a
trailing argument — e.g. the PR 5 thread-scaling comparison reads one
recorded file twice and matches .../threads:1 rows against .../threads:4:

    scripts/bench-diff.py BENCH_pr5.json BENCH_pr5.json \\
        --suffix-before /threads:1/real_time --suffix-after /threads:4/real_time

Rows not carrying the requested suffix are dropped from that side.
"""

import argparse
import json
import sys


def strip_suffix(table, suffix):
    """Keeps only names ending in `suffix`, keyed without it."""
    if not suffix:
        return table
    return {name[: -len(suffix)]: row
            for name, row in table.items() if name.endswith(suffix)}


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    iterations = {}
    medians = {}
    for bench in doc.get("benchmarks", []):
        name = bench["name"]
        if bench.get("run_type") == "aggregate":
            # Of the aggregate rows (mean/median/stddev/cv) keep the
            # median, keyed by the underlying benchmark name.
            if bench.get("aggregate_name") == "median" and \
                    name.endswith("_median"):
                medians[name[: -len("_median")]] = bench
            continue
        iterations.setdefault(name, []).append(bench)
    out = {}
    for name, rows in iterations.items():
        # Repetitions repeat the same name; represent them by their
        # median real_time row rather than whichever came last.
        rows.sort(key=lambda b: b.get("real_time", 0.0))
        out[name] = rows[len(rows) // 2]
    # An explicit aggregate median is more robust than any single row.
    out.update(medians)
    return out


def throughput(bench):
    """Benchmark throughput in arbitrary but consistent units."""
    if "items_per_second" in bench:
        return bench["items_per_second"], "items/s"
    real_time = bench.get("real_time")
    if not real_time:
        return None, None
    return 1.0 / real_time, "1/time"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", help="baseline google-benchmark JSON")
    parser.add_argument("after", help="candidate google-benchmark JSON")
    parser.add_argument("--filter", default="",
                        help="only report names containing this substring")
    parser.add_argument("--suffix-before", default="",
                        help="only BEFORE rows with this name suffix, "
                             "matched with the suffix removed")
    parser.add_argument("--suffix-after", default="",
                        help="same for AFTER rows")
    args = parser.parse_args()

    before = strip_suffix(load(args.before), args.suffix_before)
    after = strip_suffix(load(args.after), args.suffix_after)
    shared = [name for name in before if name in after
              and args.filter in name]
    if not shared:
        print("no shared benchmark names", file=sys.stderr)
        return 1

    width = max(len(name) for name in shared)
    print(f"{'benchmark':<{width}}  {'before':>12}  {'after':>12}  speedup")
    slowdowns = 0
    for name in shared:
        b_value, b_kind = throughput(before[name])
        a_value, a_kind = throughput(after[name])
        if not b_value or not a_value or b_kind != a_kind:
            print(f"{name:<{width}}  {'-':>12}  {'-':>12}  n/a")
            continue
        ratio = a_value / b_value
        if ratio < 1.0:
            slowdowns += 1

        def fmt(value, kind):
            if kind == "items/s":
                # Scale-aware: end-to-end runs report single-digit
                # rounds/s, micro-kernels hundreds of M items/s.
                if value >= 1e6:
                    return f"{value / 1e6:.2f} M/s"
                if value >= 1e3:
                    return f"{value / 1e3:.2f} k/s"
                return f"{value:.3g} /s"
            return f"{value:.3g}"

        print(f"{name:<{width}}  {fmt(b_value, b_kind):>12}  "
              f"{fmt(a_value, a_kind):>12}  {ratio:5.2f}x")
    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    if only_before:
        print(f"only in before: {len(only_before)}", file=sys.stderr)
    if only_after:
        print(f"only in after: {len(only_after)}", file=sys.stderr)
    print(f"{len(shared)} compared, {slowdowns} slower")
    return 0


if __name__ == "__main__":
    sys.exit(main())
