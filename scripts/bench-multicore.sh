#!/usr/bin/env sh
# Records the multicore scaling benchmark file on real hardware.
#
# The reference container has a single core, so the committed BENCH_*.json
# files can only pin single-thread rates: their threads:2/4 rows measure
# pure timeslicing (~1.0x) and say nothing about parallel speedup. This
# script is the documented recording path for a machine with >= 4 real
# cores. It validates two claims:
#
#   1. PR 5 sharded sync rounds: BM_SyncRoundSharded_* at n >= 2^20 should
#      reach >= 1.7x wall-clock at threads:4 vs threads:1.
#   2. PR 6 windowed event executor: BM_WindowedExecutorHold and
#      BM_AsyncFullRunThreaded threads:4 vs threads:1 (conservative
#      windows barrier every delta, so expect sub-linear but material
#      scaling; threads:1 must stay within 0.9x of BM_SingleQueueHold).
#
# Usage:
#   scripts/bench-multicore.sh [OUT.json]        # default BENCH_multicore.json
#   PAPC_ALLOW_FEW_CORES=1 scripts/bench-multicore.sh   # skip the core check
#
# Record on an otherwise idle machine; pin the frequency governor if you
# can. Results are medians of 3 repetitions with random interleaving, the
# same protocol as the committed BENCH_pr5/pr6 files.

set -eu

out="${1:-BENCH_multicore.json}"
root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-bench"

cores="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
if [ "$cores" -lt 4 ] && [ "${PAPC_ALLOW_FEW_CORES:-0}" != "1" ]; then
    echo "error: need >= 4 real cores to measure parallel speedup" \
         "(found $cores)." >&2
    echo "       Set PAPC_ALLOW_FEW_CORES=1 to record anyway (the" \
         "threads:2/4 rows will only measure timeslicing)." >&2
    exit 1
fi

cmake -S "$root" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" --target micro_engine -j"$cores"

"$build/micro_engine" \
    --benchmark_filter='BM_SyncRoundSharded_|BM_WindowedExecutorHold|BM_AsyncFullRunThreaded|BM_SingleQueueHold' \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_enable_random_interleaving=true \
    --benchmark_min_time=0.2 \
    --benchmark_context=papc_build_type=Release \
    --benchmark_context=papc_cores="$cores" \
    --benchmark_format=json >"$out"

echo
echo "Recorded $out. Scaling summaries:"
echo
echo "  # PR 5 sync rounds, threads 4 vs 1 (acceptance: >= 1.7x at n >= 2^20)"
echo "  scripts/bench-diff.py $out $out \\"
echo "      --suffix-before /threads:1/real_time_median \\"
echo "      --suffix-after /threads:4/real_time_median --filter Sharded"
echo
echo "  # PR 6 windowed event executor, threads 4 vs 1"
echo "  scripts/bench-diff.py $out $out \\"
echo "      --suffix-before /threads:1/real_time_median \\"
echo "      --suffix-after /threads:4/real_time_median --filter Windowed"
