# Empty dependencies file for runner_experiment_test.
# This may be replaced when dependencies are built.
