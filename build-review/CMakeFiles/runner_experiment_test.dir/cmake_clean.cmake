file(REMOVE_RECURSE
  "CMakeFiles/runner_experiment_test.dir/tests/runner/experiment_test.cpp.o"
  "CMakeFiles/runner_experiment_test.dir/tests/runner/experiment_test.cpp.o.d"
  "runner_experiment_test"
  "runner_experiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
