file(REMOVE_RECURSE
  "CMakeFiles/analysis_theory_test.dir/tests/analysis/theory_test.cpp.o"
  "CMakeFiles/analysis_theory_test.dir/tests/analysis/theory_test.cpp.o.d"
  "analysis_theory_test"
  "analysis_theory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
