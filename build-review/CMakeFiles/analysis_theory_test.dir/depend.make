# Empty dependencies file for analysis_theory_test.
# This may be replaced when dependencies are built.
