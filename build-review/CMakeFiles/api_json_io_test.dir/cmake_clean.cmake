file(REMOVE_RECURSE
  "CMakeFiles/api_json_io_test.dir/tests/api/json_io_test.cpp.o"
  "CMakeFiles/api_json_io_test.dir/tests/api/json_io_test.cpp.o.d"
  "api_json_io_test"
  "api_json_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_json_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
