file(REMOVE_RECURSE
  "CMakeFiles/async_simulation_test.dir/tests/async/simulation_test.cpp.o"
  "CMakeFiles/async_simulation_test.dir/tests/async/simulation_test.cpp.o.d"
  "async_simulation_test"
  "async_simulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
