# Empty dependencies file for async_simulation_test.
# This may be replaced when dependencies are built.
