# Empty dependencies file for support_args_test.
# This may be replaced when dependencies are built.
