file(REMOVE_RECURSE
  "CMakeFiles/support_args_test.dir/tests/support/args_test.cpp.o"
  "CMakeFiles/support_args_test.dir/tests/support/args_test.cpp.o.d"
  "support_args_test"
  "support_args_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
