file(REMOVE_RECURSE
  "CMakeFiles/population_k_undecided_test.dir/tests/population/k_undecided_test.cpp.o"
  "CMakeFiles/population_k_undecided_test.dir/tests/population/k_undecided_test.cpp.o.d"
  "population_k_undecided_test"
  "population_k_undecided_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_k_undecided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
