# Empty compiler generated dependencies file for population_k_undecided_test.
# This may be replaced when dependencies are built.
