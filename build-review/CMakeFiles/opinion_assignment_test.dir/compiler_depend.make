# Empty compiler generated dependencies file for opinion_assignment_test.
# This may be replaced when dependencies are built.
