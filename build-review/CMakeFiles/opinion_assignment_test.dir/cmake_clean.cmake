file(REMOVE_RECURSE
  "CMakeFiles/opinion_assignment_test.dir/tests/opinion/assignment_test.cpp.o"
  "CMakeFiles/opinion_assignment_test.dir/tests/opinion/assignment_test.cpp.o.d"
  "opinion_assignment_test"
  "opinion_assignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opinion_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
