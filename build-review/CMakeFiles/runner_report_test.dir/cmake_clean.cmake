file(REMOVE_RECURSE
  "CMakeFiles/runner_report_test.dir/tests/runner/report_test.cpp.o"
  "CMakeFiles/runner_report_test.dir/tests/runner/report_test.cpp.o.d"
  "runner_report_test"
  "runner_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
