# Empty dependencies file for runner_report_test.
# This may be replaced when dependencies are built.
