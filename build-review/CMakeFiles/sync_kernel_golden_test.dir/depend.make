# Empty dependencies file for sync_kernel_golden_test.
# This may be replaced when dependencies are built.
