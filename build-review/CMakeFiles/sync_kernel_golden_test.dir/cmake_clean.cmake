file(REMOVE_RECURSE
  "CMakeFiles/sync_kernel_golden_test.dir/tests/sync/kernel_golden_test.cpp.o"
  "CMakeFiles/sync_kernel_golden_test.dir/tests/sync/kernel_golden_test.cpp.o.d"
  "sync_kernel_golden_test"
  "sync_kernel_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_kernel_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
