# Empty dependencies file for sim_latency_test.
# This may be replaced when dependencies are built.
