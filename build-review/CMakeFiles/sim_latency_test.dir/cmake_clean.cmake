file(REMOVE_RECURSE
  "CMakeFiles/sim_latency_test.dir/tests/sim/latency_test.cpp.o"
  "CMakeFiles/sim_latency_test.dir/tests/sim/latency_test.cpp.o.d"
  "sim_latency_test"
  "sim_latency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
