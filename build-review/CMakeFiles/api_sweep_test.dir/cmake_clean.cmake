file(REMOVE_RECURSE
  "CMakeFiles/api_sweep_test.dir/tests/api/sweep_test.cpp.o"
  "CMakeFiles/api_sweep_test.dir/tests/api/sweep_test.cpp.o.d"
  "api_sweep_test"
  "api_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
