# Empty dependencies file for integration_invariants_test.
# This may be replaced when dependencies are built.
