file(REMOVE_RECURSE
  "CMakeFiles/integration_invariants_test.dir/tests/integration/invariants_test.cpp.o"
  "CMakeFiles/integration_invariants_test.dir/tests/integration/invariants_test.cpp.o.d"
  "integration_invariants_test"
  "integration_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
