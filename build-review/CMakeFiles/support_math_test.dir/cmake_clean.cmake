file(REMOVE_RECURSE
  "CMakeFiles/support_math_test.dir/tests/support/math_test.cpp.o"
  "CMakeFiles/support_math_test.dir/tests/support/math_test.cpp.o.d"
  "support_math_test"
  "support_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
