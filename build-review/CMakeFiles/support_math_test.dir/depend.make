# Empty dependencies file for support_math_test.
# This may be replaced when dependencies are built.
