# Empty dependencies file for cluster_simulation_test.
# This may be replaced when dependencies are built.
