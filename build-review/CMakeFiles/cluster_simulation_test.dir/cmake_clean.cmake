file(REMOVE_RECURSE
  "CMakeFiles/cluster_simulation_test.dir/tests/cluster/simulation_test.cpp.o"
  "CMakeFiles/cluster_simulation_test.dir/tests/cluster/simulation_test.cpp.o.d"
  "cluster_simulation_test"
  "cluster_simulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
