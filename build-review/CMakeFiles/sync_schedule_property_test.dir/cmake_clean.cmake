file(REMOVE_RECURSE
  "CMakeFiles/sync_schedule_property_test.dir/tests/sync/schedule_property_test.cpp.o"
  "CMakeFiles/sync_schedule_property_test.dir/tests/sync/schedule_property_test.cpp.o.d"
  "sync_schedule_property_test"
  "sync_schedule_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_schedule_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
