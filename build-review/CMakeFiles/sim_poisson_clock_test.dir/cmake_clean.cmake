file(REMOVE_RECURSE
  "CMakeFiles/sim_poisson_clock_test.dir/tests/sim/poisson_clock_test.cpp.o"
  "CMakeFiles/sim_poisson_clock_test.dir/tests/sim/poisson_clock_test.cpp.o.d"
  "sim_poisson_clock_test"
  "sim_poisson_clock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_poisson_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
