# Empty compiler generated dependencies file for sim_poisson_clock_test.
# This may be replaced when dependencies are built.
