# Empty dependencies file for analysis_gamma_test.
# This may be replaced when dependencies are built.
