file(REMOVE_RECURSE
  "CMakeFiles/analysis_gamma_test.dir/tests/analysis/gamma_test.cpp.o"
  "CMakeFiles/analysis_gamma_test.dir/tests/analysis/gamma_test.cpp.o.d"
  "analysis_gamma_test"
  "analysis_gamma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_gamma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
