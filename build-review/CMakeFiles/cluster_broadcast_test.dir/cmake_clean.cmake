file(REMOVE_RECURSE
  "CMakeFiles/cluster_broadcast_test.dir/tests/cluster/broadcast_test.cpp.o"
  "CMakeFiles/cluster_broadcast_test.dir/tests/cluster/broadcast_test.cpp.o.d"
  "cluster_broadcast_test"
  "cluster_broadcast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_broadcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
