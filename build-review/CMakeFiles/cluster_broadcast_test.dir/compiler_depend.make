# Empty compiler generated dependencies file for cluster_broadcast_test.
# This may be replaced when dependencies are built.
