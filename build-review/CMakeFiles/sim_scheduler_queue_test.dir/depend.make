# Empty dependencies file for sim_scheduler_queue_test.
# This may be replaced when dependencies are built.
