file(REMOVE_RECURSE
  "CMakeFiles/sim_scheduler_queue_test.dir/tests/sim/scheduler_queue_test.cpp.o"
  "CMakeFiles/sim_scheduler_queue_test.dir/tests/sim/scheduler_queue_test.cpp.o.d"
  "sim_scheduler_queue_test"
  "sim_scheduler_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_scheduler_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
