# Empty dependencies file for cluster_member_test.
# This may be replaced when dependencies are built.
