file(REMOVE_RECURSE
  "CMakeFiles/cluster_member_test.dir/tests/cluster/member_test.cpp.o"
  "CMakeFiles/cluster_member_test.dir/tests/cluster/member_test.cpp.o.d"
  "cluster_member_test"
  "cluster_member_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_member_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
