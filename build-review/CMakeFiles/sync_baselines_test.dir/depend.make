# Empty dependencies file for sync_baselines_test.
# This may be replaced when dependencies are built.
