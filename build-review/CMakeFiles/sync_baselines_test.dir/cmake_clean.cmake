file(REMOVE_RECURSE
  "CMakeFiles/sync_baselines_test.dir/tests/sync/baselines_test.cpp.o"
  "CMakeFiles/sync_baselines_test.dir/tests/sync/baselines_test.cpp.o.d"
  "sync_baselines_test"
  "sync_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
