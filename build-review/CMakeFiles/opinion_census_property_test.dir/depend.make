# Empty dependencies file for opinion_census_property_test.
# This may be replaced when dependencies are built.
