file(REMOVE_RECURSE
  "CMakeFiles/opinion_census_property_test.dir/tests/opinion/census_property_test.cpp.o"
  "CMakeFiles/opinion_census_property_test.dir/tests/opinion/census_property_test.cpp.o.d"
  "opinion_census_property_test"
  "opinion_census_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opinion_census_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
