file(REMOVE_RECURSE
  "CMakeFiles/support_json_test.dir/tests/support/json_test.cpp.o"
  "CMakeFiles/support_json_test.dir/tests/support/json_test.cpp.o.d"
  "support_json_test"
  "support_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
