# Empty compiler generated dependencies file for population_policy_test.
# This may be replaced when dependencies are built.
