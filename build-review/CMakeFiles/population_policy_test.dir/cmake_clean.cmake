file(REMOVE_RECURSE
  "CMakeFiles/population_policy_test.dir/tests/population/policy_test.cpp.o"
  "CMakeFiles/population_policy_test.dir/tests/population/policy_test.cpp.o.d"
  "population_policy_test"
  "population_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
