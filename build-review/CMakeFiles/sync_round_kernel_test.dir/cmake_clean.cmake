file(REMOVE_RECURSE
  "CMakeFiles/sync_round_kernel_test.dir/tests/sync/round_kernel_test.cpp.o"
  "CMakeFiles/sync_round_kernel_test.dir/tests/sync/round_kernel_test.cpp.o.d"
  "sync_round_kernel_test"
  "sync_round_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_round_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
