# Empty dependencies file for sync_round_kernel_test.
# This may be replaced when dependencies are built.
