file(REMOVE_RECURSE
  "CMakeFiles/integration_cross_engine_test.dir/tests/integration/cross_engine_test.cpp.o"
  "CMakeFiles/integration_cross_engine_test.dir/tests/integration/cross_engine_test.cpp.o.d"
  "integration_cross_engine_test"
  "integration_cross_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_cross_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
