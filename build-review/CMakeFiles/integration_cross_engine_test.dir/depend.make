# Empty dependencies file for integration_cross_engine_test.
# This may be replaced when dependencies are built.
