file(REMOVE_RECURSE
  "CMakeFiles/async_sequential_simulation_test.dir/tests/async/sequential_simulation_test.cpp.o"
  "CMakeFiles/async_sequential_simulation_test.dir/tests/async/sequential_simulation_test.cpp.o.d"
  "async_sequential_simulation_test"
  "async_sequential_simulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_sequential_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
