# Empty compiler generated dependencies file for async_sequential_simulation_test.
# This may be replaced when dependencies are built.
