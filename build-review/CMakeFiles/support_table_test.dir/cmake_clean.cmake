file(REMOVE_RECURSE
  "CMakeFiles/support_table_test.dir/tests/support/table_test.cpp.o"
  "CMakeFiles/support_table_test.dir/tests/support/table_test.cpp.o.d"
  "support_table_test"
  "support_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
