# Empty compiler generated dependencies file for integration_queue_equivalence_test.
# This may be replaced when dependencies are built.
