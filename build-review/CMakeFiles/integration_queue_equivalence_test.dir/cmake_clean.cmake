file(REMOVE_RECURSE
  "CMakeFiles/integration_queue_equivalence_test.dir/tests/integration/queue_equivalence_test.cpp.o"
  "CMakeFiles/integration_queue_equivalence_test.dir/tests/integration/queue_equivalence_test.cpp.o.d"
  "integration_queue_equivalence_test"
  "integration_queue_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_queue_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
