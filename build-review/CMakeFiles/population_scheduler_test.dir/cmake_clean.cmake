file(REMOVE_RECURSE
  "CMakeFiles/population_scheduler_test.dir/tests/population/scheduler_test.cpp.o"
  "CMakeFiles/population_scheduler_test.dir/tests/population/scheduler_test.cpp.o.d"
  "population_scheduler_test"
  "population_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
