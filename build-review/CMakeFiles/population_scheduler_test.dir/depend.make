# Empty dependencies file for population_scheduler_test.
# This may be replaced when dependencies are built.
