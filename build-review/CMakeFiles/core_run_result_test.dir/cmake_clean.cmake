file(REMOVE_RECURSE
  "CMakeFiles/core_run_result_test.dir/tests/core/run_result_test.cpp.o"
  "CMakeFiles/core_run_result_test.dir/tests/core/run_result_test.cpp.o.d"
  "core_run_result_test"
  "core_run_result_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_run_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
