# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cluster_multi_leader_invariants_test.
