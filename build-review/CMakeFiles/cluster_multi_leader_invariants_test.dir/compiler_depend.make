# Empty compiler generated dependencies file for cluster_multi_leader_invariants_test.
# This may be replaced when dependencies are built.
