file(REMOVE_RECURSE
  "CMakeFiles/cluster_multi_leader_invariants_test.dir/tests/cluster/multi_leader_invariants_test.cpp.o"
  "CMakeFiles/cluster_multi_leader_invariants_test.dir/tests/cluster/multi_leader_invariants_test.cpp.o.d"
  "cluster_multi_leader_invariants_test"
  "cluster_multi_leader_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_multi_leader_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
