# Empty dependencies file for api_scenario_test.
# This may be replaced when dependencies are built.
