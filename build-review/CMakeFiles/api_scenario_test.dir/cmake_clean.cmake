file(REMOVE_RECURSE
  "CMakeFiles/api_scenario_test.dir/tests/api/scenario_test.cpp.o"
  "CMakeFiles/api_scenario_test.dir/tests/api/scenario_test.cpp.o.d"
  "api_scenario_test"
  "api_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
