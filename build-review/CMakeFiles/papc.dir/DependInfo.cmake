
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/gamma.cpp" "CMakeFiles/papc.dir/src/analysis/gamma.cpp.o" "gcc" "CMakeFiles/papc.dir/src/analysis/gamma.cpp.o.d"
  "/root/repo/src/analysis/hypoexponential.cpp" "CMakeFiles/papc.dir/src/analysis/hypoexponential.cpp.o" "gcc" "CMakeFiles/papc.dir/src/analysis/hypoexponential.cpp.o.d"
  "/root/repo/src/analysis/latency_units.cpp" "CMakeFiles/papc.dir/src/analysis/latency_units.cpp.o" "gcc" "CMakeFiles/papc.dir/src/analysis/latency_units.cpp.o.d"
  "/root/repo/src/analysis/theory.cpp" "CMakeFiles/papc.dir/src/analysis/theory.cpp.o" "gcc" "CMakeFiles/papc.dir/src/analysis/theory.cpp.o.d"
  "/root/repo/src/api/registry.cpp" "CMakeFiles/papc.dir/src/api/registry.cpp.o" "gcc" "CMakeFiles/papc.dir/src/api/registry.cpp.o.d"
  "/root/repo/src/api/scenario.cpp" "CMakeFiles/papc.dir/src/api/scenario.cpp.o" "gcc" "CMakeFiles/papc.dir/src/api/scenario.cpp.o.d"
  "/root/repo/src/api/sweep.cpp" "CMakeFiles/papc.dir/src/api/sweep.cpp.o" "gcc" "CMakeFiles/papc.dir/src/api/sweep.cpp.o.d"
  "/root/repo/src/async/leader.cpp" "CMakeFiles/papc.dir/src/async/leader.cpp.o" "gcc" "CMakeFiles/papc.dir/src/async/leader.cpp.o.d"
  "/root/repo/src/async/node.cpp" "CMakeFiles/papc.dir/src/async/node.cpp.o" "gcc" "CMakeFiles/papc.dir/src/async/node.cpp.o.d"
  "/root/repo/src/async/sequential_simulation.cpp" "CMakeFiles/papc.dir/src/async/sequential_simulation.cpp.o" "gcc" "CMakeFiles/papc.dir/src/async/sequential_simulation.cpp.o.d"
  "/root/repo/src/async/simulation.cpp" "CMakeFiles/papc.dir/src/async/simulation.cpp.o" "gcc" "CMakeFiles/papc.dir/src/async/simulation.cpp.o.d"
  "/root/repo/src/async/validated_simulation.cpp" "CMakeFiles/papc.dir/src/async/validated_simulation.cpp.o" "gcc" "CMakeFiles/papc.dir/src/async/validated_simulation.cpp.o.d"
  "/root/repo/src/cluster/broadcast.cpp" "CMakeFiles/papc.dir/src/cluster/broadcast.cpp.o" "gcc" "CMakeFiles/papc.dir/src/cluster/broadcast.cpp.o.d"
  "/root/repo/src/cluster/cluster_leader.cpp" "CMakeFiles/papc.dir/src/cluster/cluster_leader.cpp.o" "gcc" "CMakeFiles/papc.dir/src/cluster/cluster_leader.cpp.o.d"
  "/root/repo/src/cluster/clustering.cpp" "CMakeFiles/papc.dir/src/cluster/clustering.cpp.o" "gcc" "CMakeFiles/papc.dir/src/cluster/clustering.cpp.o.d"
  "/root/repo/src/cluster/member.cpp" "CMakeFiles/papc.dir/src/cluster/member.cpp.o" "gcc" "CMakeFiles/papc.dir/src/cluster/member.cpp.o.d"
  "/root/repo/src/cluster/simulation.cpp" "CMakeFiles/papc.dir/src/cluster/simulation.cpp.o" "gcc" "CMakeFiles/papc.dir/src/cluster/simulation.cpp.o.d"
  "/root/repo/src/core/convergence.cpp" "CMakeFiles/papc.dir/src/core/convergence.cpp.o" "gcc" "CMakeFiles/papc.dir/src/core/convergence.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "CMakeFiles/papc.dir/src/core/engine.cpp.o" "gcc" "CMakeFiles/papc.dir/src/core/engine.cpp.o.d"
  "/root/repo/src/core/observer.cpp" "CMakeFiles/papc.dir/src/core/observer.cpp.o" "gcc" "CMakeFiles/papc.dir/src/core/observer.cpp.o.d"
  "/root/repo/src/core/run_result.cpp" "CMakeFiles/papc.dir/src/core/run_result.cpp.o" "gcc" "CMakeFiles/papc.dir/src/core/run_result.cpp.o.d"
  "/root/repo/src/graph/dynamics.cpp" "CMakeFiles/papc.dir/src/graph/dynamics.cpp.o" "gcc" "CMakeFiles/papc.dir/src/graph/dynamics.cpp.o.d"
  "/root/repo/src/graph/topology.cpp" "CMakeFiles/papc.dir/src/graph/topology.cpp.o" "gcc" "CMakeFiles/papc.dir/src/graph/topology.cpp.o.d"
  "/root/repo/src/opinion/assignment.cpp" "CMakeFiles/papc.dir/src/opinion/assignment.cpp.o" "gcc" "CMakeFiles/papc.dir/src/opinion/assignment.cpp.o.d"
  "/root/repo/src/opinion/census.cpp" "CMakeFiles/papc.dir/src/opinion/census.cpp.o" "gcc" "CMakeFiles/papc.dir/src/opinion/census.cpp.o.d"
  "/root/repo/src/population/four_state.cpp" "CMakeFiles/papc.dir/src/population/four_state.cpp.o" "gcc" "CMakeFiles/papc.dir/src/population/four_state.cpp.o.d"
  "/root/repo/src/population/k_undecided.cpp" "CMakeFiles/papc.dir/src/population/k_undecided.cpp.o" "gcc" "CMakeFiles/papc.dir/src/population/k_undecided.cpp.o.d"
  "/root/repo/src/population/scheduler.cpp" "CMakeFiles/papc.dir/src/population/scheduler.cpp.o" "gcc" "CMakeFiles/papc.dir/src/population/scheduler.cpp.o.d"
  "/root/repo/src/population/three_state.cpp" "CMakeFiles/papc.dir/src/population/three_state.cpp.o" "gcc" "CMakeFiles/papc.dir/src/population/three_state.cpp.o.d"
  "/root/repo/src/runner/experiment.cpp" "CMakeFiles/papc.dir/src/runner/experiment.cpp.o" "gcc" "CMakeFiles/papc.dir/src/runner/experiment.cpp.o.d"
  "/root/repo/src/runner/report.cpp" "CMakeFiles/papc.dir/src/runner/report.cpp.o" "gcc" "CMakeFiles/papc.dir/src/runner/report.cpp.o.d"
  "/root/repo/src/sim/latency.cpp" "CMakeFiles/papc.dir/src/sim/latency.cpp.o" "gcc" "CMakeFiles/papc.dir/src/sim/latency.cpp.o.d"
  "/root/repo/src/sim/poisson_clock.cpp" "CMakeFiles/papc.dir/src/sim/poisson_clock.cpp.o" "gcc" "CMakeFiles/papc.dir/src/sim/poisson_clock.cpp.o.d"
  "/root/repo/src/sim/scheduler_queue.cpp" "CMakeFiles/papc.dir/src/sim/scheduler_queue.cpp.o" "gcc" "CMakeFiles/papc.dir/src/sim/scheduler_queue.cpp.o.d"
  "/root/repo/src/support/args.cpp" "CMakeFiles/papc.dir/src/support/args.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/args.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "CMakeFiles/papc.dir/src/support/csv.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/csv.cpp.o.d"
  "/root/repo/src/support/histogram.cpp" "CMakeFiles/papc.dir/src/support/histogram.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/histogram.cpp.o.d"
  "/root/repo/src/support/json_value.cpp" "CMakeFiles/papc.dir/src/support/json_value.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/json_value.cpp.o.d"
  "/root/repo/src/support/json_writer.cpp" "CMakeFiles/papc.dir/src/support/json_writer.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/json_writer.cpp.o.d"
  "/root/repo/src/support/parse.cpp" "CMakeFiles/papc.dir/src/support/parse.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/parse.cpp.o.d"
  "/root/repo/src/support/random.cpp" "CMakeFiles/papc.dir/src/support/random.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/random.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "CMakeFiles/papc.dir/src/support/stats.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/papc.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "CMakeFiles/papc.dir/src/support/thread_pool.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/thread_pool.cpp.o.d"
  "/root/repo/src/support/timeseries.cpp" "CMakeFiles/papc.dir/src/support/timeseries.cpp.o" "gcc" "CMakeFiles/papc.dir/src/support/timeseries.cpp.o.d"
  "/root/repo/src/sync/algorithm1.cpp" "CMakeFiles/papc.dir/src/sync/algorithm1.cpp.o" "gcc" "CMakeFiles/papc.dir/src/sync/algorithm1.cpp.o.d"
  "/root/repo/src/sync/baselines.cpp" "CMakeFiles/papc.dir/src/sync/baselines.cpp.o" "gcc" "CMakeFiles/papc.dir/src/sync/baselines.cpp.o.d"
  "/root/repo/src/sync/engine.cpp" "CMakeFiles/papc.dir/src/sync/engine.cpp.o" "gcc" "CMakeFiles/papc.dir/src/sync/engine.cpp.o.d"
  "/root/repo/src/sync/schedule.cpp" "CMakeFiles/papc.dir/src/sync/schedule.cpp.o" "gcc" "CMakeFiles/papc.dir/src/sync/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
