file(REMOVE_RECURSE
  "libpapc.a"
)
