# Empty compiler generated dependencies file for papc.
# This may be replaced when dependencies are built.
