file(REMOVE_RECURSE
  "CMakeFiles/async_latency_model_property_test.dir/tests/async/latency_model_property_test.cpp.o"
  "CMakeFiles/async_latency_model_property_test.dir/tests/async/latency_model_property_test.cpp.o.d"
  "async_latency_model_property_test"
  "async_latency_model_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_latency_model_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
