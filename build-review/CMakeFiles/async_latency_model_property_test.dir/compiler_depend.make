# Empty compiler generated dependencies file for async_latency_model_property_test.
# This may be replaced when dependencies are built.
