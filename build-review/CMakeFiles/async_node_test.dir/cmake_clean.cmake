file(REMOVE_RECURSE
  "CMakeFiles/async_node_test.dir/tests/async/node_test.cpp.o"
  "CMakeFiles/async_node_test.dir/tests/async/node_test.cpp.o.d"
  "async_node_test"
  "async_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
