# Empty dependencies file for async_node_test.
# This may be replaced when dependencies are built.
