# Empty dependencies file for support_timeseries_test.
# This may be replaced when dependencies are built.
