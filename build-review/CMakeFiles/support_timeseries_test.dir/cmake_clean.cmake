file(REMOVE_RECURSE
  "CMakeFiles/support_timeseries_test.dir/tests/support/timeseries_test.cpp.o"
  "CMakeFiles/support_timeseries_test.dir/tests/support/timeseries_test.cpp.o.d"
  "support_timeseries_test"
  "support_timeseries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_timeseries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
