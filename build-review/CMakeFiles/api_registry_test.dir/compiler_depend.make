# Empty compiler generated dependencies file for api_registry_test.
# This may be replaced when dependencies are built.
