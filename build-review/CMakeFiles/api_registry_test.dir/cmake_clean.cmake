file(REMOVE_RECURSE
  "CMakeFiles/api_registry_test.dir/tests/api/registry_test.cpp.o"
  "CMakeFiles/api_registry_test.dir/tests/api/registry_test.cpp.o.d"
  "api_registry_test"
  "api_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
