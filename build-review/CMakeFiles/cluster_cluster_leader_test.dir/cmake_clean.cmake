file(REMOVE_RECURSE
  "CMakeFiles/cluster_cluster_leader_test.dir/tests/cluster/cluster_leader_test.cpp.o"
  "CMakeFiles/cluster_cluster_leader_test.dir/tests/cluster/cluster_leader_test.cpp.o.d"
  "cluster_cluster_leader_test"
  "cluster_cluster_leader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_cluster_leader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
