# Empty compiler generated dependencies file for cluster_cluster_leader_test.
# This may be replaced when dependencies are built.
