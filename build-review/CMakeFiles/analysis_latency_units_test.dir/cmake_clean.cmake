file(REMOVE_RECURSE
  "CMakeFiles/analysis_latency_units_test.dir/tests/analysis/latency_units_test.cpp.o"
  "CMakeFiles/analysis_latency_units_test.dir/tests/analysis/latency_units_test.cpp.o.d"
  "analysis_latency_units_test"
  "analysis_latency_units_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_latency_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
