file(REMOVE_RECURSE
  "CMakeFiles/support_histogram_test.dir/tests/support/histogram_test.cpp.o"
  "CMakeFiles/support_histogram_test.dir/tests/support/histogram_test.cpp.o.d"
  "support_histogram_test"
  "support_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
