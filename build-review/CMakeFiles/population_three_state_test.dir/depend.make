# Empty dependencies file for population_three_state_test.
# This may be replaced when dependencies are built.
