# Empty dependencies file for sync_schedule_test.
# This may be replaced when dependencies are built.
