file(REMOVE_RECURSE
  "CMakeFiles/sync_schedule_test.dir/tests/sync/schedule_test.cpp.o"
  "CMakeFiles/sync_schedule_test.dir/tests/sync/schedule_test.cpp.o.d"
  "sync_schedule_test"
  "sync_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
