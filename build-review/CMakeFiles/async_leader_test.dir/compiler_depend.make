# Empty compiler generated dependencies file for async_leader_test.
# This may be replaced when dependencies are built.
