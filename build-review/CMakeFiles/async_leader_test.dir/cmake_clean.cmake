file(REMOVE_RECURSE
  "CMakeFiles/async_leader_test.dir/tests/async/leader_test.cpp.o"
  "CMakeFiles/async_leader_test.dir/tests/async/leader_test.cpp.o.d"
  "async_leader_test"
  "async_leader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_leader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
