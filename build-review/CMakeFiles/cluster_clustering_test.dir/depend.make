# Empty dependencies file for cluster_clustering_test.
# This may be replaced when dependencies are built.
