file(REMOVE_RECURSE
  "CMakeFiles/cluster_clustering_test.dir/tests/cluster/clustering_test.cpp.o"
  "CMakeFiles/cluster_clustering_test.dir/tests/cluster/clustering_test.cpp.o.d"
  "cluster_clustering_test"
  "cluster_clustering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
