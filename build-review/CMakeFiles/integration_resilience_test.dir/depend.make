# Empty dependencies file for integration_resilience_test.
# This may be replaced when dependencies are built.
