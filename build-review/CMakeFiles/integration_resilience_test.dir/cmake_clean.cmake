file(REMOVE_RECURSE
  "CMakeFiles/integration_resilience_test.dir/tests/integration/resilience_test.cpp.o"
  "CMakeFiles/integration_resilience_test.dir/tests/integration/resilience_test.cpp.o.d"
  "integration_resilience_test"
  "integration_resilience_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
