# Empty dependencies file for support_csv_test.
# This may be replaced when dependencies are built.
