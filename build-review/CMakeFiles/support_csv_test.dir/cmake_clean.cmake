file(REMOVE_RECURSE
  "CMakeFiles/support_csv_test.dir/tests/support/csv_test.cpp.o"
  "CMakeFiles/support_csv_test.dir/tests/support/csv_test.cpp.o.d"
  "support_csv_test"
  "support_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
