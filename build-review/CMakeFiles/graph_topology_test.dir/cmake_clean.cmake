file(REMOVE_RECURSE
  "CMakeFiles/graph_topology_test.dir/tests/graph/topology_test.cpp.o"
  "CMakeFiles/graph_topology_test.dir/tests/graph/topology_test.cpp.o.d"
  "graph_topology_test"
  "graph_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
