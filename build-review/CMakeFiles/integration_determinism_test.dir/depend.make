# Empty dependencies file for integration_determinism_test.
# This may be replaced when dependencies are built.
