file(REMOVE_RECURSE
  "CMakeFiles/integration_determinism_test.dir/tests/integration/determinism_test.cpp.o"
  "CMakeFiles/integration_determinism_test.dir/tests/integration/determinism_test.cpp.o.d"
  "integration_determinism_test"
  "integration_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
