# Empty dependencies file for sync_thread_equivalence_test.
# This may be replaced when dependencies are built.
