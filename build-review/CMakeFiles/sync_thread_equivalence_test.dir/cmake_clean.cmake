file(REMOVE_RECURSE
  "CMakeFiles/sync_thread_equivalence_test.dir/tests/sync/thread_equivalence_test.cpp.o"
  "CMakeFiles/sync_thread_equivalence_test.dir/tests/sync/thread_equivalence_test.cpp.o.d"
  "sync_thread_equivalence_test"
  "sync_thread_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_thread_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
