file(REMOVE_RECURSE
  "CMakeFiles/support_thread_pool_test.dir/tests/support/thread_pool_test.cpp.o"
  "CMakeFiles/support_thread_pool_test.dir/tests/support/thread_pool_test.cpp.o.d"
  "support_thread_pool_test"
  "support_thread_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
