# Empty compiler generated dependencies file for population_four_state_test.
# This may be replaced when dependencies are built.
