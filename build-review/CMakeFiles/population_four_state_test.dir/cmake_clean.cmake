file(REMOVE_RECURSE
  "CMakeFiles/population_four_state_test.dir/tests/population/four_state_test.cpp.o"
  "CMakeFiles/population_four_state_test.dir/tests/population/four_state_test.cpp.o.d"
  "population_four_state_test"
  "population_four_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_four_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
