file(REMOVE_RECURSE
  "CMakeFiles/graph_dynamics_test.dir/tests/graph/dynamics_test.cpp.o"
  "CMakeFiles/graph_dynamics_test.dir/tests/graph/dynamics_test.cpp.o.d"
  "graph_dynamics_test"
  "graph_dynamics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
