# Empty compiler generated dependencies file for graph_dynamics_test.
# This may be replaced when dependencies are built.
