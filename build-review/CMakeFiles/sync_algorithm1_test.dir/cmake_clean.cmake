file(REMOVE_RECURSE
  "CMakeFiles/sync_algorithm1_test.dir/tests/sync/algorithm1_test.cpp.o"
  "CMakeFiles/sync_algorithm1_test.dir/tests/sync/algorithm1_test.cpp.o.d"
  "sync_algorithm1_test"
  "sync_algorithm1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_algorithm1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
