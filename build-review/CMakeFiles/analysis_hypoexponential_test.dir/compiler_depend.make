# Empty compiler generated dependencies file for analysis_hypoexponential_test.
# This may be replaced when dependencies are built.
