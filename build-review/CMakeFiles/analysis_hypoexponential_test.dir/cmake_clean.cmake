file(REMOVE_RECURSE
  "CMakeFiles/analysis_hypoexponential_test.dir/tests/analysis/hypoexponential_test.cpp.o"
  "CMakeFiles/analysis_hypoexponential_test.dir/tests/analysis/hypoexponential_test.cpp.o.d"
  "analysis_hypoexponential_test"
  "analysis_hypoexponential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_hypoexponential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
