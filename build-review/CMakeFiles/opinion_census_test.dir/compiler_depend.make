# Empty compiler generated dependencies file for opinion_census_test.
# This may be replaced when dependencies are built.
