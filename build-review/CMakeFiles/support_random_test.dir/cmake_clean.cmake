file(REMOVE_RECURSE
  "CMakeFiles/support_random_test.dir/tests/support/random_test.cpp.o"
  "CMakeFiles/support_random_test.dir/tests/support/random_test.cpp.o.d"
  "support_random_test"
  "support_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
