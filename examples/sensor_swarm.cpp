/// \file sensor_swarm.cpp
/// Domain example: a swarm of battery-powered sensors must agree on the
/// dominant classification of an observed event (e.g. "which direction did
/// the target move"). Sensors wake up asynchronously (Poisson clocks),
/// radio-link setup takes non-trivial, *positively aging* time (TDMA slot
/// acquisition ≈ uniform latency), and no central coordinator exists — the
/// decentralized multi-leader protocol (paper §4) is the right fit.
///
/// The measurement noise is modelled by a Zipf-distributed initial opinion
/// split: the true class is observed most often, confusable classes less so.

#include <iostream>

#include "cluster/simulation.hpp"
#include "opinion/assignment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;

    const std::size_t sensors = 8192;
    const std::uint32_t classes = 6;

    std::cout << "sensor_swarm: " << sensors << " sensors voting among "
              << classes << " event classes (decentralized, no coordinator)\n\n";

    // Noisy observations: Zipf(0.9) => the true class 0 leads class 1 by
    // roughly 1.9 : 1, with a tail of confusions.
    Rng workload_rng(0x5EA5);
    const Assignment observations = make_zipf(sensors, classes, 0.9, workload_rng);

    {
        Table table({"class", "observations", "share"});
        std::vector<std::size_t> counts(classes, 0);
        for (const Opinion op : observations.opinions) ++counts[op];
        for (std::uint32_t j = 0; j < classes; ++j) {
            table.row().add(j).add(counts[j]).add(
                static_cast<double>(counts[j]) / sensors, 3);
        }
        std::cout << "initial observation distribution:\n";
        table.print(std::cout);
    }

    cluster::ClusterConfig config;
    config.size_floor = 24;              // clusters of >= 24 sensors
    config.leader_probability = 1.0 / 96.0;
    config.alpha_hint = 1.8;             // known sensor confusion matrix gap
    config.max_time = 2500.0;

    // Phase 1: self-organize into clusters (Theorem 27).
    Rng clustering_rng(0x5EA6);
    cluster::ClusteringResult clustering =
        cluster::run_clustering(sensors, config, clustering_rng);
    std::cout << "\nclustering: " << clustering.num_active
              << " active clusters covering "
              << format_double(100.0 * clustering.fraction_clustered, 1)
              << "% of sensors, formed in "
              << format_double(clustering.elapsed, 1) << " time steps\n";

    // Phase 2: generation-based plurality consensus (Algorithms 4+5).
    cluster::MultiLeaderSimulation simulation(observations, std::move(clustering),
                                              config, 0x5EA7);
    const cluster::MultiLeaderResult result = simulation.run();

    std::cout << "consensus:  " << (result.converged ? "reached" : "NOT reached")
              << " on class " << result.winner
              << (result.plurality_won ? " (the true plurality)" : "") << "\n";
    std::cout << "98% of sensors agreed at   t = "
              << format_double(result.epsilon_time, 1) << "\n";
    std::cout << "all sensors agreed at      t = "
              << format_double(result.consensus_time, 1) << "\n";
    std::cout << "total including clustering t = "
              << format_double(result.total_time(), 1) << " time steps\n\n";
    std::cout << "support of the true class over the consensus phase:\n  "
              << runner::sparkline(result.plurality_fraction) << "\n";
    return result.converged && result.plurality_won ? 0 : 1;
}
