/// \file protocol_comparison.cpp
/// Side-by-side comparison of every consensus dynamics in the library on
/// one shared workload — written entirely against the declarative api
/// layer: a protocol is a name in a Scenario, a family comparison is a
/// Sweep over the "protocol" axis, and no engine header is included.

#include <iostream>
#include <string>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;

    api::Scenario base;
    base.n = 8192;
    base.k = 4;
    base.alpha = 1.7;
    base.record_series = false;

    std::cout << "protocol_comparison: n = " << base.n << ", k = " << base.k
              << ", multiplicative bias = " << base.alpha << "\n\n";

    runner::print_heading(std::cout,
                          "synchronous dynamics (rounds, mean of 3 trials)");
    {
        // One declarative sweep over the protocol axis replaces the old
        // hand-rolled factory switch.
        api::Sweep sweep;
        sweep.base = base;
        sweep.base.max_steps = 20000;
        sweep.axes = {
            {"protocol", {"sync", "two-choices", "3-majority", "undecided",
                          "pull"}}};
        sweep.reps = 3;
        sweep.base_seed = 0xCAFE;
        const api::SweepResult grid = api::run_sweep(sweep);

        Table table({"protocol", "rounds (mean)", "converged", "plurality won"});
        for (const api::SweepCell& cell : grid.cells) {
            table.row()
                .add(cell.coordinates.front().second)
                .add(cell.outcome.mean("steps"), 0)
                .add(cell.outcome.mean("converged"), 2)
                .add(cell.outcome.mean("plurality_won"), 2);
        }
        table.print(std::cout);
    }

    runner::print_heading(std::cout, "asynchronous protocols (time steps)");
    {
        Table table({"protocol", "eps-time", "consensus", "plurality won"});
        for (const std::string& protocol : {std::string("async"),
                                            std::string("multi")}) {
            api::Scenario scenario = base;
            scenario.protocol = protocol;
            scenario.max_time = 2500.0;
            const api::ScenarioResult r =
                api::run(scenario, protocol == "async" ? 0xD00D : 0xD00E);
            table.row()
                .add(protocol == "async" ? "single-leader (Alg. 2+3)"
                                         : "multi-leader (Alg. 4+5)")
                .add(r.run.epsilon_time, 1)
                .add(r.run.consensus_time, 1)
                .add(r.run.plurality_won ? "yes" : "no");
        }
        table.print(std::cout);
    }

    runner::print_heading(std::cout,
                          "population protocols (k = 2 slice, parallel time)");
    {
        // Restrict to two opinions with the same 1.7 : 1 ratio.
        api::Scenario scenario = base;
        scenario.k = 2;
        Table table({"protocol", "parallel time", "winner ok"});
        {
            scenario.protocol = "pp-3-state";
            const api::ScenarioResult r = api::run(scenario, 0xD010);
            table.row()
                .add("3-state approximate majority")
                .add(r.run.end_time, 1)
                .add(r.run.converged && r.run.winner == 0 ? "yes" : "no");
        }
        {
            scenario.protocol = "pp-4-state";
            scenario.max_steps =
                static_cast<std::uint64_t>(scenario.n) * scenario.n * 4;
            const api::ScenarioResult r = api::run(scenario, 0xD011);
            table.row()
                .add("4-state exact majority")
                .add(r.run.end_time, 1)
                .add(r.run.converged && r.run.winner == 0 ? "yes" : "no");
        }
        table.print(std::cout);
    }

    std::cout << "\nSee bench/exp_baseline_comparison for the full sweeps"
                 " behind this snapshot.\n";
    return 0;
}
