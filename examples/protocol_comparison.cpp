/// \file protocol_comparison.cpp
/// Side-by-side demonstration of every consensus dynamics in the library on
/// one shared workload: the paper's Algorithm 1 and the four synchronous
/// baselines, plus the asynchronous single-leader and multi-leader
/// protocols and the two population protocols (for k = 2).

#include <iostream>
#include <memory>

#include "async/simulation.hpp"
#include "cluster/simulation.hpp"
#include "opinion/assignment.hpp"
#include "population/four_state.hpp"
#include "population/three_state.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"

int main() {
    using namespace papc;

    const std::size_t n = 8192;
    const std::uint32_t k = 4;
    const double alpha = 1.7;

    std::cout << "protocol_comparison: n = " << n << ", k = " << k
              << ", multiplicative bias = " << alpha << "\n\n";

    runner::print_heading(std::cout, "synchronous dynamics (rounds)");
    {
        Table table({"protocol", "rounds", "winner", "plurality won"});
        for (int which = 0; which < 5; ++which) {
            Rng rng(derive_seed(0xCAFE, which));
            const Assignment a = make_biased_plurality(n, k, alpha, rng);
            std::unique_ptr<sync::SyncDynamics> dyn;
            if (which == 0) {
                sync::ScheduleParams sp;
                sp.n = n;
                sp.k = k;
                sp.alpha = alpha;
                dyn = std::make_unique<sync::Algorithm1>(a, sync::Schedule(sp));
            } else if (which == 1) {
                dyn = std::make_unique<sync::TwoChoices>(a);
            } else if (which == 2) {
                dyn = std::make_unique<sync::ThreeMajority>(a);
            } else if (which == 3) {
                dyn = std::make_unique<sync::UndecidedState>(a);
            } else {
                dyn = std::make_unique<sync::PullVoting>(a);
            }
            sync::RunOptions opts;
            opts.max_rounds = 20000;
            const sync::SyncResult r = run_to_consensus(*dyn, rng, opts);
            table.row()
                .add(dyn->name())
                .add(r.converged ? std::to_string(r.steps)
                                 : ">" + std::to_string(opts.max_rounds))
                .add(r.winner)
                .add(r.converged && r.winner == 0 ? "yes" : "no");
        }
        table.print(std::cout);
    }

    runner::print_heading(std::cout, "asynchronous protocols (time steps)");
    {
        Table table({"protocol", "eps-time", "consensus", "plurality won"});
        async::AsyncConfig ac;
        ac.alpha_hint = alpha;
        ac.max_time = 2500.0;
        ac.record_series = false;
        const async::AsyncResult sl =
            async::run_single_leader(n, k, alpha, ac, 0xD00D);
        table.row()
            .add("single-leader (Alg. 2+3)")
            .add(sl.epsilon_time, 1)
            .add(sl.consensus_time, 1)
            .add(sl.plurality_won ? "yes" : "no");

        cluster::ClusterConfig cc;
        cc.size_floor = 24;
        cc.leader_probability = 1.0 / 96.0;
        cc.alpha_hint = alpha;
        cc.max_time = 2500.0;
        cc.record_series = false;
        const cluster::MultiLeaderResult ml =
            cluster::run_multi_leader(n, k, alpha, cc, 0xD00E);
        table.row()
            .add("multi-leader (Alg. 4+5)")
            .add(ml.epsilon_time, 1)
            .add(ml.consensus_time, 1)
            .add(ml.plurality_won ? "yes" : "no");
        table.print(std::cout);
    }

    runner::print_heading(std::cout,
                          "population protocols (k = 2 slice, parallel time)");
    {
        // Restrict to two opinions with the same 1.7 : 1 ratio.
        const auto a_count = static_cast<std::size_t>(n * alpha / (1 + alpha));
        const std::size_t b_count = n - a_count;
        Table table({"protocol", "parallel time", "winner ok"});
        {
            population::ThreeStateMajority p(a_count, b_count);
            Rng rng(0xD010);
            const population::PopulationResult r = run_population(p, rng);
            table.row()
                .add("3-state approximate majority")
                .add(r.end_time, 1)
                .add(r.converged && r.winner == 0 ? "yes" : "no");
        }
        {
            population::FourStateExactMajority p(a_count, b_count);
            Rng rng(0xD011);
            population::PopulationRunOptions opts;
            opts.max_interactions = static_cast<std::uint64_t>(n) * n * 4;
            const population::PopulationResult r = run_population(p, rng, opts);
            table.row()
                .add("4-state exact majority")
                .add(r.end_time, 1)
                .add(r.converged && r.winner == 0 ? "yes" : "no");
        }
        table.print(std::cout);
    }

    std::cout << "\nSee bench/exp_baseline_comparison for the full sweeps"
                 " behind this snapshot.\n";
    return 0;
}
