/// \file p2p_version_choice.cpp
/// Domain example: a peer-to-peer overlay has to converge on one protocol
/// version among several candidates rolled out by different vendors. Peers
/// contact random other peers, but *establishing* a connection dominates
/// the cost (random-walk peer sampling, NAT traversal, TLS handshake — the
/// exact motivation the paper gives for edge latencies, §3.1). A tracker
/// acts as the designated leader of Algorithms 2+3.
///
/// The example compares three latency regimes on the same rollout state and
/// demonstrates that, measured in *time units*, the protocol's behaviour is
/// latency-independent.

#include <iostream>

#include "async/simulation.hpp"
#include "opinion/assignment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;

    const std::size_t peers = 20000;
    const std::uint32_t versions = 4;
    const double alpha = 1.6;  // version 0 leads the runner-up 1.6 : 1

    std::cout << "p2p_version_choice: " << peers << " peers, " << versions
              << " candidate versions, tracker-coordinated\n";
    std::cout << "rollout shares: v0 leads every rival " << alpha << " : 1\n\n";

    Table table({"handshake latency (mean steps)", "C1 steps/unit",
                 "99% agreement", "full agreement", "agreement in time units",
                 "chosen"});

    for (const double mean_latency : {0.2, 1.0, 5.0}) {
        Rng workload_rng(0x9EE5);  // same rollout for every regime
        const Assignment rollout =
            make_biased_plurality(peers, versions, alpha, workload_rng);

        async::AsyncConfig config;
        config.lambda = 1.0 / mean_latency;
        config.alpha_hint = alpha;
        config.epsilon = 0.01;
        config.max_time = 4000.0;

        async::SingleLeaderSimulation simulation(rollout, config, 0x9EE6);
        const async::AsyncResult r = simulation.run();

        table.row()
            .add(mean_latency, 1)
            .add(r.steps_per_unit, 2)
            .add(r.epsilon_time, 1)
            .add(r.consensus_time, 1)
            .add(r.epsilon_time / r.steps_per_unit, 2)
            .add("v" + std::to_string(r.winner) +
                 (r.plurality_won ? " (leader)" : ""));
    }
    table.print(std::cout);

    std::cout << "\nReading: raw agreement times scale with the handshake"
                 " latency, but the\n'time units' column is nearly constant —"
                 " the protocol pays a fixed number\nof communication rounds"
                 " regardless of how slow connections are.\n";
    return 0;
}
