/// \file latency_explorer.cpp
/// Explores the latency-model toolkit behind the paper's time-unit
/// analysis (§3.1): for each model it prints the aging class, the mean, a
/// T3 histogram (the full good-tick round trip), the measured C1 =
/// F^{-1}(0.9) and, for the exponential model, the exact value and the
/// Remark-14 bounds.

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/gamma.hpp"
#include "support/stats.hpp"
#include "analysis/latency_units.hpp"
#include "runner/report.hpp"
#include "support/histogram.hpp"
#include "support/random.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;

    runner::print_banner(std::cout, "latency_explorer: time units per model");

    std::vector<std::unique_ptr<sim::LatencyModel>> models;
    models.push_back(std::make_unique<sim::ExponentialLatency>(1.0));
    models.push_back(std::make_unique<sim::ConstantLatency>(1.0));
    models.push_back(std::make_unique<sim::UniformLatency>(0.0, 2.0));
    models.push_back(std::make_unique<sim::GammaLatency>(4.0, 0.25));
    models.push_back(std::make_unique<sim::WeibullLatency>(2.0, 1.128379));
    models.push_back(std::make_unique<sim::WeibullLatency>(0.5, 0.5));
    models.push_back(std::make_unique<sim::LogNormalLatency>(-1.125, 1.5));

    Table table({"model", "aging", "mean T2", "C1 = q90(T3)", "q50(T3)",
                 "q99(T3)"});
    Rng rng(0x1A7E);
    for (const auto& model : models) {
        std::vector<double> draws(100000);
        Rng local = rng.split();
        for (double& d : draws) d = analysis::sample_t3(*model, local);
        std::sort(draws.begin(), draws.end());
        table.row()
            .add(model->name())
            .add(sim::to_string(model->aging()))
            .add(model->mean(), 3)
            .add(quantile_sorted(draws, 0.9), 2)
            .add(quantile_sorted(draws, 0.5), 2)
            .add(quantile_sorted(draws, 0.99), 2);
    }
    table.print(std::cout);

    runner::print_heading(std::cout,
                          "exponential model: exact vs Remark 14 bounds");
    std::cout << "exact C1 = F^-1(0.9)      = "
              << format_double(analysis::steps_per_unit_exact(1.0), 4) << "\n";
    std::cout << "Gamma(7, beta) 0.9-quant. = "
              << format_double(analysis::gamma_quantile(7.0, 1.0, 0.9), 4)
              << "\n";
    std::cout << "(0.9 * 7!)^(1/7) / beta   = "
              << format_double(analysis::remark14_c1_exact(1.0), 4) << "\n";
    std::cout << "10 / (3 beta)             = "
              << format_double(analysis::remark14_c1_bound(1.0), 4) << "\n";
    std::cout << "E[T3] = 1 + 5/lambda      = "
              << format_double(analysis::t3_mean_exponential(1.0), 4) << "\n";

    runner::print_heading(std::cout, "T3 histogram, Exponential(1) latencies");
    Histogram hist(0.0, 20.0, 24);
    const sim::ExponentialLatency exponential(1.0);
    for (int i = 0; i < 200000; ++i) {
        hist.add(analysis::sample_t3(exponential, rng));
    }
    std::cout << hist.render(46);

    std::cout << "\nReading: positive-aging models have *bounded or light*"
                 " T3 tails (q99\nclose to q90); negative-aging models pay"
                 " their heavy tail exactly where\nthe protocol hurts —"
                 " stalled channel establishments.\n";
    return 0;
}
