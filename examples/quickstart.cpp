/// \file quickstart.cpp
/// Minimal end-to-end use of the papc public API: describe a run as an
/// api::Scenario, execute it with api::run, inspect the unified result —
/// and dump the whole thing as JSON for machines.
///
///   $ ./quickstart

#include <iostream>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "runner/report.hpp"
#include "support/json_writer.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;

    // 10,000 nodes, 5 opinions, opinion 0 leads every rival 1.8 : 1,
    // asynchronous single-leader protocol (the paper's Algorithms 2+3).
    api::Scenario scenario;
    scenario.protocol = "async";
    scenario.n = 10000;
    scenario.k = 5;
    scenario.alpha = 1.8;
    scenario.lambda = 1.0;  // mean channel-establishment latency = 1 step

    std::cout << "papc quickstart: " << scenario.n << " nodes, " << scenario.k
              << " opinions, bias " << scenario.alpha << "\n\n";

    const api::ScenarioResult result = api::run(scenario, /*seed=*/2020);

    std::cout << "converged:        "
              << (result.run.converged ? "yes" : "no") << "\n";
    std::cout << "winning opinion:  " << result.run.winner
              << (result.run.plurality_won ? "  (the initial plurality)" : "")
              << "\n";
    std::cout << "98%-convergence:  t = "
              << format_double(result.run.epsilon_time, 1) << " time steps\n";
    std::cout << "full consensus:   t = "
              << format_double(result.run.consensus_time, 1)
              << " time steps\n";
    std::cout << "generations used: "
              << result.extras.at("final_top_generation") << "\n";
    std::cout << "exchanges:        " << result.extras.at("exchanges") << " ("
              << result.extras.at("two_choices") << " two-choices, "
              << result.extras.at("propagation")
              << " propagation promotions)\n\n";

    std::cout << "plurality support over time:\n  "
              << runner::sparkline(result.run.plurality_fraction) << "\n\n";

    // The same result, machine-readable (series downsampled so the demo
    // stays readable; drop the downsample for real pipelines).
    api::ScenarioResult for_json = result;
    for_json.run.plurality_fraction =
        result.run.plurality_fraction.downsample(6);
    JsonWriter writer;
    api::write_json(writer, scenario, 2020, for_json);
    std::cout << "as JSON:\n" << writer.str();

    return result.run.converged && result.run.plurality_won ? 0 : 1;
}
