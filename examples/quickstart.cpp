/// \file quickstart.cpp
/// Minimal end-to-end use of the papc public API: build a biased workload,
/// run the paper's asynchronous single-leader protocol, inspect the result.
///
///   $ ./quickstart

#include <iostream>

#include "async/simulation.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;

    // 10,000 nodes, 5 opinions, opinion 0 leads every rival 1.8 : 1.
    const std::size_t n = 10000;
    const std::uint32_t k = 5;
    const double alpha = 1.8;

    async::AsyncConfig config;
    config.lambda = 1.0;       // mean channel-establishment latency = 1 step
    config.alpha_hint = alpha; // nodes know (a lower bound on) the bias

    std::cout << "papc quickstart: " << n << " nodes, " << k
              << " opinions, bias " << alpha << "\n\n";

    const async::AsyncResult result =
        async::run_single_leader(n, k, alpha, config, /*seed=*/2020);

    std::cout << "converged:        " << (result.converged ? "yes" : "no") << "\n";
    std::cout << "winning opinion:  " << result.winner
              << (result.plurality_won ? "  (the initial plurality)" : "") << "\n";
    std::cout << "98%-convergence:  t = " << format_double(result.epsilon_time, 1)
              << " time steps\n";
    std::cout << "full consensus:   t = "
              << format_double(result.consensus_time, 1) << " time steps\n";
    std::cout << "generations used: " << result.final_top_generation << "\n";
    std::cout << "exchanges:        " << result.exchanges << " ("
              << result.two_choices_count << " two-choices, "
              << result.propagation_count << " propagation promotions)\n\n";

    std::cout << "plurality support over time:\n  "
              << runner::sparkline(result.plurality_fraction) << "\n";
    std::cout << "leader generation over time:\n  "
              << runner::sparkline(result.leader_generation) << "\n";
    return result.converged && result.plurality_won ? 0 : 1;
}
