/// \file papc_cli.cpp
/// Command-line front end for the whole library: pick a protocol, a
/// workload and parameters; optionally dump the convergence time series to
/// CSV for external plotting.
///
///   papc_cli --protocol async --n 20000 --k 5 --alpha 1.8 --lambda 1
///            --seed 7 --csv run.csv
///
/// Protocols: sync (Algorithm 1), async (Algorithms 2+3), multi
/// (Algorithms 4+5), two-choices, 3-majority, undecided, pull,
/// validated (the §5 message-latency variant).

#include <iostream>
#include <memory>
#include <optional>

#include "analysis/theory.hpp"
#include "async/sequential_simulation.hpp"
#include "async/simulation.hpp"
#include "async/validated_simulation.hpp"
#include "cluster/simulation.hpp"
#include "opinion/assignment.hpp"
#include "runner/report.hpp"
#include "sim/queue_kind.hpp"
#include "support/args.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"

namespace {

using namespace papc;

void usage() {
    std::cout <<
        "papc_cli — plurality consensus protocols from Bankhamer et al., "
        "PODC 2020\n\n"
        "  --protocol  sync | async | multi | validated | sequential |\n"
        "              two-choices | 3-majority | undecided | pull\n"
        "                                                  (default async)\n"
        "  --n         population size                      (default 10000)\n"
        "  --k         number of opinions                   (default 4)\n"
        "  --alpha     initial multiplicative bias          (default 1.8)\n"
        "  --workload  biased | zipf | gap | uniform        (default biased)\n"
        "  --lambda    channel-establishment rate (async)   (default 1.0)\n"
        "  --msg-rate  per-message rate (validated only)    (default 2.0)\n"
        "  --gamma     generation-density threshold (sync)  (default 0.5)\n"
        "  --epsilon   epsilon-convergence threshold        (default 0.02)\n"
        "  --seed      RNG seed                             (default 1)\n"
        "  --max-time  simulated-time cap (async)           (default 3000)\n"
        "  --queue     heap | calendar event queue (async)  (default heap)\n"
        "  --csv       write the plurality-fraction series to this file\n"
        "  --quiet     suppress the sparkline\n";
}

Assignment build_workload(const Args& args, std::size_t n, std::uint32_t k,
                          double alpha, Rng& rng) {
    const std::string workload = args.get("workload", "biased");
    if (workload == "zipf") return make_zipf(n, k, 1.0, rng);
    if (workload == "uniform") return make_uniform(n, k, rng);
    if (workload == "gap") {
        const auto gap = static_cast<std::size_t>(
            args.get_uint("gap", n / 10));
        return make_additive_gap(n, k, gap, rng);
    }
    return make_biased_plurality(n, k, alpha, rng);
}

int run_sync(const Args& args, const std::string& protocol, std::size_t n,
             std::uint32_t k, double alpha, std::uint64_t seed) {
    Rng rng(seed);
    Rng workload_rng(derive_seed(seed, 1));
    const Assignment a = build_workload(args, n, k, alpha, workload_rng);

    std::unique_ptr<sync::SyncDynamics> dyn;
    if (protocol == "sync") {
        sync::ScheduleParams sp;
        sp.n = n;
        sp.k = k;
        sp.alpha = std::max(alpha, 1.01);
        sp.gamma = args.get_double("gamma", 0.5);
        dyn = std::make_unique<sync::Algorithm1>(a, sync::Schedule(sp));
    } else if (protocol == "two-choices") {
        dyn = std::make_unique<sync::TwoChoices>(a);
    } else if (protocol == "3-majority") {
        dyn = std::make_unique<sync::ThreeMajority>(a);
    } else if (protocol == "undecided") {
        dyn = std::make_unique<sync::UndecidedState>(a);
    } else {
        dyn = std::make_unique<sync::PullVoting>(a);
    }

    sync::RunOptions opts;
    opts.max_rounds = args.get_uint("max-rounds", 50000);
    opts.record_every = 1;
    opts.epsilon = args.get_double("epsilon", 0.02);
    const sync::SyncResult r = run_to_consensus(*dyn, rng, opts);

    std::cout << dyn->name() << ": "
              << (r.converged ? "converged" : "round cap hit") << " after "
              << r.steps << " rounds; winner = opinion " << r.winner << "\n";
    if (r.epsilon_time >= 0.0) {
        std::cout << "  (1-eps)-agreement at round "
                  << format_double(r.epsilon_time, 0) << "\n";
    }
    if (!args.get_flag("quiet")) {
        std::cout << "  " << runner::sparkline(r.plurality_fraction) << "\n";
    }
    const std::string csv = args.get("csv", "");
    if (!csv.empty()) {
        CsvWriter writer(csv, {"round", "plurality_fraction"});
        for (const auto& p : r.plurality_fraction.points()) {
            writer.write_row(std::vector<double>{p.time, p.value});
        }
        std::cout << "  series written to " << csv << "\n";
    }
    return r.converged ? 0 : 2;
}

int run_async_family(const Args& args, const std::string& protocol,
                     std::size_t n, std::uint32_t k, double alpha,
                     std::uint64_t seed) {
    const double lambda = args.get_double("lambda", 1.0);
    TimeSeries series;
    bool converged = false;
    Opinion winner = 0;
    bool plurality_won = false;
    double eps_time = -1.0;
    double consensus_time = -1.0;

    const std::string queue_name = args.get("queue", "heap");
    const std::optional<sim::QueueKind> parsed_queue =
        sim::try_parse_queue_kind(queue_name);
    if (!parsed_queue.has_value()) {
        std::cerr << "unknown --queue '" << queue_name
                  << "' (expected heap or calendar)\n";
        return 1;
    }
    const sim::QueueKind queue_kind = *parsed_queue;

    if (protocol == "multi") {
        cluster::ClusterConfig c;
        c.lambda = lambda;
        c.alpha_hint = std::max(alpha, 1.05);
        c.epsilon = args.get_double("epsilon", 0.02);
        c.max_time = args.get_double("max-time", 3000.0);
        c.queue_kind = queue_kind;
        const cluster::MultiLeaderResult r =
            cluster::run_multi_leader(n, k, alpha, c, seed);
        std::cout << "multi-leader: clustering " << format_double(r.clustering_time, 1)
                  << " steps, " << r.clustering.num_active
                  << " active clusters covering "
                  << format_double(100.0 * r.clustering.fraction_clustered, 1)
                  << "% of nodes\n";
        series = r.plurality_fraction;
        converged = r.converged;
        winner = r.winner;
        plurality_won = r.plurality_won;
        eps_time = r.epsilon_time;
        consensus_time = r.consensus_time;
    } else if (protocol == "validated") {
        async::AsyncConfig c;
        c.lambda = lambda;
        c.alpha_hint = std::max(alpha, 1.05);
        c.epsilon = args.get_double("epsilon", 0.02);
        c.max_time = args.get_double("max-time", 3000.0);
        c.queue_kind = queue_kind;
        const async::ValidatedResult r = async::run_validated_single_leader(
            n, k, alpha, c, args.get_double("msg-rate", 2.0), seed);
        std::cout << "validated single-leader (Section 5 model): "
                  << r.commits << " commits, " << r.aborts << " aborts ("
                  << format_double(100.0 * r.abort_rate, 2) << "% aborted)\n";
        series = r.base.plurality_fraction;
        converged = r.base.converged;
        winner = r.base.winner;
        plurality_won = r.base.plurality_won;
        eps_time = r.base.epsilon_time;
        consensus_time = r.base.consensus_time;
    } else {
        async::AsyncConfig c;
        c.lambda = lambda;
        c.alpha_hint = std::max(alpha, 1.05);
        c.epsilon = args.get_double("epsilon", 0.02);
        c.max_time = args.get_double("max-time", 3000.0);
        c.queue_kind = queue_kind;
        const async::AsyncResult r =
            protocol == "sequential"
                ? async::run_sequential_single_leader(n, k, alpha, c, seed)
                : async::run_single_leader(n, k, alpha, c, seed);
        std::cout << (protocol == "sequential" ? "sequential (no latencies)"
                                               : "single-leader")
                  << ": C1 = " << format_double(r.steps_per_unit, 2)
                  << " steps/unit, " << r.exchanges << " exchanges\n";
        series = r.plurality_fraction;
        converged = r.converged;
        winner = r.winner;
        plurality_won = r.plurality_won;
        eps_time = r.epsilon_time;
        consensus_time = r.consensus_time;
    }

    std::cout << (converged ? "converged" : "time cap hit") << "; winner = opinion "
              << winner << (plurality_won ? " (initial plurality)" : "") << "\n";
    if (eps_time >= 0.0) {
        std::cout << "  (1-eps)-agreement at t = " << format_double(eps_time, 1)
                  << ", full consensus at t = "
                  << format_double(consensus_time, 1) << "\n";
    }
    if (!args.get_flag("quiet")) {
        std::cout << "  " << runner::sparkline(series) << "\n";
    }
    const std::string csv = args.get("csv", "");
    if (!csv.empty()) {
        CsvWriter writer(csv, {"time", "plurality_fraction"});
        for (const auto& p : series.points()) {
            writer.write_row(std::vector<double>{p.time, p.value});
        }
        std::cout << "  series written to " << csv << "\n";
    }
    return converged ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args(argc, argv);
    if (!args.ok()) {
        std::cerr << args.error() << "\n";
        usage();
        return 1;
    }
    if (args.get_flag("help")) {
        usage();
        return 0;
    }

    const std::string protocol = args.get("protocol", "async");
    const auto n = static_cast<std::size_t>(args.get_uint("n", 10000));
    const auto k = static_cast<std::uint32_t>(args.get_uint("k", 4));
    const double alpha = args.get_double("alpha", 1.8);
    const std::uint64_t seed = args.get_uint("seed", 1);

    std::cout << "papc_cli: protocol=" << protocol << " n=" << n << " k=" << k
              << " alpha=" << alpha << " seed=" << seed << "\n";

    const analysis::PreconditionReport preconditions =
        analysis::check_preconditions(n, k, alpha);
    if (!preconditions.k_in_range) {
        std::cout << "note: k exceeds the theorem regime (k <= "
                  << format_double(preconditions.k_bound, 1)
                  << " at this n); results are best-effort\n";
    }
    if (!preconditions.alpha_sufficient) {
        std::cout << "note: alpha is below the Theorem-1 bound "
                  << format_double(preconditions.alpha_threshold, 3)
                  << "; the plurality may lose\n";
    }

    int rc;
    if (protocol == "async" || protocol == "multi" || protocol == "validated" ||
        protocol == "sequential") {
        rc = run_async_family(args, protocol, n, k, alpha, seed);
    } else {
        rc = run_sync(args, protocol, n, k, alpha, seed);
    }
    for (const std::string& key : args.unused()) {
        std::cerr << "warning: unused option --" << key << "\n";
    }
    return rc;
}
