/// \file papc_cli.cpp
/// Command-line front end for the whole library, table-driven over the
/// api layer: every registered protocol is reachable by name, every
/// Scenario field is a flag, and results come out human-readable and/or
/// as machine-readable JSON.
///
///   papc_cli --list-protocols
///   papc_cli --protocol async --n 20000 --k 5 --alpha 1.8 --seed 7
///   papc_cli --protocol multi --json run.json
///   papc_cli --protocol two-choices --sweep "n=1000,10000;k=2..8"
///            --reps 5 --json sweep.json
///
/// Unknown flags are rejected (a typo like --lamda is an error, not a
/// silently ignored default).

#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/theory.hpp"
#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "runner/report.hpp"
#include "support/args.hpp"
#include "support/csv.hpp"
#include "support/json_writer.hpp"
#include "support/parse.hpp"
#include "support/table.hpp"

namespace {

using namespace papc;

void usage() {
    std::cout
        << "papc_cli — plurality consensus protocols from Bankhamer et al., "
           "PODC 2020\n\n"
           "Modes\n"
           "  --list-protocols      print every registered protocol and its "
           "knobs\n"
           "  --sweep SPEC          run a parameter sweep instead of a single "
           "run;\n"
           "                        SPEC is field=v1,v2,...;field=lo..hi "
           "(e.g. \"n=1000,10000;k=2..8\")\n\n"
           "Scenario fields (also sweep-axis names)\n";
    for (const std::string& field : api::scenario_field_names()) {
        api::Scenario defaults;
        std::cout << "  --" << field << ' ';
        for (std::size_t pad = field.size(); pad < 22; ++pad) std::cout << ' ';
        std::cout << api::field_help(field) << " (default "
                  << api::get_field(defaults, field) << ")\n";
    }
    std::cout << "\nRun options\n"
                 "  --seed N          RNG seed / sweep base seed (default 1)\n"
                 "  --reps N          trials per sweep cell (default 3)\n"
                 "  --sweep-threads N worker threads per sweep cell (default "
                 "1;\n"
                 "                    --threads above is intra-run sharding)\n"
                 "  --json FILE       write the result as JSON (\"-\" = "
                 "stdout)\n"
                 "  --csv FILE        write the plurality series to CSV "
                 "(single run)\n"
                 "  --quiet           suppress the sparkline\n"
                 "  --help            this text\n";
}

int list_protocols() {
    const api::ProtocolRegistry& registry = api::ProtocolRegistry::instance();
    for (const std::string& name : registry.names()) {
        const api::ProtocolInfo* info = registry.find(name);
        std::cout << name;
        for (std::size_t pad = name.size(); pad < 14; ++pad) std::cout << ' ';
        std::cout << "[" << info->family << "] " << info->description;
        if (info->max_k > 0) {
            std::cout << " (k = " << info->min_k
                      << (info->max_k == info->min_k
                              ? ""
                              : ".." + std::to_string(info->max_k))
                      << " only)";
        }
        std::cout << "\n";
        if (!info->knobs.empty()) {
            std::cout << "              knobs:";
            for (const std::string& knob : info->knobs) {
                std::cout << " --" << knob;
            }
            std::cout << "\n";
        }
        if (!info->extra_metrics.empty()) {
            std::cout << "              extras:";
            for (const std::string& metric : info->extra_metrics) {
                std::cout << " " << metric;
            }
            std::cout << "\n";
        }
    }
    return 0;
}

/// Writes a finished JSON document to `path` ("-" = stdout).
bool write_json_output(const std::string& path, const std::string& document) {
    if (path == "-") {
        std::cout << document;
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "papc_cli: cannot write " << path << "\n";
        return false;
    }
    out << document;
    std::cout << "  json written to " << path << "\n";
    return true;
}

int run_single(const api::Scenario& scenario, std::uint64_t seed,
               const std::string& json_path, const std::string& csv_path,
               bool quiet) {
    // With --json - the JSON document owns stdout; narration moves to
    // stderr so the output stays parseable.
    std::ostream& out = json_path == "-" ? std::cerr : std::cout;
    out << "papc_cli: protocol=" << scenario.protocol << " n=" << scenario.n
        << " k=" << scenario.k << " alpha=" << scenario.alpha << " workload="
        << api::to_string(scenario.workload) << " seed=" << seed << "\n";

    const analysis::PreconditionReport preconditions =
        analysis::check_preconditions(scenario.n, scenario.k, scenario.alpha);
    if (!preconditions.k_in_range) {
        out << "note: k exceeds the theorem regime (k <= "
            << format_double(preconditions.k_bound, 1)
            << " at this n); results are best-effort\n";
    }
    if (!preconditions.alpha_sufficient) {
        out << "note: alpha is below the Theorem-1 bound "
            << format_double(preconditions.alpha_threshold, 3)
            << "; the plurality may lose\n";
    }

    const api::ScenarioResult result = api::run(scenario, seed);
    const core::RunResult& run = result.run;

    out << (run.converged ? "converged" : "budget hit") << " after "
        << run.steps << " steps (end_time " << format_double(run.end_time, 1)
        << "); winner = opinion " << run.winner
        << (run.plurality_won ? " (initial plurality)" : "") << "\n";
    if (run.epsilon_time >= 0.0) {
        out << "  (1-eps)-agreement at t = "
            << format_double(run.epsilon_time, 1);
        if (run.consensus_time >= 0.0) {
            out << ", full consensus at t = "
                << format_double(run.consensus_time, 1);
        }
        out << "\n";
    }
    if (!result.extras.empty()) {
        out << "  extras:";
        for (const auto& [name, value] : result.extras) {
            out << " " << name << "=" << format_double(value, 3);
        }
        out << "\n";
    }
    if (!quiet && !run.plurality_fraction.empty()) {
        out << "  " << runner::sparkline(run.plurality_fraction) << "\n";
    }

    if (!csv_path.empty()) {
        CsvWriter writer(csv_path, {"time", "plurality_fraction"});
        for (const auto& p : run.plurality_fraction.points()) {
            writer.write_row(std::vector<double>{p.time, p.value});
        }
        out << "  series written to " << csv_path << "\n";
    }
    if (!json_path.empty()) {
        JsonWriter writer;
        api::write_json(writer, scenario, seed, result);
        if (!write_json_output(json_path, writer.str())) return 1;
    }
    return run.converged ? 0 : 2;
}

int run_sweep_mode(const api::Sweep& sweep, const std::string& json_path,
                   bool quiet) {
    // Same stdout discipline as run_single for --json -.
    std::ostream& out = json_path == "-" ? std::cerr : std::cout;
    const api::ProtocolRegistry& registry = api::ProtocolRegistry::instance();

    // Pre-flight every cell so a bad axis value is a clean error, not an
    // abort mid-sweep.
    std::vector<api::SweepCell> cells;
    const std::string expand_error = api::expand(sweep, &cells);
    if (!expand_error.empty()) {
        std::cerr << "papc_cli: " << expand_error << "\n";
        return 1;
    }
    for (const api::SweepCell& cell : cells) {
        for (const std::string& problem : registry.check(cell.scenario)) {
            std::cerr << "papc_cli: " << problem << " (cell";
            for (const auto& [field, value] : cell.coordinates) {
                std::cerr << " " << field << "=" << value;
            }
            std::cerr << ")\n";
            return 1;
        }
    }

    out << "papc_cli: sweeping " << cells.size() << " cells x " << sweep.reps
        << " reps (protocol " << sweep.base.protocol << ", base seed "
        << sweep.base_seed << ")\n";
    const api::SweepResult result = api::run_sweep(sweep);

    if (!quiet) {
        std::vector<std::string> headers = result.axis_names;
        headers.insert(headers.end(),
                       {"converged", "plurality won", "steps (mean)",
                        "consensus t (mean)"});
        Table table(headers);
        for (const api::SweepCell& cell : result.cells) {
            auto& row = table.row();
            for (const auto& [field, value] : cell.coordinates) {
                (void)field;
                row.add(value);
            }
            row.add(cell.outcome.mean("converged"), 2)
                .add(cell.outcome.mean("plurality_won"), 2)
                .add(cell.outcome.mean("steps"), 0)
                .add(cell.outcome.count("consensus_time") > 0
                         ? format_double(cell.outcome.mean("consensus_time"),
                                         1)
                         : std::string("-"));
        }
        table.print(out);
    }

    if (!json_path.empty()) {
        JsonWriter writer;
        api::write_json(writer, result);
        if (!write_json_output(json_path, writer.str())) return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args(argc, argv);
    if (!args.ok()) {
        std::cerr << "papc_cli: " << args.error() << "\n";
        usage();
        return 1;
    }
    if (args.get_flag("help")) {
        usage();
        return 0;
    }
    const bool list = args.get_flag("list-protocols");

    // Build the scenario through the shared field table: every Scenario
    // field is a flag of the same name.
    api::Scenario scenario;
    for (const std::string& field : api::scenario_field_names()) {
        if (!args.has(field)) continue;
        const std::string error =
            api::set_field(scenario, field, args.get(field, ""));
        if (!error.empty()) {
            std::cerr << "papc_cli: " << error << "\n";
            return 1;
        }
    }

    // CLI-only options. All of them take a value; a bare occurrence is a
    // mistake (e.g. "--sweep" with the spec forgotten), not a default, and
    // the numeric ones parse strictly ("--seed banana" is an error, not
    // seed 0) — the same contract the Scenario fields follow.
    for (const char* key : {"seed", "sweep", "reps", "sweep-threads", "json",
                            "csv"}) {
        if (args.has(key) && args.get(key, "").empty()) {
            std::cerr << "papc_cli: option --" << key
                      << " requires a value\n";
            return 1;
        }
    }
    const auto cli_u64 = [&args](const char* key, std::uint64_t fallback,
                                 std::uint64_t* value) {
        if (!args.has(key)) {
            *value = fallback;
            return true;
        }
        if (!try_parse_u64(args.get(key, ""), value)) {
            std::cerr << "papc_cli: invalid value '" << args.get(key, "")
                      << "' for option --" << key
                      << " (expected a non-negative integer)\n";
            return false;
        }
        return true;
    };
    std::uint64_t seed = 1;
    std::uint64_t reps_value = 3;
    std::uint64_t threads_value = 1;
    if (!cli_u64("seed", 1, &seed) || !cli_u64("reps", 3, &reps_value) ||
        !cli_u64("sweep-threads", 1, &threads_value)) {
        return 1;
    }
    const auto reps = static_cast<std::size_t>(reps_value);
    const auto threads = static_cast<std::size_t>(threads_value);
    const std::string sweep_spec = args.get("sweep", "");
    const std::string json_path = args.get("json", "");
    const std::string csv_path = args.get("csv", "");
    const bool quiet = args.get_flag("quiet");

    // --reps/--sweep-threads only mean something to a sweep; accepting
    // them on a single run would silently ignore them. (--threads is a
    // Scenario field — intra-run sharding — and valid everywhere.)
    if (sweep_spec.empty()) {
        for (const char* key : {"reps", "sweep-threads"}) {
            if (args.has(key)) {
                std::cerr << "papc_cli: option --" << key
                          << " requires --sweep\n";
                return 1;
            }
        }
    }

    // Everything else is a typo: fail fast instead of running a default.
    const std::string unknown = args.unknown_option_error();
    if (!unknown.empty()) {
        std::cerr << "papc_cli: " << unknown << " (see --help)\n";
        return 1;
    }

    if (list) return list_protocols();

    if (!sweep_spec.empty()) {
        // Migration note (PR 5): --threads used to mean sweep trial
        // workers and now means intra-run sharding (a Scenario field);
        // trial workers moved to --sweep-threads. Surface the change so
        // old scripts don't silently lose their parallelism.
        if (args.has("threads") && !args.has("sweep-threads")) {
            std::cerr << "papc_cli: note: --threads now sets intra-run "
                         "sharding (per-scenario); use --sweep-threads for "
                         "parallel sweep trials\n";
        }
        if (!csv_path.empty()) {
            // Rejected rather than silently dropped: the per-run series
            // CSV has no sweep analogue (use --json for the table).
            std::cerr << "papc_cli: --csv is not supported with --sweep\n";
            return 1;
        }
        const api::SweepSpecParse parsed = api::parse_sweep_spec(sweep_spec);
        if (!parsed.ok()) {
            std::cerr << "papc_cli: " << parsed.error << "\n";
            return 1;
        }
        api::Sweep sweep;
        sweep.base = scenario;
        // Bulk cells do not need series unless explicitly requested.
        if (!args.has("record-series")) sweep.base.record_series = false;
        sweep.axes = parsed.axes;
        sweep.reps = reps > 0 ? reps : 1;
        sweep.base_seed = seed;
        sweep.threads = threads;
        return run_sweep_mode(sweep, json_path, quiet);
    }

    const std::vector<std::string> problems =
        api::ProtocolRegistry::instance().check(scenario);
    if (!problems.empty()) {
        for (const std::string& problem : problems) {
            std::cerr << "papc_cli: " << problem << "\n";
        }
        return 1;
    }
    return run_single(scenario, seed, json_path, csv_path, quiet);
}
