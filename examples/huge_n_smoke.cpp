/// \file huge_n_smoke.cpp
/// Huge-n memory smoke (ISSUE 7 acceptance): run two-choices at
/// n = 2^24, k = 128 for a few rounds and hold the process to a
/// documented RSS budget, then an Algorithm 1 phase at n = 2^22 whose
/// k = 128 census rows exercise the sparse representation at scale.
///
/// The budget (asserted, non-zero exit on breach):
///
///   engine bytes/node (two-choices)  <= 4
///     k = 128 packs into 8-bit lanes: colors_ + next_colors_ are
///     2 x 16 MiB = 2 bytes/node; arenas, census, and sampler buffers
///     are O(k + threads), amortizing to noise. The pre-PR 7 unpacked
///     engine held 2 x 4-byte vectors = 8 bytes/node and fails this.
///
///   peak process RSS                 <= 160 MiB
///     Peak (not steady) includes the transient 64 MiB
///     Assignment::opinions vector materialized by the workload
///     generator before packing, plus the 32 MiB packed engine and
///     the later Algorithm 1 phase (2^22 x 2 x 8-byte state arrays +
///     16 MiB assignment = 80 MiB, under the phase-1 high water).
///     The unpacked engine peaked around 200 MiB on the same schedule.
///
///   $ ./huge_n_smoke
#include <sys/resource.h>

#include <cstddef>
#include <cstdint>
#include <iostream>

#include "opinion/assignment.hpp"
#include "support/cpu.hpp"
#include "support/random.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"

namespace {

double peak_rss_mib() {
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

bool check(bool ok, const char* what) {
    std::cout << (ok ? "  ok   " : "  FAIL ") << what << "\n";
    return ok;
}

}  // namespace

int main() {
    using namespace papc;

    constexpr std::size_t kHugeN = std::size_t{1} << 24U;
    constexpr std::uint32_t kK = 128;
    constexpr int kRounds = 3;
    constexpr double kPeakBudgetMib = 160.0;

    std::cout << "papc huge-n smoke: n = 2^24, k = " << kK << ", dispatch = "
              << support::simd_level_name(support::active_simd()) << "\n";

    bool ok = true;
    {
        Rng workload_rng(2024);
        const Assignment a = make_biased_plurality(kHugeN, kK, 1.5,
                                                   workload_rng);
        sync::TwoChoices dynamics(a, /*threads=*/2);
        Rng rng(2025);
        for (int round = 0; round < kRounds; ++round) dynamics.step(rng);

        const double bytes_per_node =
            static_cast<double>(dynamics.memory_bytes()) /
            static_cast<double>(kHugeN);
        std::cout << "two-choices engine: "
                  << dynamics.memory_bytes() / (1024 * 1024) << " MiB ("
                  << bytes_per_node << " bytes/node), peak RSS "
                  << peak_rss_mib() << " MiB\n";
        ok &= check(bytes_per_node <= 4.0, "engine bytes/node <= 4");
        std::uint64_t accounted = dynamics.undecided_count();
        for (Opinion j = 0; j < kK; ++j) accounted += dynamics.opinion_count(j);
        ok &= check(accounted == kHugeN,
                    "census still accounts for every node");
    }

    {
        // Sparse-census phase: k = 128 rows above the dense threshold.
        constexpr std::size_t kAlgN = std::size_t{1} << 22U;
        Rng workload_rng(2026);
        const Assignment a = make_biased_plurality(kAlgN, kK, 1.5,
                                                   workload_rng);
        sync::ScheduleParams sp;
        sp.n = kAlgN;
        sp.k = kK;
        sp.alpha = 1.5;
        sync::Algorithm1 alg(a, sync::Schedule(sp), /*threads=*/2);
        Rng rng(2027);
        for (int round = 0; round < 2 * kRounds; ++round) alg.step(rng);
        std::cout << "algorithm 1 engine: " << alg.memory_bytes() / (1024 * 1024)
                  << " MiB at n = 2^22, peak RSS " << peak_rss_mib()
                  << " MiB\n";
    }

    ok &= check(peak_rss_mib() <= kPeakBudgetMib, "peak RSS <= 160 MiB");
    std::cout << (ok ? "huge-n smoke passed\n" : "huge-n smoke FAILED\n");
    return ok ? 0 : 1;
}
