/// \file exp_async_single_leader.cpp
/// Experiment E4 — Theorem 13: the asynchronous single-leader protocol
/// ε-converges in O(log log_α k · log k + log log n) time and fully
/// converges after O(log n) more. Sweeps:
///   (a) time vs n at fixed k, α, λ — ε-time nearly flat, full-consensus
///       tail growing slowly (log n term);
///   (b) time vs 1/λ at fixed n — both times scale linearly with the mean
///       channel latency (time is measured in time *steps*; one time unit
///       is C1 = F^{-1}(0.9) steps).

#include <iostream>

#include "async/simulation.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

namespace {

using namespace papc;

runner::TrialMetrics one_trial(std::size_t n, std::uint32_t k, double alpha,
                               double lambda, std::uint64_t seed) {
    async::AsyncConfig c;
    c.lambda = lambda;
    c.alpha_hint = alpha;
    c.max_time = 3000.0;
    c.record_series = false;
    const async::AsyncResult r = async::run_single_leader(n, k, alpha, c, seed);
    // Unified metrics from the shared RunResult base, plus family extras.
    runner::TrialMetrics m = runner::metrics_from(r);
    m["success"] = r.plurality_won ? 1.0 : 0.0;
    if (r.consensus_time >= 0.0) {
        m["tail"] = r.consensus_time - std::max(0.0, r.epsilon_time);
    }
    m["steps_per_unit"] = r.steps_per_unit;
    return m;
}

}  // namespace

int main() {
    using namespace papc;
    runner::print_banner(std::cout,
                         "E4 (Theorem 13): async single-leader consensus time");

    {
        runner::print_heading(std::cout,
                              "(a) time vs n  [k = 4, alpha = 1.8, lambda = 1]");
        Table table({"n", "eps-time (mean)", "consensus (mean)",
                     "tail (consensus - eps)", "success"});
        std::uint64_t row = 0;
        for (const std::size_t n :
             {std::size_t{1} << 10, std::size_t{1} << 12, std::size_t{1} << 14,
              std::size_t{1} << 16, std::size_t{1} << 17}) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) { return one_trial(n, 4, 1.8, 1.0, s); }, 5,
                derive_seed(0xE401, row++), /*threads=*/4);
            table.row()
                .add(n)
                .add(o.mean("epsilon_time"), 1)
                .add(o.mean("consensus_time"), 1)
                .add(o.mean("tail"), 1)
                .add(o.mean("success"), 2);
        }
        table.print(std::cout);
        std::cout << "Expected: eps-time nearly flat in n; the tail grows"
                     " slowly (O(log n)).\n";
    }

    {
        runner::print_heading(std::cout,
                              "(b) time vs 1/lambda  [n = 2^14, k = 4, "
                              "alpha = 1.8]");
        Table table({"1/lambda", "steps/unit C1", "eps-time (mean)",
                     "consensus (mean)", "eps-time / C1  (time units)",
                     "success"});
        std::uint64_t row = 0;
        for (const double inv_lambda : {0.1, 1.0, 2.0, 5.0, 10.0}) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) {
                    return one_trial(1 << 14, 4, 1.8, 1.0 / inv_lambda, s);
                },
                5, derive_seed(0xE402, row++), /*threads=*/4);
            const double c1 = o.mean("steps_per_unit");
            table.row()
                .add(inv_lambda, 1)
                .add(c1, 2)
                .add(o.mean("epsilon_time"), 1)
                .add(o.mean("consensus_time"), 1)
                .add(o.mean("epsilon_time") / c1, 2)
                .add(o.mean("success"), 2);
        }
        table.print(std::cout);
        std::cout << "Expected: raw times scale with 1/lambda, but measured"
                     " in time units\n(eps-time / C1) the protocol takes a"
                     " latency-independent number of units.\n";
    }
    return 0;
}
