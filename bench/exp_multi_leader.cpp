/// \file exp_multi_leader.cpp
/// Experiment E5 — Theorems 26, 27 and 28: the decentralized protocol.
///   (a) Clustering (Thm 27): time to form clusters, fraction of nodes in
///       active clusters, and the switch-broadcast gap t_l - t_f = O(1).
///   (b) Broadcast (Thm 28): time to inform all cluster leaders, vs n.
///   (c) Full protocol (Thm 26): consensus time and success rate, vs n.

#include <iostream>

#include "cluster/broadcast.hpp"
#include "cluster/simulation.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

namespace {

using namespace papc;

cluster::ClusterConfig base_config() {
    cluster::ClusterConfig c;
    c.size_floor = 24;
    c.leader_probability = 1.0 / 96.0;
    c.alpha_hint = 2.0;
    c.max_time = 2500.0;
    c.record_series = false;
    return c;
}

}  // namespace

int main() {
    using namespace papc;
    runner::print_banner(std::cout,
                         "E5 (Theorems 26-28): decentralized multi-leader");

    const std::vector<std::size_t> ns = {1 << 12, 1 << 13, 1 << 14, 1 << 15,
                                         1 << 16};

    {
        runner::print_heading(std::cout, "(a) clustering phase (Theorem 27)");
        Table table({"n", "leaders", "active", "frac clustered",
                     "t_first_switch", "t_l - t_f", "elapsed"});
        std::uint64_t row = 0;
        for (const std::size_t n : ns) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) {
                    Rng rng(s);
                    const cluster::ClusteringResult r =
                        run_clustering(n, base_config(), rng);
                    runner::TrialMetrics m;
                    m["leaders"] = static_cast<double>(r.num_leaders);
                    m["active"] = static_cast<double>(r.num_active);
                    m["frac"] = r.fraction_clustered;
                    if (r.completed) {
                        m["switch"] = r.first_switch_time;
                        m["gap"] = r.all_informed_time - r.first_switch_time;
                        m["elapsed"] = r.elapsed;
                    }
                    return m;
                },
                5, derive_seed(0xE501, row++), /*threads=*/4);
            table.row()
                .add(n)
                .add(o.mean("leaders"), 0)
                .add(o.mean("active"), 0)
                .add(o.mean("frac"), 3)
                .add(o.mean("switch"), 1)
                .add(o.mean("gap"), 1)
                .add(o.mean("elapsed"), 1);
        }
        table.print(std::cout);
        std::cout << "Expected: fraction clustered stays high; the broadcast"
                     " gap t_l - t_f\nstays O(1) (no growth with n).\n";
    }

    {
        runner::print_heading(std::cout, "(b) inter-leader broadcast (Theorem 28)");
        Table table({"n", "clusters", "time to inform all", "mean inform time"});
        std::uint64_t row = 0;
        for (const std::size_t n : ns) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) {
                    Rng rng(s);
                    const cluster::ClusteringResult clustering =
                        run_clustering(n, base_config(), rng);
                    runner::TrialMetrics m;
                    if (!clustering.completed || clustering.num_active == 0) {
                        return m;
                    }
                    const cluster::BroadcastResult b = cluster::run_broadcast(
                        clustering, 0, 1.0, 300.0, rng);
                    if (b.completed) {
                        m["clusters"] = static_cast<double>(b.total_leaders);
                        m["all"] = b.time_to_all;
                        m["mean"] = b.mean_inform_time;
                    }
                    return m;
                },
                5, derive_seed(0xE502, row++), /*threads=*/4);
            table.row()
                .add(n)
                .add(o.mean("clusters"), 0)
                .add(o.mean("all"), 2)
                .add(o.mean("mean"), 2);
        }
        table.print(std::cout);
        std::cout << "Expected: O(1) broadcast time — flat in n even as the"
                     " cluster count grows.\n";
    }

    {
        runner::print_heading(std::cout,
                              "(c) full decentralized consensus (Theorem 26) "
                              "[k = 4, alpha = 2.0]");
        Table table({"n", "eps-time", "consensus", "clustering", "total",
                     "success"});
        std::uint64_t row = 0;
        for (const std::size_t n : ns) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) {
                    const cluster::MultiLeaderResult r =
                        cluster::run_multi_leader(n, 4, 2.0, base_config(), s);
                    // Unified metrics from the shared RunResult base, plus
                    // the clustering-phase extras.
                    runner::TrialMetrics m = runner::metrics_from(r);
                    m["success"] = r.plurality_won ? 1.0 : 0.0;
                    m["cluster"] = r.clustering_time;
                    m["total"] = r.total_time();
                    return m;
                },
                5, derive_seed(0xE503, row++), /*threads=*/4);
            table.row()
                .add(n)
                .add(o.mean("epsilon_time"), 1)
                .add(o.mean("consensus_time"), 1)
                .add(o.mean("cluster"), 1)
                .add(o.mean("total"), 1)
                .add(o.mean("success"), 2);
        }
        table.print(std::cout);
        std::cout << "Expected: same near-flat eps-time shape as the single-"
                     "leader protocol\n(Theorem 26 mirrors Theorem 13), plus"
                     " the O(log log n) clustering phase.\n";
    }
    return 0;
}
