/// \file exp_exchange_latency.cpp
/// Experiment E10 — the §5 model extension: message exchange over an
/// established channel also takes time, handled by leader-validated
/// commits ("updates are committed only if the state of the leader has not
/// been changed in the meantime"). We sweep the per-message latency from
/// negligible to dominating the channel-establishment latency and measure:
///   - consensus time (grows with the message latency, in raw steps),
///   - the abort rate of the two-phase commit (stays small: the leader's
///     state changes only O(G*) times per run),
///   - correctness (plurality still wins).
/// The zero-message-latency row is cross-checked against the plain
/// Algorithm 2+3 engine.

#include <iostream>

#include "async/sequential_simulation.hpp"
#include "async/simulation.hpp"
#include "async/validated_simulation.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;
    runner::print_banner(std::cout,
                         "E10 (Section 5): message-exchange latencies with "
                         "validated commits");

    const std::size_t n = 1 << 13;
    const std::uint32_t k = 4;
    const double alpha = 1.8;
    const std::size_t reps = 3;

    std::cout << "n = 2^13, k = " << k << ", alpha = " << alpha
              << ", channel latency Exp(1); message latency Exp(1/m)\n\n";

    {
        async::AsyncConfig c;
        c.alpha_hint = alpha;
        c.max_time = 3000.0;
        c.record_series = false;
        const auto o = runner::run_experiment_parallel(
            [&](std::uint64_t s) {
                const async::AsyncResult r =
                    async::run_single_leader(n, k, alpha, c, s);
                runner::TrialMetrics m;
                m["cons"] = r.consensus_time;
                m["ok"] = (r.converged && r.plurality_won) ? 1.0 : 0.0;
                return m;
            },
            reps, 0xEA00, /*threads=*/4);
        const auto seq = runner::run_experiment_parallel(
            [&](std::uint64_t s) {
                const async::AsyncResult r =
                    async::run_sequential_single_leader(n, k, alpha, c, s);
                runner::TrialMetrics m;
                m["cons"] = r.consensus_time;
                m["ok"] = (r.converged && r.plurality_won) ? 1.0 : 0.0;
                return m;
            },
            reps, 0xEA0F, /*threads=*/4);
        std::cout << "reference (no latencies at all, sequentialized model of"
                     " [EFK+17]):\n  consensus = "
                  << format_double(seq.mean("cons"), 1)
                  << " steps, success = " << format_double(seq.mean("ok"), 2)
                  << "\n";
        std::cout << "baseline (channel latencies, instant messages — "
                     "Algorithm 2+3):\n  consensus = "
                  << format_double(o.mean("cons"), 1)
                  << " steps, success = " << format_double(o.mean("ok"), 2)
                  << "\n\n";
    }

    Table table({"mean msg latency m", "C1 steps/unit", "consensus",
                 "commits", "aborts", "abort rate", "success"});
    std::uint64_t row = 0;
    for (const double mean_msg : {0.01, 0.1, 0.5, 1.0, 2.0, 5.0}) {
        const auto o = runner::run_experiment_parallel(
            [&](std::uint64_t s) {
                async::AsyncConfig c;
                c.alpha_hint = alpha;
                c.max_time = 6000.0;
                c.record_series = false;
                const async::ValidatedResult r =
                    async::run_validated_single_leader(n, k, alpha, c,
                                                       1.0 / mean_msg, s);
                runner::TrialMetrics m;
                m["c1"] = r.base.steps_per_unit;
                if (r.base.consensus_time >= 0.0) m["cons"] = r.base.consensus_time;
                m["commits"] = static_cast<double>(r.commits);
                m["aborts"] = static_cast<double>(r.aborts);
                m["abort_rate"] = r.abort_rate;
                m["ok"] = (r.base.converged && r.base.plurality_won) ? 1.0 : 0.0;
                return m;
            },
            reps, derive_seed(0xEA01, row++), /*threads=*/4);
        table.row()
            .add(mean_msg, 2)
            .add(o.mean("c1"), 2)
            .add(o.mean("cons"), 1)
            .add(o.mean("commits"), 0)
            .add(o.mean("aborts"), 0)
            .add(o.mean("abort_rate"), 4)
            .add(o.mean("ok"), 2);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: consensus time scales with the *total*"
                 " per-cycle latency\n(tracked by C1), success stays 1.00,"
                 " and the abort rate stays small —\nvalidation only fails"
                 " in the short windows around the O(G*) leader\nstate"
                 " changes, confirming the paper's claim that the relaxation"
                 " is 'easy'\nin the single-leader case.\n";
    return 0;
}
