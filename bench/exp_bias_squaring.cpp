/// \file exp_bias_squaring.cpp
/// Experiment E2 — Lemma 4 / Proposition 8: the bias inside the newest
/// generation squares with every hand-over: α_{i,t_i} ≈ α_{i-1,t_{i-1}}².
/// We run Algorithm 1 once per configuration, record the measured bias at
/// the birth of every generation, and print it next to the idealized
/// trajectory α0^(2^i). The paper's claim holds while the runner-up color
/// retains enough mass for concentration (Lemma 5 handles the endgame).

#include <cmath>
#include <iostream>

#include "analysis/theory.hpp"
#include "opinion/assignment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"
#include "sync/algorithm1.hpp"
#include "sync/engine.hpp"

int main() {
    using namespace papc;
    runner::print_banner(std::cout, "E2 (Lemma 4 / Prop. 8): bias squaring");

    const std::size_t n = 1 << 18;

    struct Config {
        std::uint32_t k;
        double alpha;
    };
    for (const Config cfg : {Config{2, 1.1}, Config{8, 1.5}, Config{32, 1.5}}) {
        runner::print_heading(
            std::cout, "n = 2^18, k = " + std::to_string(cfg.k) +
                           ", alpha0 = " + format_double(cfg.alpha, 2));

        Rng rng(derive_seed(0xE201, cfg.k));
        const Assignment a = make_biased_plurality(n, cfg.k, cfg.alpha, rng);
        sync::ScheduleParams sp;
        sp.n = n;
        sp.k = cfg.k;
        sp.alpha = cfg.alpha;
        sync::Algorithm1 alg(a, sync::Schedule(sp));
        sync::RunOptions opts;
        opts.max_rounds = 2000;
        (void)run_to_consensus(alg, rng, opts);

        const auto ideal = analysis::ideal_bias_trajectory(
            cfg.alpha, static_cast<unsigned>(alg.births().size()),
            static_cast<double>(n));

        Table table({"generation", "birth round", "size", "alpha measured",
                     "alpha0^(2^i)", "ratio"});
        for (const auto& b : alg.births()) {
            const double predicted = ideal[b.generation];
            const bool finite = std::isfinite(b.alpha);
            table.row()
                .add(b.generation)
                .add(b.round)
                .add(b.size)
                .add(finite ? format_double(b.alpha, 3) : std::string("inf"))
                .add(predicted, 3)
                .add(finite && predicted > 0.0
                         ? format_double(b.alpha / predicted, 3)
                         : std::string("-"));
        }
        table.print(std::cout);
    }

    std::cout << "\nExpected shape: 'alpha measured' tracks alpha0^(2^i)"
                 " (ratio near 1)\nuntil the runner-up color nearly vanishes,"
                 " after which the measured\nbias jumps to infinity (Lemma 5"
                 " regime) — exactly the paper's story.\n";
    return 0;
}
