/// \file exp_resilience.cpp
/// Experiment E13 — the §4 motivation, measured: "the system becomes highly
/// vulnerable against attacks, since an adversary can compromise the entire
/// computation by taking over the leader". We crash leaders mid-run:
///   (a) single leader frozen at t = 10 — the computation stalls (the
///       generation machinery needs the leader's phase switches);
///   (b) a growing fraction of cluster leaders crashed at t = 20 — the
///       decentralized protocol keeps converging to the plurality until
///       almost all leaders are gone.

#include <iostream>

#include "async/simulation.hpp"
#include "cluster/simulation.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;
    runner::print_banner(std::cout, "E13 (Section 4): leader-failure resilience");

    const std::size_t n = 1 << 13;
    const std::uint32_t k = 4;
    const double alpha = 2.0;
    const std::size_t reps = 3;

    {
        runner::print_heading(std::cout,
                              "(a) single leader, frozen at t = 10 [n = 2^13]");
        Table table({"scenario", "converged", "plurality frac at end",
                     "end time"});
        std::uint64_t row = 0;
        for (const double failure_time : {-1.0, 10.0}) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) {
                    async::AsyncConfig c;
                    c.alpha_hint = alpha;
                    c.max_time = 400.0;  // generous cap; stalls stay stalled
                    c.leader_failure_time = failure_time;
                    const async::AsyncResult r =
                        async::run_single_leader(n, k, alpha, c, s);
                    runner::TrialMetrics m;
                    m["converged"] = r.converged ? 1.0 : 0.0;
                    m["frac"] = r.plurality_fraction.empty()
                                    ? 0.0
                                    : r.plurality_fraction
                                          [r.plurality_fraction.size() - 1]
                                              .value;
                    m["end"] = r.end_time;
                    return m;
                },
                reps, derive_seed(0xED01, row++), /*threads=*/4);
            table.row()
                .add(failure_time < 0 ? "healthy" : "leader frozen at t=10")
                .add(o.mean("converged"), 2)
                .add(o.mean("frac"), 3)
                .add(o.mean("end"), 1);
        }
        table.print(std::cout);
        std::cout << "Expected: the healthy run converges; with the leader"
                     " frozen the\ncomputation stalls mid-protocol — the"
                     " plurality fraction freezes below 1\nand the run only"
                     " ends at the time cap.\n";
    }

    {
        runner::print_heading(
            std::cout,
            "(b) multi-leader, fraction of leaders crashed at t = 20 [n = 2^13]");
        Table table({"crashed fraction", "success", "consensus time",
                     "active clusters"});
        std::uint64_t row = 0;
        for (const double fraction : {0.0, 0.25, 0.5, 0.75, 0.9}) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) {
                    cluster::ClusterConfig c;
                    c.size_floor = 24;
                    c.leader_probability = 1.0 / 96.0;
                    c.alpha_hint = alpha;
                    c.max_time = 2500.0;
                    c.record_series = false;
                    c.leader_failure_time = 20.0;
                    c.leader_failure_fraction = fraction;
                    const cluster::MultiLeaderResult r =
                        cluster::run_multi_leader(n, k, alpha, c, s);
                    runner::TrialMetrics m;
                    m["success"] =
                        (r.converged && r.plurality_won) ? 1.0 : 0.0;
                    if (r.consensus_time >= 0.0) m["cons"] = r.consensus_time;
                    m["clusters"] =
                        static_cast<double>(r.clustering.num_active);
                    return m;
                },
                reps, derive_seed(0xED02, row++), /*threads=*/4);
            table.row()
                .add(fraction, 2)
                .add(o.mean("success"), 2)
                .add(o.mean("cons"), 1)
                .add(o.mean("clusters"), 0);
        }
        table.print(std::cout);
        std::cout << "Expected: success stays 1.00 and the slowdown stays"
                     " moderate even with\nmost cluster leaders gone —"
                     " surviving leaders keep coordinating and the\nfinished"
                     " epidemic finishes the job. The single point of failure"
                     " is gone.\n";
    }
    return 0;
}
