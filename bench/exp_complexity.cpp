/// \file exp_complexity.cpp
/// Experiment E11 — §4.5 "Complexity Parameters of the Decentralized
/// System". Reproduces the section's claims with measurements:
///   - memory: O(log n) bits per node (closed-form bit accounting);
///   - messages: O(log n)-bit addresses during clustering, O(log log log n)-
///     bit generation counters afterwards;
///   - congestion: the single leader absorbs Θ(n) signals per time step,
///     while each cluster leader's peak load stays polylog(n) — measured
///     head-to-head on the same workloads.

#include <cmath>
#include <iostream>

#include "analysis/theory.hpp"
#include "async/simulation.hpp"
#include "cluster/simulation.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;
    runner::print_banner(std::cout,
                         "E11 (Section 4.5): complexity parameters");

    const std::uint32_t k = 4;
    const double alpha = 2.0;

    {
        runner::print_heading(std::cout, "(a) closed-form bit accounting");
        Table table({"n", "node memory (bits)", "address (bits)",
                     "generation (bits)", "leader reply (bits)",
                     "promotion msg (bits)"});
        for (const std::size_t n :
             {std::size_t{1} << 10, std::size_t{1} << 14, std::size_t{1} << 18,
              std::size_t{1} << 22, std::size_t{1} << 26}) {
            const analysis::ComplexityProfile p =
                analysis::complexity_profile(n, k, alpha);
            table.row()
                .add(n)
                .add(p.node_memory_bits, 0)
                .add(p.address_bits, 0)
                .add(p.generation_bits, 0)
                .add(p.leader_message_bits, 0)
                .add(p.promotion_message_bits, 0);
        }
        table.print(std::cout);
        std::cout << "Expected: memory O(log n); messages dominated by the"
                     " O(log n)-bit\naddresses; generation counters are"
                     " O(log log log n) — they barely move\nacross 16x"
                     " population growth.\n";
    }

    {
        runner::print_heading(
            std::cout,
            "(b) measured leader congestion: single leader vs cluster leaders");
        Table table({"n", "single: peak signals/step", "single: /n",
                     "multi: peak signals/step at any leader",
                     "multi: signals total"});
        std::uint64_t row = 0;
        for (const std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 13,
                                    std::size_t{1} << 14, std::size_t{1} << 15}) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) {
                    runner::TrialMetrics m;
                    async::AsyncConfig ac;
                    ac.alpha_hint = alpha;
                    ac.max_time = 2000.0;
                    ac.record_series = false;
                    const async::AsyncResult sl =
                        async::run_single_leader(n, k, alpha, ac, s);
                    m["sl_peak"] = sl.leader_peak_load;

                    cluster::ClusterConfig cc;
                    cc.size_floor = 24;
                    cc.leader_probability = 1.0 / 96.0;
                    cc.alpha_hint = alpha;
                    cc.max_time = 2000.0;
                    cc.record_series = false;
                    const cluster::MultiLeaderResult ml =
                        cluster::run_multi_leader(n, k, alpha, cc, s);
                    m["ml_peak"] = ml.leader_peak_load;
                    m["ml_total"] = static_cast<double>(ml.signals_delivered);
                    return m;
                },
                3, derive_seed(0xEB01, row++), /*threads=*/4);
            table.row()
                .add(n)
                .add(o.mean("sl_peak"), 0)
                .add(o.mean("sl_peak") / static_cast<double>(n), 2)
                .add(o.mean("ml_peak"), 0)
                .add(o.mean("ml_total"), 0);
        }
        table.print(std::cout);
        std::cout << "Expected: the single leader's peak load grows linearly"
                     " with n\n(the '/n' column is constant ~1) — the"
                     " bottleneck §4 sets out to remove.\nEach cluster"
                     " leader's peak load stays flat (polylog cluster"
                     " sizes),\nindependent of n.\n";
    }
    return 0;
}
