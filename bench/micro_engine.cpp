/// \file micro_engine.cpp
/// Micro-benchmarks (google-benchmark) for the substrate hot paths: RNG,
/// event queue, census bookkeeping, one synchronous round, and one
/// simulated asynchronous time step.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <type_traits>

#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "async/simulation.hpp"
#include "fault/injector.hpp"
#include "opinion/assignment.hpp"
#include "opinion/census.hpp"
#include "opinion/packed_array.hpp"
#include "sim/scheduler_queue.hpp"
#include "sim/windowed_executor.hpp"
#include "support/random.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"
#include "sync/round_kernel.hpp"
#include "sync/simd_gather.hpp"

namespace {

using namespace papc;

/// Process peak RSS in MiB (ru_maxrss is KiB on Linux). A high-water mark:
/// monotone across the whole binary run, so it only bounds a single row
/// when that row is the biggest allocation so far — which holds for the
/// n = 2^22 sync rows this counter exists for.
double peak_rss_mib() {
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

void BM_RngNextU64(benchmark::State& state) {
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.next_u64());
    }
}
BENCHMARK(BM_RngNextU64);

void BM_RngExponential(benchmark::State& state) {
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.exponential(1.0));
    }
}
BENCHMARK(BM_RngExponential);

void BM_RngUniformIndex(benchmark::State& state) {
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.uniform_index(1000003));
    }
}
BENCHMARK(BM_RngUniformIndex);

// One kernel block of batched Lemire draws (the sync kernels' index-batch
// phase); items/sec is indices/sec, directly comparable to
// BM_RngUniformIndex above.
void BM_RngUniformIndicesBlock(benchmark::State& state) {
    Rng rng(3);
    std::vector<std::uint64_t> block(sync::kRoundBlock);
    for (auto _ : state) {
        rng.uniform_indices(1000003, block.data(), block.size());
        benchmark::DoNotOptimize(block.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(block.size()));
}
BENCHMARK(BM_RngUniformIndicesBlock);

// Hold model: `queue_size` pending events, each iteration pops the
// earliest and pushes a replacement one uniform draw into the future. The
// {heap, calendar} x {2^10 .. 2^22} matrix exposes how each scheduler
// scales with the pending-event population.
void queue_push_pop(benchmark::State& state, sim::QueueKind kind) {
    const auto queue_size = static_cast<std::size_t>(state.range(0));
    Rng rng(4);
    auto queue = sim::make_scheduler_queue<std::uint64_t>(kind, queue_size);
    for (std::size_t i = 0; i < queue_size; ++i) {
        queue->push(rng.uniform(), i);
    }
    {
        // The first pop pays each implementation's one-time structuring of
        // the seeded population (ladder rung spawn, calendar width
        // estimation). Pay it in setup: at 2^22 pending it is large enough
        // to wreck the iteration estimate, and the row is meant to price
        // the steady-state hold cycle.
        auto e = queue->pop();
        queue->push(e.time, e.seq);
    }
    double t = 1.0;
    for (auto _ : state) {
        auto e = queue->pop();
        benchmark::DoNotOptimize(e);
        queue->push(t + rng.uniform(), e.seq);
        t += 1e-6;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_EventQueuePushPop(benchmark::State& state) {  // legacy heap name
    queue_push_pop(state, sim::QueueKind::kBinaryHeap);
}
void BM_CalendarQueuePushPop(benchmark::State& state) {
    queue_push_pop(state, sim::QueueKind::kCalendar);
}
void BM_LadderQueuePushPop(benchmark::State& state) {
    queue_push_pop(state, sim::QueueKind::kLadder);
}
BENCHMARK(BM_EventQueuePushPop)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Arg(1 << 22);
BENCHMARK(BM_CalendarQueuePushPop)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Arg(1 << 22);
BENCHMARK(BM_LadderQueuePushPop)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Arg(1 << 22);

// The packed-lane gather primitive in isolation: one kRoundBlock of
// random indices decoded from 4-bit lanes (k = 8) per iteration, through
// whatever dispatch path support::active_simd() selects. items/sec is
// lanes/sec; the CI Release smoke pins this row to catch dispatch or
// codegen regressions in the strip kernel itself.
void BM_PackedOpinionGather(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(7);
    PackedOpinionArray array(n, 8);
    for (std::size_t i = 0; i < n; ++i) {
        array.set(i, static_cast<Opinion>(rng.uniform_index(8)));
    }
    std::vector<std::uint64_t> idx(sync::kRoundBlock);
    std::vector<Opinion> out(sync::kRoundBlock);
    rng.uniform_indices(n, idx.data(), idx.size());
    for (auto _ : state) {
        sync::simd::gather_packed(array.words(), idx.data(), idx.size(),
                                  array.log2_lane_bits(), out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(idx.size()));
    state.counters["bytes_per_node"] =
        static_cast<double>(array.memory_bytes()) / static_cast<double>(n);
}
BENCHMARK(BM_PackedOpinionGather)->Arg(1 << 20)->Arg(1 << 22);

void BM_CensusTransition(benchmark::State& state) {
    GenerationCensus census(1 << 16, 8);
    Rng rng(5);
    std::vector<Opinion> opinions(1 << 16);
    for (auto& op : opinions) op = static_cast<Opinion>(rng.uniform_index(8));
    census.reset(opinions);
    Generation g = 0;
    for (auto _ : state) {
        const auto from = static_cast<Opinion>(rng.uniform_index(8));
        // Move one node up a generation (wrap to keep counts valid).
        if (census.count(g, from) == 0) {
            g = 0;
            continue;
        }
        census.transition(g, from, g + 1, from);
        if (census.generation_size(g) == 0) ++g;
        if (g > 30) {
            census.reset(opinions);
            g = 0;
        }
    }
}
BENCHMARK(BM_CensusTransition);

// Synchronous round matrix: one round per iteration across the whole
// family, n ∈ {2^14 .. 2^22} (Algorithm 1 additionally with a k = 64
// column). items/sec is node-updates/sec; iterations/sec is rounds/sec —
// the headline number the batched SoA kernels are measured on
// (BENCH_pr4.json before/after).
template <typename Dynamics>
void sync_round_matrix(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto k = static_cast<std::uint32_t>(state.range(1));
    Rng rng(6);
    const Assignment a = make_biased_plurality(n, k, 1.5, rng);
    auto alg = [&] {
        if constexpr (std::is_same_v<Dynamics, sync::Algorithm1>) {
            sync::ScheduleParams sp;
            sp.n = n;
            sp.k = k;
            sp.alpha = 1.5;
            return sync::Algorithm1(a, sync::Schedule(sp));
        } else {
            return Dynamics(a);
        }
    }();
    for (auto _ : state) {
        alg.step(rng);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
    // Memory anatomy (PR 7): steady-state engine bytes per node and the
    // process high-water mark. Diff across recordings with
    //   scripts/bench-diff.py BEFORE.json AFTER.json --field bytes_per_node
    state.counters["bytes_per_node"] =
        static_cast<double>(alg.memory_bytes()) / static_cast<double>(n);
    state.counters["peak_rss_mib"] = peak_rss_mib();
}

void BM_SyncRound_Algorithm1(benchmark::State& state) {
    sync_round_matrix<sync::Algorithm1>(state);
}
void BM_SyncRound_PullVoting(benchmark::State& state) {
    sync_round_matrix<sync::PullVoting>(state);
}
void BM_SyncRound_TwoChoices(benchmark::State& state) {
    sync_round_matrix<sync::TwoChoices>(state);
}
void BM_SyncRound_ThreeMajority(benchmark::State& state) {
    sync_round_matrix<sync::ThreeMajority>(state);
}
void BM_SyncRound_UndecidedState(benchmark::State& state) {
    sync_round_matrix<sync::UndecidedState>(state);
}

void sync_matrix_args(benchmark::internal::Benchmark* bench) {
    for (int shift = 14; shift <= 22; shift += 2) {
        bench->Args({1 << shift, 8});
    }
}
BENCHMARK(BM_SyncRound_Algorithm1)->Apply(sync_matrix_args)->Apply([](auto* b) {
    for (int shift = 14; shift <= 22; shift += 2) b->Args({1 << shift, 64});
});
BENCHMARK(BM_SyncRound_PullVoting)->Apply(sync_matrix_args);
BENCHMARK(BM_SyncRound_TwoChoices)->Apply(sync_matrix_args);
BENCHMARK(BM_SyncRound_ThreeMajority)->Apply(sync_matrix_args);
BENCHMARK(BM_SyncRound_UndecidedState)->Apply(sync_matrix_args);

// Sharded round matrix (PR 5): the same per-round kernels driven through
// the worker pool, args {n, k, threads}. iterations/sec is rounds/sec; the
// acceptance comparison is threads=4 vs threads=1 from ONE recorded run
// (same binary), diffed with
//   scripts/bench-diff.py BENCH.json BENCH.json
//       --suffix-before /threads:1/real_time --suffix-after /threads:4/real_time
template <typename Dynamics>
void sync_round_sharded(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto k = static_cast<std::uint32_t>(state.range(1));
    const auto threads = static_cast<std::size_t>(state.range(2));
    Rng rng(6);
    const Assignment a = make_biased_plurality(n, k, 1.5, rng);
    auto alg = [&] {
        if constexpr (std::is_same_v<Dynamics, sync::Algorithm1>) {
            sync::ScheduleParams sp;
            sp.n = n;
            sp.k = k;
            sp.alpha = 1.5;
            return sync::Algorithm1(a, sync::Schedule(sp), threads);
        } else {
            return Dynamics(a, threads);
        }
    }();
    for (auto _ : state) {
        alg.step(rng);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void BM_SyncRoundSharded_Algorithm1(benchmark::State& state) {
    sync_round_sharded<sync::Algorithm1>(state);
}
void BM_SyncRoundSharded_PullVoting(benchmark::State& state) {
    sync_round_sharded<sync::PullVoting>(state);
}
void BM_SyncRoundSharded_TwoChoices(benchmark::State& state) {
    sync_round_sharded<sync::TwoChoices>(state);
}
void BM_SyncRoundSharded_ThreeMajority(benchmark::State& state) {
    sync_round_sharded<sync::ThreeMajority>(state);
}
void BM_SyncRoundSharded_UndecidedState(benchmark::State& state) {
    sync_round_sharded<sync::UndecidedState>(state);
}

void sharded_matrix_args(benchmark::internal::Benchmark* bench) {
    bench->ArgNames({"n", "k", "threads"});
    // Wall-clock rates: the default CPU-time rate only meters the calling
    // thread, which under-counts pooled work and over-reports items/s.
    bench->UseRealTime();
    for (const int shift : {20, 22}) {
        for (const int threads : {1, 2, 4}) {
            bench->Args({1 << shift, 8, threads});
        }
    }
}
BENCHMARK(BM_SyncRoundSharded_Algorithm1)->Apply(sharded_matrix_args);
BENCHMARK(BM_SyncRoundSharded_PullVoting)->Apply(sharded_matrix_args);
BENCHMARK(BM_SyncRoundSharded_TwoChoices)->Apply(sharded_matrix_args);
BENCHMARK(BM_SyncRoundSharded_ThreeMajority)->Apply(sharded_matrix_args);
BENCHMARK(BM_SyncRoundSharded_UndecidedState)->Apply(sharded_matrix_args);

// End-to-end through api::run at n = 2^20 (the acceptance measurement for
// the kernel refactor): one full fixed-seed convergence run per iteration;
// items/sec reports rounds/sec. The weak alpha makes the run long enough
// that the (unchanged) workload construction amortizes and rounds/sec
// reflects the steady-state kernel rate.
void api_sync_full_run(benchmark::State& state, const char* protocol) {
    api::Scenario scenario;
    scenario.protocol = protocol;
    scenario.n = 1 << 20;
    scenario.k = 8;
    scenario.alpha = 1.5;
    scenario.record_series = false;
    std::uint64_t seed = 10;
    std::int64_t rounds = 0;
    for (auto _ : state) {
        const api::ScenarioResult r = api::run(scenario, seed++);
        benchmark::DoNotOptimize(r.run.converged);
        rounds += static_cast<std::int64_t>(r.run.steps);
    }
    state.SetItemsProcessed(rounds);
}

void BM_ApiRunSyncLarge(benchmark::State& state) {
    api_sync_full_run(state, "sync");
}
void BM_ApiRunTwoChoicesLarge(benchmark::State& state) {
    api_sync_full_run(state, "two-choices");
}
BENCHMARK(BM_ApiRunSyncLarge)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ApiRunTwoChoicesLarge)->Unit(benchmark::kMillisecond);

void async_full_run_small(benchmark::State& state, sim::QueueKind kind) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 400.0;
    c.record_series = false;
    c.queue_kind = kind;
    std::uint64_t seed = 8;
    std::int64_t events = 0;
    for (auto _ : state) {
        const async::AsyncResult r =
            async::run_single_leader(512, 2, 2.0, c, seed++);
        benchmark::DoNotOptimize(r.consensus_time);
        // items/sec reports async-engine events/sec. (RunResult.steps
        // counts executor windows since the windowed transition; the
        // event count moved to AsyncResult.events_processed.)
        events += static_cast<std::int64_t>(r.events_processed);
    }
    state.SetItemsProcessed(events);
}

void BM_AsyncFullRunSmall(benchmark::State& state) {
    async_full_run_small(state, sim::QueueKind::kBinaryHeap);
}
void BM_AsyncFullRunSmallCalendar(benchmark::State& state) {
    async_full_run_small(state, sim::QueueKind::kCalendar);
}
void BM_AsyncFullRunSmallLadder(benchmark::State& state) {
    async_full_run_small(state, sim::QueueKind::kLadder);
}
BENCHMARK(BM_AsyncFullRunSmall)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AsyncFullRunSmallCalendar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AsyncFullRunSmallLadder)->Unit(benchmark::kMillisecond);

// Windowed-executor rows (PR 6). The single-queue hold model above
// (BM_EventQueuePushPop) prices one pop+push; BM_WindowedExecutorHold
// prices the same event churn through the sharded executor — per-window
// substream derivation, the shard loop / pool dispatch, and the outbox
// barrier included. Both report events/sec, so
//   BM_WindowedExecutorHold/threads:1  vs  BM_SingleQueueHold
// is the executor's single-thread overhead (acceptance: within 0.9x) and
//   /threads:4 vs /threads:1
// is the parallel speedup (needs real cores; see
// scripts/bench-multicore.sh).
constexpr std::size_t kHoldNodes = 1 << 12;
constexpr std::size_t kHoldPending = 1 << 14;

void BM_SingleQueueHold(benchmark::State& state) {
    Rng rng(14);
    auto queue = sim::make_scheduler_queue<std::uint32_t>(
        sim::QueueKind::kBinaryHeap, kHoldPending);
    for (std::size_t i = 0; i < kHoldPending; ++i) {
        queue->push(rng.exponential(1.0),
                    static_cast<std::uint32_t>(i % kHoldNodes));
    }
    for (auto _ : state) {
        auto e = queue->pop();
        const auto target =
            static_cast<std::uint32_t>(rng.uniform_index(kHoldNodes));
        queue->push(e.time + rng.exponential(1.0), target);
        benchmark::DoNotOptimize(target);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleQueueHold);

void BM_WindowedExecutorHold(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    sim::WindowedOptions options;
    options.threads = threads;
    options.reserve_hint = kHoldPending;
    sim::WindowedExecutor<std::uint32_t> executor(kHoldNodes, options,
                                                  Rng(15));
    {
        Rng seed_rng(16);
        for (std::size_t i = 0; i < kHoldPending; ++i) {
            const auto node = static_cast<std::uint32_t>(i % kHoldNodes);
            executor.seed(executor.shard_of(node),
                          seed_rng.exponential(1.0), node);
        }
    }
    const auto handler = [&](auto& ctx, sim::Time t, std::uint32_t /*node*/) {
        const auto target =
            static_cast<std::uint32_t>(ctx.rng().uniform_index(kHoldNodes));
        ctx.emit(executor.shard_of(target), t + ctx.rng().exponential(1.0),
                 target);
    };
    std::uint64_t events = 0;
    for (auto _ : state) {
        executor.run_window(handler);  // one window per iteration
    }
    events = executor.events_processed();
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_WindowedExecutorHold)
    ->ArgName("threads")
    ->UseRealTime()
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

// Fault-layer pricing (PR 9), args {mode}: 0 = no injector (the PR 8
// baseline path), 1 = a zero-rate plan attached (prices the fast-path
// branch the fault layer adds — acceptance: within 2% of mode 0),
// 2 = faults actually firing (the honest cost of a degraded run, for
// context, not an acceptance gate). Diff modes from ONE recording with
//   scripts/bench-diff.py BENCH.json BENCH.json
//       --suffix-before /mode:0 --suffix-after /mode:1

// One 3-majority round per iteration at n = 2^20; mode 2 lights crash +
// byzantine-adaptive, the channels the round kernels consume.
void BM_FaultedRound(benchmark::State& state) {
    const auto mode = static_cast<int>(state.range(0));
    constexpr std::size_t n = 1 << 20;
    Rng rng(6);
    const Assignment a = make_biased_plurality(n, 8, 1.5, rng);
    sync::ThreeMajority alg(a);
    fault::FaultPlan plan;
    if (mode == 2) {
        plan.crash_rate = 0.0001;
        plan.recover_rate = 0.01;
        plan.byzantine_fraction = 0.05;
        plan.byzantine_policy = fault::ByzantinePolicy::kAdaptive;
    }
    // Horizon bounds the per-node crash timelines (round-count axis).
    fault::Injector injector(plan, n, 1e4, rng);
    if (mode > 0) alg.set_fault_injector(&injector);
    for (auto _ : state) {
        alg.step(rng);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FaultedRound)->ArgName("mode")->Arg(0)->Arg(1)->Arg(2);

// The executor hold loop with every emission routed via emit_message();
// mode 2 lights corruption + stragglers — the channels that preserve the
// live-event count. (Loss/duplication would drift the closed hold loop's
// population toward empty windows, timing drainage instead of churn.)
void BM_FaultedWindow(benchmark::State& state) {
    const auto mode = static_cast<int>(state.range(0));
    fault::FaultPlan plan;
    if (mode == 2) {
        plan.corruption = 0.05;
        plan.straggler_fraction = 0.05;
        plan.straggler_scale = 2.0;
    }
    const fault::Injector injector(plan, kHoldNodes, 1e9, Rng(15));
    sim::WindowedOptions options;
    options.threads = 1;
    options.reserve_hint = kHoldPending;
    if (mode > 0) options.injector = &injector;
    sim::WindowedExecutor<std::uint32_t> executor(kHoldNodes, options,
                                                  Rng(15));
    {
        Rng seed_rng(16);
        for (std::size_t i = 0; i < kHoldPending; ++i) {
            const auto node = static_cast<std::uint32_t>(i % kHoldNodes);
            executor.seed(executor.shard_of(node),
                          seed_rng.exponential(1.0), node);
        }
    }
    const auto handler = [&](auto& ctx, sim::Time t, std::uint32_t /*node*/) {
        const auto target =
            static_cast<std::uint32_t>(ctx.rng().uniform_index(kHoldNodes));
        const sim::Time arrive = t + ctx.rng().exponential(1.0);
        ctx.emit_message(executor.shard_of(target), t, arrive, target);
    };
    for (auto _ : state) {
        executor.run_window(handler);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(executor.events_processed()));
}
BENCHMARK(BM_FaultedWindow)->ArgName("mode")->Arg(0)->Arg(1)->Arg(2);

// Full windowed async runs across the thread knob: the end-to-end view of
// the same comparison (protocol work included, not just executor churn).
void BM_AsyncFullRunThreaded(benchmark::State& state) {
    async::AsyncConfig c;
    c.alpha_hint = 2.0;
    c.max_time = 400.0;
    c.record_series = false;
    c.threads = static_cast<std::size_t>(state.range(0));
    std::uint64_t seed = 8;
    std::int64_t events = 0;
    for (auto _ : state) {
        const async::AsyncResult r =
            async::run_single_leader(4096, 2, 2.0, c, seed++);
        benchmark::DoNotOptimize(r.consensus_time);
        events += static_cast<std::int64_t>(r.events_processed);
    }
    state.SetItemsProcessed(events);
}
BENCHMARK(BM_AsyncFullRunThreaded)
    ->ArgName("threads")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

// Dispatch overhead of the declarative api layer: the same tiny
// synchronous run executed (a) directly against the engine and (b) through
// api::run's registry lookup + scenario plumbing, and (c) through a full
// api::run_sweep cell. The deltas are what a sweep pays per cell on top of
// the raw engine — they should stay noise-level next to any real run.

constexpr std::size_t kDispatchN = 128;

void BM_DirectEngineRunSmall(benchmark::State& state) {
    std::uint64_t seed = 9;
    for (auto _ : state) {
        // Mirrors the registry's sync-family path exactly (same seed
        // derivation, workload and options), minus the api layer.
        Rng rng(seed);
        Rng workload_rng(derive_seed(seed, 1));
        const Assignment a =
            make_biased_plurality(kDispatchN, 2, 3.0, workload_rng);
        sync::TwoChoices dynamics(a);
        sync::RunOptions options;
        options.record_every = 0;
        const sync::SyncResult r = run_to_consensus(dynamics, rng, options);
        benchmark::DoNotOptimize(r.steps);
        ++seed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DirectEngineRunSmall);

void BM_ApiRunDispatchSmall(benchmark::State& state) {
    api::Scenario scenario;
    scenario.protocol = "two-choices";
    scenario.n = kDispatchN;
    scenario.k = 2;
    scenario.alpha = 3.0;
    scenario.record_series = false;
    std::uint64_t seed = 9;
    for (auto _ : state) {
        const api::ScenarioResult r = api::run(scenario, seed++);
        benchmark::DoNotOptimize(r.run.steps);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ApiRunDispatchSmall);

void BM_SweepDispatchSmall(benchmark::State& state) {
    // One 4-cell x 1-rep sweep per iteration; items/sec is cells/sec and
    // compares against BM_ApiRunDispatchSmall runs/sec.
    api::Sweep sweep;
    sweep.base.protocol = "two-choices";
    sweep.base.n = kDispatchN;
    sweep.base.k = 2;
    sweep.base.alpha = 3.0;
    sweep.base.record_series = false;
    sweep.axes = {{"alpha", {"2.6", "2.8", "3.0", "3.2"}}};
    sweep.reps = 1;
    std::uint64_t seed = 9;
    std::int64_t cells = 0;
    for (auto _ : state) {
        sweep.base_seed = seed++;
        const api::SweepResult r = api::run_sweep(sweep);
        benchmark::DoNotOptimize(r.cells.front().outcome.repetitions);
        cells += static_cast<std::int64_t>(r.cells.size());
    }
    state.SetItemsProcessed(cells);
}
BENCHMARK(BM_SweepDispatchSmall);

}  // namespace

BENCHMARK_MAIN();
