/// \file fig2_phase_timing.cpp
/// Reproduces **Figure 2** of the paper: "The diagram of asynchronicity
/// before propagation phase". For a fixed generation the paper depicts the
/// phase-change times of the fastest and slowest cluster leaders:
///   t̂0/t̂1 — first/last leader enters the two-choices phase (birth of i)
///   t̂2/t̂3 — first/last leader dozes off (sleeping phase)
///   t̂4/t̂5 — first/last leader allows propagation
/// Proposition 31 asserts these windows overlap safely: every leader does
/// two-choices for at least one unit after the last starts (a), sleeping
/// windows cover the two-choices stragglers (c), and the total spread
/// t̂5 - t̂0 is O(1). We measure all six marks per generation from the
/// multi-leader simulation's leader traces.

#include <algorithm>
#include <iostream>
#include <vector>

#include "cluster/simulation.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;
    using cluster::LeaderState;

    runner::print_banner(std::cout,
                         "Figure 2: leader phase-change asynchrony diagram");

    cluster::ClusterConfig config;
    config.size_floor = 24;
    config.leader_probability = 1.0 / 96.0;
    config.alpha_hint = 1.3;
    config.max_time = 2500.0;
    config.record_series = false;
    // Short two-choices window so every generation runs the full
    // two-choices -> sleeping -> propagation cycle the figure depicts (with
    // many opinions the two-choices mechanism alone cannot reach the
    // generation-size gate, exactly the regime the paper analyzes).
    config.sleep_units = 0.75;
    config.prop_units = 1.5;

    const std::size_t n = 1 << 15;
    const std::uint32_t k = 8;
    const double alpha = 1.3;
    std::cout << "n = " << n << ", k = " << k << ", alpha = " << alpha
              << ", clusters >= " << config.size_floor << " nodes\n\n";

    const cluster::MultiLeaderResult result =
        cluster::run_multi_leader(n, k, alpha, config, 0xF162);
    if (!result.clustering.completed) {
        std::cout << "clustering did not complete; aborting\n";
        return 1;
    }
    std::cout << "active clusters: " << result.clustering.num_active
              << ", consensus " << (result.converged ? "reached" : "NOT reached")
              << " at t = " << format_double(result.consensus_time, 1)
              << " (consensus-phase clock)\n\n";

    // Per generation, extract the first/last time any leader entered each
    // of the three states for that generation.
    Generation max_gen = 0;
    for (const auto& trace : result.leader_traces) {
        for (const auto& tr : trace) max_gen = std::max(max_gen, tr.gen);
    }

    Table table({"generation", "t0 (first 2c)", "t1 (last 2c)",
                 "t2 (first sleep)", "t3 (last sleep)", "t4 (first prop)",
                 "t5 (last prop)", "t5-t0"});

    for (Generation g = 1; g <= max_gen; ++g) {
        double first_tc = 1e18, last_tc = -1.0;
        double first_sl = 1e18, last_sl = -1.0;
        double first_pr = 1e18, last_pr = -1.0;
        for (const auto& trace : result.leader_traces) {
            for (const auto& tr : trace) {
                if (tr.gen != g) continue;
                switch (tr.state) {
                    case LeaderState::kTwoChoices:
                        first_tc = std::min(first_tc, tr.time);
                        last_tc = std::max(last_tc, tr.time);
                        break;
                    case LeaderState::kSleeping:
                        first_sl = std::min(first_sl, tr.time);
                        last_sl = std::max(last_sl, tr.time);
                        break;
                    case LeaderState::kPropagation:
                        first_pr = std::min(first_pr, tr.time);
                        last_pr = std::max(last_pr, tr.time);
                        break;
                }
            }
        }
        if (last_tc < 0.0) continue;  // generation never observed
        auto cell = [](double first, double last) {
            return last < 0.0 ? std::string("-") : format_double(first, 2);
        };
        auto cell_last = [](double last) {
            return last < 0.0 ? std::string("-") : format_double(last, 2);
        };
        table.row()
            .add(g)
            .add(cell(first_tc, last_tc))
            .add(cell_last(last_tc))
            .add(cell(first_sl, last_sl))
            .add(cell_last(last_sl))
            .add(cell(first_pr, last_pr))
            .add(cell_last(last_pr))
            .add(last_pr >= 0.0 ? format_double(last_pr - first_tc, 2)
                                : std::string("-"));
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (Proposition 31): per generation the six"
                 " marks are ordered\nt0 <= t1 < t4 and the spread t5-t0 stays"
                 " O(1) (no growth with the\ngeneration index) — leaders stay"
                 " synchronized through the run.\n";
    return 0;
}
