/// \file exp_bias_threshold.cpp
/// Experiment E8 — Theorem 1's bias requirement
/// α > 1 + (k·log n/√n)·log k. We sweep the initial bias through the
/// threshold and measure the plurality success probability; the paper
/// predicts a transition from coin-flip-like behaviour (α near 1) to
/// reliable plurality consensus (α above the threshold).

#include <iostream>

#include "opinion/assignment.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"
#include "sync/algorithm1.hpp"
#include "sync/engine.hpp"

int main() {
    using namespace papc;
    runner::print_banner(std::cout, "E8: success probability vs initial bias");

    const std::size_t n = 1 << 14;
    const std::uint32_t k = 8;
    const std::size_t reps = 20;
    const double threshold = theorem1_bias_threshold(n, k);

    std::cout << "n = 2^14, k = " << k << ", Theorem-1 threshold alpha* = "
              << format_double(threshold, 3) << ", " << reps
              << " repetitions per point\n\n";

    Table table({"alpha", "alpha/alpha*", "success", "rounds (median)"});
    std::uint64_t row = 0;
    for (const double factor : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0}) {
        // Interpolate between no bias (α = 1) and multiples of the excess.
        const double alpha = 1.0 + (threshold - 1.0) * factor;
        sync::ScheduleParams sp;
        sp.n = n;
        sp.k = k;
        // The *schedule* must not assume more than the actual bias; clamp
        // the hint slightly above 1 for the unbiased rows.
        sp.alpha = std::max(alpha, 1.05);
        const sync::Schedule schedule{sp};
        const auto o = runner::run_experiment(
            [&](std::uint64_t s) {
                Rng rng(s);
                const Assignment a = make_biased_plurality(n, k, alpha, rng);
                sync::Algorithm1 alg(a, schedule);
                sync::RunOptions opts;
                opts.max_rounds = 3000;
                const sync::SyncResult r = run_to_consensus(alg, rng, opts);
                runner::TrialMetrics m;
                m["success"] = (r.converged && r.winner == 0) ? 1.0 : 0.0;
                m["rounds"] = static_cast<double>(r.steps);
                return m;
            },
            reps, derive_seed(0xE801, row++));
        table.row()
            .add(alpha, 4)
            .add(factor, 2)
            .add(o.mean("success"), 2)
            .add(o.median("rounds"), 0);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: success ~1/k at alpha = 1 (any of the k"
                 " equal opinions\nmay win), rising through ~alpha* and"
                 " saturating at 1.00 above it —\nthe sigmoid crossing the"
                 " paper's threshold regime.\n";
    return 0;
}
