/// \file exp_sync_convergence.cpp
/// Experiment E1 — Theorem 1: the synchronous protocol converges to the
/// plurality opinion in O(log k · log log_α k + log log n) rounds whp.
/// Two sweeps:
///   (a) rounds vs n at fixed k, α — expect near-flat growth (log log n);
///   (b) rounds vs k at fixed n, α — expect ~log k · log log_α k growth.
/// Each row reports the success rate (winner == plurality) and the
/// theoretical shape value for comparison.

#include <iostream>

#include "analysis/theory.hpp"
#include "opinion/assignment.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"
#include "sync/algorithm1.hpp"
#include "sync/engine.hpp"

namespace {

using namespace papc;

sync::SyncResult one_trial(std::size_t n, std::uint32_t k, double alpha,
                           std::uint64_t seed) {
    Rng rng(seed);
    const Assignment a = make_biased_plurality(n, k, alpha, rng);
    sync::ScheduleParams sp;
    sp.n = n;
    sp.k = k;
    sp.alpha = alpha;
    sync::Algorithm1 alg(a, sync::Schedule(sp));
    sync::RunOptions opts;
    opts.max_rounds = 2000;
    return run_to_consensus(alg, rng, opts);
}

void sweep(const char* title, const std::vector<std::size_t>& ns,
           const std::vector<std::uint32_t>& ks, double alpha,
           std::size_t reps, std::uint64_t seed) {
    runner::print_heading(std::cout, title);
    Table table({"n", "k", "alpha", "rounds(mean)", "rounds(p90)", "success",
                 "theory shape"});
    std::uint64_t row_index = 0;
    for (const std::size_t n : ns) {
        for (const std::uint32_t k : ks) {
            // Unified-result trial: aggregates come straight from the
            // core::RunResult metrics (steps = rounds on the sync axis).
            const runner::ExperimentOutcome o = runner::run_result_experiment(
                [&](std::uint64_t s) { return one_trial(n, k, alpha, s); }, reps,
                derive_seed(seed, row_index++));
            table.row()
                .add(n)
                .add(k)
                .add(alpha, 2)
                .add(o.mean("steps"), 1)
                .add(o.metrics.at("steps").p90, 1)
                .add(o.mean("plurality_won"), 2)
                .add(analysis::theorem1_runtime_shape(n, k, alpha), 1);
        }
    }
    table.print(std::cout);
}

}  // namespace

int main() {
    using namespace papc;
    runner::print_banner(std::cout,
                         "E1 (Theorem 1): synchronous convergence time");

    sweep("(a) rounds vs n  [k = 8, alpha = 1.5]",
          {1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}, {8}, 1.5, 5, 0xE101);

    sweep("(b) rounds vs k  [n = 2^16, alpha = 1.5]", {1 << 16},
          {2, 4, 8, 16, 32, 64}, 1.5, 5, 0xE102);

    std::cout << "\nExpected shape: sweep (a) grows barely with n (log log n"
                 " term); sweep (b)\ngrows roughly like log k while k stays"
                 " well inside the k <= n^(1/2-eps)\nregime. The k = 64 row"
                 " deliberately violates Theorem 1's bias bound\n(threshold"
                 " alpha* = "
              << format_double(theorem1_bias_threshold(1 << 16, 64), 1)
              << " >> 1.5 at n = 2^16): success degrades and the\nround count"
                 " blows up exactly as the theorem predicts.\n";
    return 0;
}
