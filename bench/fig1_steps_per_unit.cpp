/// \file fig1_steps_per_unit.cpp
/// Reproduces **Figure 1** of the paper: the number of time steps per time
/// unit, C1 = F^{-1}(0.9), plotted against the expected channel latency
/// 1/λ (log-log in the paper; we print the series). The paper's claim:
/// "the value F^{-1}(0.9) grows linearly with 1/λ".
///
/// Columns:
///   exact        — quantile of the hypoexponential composition
///                  T3 = Exp(1) + 2·Exp(2λ) + 4·Exp(λ)
///   monte_carlo  — 0.9-quantile of simulated T3 draws (cross-check)
///   gamma_q90    — 0.9-quantile of the Γ(7, β) majorization (Remark 14)
///   10/(3β)      — the paper's rounded closed-form bound
///   ratio        — exact / (1/λ): flattens out => linear growth
///
/// Note on Example 15: the paper states E(T3) = 1 + 3/λ; the composition
/// T3 = T2' + T1 + T2' with T2' = max(T2,T2) + T2 gives E(T3) = 1 + 5/λ.
/// We implement the stated composition and report both readings in
/// EXPERIMENTS.md.

#include <iostream>

#include "analysis/latency_units.hpp"
#include "runner/report.hpp"
#include "support/random.hpp"
#include "support/table.hpp"

int main() {
    using namespace papc;

    runner::print_banner(std::cout,
                         "Figure 1: steps per time unit F^-1(0.9) vs 1/lambda");
    std::cout << "T3 = max(T2,T2) + T2 (channels) + Exp(1) (clock), twice the "
                 "channel stage; T2 ~ Exp(lambda)\n\n";

    Table table({"1/lambda", "exact", "monte_carlo", "gamma_q90", "10/(3beta)",
                 "exact/(1/lambda)", "E[T3]"});

    Rng rng(0xF161);
    const double inv_lambdas[] = {1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
                                  100.0, 200.0, 500.0, 1000.0};
    for (const double inv_lambda : inv_lambdas) {
        const double lambda = 1.0 / inv_lambda;
        const analysis::Figure1Row row =
            analysis::figure1_row(lambda, 200000, rng);
        table.row()
            .add(inv_lambda, 0)
            .add(row.exact, 2)
            .add(row.monte_carlo, 2)
            .add(row.gamma_bound, 2)
            .add(row.bound_10_3beta, 2)
            .add(row.exact / inv_lambda, 3)
            .add(analysis::t3_mean_exponential(lambda), 2);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: for 1/lambda >> 1 the exact quantile grows"
                 " linearly\n(constant 'exact/(1/lambda)' column); at"
                 " 1/lambda = 1 the Exp(1) clock\ndominates, matching the"
                 " paper's Figure 1 flattening near the origin.\n";
    return 0;
}
