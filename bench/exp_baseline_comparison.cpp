/// \file exp_baseline_comparison.cpp
/// Experiment E6 — positioning against related work (§1.1).
///   (a) Synchronous: Algorithm 1 vs pull voting, two-choices, 3-majority
///       and undecided-state dynamics — rounds to consensus vs k. The
///       3-majority baseline pays Θ(k log n) [BCN+14]; Algorithm 1 pays
///       O(log k · log log_α k + log log n).
///   (b) Asynchronous: the single-leader protocol vs the 3-state [AAE08]
///       and 4-state [DV10/MNRS14] population protocols (k = 2, parallel
///       time vs additive gap).

#include <iostream>

#include "async/simulation.hpp"
#include "opinion/assignment.hpp"
#include "population/four_state.hpp"
#include "population/three_state.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"

namespace {

using namespace papc;

runner::TrialMetrics sync_trial(int which, std::size_t n, std::uint32_t k,
                                double alpha, std::uint64_t seed) {
    Rng rng(seed);
    const Assignment a = make_biased_plurality(n, k, alpha, rng);
    std::unique_ptr<sync::SyncDynamics> dyn;
    switch (which) {
        case 0: {
            sync::ScheduleParams sp;
            sp.n = n;
            sp.k = k;
            sp.alpha = alpha;
            dyn = std::make_unique<sync::Algorithm1>(a, sync::Schedule(sp));
            break;
        }
        case 1: dyn = std::make_unique<sync::PullVoting>(a); break;
        case 2: dyn = std::make_unique<sync::TwoChoices>(a); break;
        case 3: dyn = std::make_unique<sync::ThreeMajority>(a); break;
        default: dyn = std::make_unique<sync::UndecidedState>(a); break;
    }
    sync::RunOptions opts;
    opts.max_rounds = 30000;
    const sync::SyncResult r = run_to_consensus(*dyn, rng, opts);
    runner::TrialMetrics m;
    m["rounds"] = static_cast<double>(r.steps);
    m["success"] = (r.converged && r.winner == 0) ? 1.0 : 0.0;
    return m;
}

}  // namespace

int main() {
    using namespace papc;
    runner::print_banner(std::cout, "E6: protocol comparison vs baselines");

    {
        runner::print_heading(std::cout,
                              "(a) synchronous, rounds vs k [n = 2^16, "
                              "alpha = 2.0, 3 reps, mean rounds (success)]");
        const char* names[] = {"algorithm1", "pull-voting", "two-choices",
                               "3-majority", "undecided-state"};
        Table table({"k", names[0], names[1], names[2], names[3], names[4]});
        const std::size_t n = 1 << 16;
        std::uint64_t cell = 0;
        for (const std::uint32_t k : {2U, 4U, 8U, 16U, 32U, 64U}) {
            auto& row = table.row().add(k);
            for (int which = 0; which < 5; ++which) {
                const auto o = runner::run_experiment_parallel(
                    [&](std::uint64_t s) { return sync_trial(which, n, k, 2.0, s); },
                    3, derive_seed(0xE601, cell++), /*threads=*/4);
                row.add(format_double(o.mean("rounds"), 0) + " (" +
                        format_double(o.mean("success"), 2) + ")");
            }
        }
        table.print(std::cout);
        std::cout << "Expected: pull voting needs Θ(n)-ish time (hits the"
                     " cap or huge counts\nwith success ~ its initial share);"
                     " 3-majority grows linearly in k;\nAlgorithm 1 and"
                     " two-choices grow ~log k, with Algorithm 1 winning"
                     " reliably.\n";
    }

    {
        runner::print_heading(std::cout,
                              "(b) asynchronous, k = 2 [n = 4096, parallel "
                              "time, 3 reps]");
        Table table({"additive gap", "single-leader (time)",
                     "3-state AM (par. time)", "4-state exact (par. time)",
                     "SL ok", "AM ok", "EX ok"});
        const std::size_t n = 4096;
        std::uint64_t row_id = 0;
        for (const std::size_t gap : {std::size_t{64}, std::size_t{256},
                                      std::size_t{1024}}) {
            const auto o = runner::run_experiment_parallel(
                [&](std::uint64_t s) {
                    runner::TrialMetrics m;
                    const std::size_t a_count = (n + gap) / 2;
                    const std::size_t b_count = n - a_count;
                    // Single-leader async (multiplicative bias equivalent).
                    async::AsyncConfig c;
                    c.alpha_hint = static_cast<double>(a_count) / b_count;
                    c.max_time = 2500.0;
                    c.record_series = false;
                    Rng wrng(derive_seed(s, 1));
                    const Assignment assign = make_from_counts(
                        {a_count, b_count}, wrng);
                    async::SingleLeaderSimulation sim(assign, c, derive_seed(s, 2));
                    const async::AsyncResult sl = sim.run();
                    if (sl.converged) m["sl_time"] = sl.consensus_time;
                    m["sl_ok"] = (sl.converged && sl.winner == 0) ? 1.0 : 0.0;
                    // 3-state approximate majority.
                    population::ThreeStateMajority am(a_count, b_count);
                    Rng r1(derive_seed(s, 3));
                    const population::PopulationResult ra =
                        population::run_population(am, r1);
                    if (ra.converged) m["am_time"] = ra.end_time;
                    m["am_ok"] = (ra.converged && ra.winner == 0) ? 1.0 : 0.0;
                    // 4-state exact majority.
                    population::FourStateExactMajority ex(a_count, b_count);
                    Rng r2(derive_seed(s, 4));
                    population::PopulationRunOptions po;
                    po.max_interactions =
                        static_cast<std::uint64_t>(n) * n * 8ULL;
                    const population::PopulationResult re =
                        population::run_population(ex, r2, po);
                    if (re.converged) m["ex_time"] = re.end_time;
                    m["ex_ok"] = (re.converged && re.winner == 0) ? 1.0 : 0.0;
                    return m;
                },
                3, derive_seed(0xE602, row_id++), /*threads=*/4);
            table.row()
                .add(gap)
                .add(o.mean("sl_time"), 1)
                .add(o.mean("am_time"), 1)
                .add(o.mean("ex_time"), 1)
                .add(o.mean("sl_ok"), 2)
                .add(o.mean("am_ok"), 2)
                .add(o.mean("ex_ok"), 2);
        }
        table.print(std::cout);
        std::cout << "Expected: the 4-state exact protocol is always correct"
                     " but pays up to\nΘ(n) parallel time at small gaps; the"
                     " 3-state protocol is fast but needs\nω(√n log n) gap to"
                     " be reliable; the single-leader protocol is fast and\n"
                     "reliable once the multiplicative bias clears the"
                     " Theorem 13 threshold.\n";
    }
    return 0;
}
