/// \file exp_positive_aging.cpp
/// Experiment E9 — the PODC 2020 title claim: *positive aging* admits fast
/// asynchronous plurality consensus. We run the single-leader protocol
/// under latency distributions from each aging class, normalized to equal
/// mean latency 1, and compare consensus times:
///   memoryless      — Exponential(1)            (the analyzed model)
///   positive aging  — Constant(1), Uniform[0,2], Erlang(4, 1/4),
///                     Weibull(2, 2/√π)
///   negative aging  — Weibull(0.5, 1/2), LogNormal(σ = 1.5)
/// Positive-aging models should match or beat the exponential baseline;
/// heavy-tailed (negative-aging) models slow the protocol down because
/// single channel establishments can stall a node for a long time.

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "async/simulation.hpp"
#include "opinion/assignment.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"

namespace {

using namespace papc;

std::unique_ptr<sim::LatencyModel> make_model(int which) {
    switch (which) {
        case 0: return std::make_unique<sim::ExponentialLatency>(1.0);
        case 1: return std::make_unique<sim::ConstantLatency>(1.0);
        case 2: return std::make_unique<sim::UniformLatency>(0.0, 2.0);
        case 3: return std::make_unique<sim::GammaLatency>(4.0, 0.25);
        case 4:
            // Weibull(2, scale) has mean scale·Γ(1.5) = scale·√π/2.
            return std::make_unique<sim::WeibullLatency>(2.0,
                                                         2.0 / std::sqrt(M_PI));
        case 5:
            // Weibull(0.5, scale) has mean scale·Γ(3) = 2·scale.
            return std::make_unique<sim::WeibullLatency>(0.5, 0.5);
        default:
            // LogNormal(mu, 1.5) with mean 1: mu = -1.5²/2.
            return std::make_unique<sim::LogNormalLatency>(-1.125, 1.5);
    }
}

}  // namespace

int main() {
    using namespace papc;
    runner::print_banner(std::cout,
                         "E9: positive aging vs negative aging latencies");

    const std::size_t n = 1 << 14;
    const std::uint32_t k = 4;
    const double alpha = 2.0;
    const std::size_t reps = 3;
    std::cout << "n = 2^14, k = " << k << ", alpha = " << alpha
              << ", all models normalized to mean latency 1\n\n";

    Table table({"latency model", "aging class", "steps/unit C1", "eps-time",
                 "consensus", "success"});
    for (int which = 0; which <= 6; ++which) {
        const auto probe = make_model(which);
        const std::string name = probe->name();
        const std::string aging = sim::to_string(probe->aging());
        const auto o = runner::run_experiment_parallel(
            [&](std::uint64_t s) {
                Rng wrng(derive_seed(s, 1));
                const Assignment a = make_biased_plurality(n, k, alpha, wrng);
                async::AsyncConfig c;
                c.alpha_hint = alpha;
                c.max_time = 4000.0;
                c.record_series = false;
                async::SingleLeaderSimulation sim_run(a, c, make_model(which),
                                                      derive_seed(s, 2));
                const async::AsyncResult r = sim_run.run();
                runner::TrialMetrics m;
                m["success"] = (r.converged && r.plurality_won) ? 1.0 : 0.0;
                m["c1"] = r.steps_per_unit;
                if (r.epsilon_time >= 0.0) m["eps"] = r.epsilon_time;
                if (r.consensus_time >= 0.0) m["cons"] = r.consensus_time;
                return m;
            },
            reps, derive_seed(0xE901, which), /*threads=*/4);
        table.row()
            .add(name)
            .add(aging)
            .add(o.mean("c1"), 2)
            .add(o.mean("eps"), 1)
            .add(o.mean("cons"), 1)
            .add(o.mean("success"), 2);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: all positive-aging rows land close to the"
                 " exponential\nbaseline (constant/uniform even slightly"
                 " faster — no latency tail);\nWeibull(0.5) and LogNormal"
                 " (negative aging) are clearly slower, driven\nby stalled"
                 " channel establishments.\n";
    return 0;
}
