/// \file exp_generation_growth.cpp
/// Experiment E3 — generation growth dynamics.
///  (a) Synchronous (Proposition 9): after its birth, generation i grows by
///      a factor ≥ (2-γ)(1-o(1)) per round until it covers a γ-fraction; the
///      measured life-cycle length matches the scheduled X_i.
///  (b) Asynchronous (Propositions 16+17): a new generation reaches a
///      p_i/9-fraction during the two-choices window and then grows by ≥1.4×
///      per time unit during propagation until it exceeds n/2.

#include <algorithm>
#include <iostream>
#include <vector>

#include "async/simulation.hpp"
#include "opinion/assignment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"
#include "sync/algorithm1.hpp"
#include "sync/engine.hpp"

namespace {

using namespace papc;

void synchronous_part() {
    runner::print_heading(std::cout,
                          "(a) synchronous growth per round [n = 2^18, k = 8, "
                          "alpha = 1.5, gamma = 0.5]");
    const std::size_t n = 1 << 18;
    const std::uint32_t k = 8;
    const double alpha = 1.5;
    Rng rng(0xE301);
    const Assignment a = make_biased_plurality(n, k, alpha, rng);
    sync::ScheduleParams sp;
    sp.n = n;
    sp.k = k;
    sp.alpha = alpha;
    const sync::Schedule schedule{sp};
    sync::Algorithm1 alg(a, schedule);

    // Track the size of the currently-highest generation each round.
    struct Growth {
        Generation gen;
        std::vector<double> fractions;  // per round since birth
    };
    std::vector<Growth> growths;
    Generation tracked = 0;
    for (std::uint64_t round = 1; round <= schedule.horizon(); ++round) {
        alg.step(rng);
        const Generation top = alg.census().highest_populated();
        if (top > tracked) {
            tracked = top;
            growths.push_back({top, {}});
        }
        if (!growths.empty() && growths.back().gen == tracked) {
            growths.back().fractions.push_back(
                alg.census().generation_fraction(tracked));
        }
        if (alg.converged()) break;
    }

    Table table({"generation", "X_i scheduled", "rounds to gamma*n",
                 "mean growth factor", "birth fraction"});
    for (const auto& g : growths) {
        if (g.fractions.empty() || g.gen > schedule.total_generations()) continue;
        // Rounds until the generation covered gamma = 0.5.
        std::uint64_t to_gamma = 0;
        for (; to_gamma < g.fractions.size(); ++to_gamma) {
            if (g.fractions[to_gamma] >= 0.5) break;
        }
        double factor_sum = 0.0;
        int factor_count = 0;
        for (std::size_t i = 1; i < g.fractions.size(); ++i) {
            if (g.fractions[i - 1] > 0.0 && g.fractions[i - 1] < 0.45) {
                factor_sum += g.fractions[i] / g.fractions[i - 1];
                ++factor_count;
            }
        }
        table.row()
            .add(g.gen)
            .add(schedule.life_cycle(g.gen - 1))
            .add(to_gamma < g.fractions.size() ? std::to_string(to_gamma + 1)
                                               : std::string(">" + std::to_string(
                                                     g.fractions.size())))
            .add(factor_count > 0 ? format_double(factor_sum / factor_count, 3)
                                  : std::string("-"))
            .add(g.fractions.front(), 4);
    }
    table.print(std::cout);
    std::cout << "Expected: growth factor near (2-gamma) = 1.5 while below"
                 " gamma*n;\nrounds-to-gamma at most the scheduled X_i.\n";
}

void asynchronous_part() {
    runner::print_heading(std::cout,
                          "(b) asynchronous generation milestones [n = 2^15, "
                          "k = 4, alpha = 2.0]");
    const std::size_t n = 1 << 15;
    async::AsyncConfig config;
    config.alpha_hint = 2.0;
    config.max_time = 1000.0;
    config.sample_interval = 0.1;
    const async::AsyncResult r = async::run_single_leader(n, 4, 2.0, config, 0xE302);

    // Reconstruct per-generation milestones from the leader trace: birth
    // (gen appears, prop = false) and propagation opening (prop = true).
    // A "-" means the generation-size gate n/2 was reached by two-choices
    // promotions alone, before the C3·n signal count opened propagation.
    Table table({"generation", "t_birth", "t_prop opens", "two-choices window"});
    double birth = 0.0;
    Generation current = 1;
    double prop_open = -1.0;
    auto flush = [&]() {
        table.row()
            .add(current)
            .add(birth, 2)
            .add(prop_open >= 0.0 ? format_double(prop_open, 2)
                                  : std::string("-"))
            .add(prop_open >= 0.0 ? format_double(prop_open - birth, 2)
                                  : std::string("-"));
    };
    for (const auto& tr : r.leader_trace) {
        if (tr.gen > current) {
            flush();
            current = tr.gen;
            birth = tr.time;
            prop_open = -1.0;
        } else if (tr.gen == current && tr.prop) {
            prop_open = tr.time;
        }
    }
    flush();
    table.print(std::cout);
    std::cout << "steps per time unit C1 = " << format_double(r.steps_per_unit, 2)
              << "; expected two-choices window ~ 2 time units = "
              << format_double(2.0 * r.steps_per_unit, 1)
              << " steps (Proposition 16).\n";
    std::cout << (r.converged ? "run converged" : "run did NOT converge")
              << " at t = " << format_double(r.consensus_time, 1) << "\n";
}

}  // namespace

int main() {
    using namespace papc;
    runner::print_banner(std::cout, "E3 (Props. 9, 16, 17): generation growth");
    synchronous_part();
    asynchronous_part();
    return 0;
}
