/// \file exp_graph_topologies.cpp
/// Experiment E12 — topology study (the related-work setting of §1.1 and
/// the paper's "more general models" future-work direction). The same
/// biased workload is run with pull voting, two-choices, 3-majority and
/// (exploratory) Algorithm 1 on: the clique, random d-regular graphs
/// (expanders, [CER14]), sparse G(n, p), a ring lattice, and a 2-D torus.
/// Expected: expander rounds track the clique; slow-mixing topologies
/// (ring, torus) blow up or fail — consensus dynamics need expansion.

#include <iostream>
#include <memory>
#include <vector>

#include "graph/dynamics.hpp"
#include "graph/topology.hpp"
#include "opinion/assignment.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"
#include "sync/engine.hpp"

namespace {

using namespace papc;

std::shared_ptr<const graph::Topology> make_topology(int which, std::size_t n,
                                                     Rng& rng) {
    switch (which) {
        case 0: return std::make_shared<graph::CompleteTopology>(n);
        case 1:
            return std::make_shared<graph::CsrGraph>(
                graph::make_random_regular(n, 16, rng));
        case 2:
            return std::make_shared<graph::CsrGraph>(
                graph::make_gnp(n, 16.0 / static_cast<double>(n), rng));
        case 3:
            return std::make_shared<graph::CsrGraph>(graph::make_ring(n, 16));
        default: {
            std::size_t side = 1;
            while (side * side < n) ++side;
            return std::make_shared<graph::CsrGraph>(graph::make_torus(side));
        }
    }
}

}  // namespace

int main() {
    using namespace papc;
    runner::print_banner(std::cout,
                         "E12: opinion dynamics across graph topologies");

    const std::size_t n = 1 << 13;
    const std::uint32_t k = 2;
    const double alpha = 2.0;
    const std::size_t reps = 3;
    const std::uint64_t max_rounds = 4000;

    std::cout << "n = " << n << " (torus uses side^2 >= n), k = " << k
              << ", alpha = " << alpha << ", cap = " << max_rounds
              << " rounds, " << reps << " reps\nCells: mean rounds (success"
              << " rate); '>cap' = never converged\n\n";

    const char* topo_names[] = {"complete", "random-regular d=16",
                                "gnp <d>=16", "ring d=16", "torus 4-nbr"};
    Table table({"dynamics", topo_names[0], topo_names[1], topo_names[2],
                 topo_names[3], topo_names[4]});

    for (int dyn_kind = 0; dyn_kind < 4; ++dyn_kind) {
        const char* dyn_names[] = {"pull-voting", "two-choices", "3-majority",
                                   "algorithm1 (exploratory)"};
        auto& row = table.row().add(dyn_names[dyn_kind]);
        for (int topo_kind = 0; topo_kind < 5; ++topo_kind) {
            const auto o = runner::run_experiment(
                [&](std::uint64_t s) {
                    Rng rng(s);
                    auto topology = make_topology(topo_kind, n, rng);
                    const std::size_t nodes = topology->num_nodes();
                    const Assignment a =
                        make_biased_plurality(nodes, k, alpha, rng);
                    std::unique_ptr<sync::SyncDynamics> dyn;
                    switch (dyn_kind) {
                        case 0:
                            dyn = std::make_unique<graph::GraphPullVoting>(
                                a, topology);
                            break;
                        case 1:
                            dyn = std::make_unique<graph::GraphTwoChoices>(
                                a, topology);
                            break;
                        case 2:
                            dyn = std::make_unique<graph::GraphThreeMajority>(
                                a, topology);
                            break;
                        default: {
                            sync::ScheduleParams sp;
                            sp.n = nodes;
                            sp.k = k;
                            sp.alpha = alpha;
                            dyn = std::make_unique<graph::GraphAlgorithm1>(
                                a, topology, sync::Schedule(sp));
                            break;
                        }
                    }
                    sync::RunOptions opts;
                    opts.max_rounds = max_rounds;
                    const sync::SyncResult r = run_to_consensus(*dyn, rng, opts);
                    runner::TrialMetrics m;
                    m["rounds"] = static_cast<double>(r.steps);
                    m["ok"] =
                        (r.converged && r.winner == 0) ? 1.0 : 0.0;
                    m["converged"] = r.converged ? 1.0 : 0.0;
                    return m;
                },
                reps,
                derive_seed(0xEC01,
                            static_cast<std::uint64_t>(dyn_kind * 16 + topo_kind)));
            const bool all_converged = o.mean("converged") > 0.999;
            row.add((all_converged ? format_double(o.mean("rounds"), 0)
                                   : ">" + std::to_string(max_rounds)) +
                    " (" + format_double(o.mean("ok"), 2) + ")");
        }
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: the d-regular expander and sparse gnp"
                 " columns track the\nclique closely for two-choices and"
                 " 3-majority ([CER14, CER+15]); ring\nand torus mix too"
                 " slowly — voting needs Ω(poly n) rounds there, and\n"
                 "Algorithm 1's generation hand-over inherits the same"
                 " limitation.\n";
    return 0;
}
