/// \file exp_gamma_ablation.cpp
/// Experiment E7 — ablation of the generation-density threshold γ (§2.2):
/// "Empirical data show that the value 1/2 works well for reasonable input
/// sizes, while too high values increase the time, and too small values
/// decrease the stability." We sweep γ and report rounds and success rate.

#include <iostream>

#include "opinion/assignment.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"
#include "support/table.hpp"
#include "sync/algorithm1.hpp"
#include "sync/engine.hpp"

int main() {
    using namespace papc;
    runner::print_banner(std::cout, "E7: gamma ablation (Section 2.2 remark)");

    const std::uint32_t k = 8;
    const std::size_t reps = 10;

    auto sweep = [&](std::size_t n, double alpha, std::uint64_t seed) {
        Table table({"gamma", "rounds (mean)", "rounds (p90)", "success",
                     "G* two-choices steps", "schedule horizon"});
        std::uint64_t row = 0;
        for (const double gamma :
             {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
            sync::ScheduleParams sp;
            sp.n = n;
            sp.k = k;
            sp.alpha = alpha;
            sp.gamma = gamma;
            const sync::Schedule schedule{sp};
            const auto o = runner::run_experiment(
                [&](std::uint64_t s) {
                    Rng rng(s);
                    const Assignment a = make_biased_plurality(n, k, alpha, rng);
                    sync::Algorithm1 alg(a, schedule);
                    sync::RunOptions opts;
                    opts.max_rounds = 3000;
                    const sync::SyncResult r = run_to_consensus(alg, rng, opts);
                    runner::TrialMetrics m;
                    m["rounds"] = static_cast<double>(r.steps);
                    m["success"] = (r.converged && r.winner == 0) ? 1.0 : 0.0;
                    return m;
                },
                reps, derive_seed(seed, row++));
            table.row()
                .add(gamma, 1)
                .add(o.mean("rounds"), 1)
                .add(o.metrics.at("rounds").p90, 1)
                .add(o.mean("success"), 2)
                .add(schedule.total_generations())
                .add(schedule.horizon());
        }
        table.print(std::cout);
    };

    runner::print_heading(std::cout,
                          "(a) comfortable bias [n = 2^16, alpha = 1.3, 10 "
                          "reps] — the time effect");
    sweep(1 << 16, 1.3, 0xE701);
    std::cout << "Expected: U-shaped round counts with the minimum near"
                 " gamma = 0.4-0.5;\nlarge gamma stretches every life-cycle"
                 " X_i.\n";

    runner::print_heading(std::cout,
                          "(b) near-critical bias [n = 2^12, alpha = 1.18, 10 "
                          "reps] — the stability effect");
    sweep(1 << 12, 1.18, 0xE702);
    std::cout << "Expected (paper's remark): with the bias close to 1, small"
                 " gamma hands\ngenerations over while they are still tiny —"
                 " the sampled bias is noisy\nand the wrong opinion can take"
                 " over (success < 1.00); gamma = 0.5 is the\nsweet spot"
                 " between this instability and the slow large-gamma"
                 " regime.\n";
    return 0;
}
