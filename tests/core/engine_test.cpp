#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace papc::core {
namespace {

/// Deterministic engine: fraction of opinion 0 rises linearly, one step
/// per advance; time axis equals steps scaled by `dt`.
class RampEngine final : public Engine {
public:
    RampEngine(std::uint64_t converge_after, double dt)
        : converge_after_(converge_after), dt_(dt) {}

    bool advance() override {
        ++steps_;
        return true;
    }
    [[nodiscard]] double now() const override {
        return static_cast<double>(steps_) * dt_;
    }
    [[nodiscard]] bool converged() const override {
        return steps_ >= converge_after_;
    }
    [[nodiscard]] Opinion dominant() const override { return 0; }
    [[nodiscard]] double opinion_fraction(Opinion j) const override {
        if (steps_ >= converge_after_) return j == 0 ? 1.0 : 0.0;
        const double frac =
            0.5 + 0.5 * static_cast<double>(steps_) /
                      static_cast<double>(converge_after_);
        return j == 0 ? frac : 1.0 - frac;
    }

private:
    std::uint64_t converge_after_;
    double dt_;
    std::uint64_t steps_ = 0;
};

TEST(CoreRun, StopsAtConvergenceAndFillsResult) {
    RampEngine engine(10, 1.0);
    EngineOptions options;
    options.max_steps = 100;
    const RunResult r = run(engine, options);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.steps, 10U);
    EXPECT_EQ(r.winner, 0U);
    EXPECT_TRUE(r.plurality_won);
    EXPECT_DOUBLE_EQ(r.consensus_time, 10.0);
    EXPECT_TRUE(consistent(r));
}

TEST(CoreRun, RespectsStepBudget) {
    RampEngine engine(1000, 1.0);
    EngineOptions options;
    options.max_steps = 25;
    const RunResult r = run(engine, options);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.steps, 25U);
    EXPECT_DOUBLE_EQ(r.end_time, 25.0);
}

TEST(CoreRun, RespectsTimeBudget) {
    RampEngine engine(1000, 0.5);
    EngineOptions options;
    options.max_time = 10.0;
    const RunResult r = run(engine, options);
    EXPECT_FALSE(r.converged);
    // The crossing step is processed and counted (t = 10.5 is step 21),
    // but every reported time saturates at the budget.
    EXPECT_EQ(r.steps, 21U);
    EXPECT_DOUBLE_EQ(r.end_time, 10.0);
}

TEST(CoreRun, TimeBudgetBoundaryTakesFinalSample) {
    // Regression for the max_time overshoot: the old loop broke on the
    // crossing step without sampling, so neither the series nor the
    // tracker ever saw the exit state and end_time sat past the budget.
    RampEngine engine(1000, 0.75);  // steps at t = 0.75, 1.5, ...
    EngineOptions options;
    options.max_time = 3.0;
    options.record = true;
    options.sample_interval = 10.0;  // no metronome sample would ever fire
    const RunResult r = run(engine, options);
    EXPECT_EQ(r.steps, 5U);  // t = 3.75 crosses the budget
    EXPECT_DOUBLE_EQ(r.end_time, 3.0);
    ASSERT_EQ(r.plurality_fraction.size(), 1U);  // exactly the boundary
    EXPECT_DOUBLE_EQ(r.plurality_fraction[0].time, 3.0);
    // The sampled fraction is the post-crossing state (5 of 1000 steps).
    EXPECT_DOUBLE_EQ(r.plurality_fraction[0].value, 0.5 + 0.5 * 5.0 / 1000.0);
}

TEST(CoreRun, ConvergenceOnBudgetCrossingStepIsDetectedAtBudgetTime) {
    RampEngine engine(21, 0.5);  // converges exactly on the crossing step
    EngineOptions options;
    options.max_time = 10.0;
    const RunResult r = run(engine, options);
    EXPECT_TRUE(r.converged);
    // Consensus is reported at the clamped boundary, never past it.
    EXPECT_DOUBLE_EQ(r.consensus_time, 10.0);
    EXPECT_DOUBLE_EQ(r.end_time, 10.0);
    EXPECT_TRUE(consistent(r));
}

TEST(CoreRun, EpsilonTimePrecedesConsensus) {
    RampEngine engine(100, 1.0);
    EngineOptions options;
    options.max_steps = 1000;
    options.epsilon = 0.10;  // reached when fraction >= 0.9, i.e. step 80
    const RunResult r = run(engine, options);
    EXPECT_DOUBLE_EQ(r.epsilon_time, 80.0);
    EXPECT_DOUBLE_EQ(r.consensus_time, 100.0);
    EXPECT_TRUE(consistent(r));
}

TEST(CoreRun, EpsilonTimeMonotoneInEpsilon) {
    double previous = -1.0;
    for (const double epsilon : {0.30, 0.20, 0.10, 0.05}) {
        RampEngine engine(100, 1.0);
        EngineOptions options;
        options.max_steps = 1000;
        options.epsilon = epsilon;
        const RunResult r = run(engine, options);
        ASSERT_GE(r.epsilon_time, 0.0);
        // A tighter ε can only be reached later.
        EXPECT_GE(r.epsilon_time, previous);
        previous = r.epsilon_time;
    }
}

TEST(CoreRun, CheckEveryDelaysDetection) {
    RampEngine engine(95, 1.0);
    EngineOptions options;
    options.max_steps = 1000;
    options.check_every = 50;
    const RunResult r = run(engine, options);
    EXPECT_TRUE(r.converged);
    // Converged at step 95, detected at the next check boundary.
    EXPECT_EQ(r.steps, 100U);
}

TEST(CoreRun, RecordsSeriesOnCadenceAndAtConvergence) {
    RampEngine engine(95, 1.0);
    EngineOptions options;
    options.max_steps = 1000;
    options.record = true;
    options.record_every = 30;
    options.sample_at_start = true;
    options.series_name = "ramp";
    const RunResult r = run(engine, options);
    // Steps 0, 30, 60, 90 on cadence plus the convergence sample at 95.
    ASSERT_EQ(r.plurality_fraction.size(), 5U);
    EXPECT_EQ(r.plurality_fraction.name(), "ramp");
    EXPECT_DOUBLE_EQ(r.plurality_fraction[4].time, 95.0);
    EXPECT_DOUBLE_EQ(r.plurality_fraction[4].value, 1.0);
}

TEST(CoreRun, RecordEveryHonoredWhenNotAMultipleOfCheckEvery) {
    // Regression for the cadence bug: recording used to fire only at
    // steps that were also convergence checks, so record_every = 30 with
    // check_every = 50 silently recorded at 150, 300, ... instead of
    // 30, 60, 90, ...
    RampEngine engine(10000, 1.0);
    EngineOptions options;
    options.max_steps = 100;
    options.check_every = 50;
    options.record = true;
    options.record_every = 30;
    const RunResult r = run(engine, options);
    ASSERT_EQ(r.plurality_fraction.size(), 3U);
    EXPECT_DOUBLE_EQ(r.plurality_fraction[0].time, 30.0);
    EXPECT_DOUBLE_EQ(r.plurality_fraction[1].time, 60.0);
    EXPECT_DOUBLE_EQ(r.plurality_fraction[2].time, 90.0);
}

TEST(CoreRun, RecordStepsAlsoObserveConvergence) {
    // A record-cadence sample feeds the tracker too: convergence landing
    // on a record step (not a check step) is detected there, not at the
    // next check boundary.
    RampEngine engine(30, 1.0);
    EngineOptions options;
    options.max_steps = 1000;
    options.check_every = 50;
    options.record = true;
    options.record_every = 30;
    const RunResult r = run(engine, options);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.steps, 30U);
    EXPECT_DOUBLE_EQ(r.consensus_time, 30.0);
}

TEST(CoreRun, TimeDrivenSamplingSkipsEmptyIntervals) {
    RampEngine engine(1000, 2.5);  // steps land at t = 2.5, 5.0, ...
    EngineOptions options;
    options.max_steps = 4;
    options.sample_interval = 1.0;
    options.record = true;
    const RunResult r = run(engine, options);
    // One sample per crossing, not one per missed interval.
    EXPECT_EQ(r.plurality_fraction.size(), 4U);
}

TEST(CoreRun, SampleAtStartDetectsInitialConsensus) {
    RampEngine engine(0, 1.0);  // converged before the first step
    EngineOptions options;
    options.max_steps = 100;
    options.sample_at_start = true;
    const RunResult r = run(engine, options);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.steps, 0U);
    EXPECT_DOUBLE_EQ(r.consensus_time, 0.0);
}

TEST(CoreRun, ConvergenceAtBudgetExitIsStillDetected) {
    RampEngine engine(10, 1.0);
    EngineOptions options;
    options.max_steps = 10;    // budget hits exactly at convergence
    options.check_every = 64;  // no in-loop sample would fire
    const RunResult r = run(engine, options);
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.consensus_time, 10.0);
    EXPECT_TRUE(consistent(r));
}

TEST(CoreRun, ObserverSeesEverySample) {
    std::vector<double> sampled_times;
    bool finished = false;
    FunctionObserver observer(
        [&](double time, double fraction) {
            sampled_times.push_back(time);
            EXPECT_GE(fraction, 0.0);
            EXPECT_LE(fraction, 1.0);
        },
        [&](const RunResult& r) {
            finished = true;
            EXPECT_TRUE(r.converged);
        });
    RampEngine engine(10, 1.0);
    EngineOptions options;
    options.max_steps = 100;
    const RunResult r = run(engine, options, &observer);
    EXPECT_TRUE(finished);
    ASSERT_EQ(sampled_times.size(), 10U);
    for (std::size_t i = 1; i < sampled_times.size(); ++i) {
        EXPECT_GT(sampled_times[i], sampled_times[i - 1]);
    }
    EXPECT_EQ(r.steps, 10U);
}

TEST(CoreRun, StopsWhenEngineRunsOutOfWork) {
    /// Engine that exhausts its work queue after 7 events.
    class FiniteEngine final : public Engine {
    public:
        bool advance() override { return steps_ < 7 ? (++steps_, true) : false; }
        [[nodiscard]] double now() const override {
            return static_cast<double>(steps_);
        }
        [[nodiscard]] bool converged() const override { return false; }
        [[nodiscard]] Opinion dominant() const override { return 1; }
        [[nodiscard]] double opinion_fraction(Opinion) const override {
            return 0.5;
        }

    private:
        std::uint64_t steps_ = 0;
    } engine;
    const RunResult r = run(engine, EngineOptions{});
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.steps, 7U);
    EXPECT_EQ(r.winner, 1U);
    EXPECT_FALSE(r.plurality_won);
}

}  // namespace
}  // namespace papc::core
