#include "core/run_result.hpp"

#include <gtest/gtest.h>

namespace papc::core {
namespace {

RunResult sample_result() {
    RunResult r;
    r.converged = true;
    r.winner = 3;
    r.plurality_won = true;
    r.epsilon_time = 12.625;
    r.consensus_time = 37.109375;
    r.end_time = 37.109375;
    r.steps = 123456789ULL;
    r.plurality_fraction = TimeSeries("plurality-fraction");
    r.plurality_fraction.record(0.0, 0.41);
    r.plurality_fraction.record(12.625, 0.98);
    r.plurality_fraction.record(37.109375, 1.0);
    return r;
}

TEST(RunResultSerialize, RoundTripsScalars) {
    const RunResult original = sample_result();
    const RunResult copy = deserialize(serialize(original));
    EXPECT_EQ(copy.converged, original.converged);
    EXPECT_EQ(copy.winner, original.winner);
    EXPECT_EQ(copy.plurality_won, original.plurality_won);
    EXPECT_DOUBLE_EQ(copy.epsilon_time, original.epsilon_time);
    EXPECT_DOUBLE_EQ(copy.consensus_time, original.consensus_time);
    EXPECT_DOUBLE_EQ(copy.end_time, original.end_time);
    EXPECT_EQ(copy.steps, original.steps);
}

TEST(RunResultSerialize, RoundTripsSeriesExactly) {
    const RunResult original = sample_result();
    const RunResult copy = deserialize(serialize(original));
    ASSERT_EQ(copy.plurality_fraction.size(), original.plurality_fraction.size());
    EXPECT_EQ(copy.plurality_fraction.name(), original.plurality_fraction.name());
    for (std::size_t i = 0; i < copy.plurality_fraction.size(); ++i) {
        // Hex-float encoding: bit-exact, not just approximate.
        EXPECT_EQ(copy.plurality_fraction[i].time,
                  original.plurality_fraction[i].time);
        EXPECT_EQ(copy.plurality_fraction[i].value,
                  original.plurality_fraction[i].value);
    }
}

TEST(RunResultSerialize, RoundTripsNonFiniteSentinels) {
    RunResult r;
    r.epsilon_time = -1.0;
    r.consensus_time = -1.0;
    const RunResult copy = deserialize(serialize(r));
    EXPECT_DOUBLE_EQ(copy.epsilon_time, -1.0);
    EXPECT_DOUBLE_EQ(copy.consensus_time, -1.0);
    EXPECT_FALSE(copy.converged);
    EXPECT_EQ(copy.steps, 0U);
}

TEST(RunResultSerialize, IgnoresUnknownKeys) {
    const std::string text =
        "converged 1\nfuture_field 99\nwinner 2\nsteps 10\n";
    const RunResult copy = deserialize(text);
    EXPECT_TRUE(copy.converged);
    EXPECT_EQ(copy.winner, 2U);
    EXPECT_EQ(copy.steps, 10U);
}

TEST(RunResultConsistent, AcceptsWellFormedResults) {
    EXPECT_TRUE(consistent(sample_result()));
    EXPECT_TRUE(consistent(RunResult()));
    // A run where the expected plurality lost: ε-time never latched.
    RunResult rival;
    rival.converged = true;
    rival.plurality_won = false;
    rival.consensus_time = 5.0;
    rival.end_time = 5.0;
    EXPECT_TRUE(consistent(rival));
}

TEST(RunResultConsistent, RejectsEpsilonAfterConsensus) {
    RunResult r = sample_result();
    r.epsilon_time = r.consensus_time + 1.0;
    EXPECT_FALSE(consistent(r));
}

TEST(RunResultConsistent, RejectsDetectionBeyondEnd) {
    RunResult r = sample_result();
    r.end_time = r.consensus_time - 1.0;
    EXPECT_FALSE(consistent(r));
}

TEST(RunResultConsistent, RejectsPluralityWinWithoutEpsilon) {
    RunResult r;
    r.converged = true;
    r.plurality_won = true;
    r.consensus_time = 4.0;
    r.end_time = 4.0;
    r.epsilon_time = -1.0;
    EXPECT_FALSE(consistent(r));
}

}  // namespace
}  // namespace papc::core
