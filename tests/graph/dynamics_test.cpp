#include "graph/dynamics.hpp"

#include <gtest/gtest.h>

#include "opinion/assignment.hpp"

namespace papc::graph {
namespace {

std::shared_ptr<const Topology> expander(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    return std::make_shared<CsrGraph>(make_random_regular(n, 12, rng));
}

TEST(GraphDynamics, TwoChoicesOnExpanderConverges) {
    const std::size_t n = 2048;
    Rng rng(11);
    const Assignment a = make_biased_plurality(n, 2, 2.0, rng);
    GraphTwoChoices dyn(a, expander(n, 12));
    sync::RunOptions opts;
    opts.max_rounds = 2000;
    const sync::SyncResult r = run_to_consensus(dyn, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

TEST(GraphDynamics, ThreeMajorityOnExpanderConverges) {
    const std::size_t n = 2048;
    Rng rng(13);
    const Assignment a = make_biased_plurality(n, 4, 2.5, rng);
    GraphThreeMajority dyn(a, expander(n, 14));
    sync::RunOptions opts;
    opts.max_rounds = 3000;
    const sync::SyncResult r = run_to_consensus(dyn, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

TEST(GraphDynamics, CompleteTopologyMatchesCliqueBehaviour) {
    // two-choices on CompleteTopology must behave like the dedicated
    // clique implementation: converge in ~log rounds on a strong bias.
    const std::size_t n = 2048;
    Rng rng(15);
    const Assignment a = make_biased_plurality(n, 2, 3.0, rng);
    GraphTwoChoices dyn(a, std::make_shared<CompleteTopology>(n));
    sync::RunOptions opts;
    opts.max_rounds = 200;
    const sync::SyncResult r = run_to_consensus(dyn, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.steps, 40U);
}

TEST(GraphDynamics, RingMixesSlowly) {
    // Same workload, ring vs expander: the ring must take noticeably more
    // rounds (local-only information flow).
    const std::size_t n = 1024;
    Rng wrng(16);
    const Assignment a = make_biased_plurality(n, 2, 3.0, wrng);
    sync::RunOptions opts;
    opts.max_rounds = 5000;

    GraphTwoChoices fast(a, expander(n, 17));
    Rng r1(18);
    const sync::SyncResult quick = run_to_consensus(fast, r1, opts);

    GraphTwoChoices slow(a, std::make_shared<CsrGraph>(make_ring(n, 4)));
    Rng r2(18);
    const sync::SyncResult sluggish = run_to_consensus(slow, r2, opts);

    ASSERT_TRUE(quick.converged);
    // The ring either fails to converge within the cap or takes much longer.
    if (sluggish.converged) {
        EXPECT_GT(sluggish.steps, 4 * quick.steps);
    }
}

TEST(GraphDynamics, GraphAlgorithm1OnExpander) {
    const std::size_t n = 4096;
    Rng rng(19);
    const Assignment a = make_biased_plurality(n, 4, 2.0, rng);
    sync::ScheduleParams sp;
    sp.n = n;
    sp.k = 4;
    sp.alpha = 2.0;
    GraphAlgorithm1 dyn(a, expander(n, 20), sync::Schedule(sp));
    sync::RunOptions opts;
    opts.max_rounds = 1000;
    const sync::SyncResult r = run_to_consensus(dyn, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

TEST(GraphDynamics, PopulationConserved) {
    const std::size_t n = 512;
    Rng rng(21);
    const Assignment a = make_biased_plurality(n, 3, 2.0, rng);
    GraphPullVoting dyn(a, expander(n, 22));
    for (int i = 0; i < 15; ++i) {
        dyn.step(rng);
        std::uint64_t total = 0;
        for (Opinion j = 0; j < 3; ++j) total += dyn.opinion_count(j);
        EXPECT_EQ(total, n);
    }
}

TEST(GraphDynamics, NamesIncludeTopology) {
    const std::size_t n = 128;
    Rng rng(23);
    const Assignment a = make_biased_plurality(n, 2, 2.0, rng);
    GraphTwoChoices dyn(a, std::make_shared<CompleteTopology>(n));
    EXPECT_NE(dyn.name().find("two-choices"), std::string::npos);
    EXPECT_NE(dyn.name().find("complete"), std::string::npos);
}

}  // namespace
}  // namespace papc::graph
