#include "graph/topology.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace papc::graph {
namespace {

TEST(CompleteTopology, DegreeAndSampling) {
    const CompleteTopology g(10);
    EXPECT_EQ(g.num_nodes(), 10U);
    EXPECT_EQ(g.degree(3), 9U);
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const NodeId u = g.sample_neighbor(4, rng);
        EXPECT_LT(u, 10U);
        EXPECT_NE(u, 4U);
    }
}

TEST(CompleteTopology, SamplingIsUniform) {
    const CompleteTopology g(5);
    Rng rng(2);
    std::map<NodeId, int> counts;
    const int trials = 40000;
    for (int i = 0; i < trials; ++i) ++counts[g.sample_neighbor(0, rng)];
    EXPECT_EQ(counts.size(), 4U);
    for (const auto& [node, c] : counts) {
        EXPECT_NE(node, 0U);
        EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
    }
}

TEST(CsrGraph, BuildsFromEdgeList) {
    const CsrGraph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, "square");
    EXPECT_EQ(g.num_nodes(), 4U);
    EXPECT_EQ(g.num_edges(), 4U);
    for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 2U);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.name(), "square");
}

TEST(CsrGraph, DisconnectedDetected) {
    const CsrGraph g(4, {{0, 1}, {2, 3}}, "two-pairs");
    EXPECT_FALSE(g.is_connected());
}

TEST(CsrGraph, NeighborSamplingRespectsAdjacency) {
    const CsrGraph g(4, {{0, 1}, {0, 2}}, "star-ish");
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const NodeId u = g.sample_neighbor(0, rng);
        EXPECT_TRUE(u == 1 || u == 2);
        EXPECT_EQ(g.sample_neighbor(1, rng), 0U);
    }
}

TEST(RandomRegular, DegreesAreRegular) {
    Rng rng(4);
    const CsrGraph g = make_random_regular(500, 8, rng);
    EXPECT_EQ(g.num_nodes(), 500U);
    EXPECT_EQ(g.min_degree(), 8U);
    EXPECT_EQ(g.max_degree(), 8U);
    EXPECT_TRUE(g.is_connected());  // whp for d = 8
}

TEST(RandomRegular, OddProductRejected) {
    Rng rng(5);
    EXPECT_DEATH((void)make_random_regular(5, 3, rng), "PAPC_CHECK");
}

TEST(Gnp, EdgeCountNearExpectation) {
    Rng rng(6);
    const std::size_t n = 2000;
    const double p = 0.01;
    const CsrGraph g = make_gnp(n, p, rng);
    const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
    EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
                5.0 * std::sqrt(expected));
}

TEST(Gnp, ZeroProbabilityEmpty) {
    Rng rng(7);
    const CsrGraph g = make_gnp(100, 0.0, rng);
    EXPECT_EQ(g.num_edges(), 0U);
}

TEST(Gnp, EdgesAreValidAndNotSelfLoops) {
    Rng rng(8);
    const CsrGraph g = make_gnp(300, 0.05, rng);
    for (NodeId v = 0; v < 300; ++v) {
        Rng local(v + 1);
        if (g.degree(v) == 0) continue;
        for (int i = 0; i < 20; ++i) {
            const NodeId u = g.sample_neighbor(v, local);
            EXPECT_LT(u, 300U);
            EXPECT_NE(u, v);
        }
    }
}

TEST(Ring, StructureAndDegrees) {
    const CsrGraph g = make_ring(100, 6);
    EXPECT_EQ(g.num_nodes(), 100U);
    EXPECT_EQ(g.min_degree(), 6U);
    EXPECT_EQ(g.max_degree(), 6U);
    EXPECT_TRUE(g.is_connected());
}

TEST(Torus, FourRegularAndConnected) {
    const CsrGraph g = make_torus(8);
    EXPECT_EQ(g.num_nodes(), 64U);
    EXPECT_EQ(g.min_degree(), 4U);
    EXPECT_EQ(g.max_degree(), 4U);
    EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace papc::graph
