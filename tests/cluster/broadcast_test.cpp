#include "cluster/broadcast.hpp"

#include <gtest/gtest.h>

namespace papc::cluster {
namespace {

ClusteringResult fixed_clustering(std::size_t n, std::size_t num_clusters) {
    // Synthetic balanced clustering: nodes v with v % num_clusters == c are
    // members of cluster c.
    ClusteringResult r;
    r.cluster_of.resize(n);
    r.clusters.resize(num_clusters);
    for (NodeId v = 0; v < n; ++v) {
        const auto c = static_cast<std::int32_t>(v % num_clusters);
        r.cluster_of[v] = c;
        r.clusters[static_cast<std::size_t>(c)].push_back(v);
    }
    r.num_active = num_clusters;
    r.nodes_in_active = n;
    r.fraction_clustered = 1.0;
    r.completed = true;
    return r;
}

TEST(Broadcast, InformsAllLeaders) {
    const ClusteringResult clustering = fixed_clustering(4096, 64);
    Rng rng(401);
    const BroadcastResult r = run_broadcast(clustering, 0, 1.0, 200.0, rng);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.informed, 64U);
    EXPECT_GT(r.time_to_all, 0.0);
}

TEST(Broadcast, FastRelativeToPopulationSize) {
    // Theorem 28: O(1) time. At this scale a loose numeric bound suffices —
    // the point is no log(n) blow-up.
    const ClusteringResult clustering = fixed_clustering(8192, 128);
    Rng rng(402);
    const BroadcastResult r = run_broadcast(clustering, 5, 1.0, 200.0, rng);
    ASSERT_TRUE(r.completed);
    EXPECT_LT(r.time_to_all, 30.0);
    EXPECT_LT(r.mean_inform_time, r.time_to_all + 1e-9);
}

TEST(Broadcast, RespectsTimeCap) {
    const ClusteringResult clustering = fixed_clustering(512, 16);
    Rng rng(403);
    const BroadcastResult r = run_broadcast(clustering, 0, 1.0, 0.01, rng);
    EXPECT_FALSE(r.completed);
    EXPECT_GE(r.informed, 1U);  // at least the source
}

TEST(Broadcast, SingleClusterTrivial) {
    const ClusteringResult clustering = fixed_clustering(128, 1);
    Rng rng(404);
    const BroadcastResult r = run_broadcast(clustering, 0, 1.0, 10.0, rng);
    EXPECT_TRUE(r.completed);
    EXPECT_DOUBLE_EQ(r.time_to_all, 0.0);
}

TEST(Broadcast, UnclusteredNodesDoNotBlockCompletion) {
    ClusteringResult clustering = fixed_clustering(1024, 32);
    // Detach roughly a quarter of the nodes, but keep every cluster's first
    // member: a leader with no members at all is unreachable by design (in
    // real clusterings the leader is always its own member).
    for (NodeId v = 32; v < 1024; v += 4) {
        const std::int32_t c = clustering.cluster_of[v];
        auto& members = clustering.clusters[static_cast<std::size_t>(c)];
        members.erase(std::find(members.begin(), members.end(), v));
        clustering.cluster_of[v] = kNoCluster;
    }
    Rng rng(405);
    const BroadcastResult r = run_broadcast(clustering, 0, 1.0, 200.0, rng);
    EXPECT_TRUE(r.completed);
}

TEST(Broadcast, SlowerChannelsSlowerSpread) {
    const ClusteringResult clustering = fixed_clustering(4096, 64);
    Rng r1(406);
    Rng r2(406);
    const BroadcastResult fast = run_broadcast(clustering, 0, 2.0, 400.0, r1);
    const BroadcastResult slow = run_broadcast(clustering, 0, 0.25, 400.0, r2);
    ASSERT_TRUE(fast.completed);
    ASSERT_TRUE(slow.completed);
    EXPECT_LT(fast.time_to_all, slow.time_to_all);
}

}  // namespace
}  // namespace papc::cluster
