#include "cluster/cluster_leader.hpp"

#include <gtest/gtest.h>

namespace papc::cluster {
namespace {

ClusterLeaderConfig config(std::uint64_t card = 10, std::uint64_t sleep = 20,
                           std::uint64_t prop = 40, std::uint64_t gen_size = 6,
                           Generation max_gen = 4) {
    ClusterLeaderConfig c;
    c.cardinality = card;
    c.sleep_threshold = sleep;
    c.prop_threshold = prop;
    c.generation_size_threshold = gen_size;
    c.max_generation = max_gen;
    return c;
}

TEST(LexGreater, OrdersByGenerationThenState) {
    EXPECT_TRUE(lex_greater(2, LeaderState::kTwoChoices, 1,
                            LeaderState::kPropagation));
    EXPECT_TRUE(lex_greater(1, LeaderState::kSleeping, 1,
                            LeaderState::kTwoChoices));
    EXPECT_FALSE(lex_greater(1, LeaderState::kTwoChoices, 1,
                             LeaderState::kTwoChoices));
    EXPECT_FALSE(lex_greater(1, LeaderState::kPropagation, 2,
                             LeaderState::kTwoChoices));
}

TEST(ClusterLeader, InitialState) {
    const ClusterLeader l(config());
    EXPECT_EQ(l.gen(), 1U);
    EXPECT_EQ(l.state(), LeaderState::kTwoChoices);
    EXPECT_EQ(l.tick_counter(), 0U);
    EXPECT_EQ(l.trace().size(), 1U);
}

TEST(ClusterLeader, PhaseProgressionViaZeroSignals) {
    ClusterLeader l(config(10, 5, 9, 100, 3));
    double t = 0.0;
    for (int i = 0; i < 4; ++i) l.on_signal(t += 0.1, 0, LeaderState::kTwoChoices, false);
    EXPECT_EQ(l.state(), LeaderState::kTwoChoices);
    l.on_signal(t += 0.1, 0, LeaderState::kTwoChoices, false);  // 5th
    EXPECT_EQ(l.state(), LeaderState::kSleeping);
    for (int i = 0; i < 3; ++i) l.on_signal(t += 0.1, 0, LeaderState::kTwoChoices, false);
    EXPECT_EQ(l.state(), LeaderState::kSleeping);
    l.on_signal(t += 0.1, 0, LeaderState::kTwoChoices, false);  // 9th
    EXPECT_EQ(l.state(), LeaderState::kPropagation);
}

TEST(ClusterLeader, GenerationBirthViaPromotionReports) {
    ClusterLeader l(config(10, 50, 100, 3, 4));
    l.on_signal(0.1, 1, LeaderState::kTwoChoices, true);
    l.on_signal(0.2, 1, LeaderState::kTwoChoices, true);
    EXPECT_EQ(l.gen(), 1U);
    l.on_signal(0.3, 1, LeaderState::kTwoChoices, true);
    EXPECT_EQ(l.gen(), 2U);
    EXPECT_EQ(l.state(), LeaderState::kTwoChoices);
    EXPECT_EQ(l.tick_counter(), 0U);
    EXPECT_EQ(l.generation_size(), 0U);
}

TEST(ClusterLeader, GossipAdoptionOfFresherState) {
    ClusterLeader l(config(10, 20, 40, 100, 5));
    // Another cluster is already at generation 3 in propagation.
    l.on_signal(1.0, 3, LeaderState::kPropagation, false);
    EXPECT_EQ(l.gen(), 3U);
    EXPECT_EQ(l.state(), LeaderState::kPropagation);
    // Counter jumps to the propagation threshold so later 0-signals do not
    // re-trigger earlier phases.
    EXPECT_EQ(l.tick_counter(), 40U);
}

TEST(ClusterLeader, GossipAdoptionOfSleepStateSetsCounter) {
    ClusterLeader l(config(10, 20, 40, 100, 5));
    l.on_signal(1.0, 2, LeaderState::kSleeping, false);
    EXPECT_EQ(l.gen(), 2U);
    EXPECT_EQ(l.state(), LeaderState::kSleeping);
    EXPECT_EQ(l.tick_counter(), 20U);
    // Continue counting: 20 more 0-signals reach the propagation threshold.
    for (int i = 0; i < 20; ++i) l.on_signal(1.1, 0, LeaderState::kTwoChoices, false);
    EXPECT_EQ(l.state(), LeaderState::kPropagation);
}

TEST(ClusterLeader, StaleGossipIgnored) {
    ClusterLeader l(config());
    l.on_signal(1.0, 3, LeaderState::kSleeping, false);
    EXPECT_EQ(l.gen(), 3U);
    l.on_signal(2.0, 2, LeaderState::kPropagation, false);  // older generation
    EXPECT_EQ(l.gen(), 3U);
    EXPECT_EQ(l.state(), LeaderState::kSleeping);
    l.on_signal(3.0, 3, LeaderState::kSleeping, false);  // equal: ignored
    EXPECT_EQ(l.state(), LeaderState::kSleeping);
}

TEST(ClusterLeader, AdoptionResetsGenSizeOnGenerationChange) {
    ClusterLeader l(config(10, 20, 40, 5, 5));
    l.on_signal(0.1, 1, LeaderState::kTwoChoices, true);
    l.on_signal(0.2, 1, LeaderState::kTwoChoices, true);
    EXPECT_EQ(l.generation_size(), 2U);
    l.on_signal(0.3, 2, LeaderState::kTwoChoices, false);  // jump to gen 2
    // New generation: previous counts no longer apply, but the signal that
    // caused the jump is itself a gen-2 signal only if hasChanged.
    EXPECT_EQ(l.generation_size(), 0U);
}

TEST(ClusterLeader, PromotionSignalCausingJumpCountsOnce) {
    ClusterLeader l(config(10, 20, 40, 5, 5));
    // A member promoted to gen 2 (via another cluster's leader) reports
    // (2, prop, changed): the leader adopts gen 2 AND counts the member.
    l.on_signal(0.1, 2, LeaderState::kPropagation, true);
    EXPECT_EQ(l.gen(), 2U);
    EXPECT_EQ(l.generation_size(), 1U);
}

TEST(ClusterLeader, MaxGenerationCap) {
    ClusterLeader l(config(10, 20, 40, 1, 2));
    l.on_signal(0.1, 1, LeaderState::kTwoChoices, true);  // birth -> 2
    EXPECT_EQ(l.gen(), 2U);
    l.on_signal(0.2, 2, LeaderState::kTwoChoices, true);
    l.on_signal(0.3, 2, LeaderState::kTwoChoices, true);
    EXPECT_EQ(l.gen(), 2U);  // capped
}

TEST(ClusterLeader, TraceIsMonotone) {
    ClusterLeader l(config(10, 3, 6, 2, 4));
    double t = 0.0;
    for (int i = 0; i < 30; ++i) {
        l.on_signal(t += 0.1, 0, LeaderState::kTwoChoices, false);
        if (i % 3 == 0) l.on_signal(t += 0.1, l.gen(), LeaderState::kTwoChoices, true);
    }
    const auto& trace = l.trace();
    for (std::size_t i = 1; i < trace.size(); ++i) {
        EXPECT_GE(trace[i].time, trace[i - 1].time);
        EXPECT_GE(trace[i].gen, trace[i - 1].gen);
    }
}

}  // namespace
}  // namespace papc::cluster
