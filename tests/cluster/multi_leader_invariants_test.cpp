#include <gtest/gtest.h>

#include "cluster/simulation.hpp"
#include "opinion/assignment.hpp"

namespace papc::cluster {
namespace {

// End-state invariants of the decentralized protocol, checked on the raw
// member/leader state rather than the aggregated result.

class MultiLeaderEndState : public ::testing::Test {
protected:
    void SetUp() override {
        config_.size_floor = 16;
        config_.leader_probability = 1.0 / 64.0;
        config_.alpha_hint = 2.0;
        config_.max_time = 1500.0;
        config_.record_series = false;

        Rng wrng(101);
        assignment_ = make_biased_plurality(n_, 4, 2.0, wrng);
        Rng crng(102);
        ClusteringResult clustering = run_clustering(n_, config_, crng);
        ASSERT_TRUE(clustering.completed);
        sim_ = std::make_unique<MultiLeaderSimulation>(
            assignment_, std::move(clustering), config_, 103);
        result_ = sim_->run();
        ASSERT_TRUE(result_.converged);
    }

    const std::size_t n_ = 4096;
    ClusterConfig config_;
    Assignment assignment_;
    std::unique_ptr<MultiLeaderSimulation> sim_;
    MultiLeaderResult result_;
};

TEST_F(MultiLeaderEndState, MemberGenerationsBoundedByLeaderMaximum) {
    Generation max_leader_gen = 0;
    for (std::size_t c = 0; c < sim_->num_clusters(); ++c) {
        max_leader_gen = std::max(max_leader_gen, sim_->leader(c).gen());
    }
    for (NodeId v = 0; v < n_; ++v) {
        EXPECT_LE(sim_->member(v).gen, max_leader_gen) << "node " << v;
    }
}

TEST_F(MultiLeaderEndState, CensusMatchesMemberStates) {
    std::vector<std::uint64_t> counts(4, 0);
    for (NodeId v = 0; v < n_; ++v) ++counts[sim_->member(v).col];
    for (Opinion j = 0; j < 4; ++j) {
        std::uint64_t census_total = 0;
        for (Generation g = 0; g <= sim_->census().highest_populated(); ++g) {
            census_total += sim_->census().count(g, j);
        }
        EXPECT_EQ(census_total, counts[j]) << "opinion " << j;
    }
}

TEST_F(MultiLeaderEndState, AllMembersShareTheWinner) {
    for (NodeId v = 0; v < n_; ++v) {
        EXPECT_EQ(sim_->member(v).col, result_.winner);
    }
}

TEST_F(MultiLeaderEndState, FinishedMembersHoldTopGenerations) {
    // A finished member either reached G* itself or adopted via the
    // epidemic; either way its color is final and equals the winner.
    std::size_t finished = 0;
    for (NodeId v = 0; v < n_; ++v) {
        if (sim_->member(v).finished) {
            ++finished;
            EXPECT_EQ(sim_->member(v).col, result_.winner);
        }
    }
    EXPECT_GT(finished, n_ / 2);
}

TEST_F(MultiLeaderEndState, LeaderGenerationsWithinBudget) {
    for (std::size_t c = 0; c < sim_->num_clusters(); ++c) {
        EXPECT_LE(sim_->leader(c).gen(),
                  sim_->leader(c).config().max_generation);
    }
}

}  // namespace
}  // namespace papc::cluster
