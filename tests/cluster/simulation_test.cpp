#include "cluster/simulation.hpp"

#include <gtest/gtest.h>

namespace papc::cluster {
namespace {

ClusterConfig test_config() {
    ClusterConfig c;
    c.size_floor = 16;
    c.leader_probability = 1.0 / 64.0;
    c.lambda = 1.0;
    c.alpha_hint = 2.0;
    c.max_time = 1200.0;
    c.clustering_max_time = 300.0;
    return c;
}

TEST(MultiLeaderSimulation, ConvergesToPlurality) {
    const MultiLeaderResult r = run_multi_leader(4096, 4, 2.0, test_config(), 1);
    ASSERT_TRUE(r.clustering.completed);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
    EXPECT_EQ(r.winner, 0U);
    EXPECT_GT(r.consensus_time, 0.0);
}

TEST(MultiLeaderSimulation, EpsilonBeforeConsensus) {
    const MultiLeaderResult r = run_multi_leader(4096, 2, 2.0, test_config(), 2);
    ASSERT_TRUE(r.converged);
    EXPECT_GE(r.epsilon_time, 0.0);
    EXPECT_LE(r.epsilon_time, r.consensus_time);
}

TEST(MultiLeaderSimulation, UsesBothPromotionMechanisms) {
    const MultiLeaderResult r = run_multi_leader(4096, 4, 2.0, test_config(), 3);
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.two_choices_count, 0U);
    EXPECT_GT(r.propagation_count, 0U);
    EXPECT_GT(r.finished_adoptions, 0U);
}

TEST(MultiLeaderSimulation, LeaderTracesAreMonotone) {
    const MultiLeaderResult r = run_multi_leader(2048, 2, 2.0, test_config(), 4);
    ASSERT_TRUE(r.converged);
    ASSERT_FALSE(r.leader_traces.empty());
    for (const auto& trace : r.leader_traces) {
        for (std::size_t i = 1; i < trace.size(); ++i) {
            EXPECT_GE(trace[i].time, trace[i - 1].time);
            EXPECT_GE(trace[i].gen, trace[i - 1].gen);
        }
    }
}

TEST(MultiLeaderSimulation, LeadersStaySynchronized) {
    // §4.4 / Figure 2: leaders' generation birth times for a fixed
    // generation lie within an O(1) window. Compare the spread of the
    // birth time of generation 2 across leaders.
    const MultiLeaderResult r = run_multi_leader(4096, 2, 2.0, test_config(), 5);
    ASSERT_TRUE(r.converged);
    double min_birth = 1e18;
    double max_birth = -1.0;
    for (const auto& trace : r.leader_traces) {
        for (const auto& tr : trace) {
            if (tr.gen == 2 && tr.state == LeaderState::kTwoChoices) {
                min_birth = std::min(min_birth, tr.time);
                max_birth = std::max(max_birth, tr.time);
                break;
            }
        }
    }
    ASSERT_GT(max_birth, 0.0);
    EXPECT_LT(max_birth - min_birth, 60.0);
}

TEST(MultiLeaderSimulation, DeterministicForSeed) {
    const MultiLeaderResult a = run_multi_leader(1024, 2, 2.0, test_config(), 7);
    const MultiLeaderResult b = run_multi_leader(1024, 2, 2.0, test_config(), 7);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_DOUBLE_EQ(a.consensus_time, b.consensus_time);
    EXPECT_EQ(a.exchanges, b.exchanges);
}

TEST(MultiLeaderSimulation, FinishedFractionReachesOneOnConvergence) {
    const MultiLeaderResult r = run_multi_leader(2048, 2, 2.0, test_config(), 8);
    ASSERT_TRUE(r.converged);
    // At consensus detection nearly all nodes carry the finished flag (the
    // epidemic saturates); allow slack for nodes that adopted the color via
    // regular promotion just before the check.
    EXPECT_GT(r.finished_fraction, 0.5);
}

TEST(MultiLeaderSimulation, TotalTimeComposesPhases) {
    const MultiLeaderResult r = run_multi_leader(1024, 2, 2.0, test_config(), 9);
    ASSERT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.total_time(), r.clustering_time + r.consensus_time);
}

TEST(MultiLeaderSimulation, ManyOpinions) {
    ClusterConfig c = test_config();
    c.alpha_hint = 1.5;
    const MultiLeaderResult r = run_multi_leader(8192, 8, 1.5, c, 10);
    ASSERT_TRUE(r.clustering.completed);
    EXPECT_TRUE(r.converged);
    EXPECT_TRUE(r.plurality_won);
}

}  // namespace
}  // namespace papc::cluster
