#include "cluster/member.hpp"

#include <gtest/gtest.h>

namespace papc::cluster {
namespace {

using Kind = MemberDecision::Kind;

MemberState member(Generation gen = 0, Opinion col = 0, Generation tmp_gen = 1,
                   LeaderState tmp_state = LeaderState::kTwoChoices) {
    MemberState m;
    m.gen = gen;
    m.col = col;
    m.tmp_gen = tmp_gen;
    m.tmp_state = tmp_state;
    return m;
}

TEST(DecideMemberExchange, OutOfSyncOnlyGossips) {
    const MemberState v = member(0, 0, 1, LeaderState::kTwoChoices);
    const MemberDecision d = decide_member_exchange(
        v, 2, LeaderState::kTwoChoices, MemberView{1, 0}, MemberView{1, 0});
    EXPECT_EQ(d.kind, Kind::kNone);
    EXPECT_EQ(d.signal.i, 2U);
    EXPECT_EQ(d.signal.s, LeaderState::kTwoChoices);
    EXPECT_FALSE(d.signal.has_changed);
}

TEST(DecideMemberExchange, TwoChoicesPromotion) {
    const MemberState v = member(0, 1);
    const MemberDecision d = decide_member_exchange(
        v, 1, LeaderState::kTwoChoices, MemberView{0, 3}, MemberView{0, 3});
    EXPECT_EQ(d.kind, Kind::kTwoChoices);
    EXPECT_EQ(d.new_gen, 1U);
    EXPECT_EQ(d.new_col, 3U);
    EXPECT_TRUE(d.signal.has_changed);
    EXPECT_EQ(d.signal.i, 1U);
    EXPECT_EQ(d.signal.s, LeaderState::kTwoChoices);
}

TEST(DecideMemberExchange, TwoChoicesBlockedWhileSleeping) {
    const MemberState v = member(0, 0, 1, LeaderState::kSleeping);
    const MemberDecision d = decide_member_exchange(
        v, 1, LeaderState::kSleeping, MemberView{0, 3}, MemberView{0, 3});
    EXPECT_EQ(d.kind, Kind::kNone);
}

TEST(DecideMemberExchange, TwoChoicesNeedsAgreeingColors) {
    const MemberState v = member(0, 0);
    const MemberDecision d = decide_member_exchange(
        v, 1, LeaderState::kTwoChoices, MemberView{0, 1}, MemberView{0, 2});
    EXPECT_EQ(d.kind, Kind::kNone);
}

TEST(DecideMemberExchange, PropagationIntoTopGenerationNeedsState3) {
    const MemberState blocked = member(0, 0, 2, LeaderState::kSleeping);
    const MemberDecision d1 = decide_member_exchange(
        blocked, 2, LeaderState::kSleeping, MemberView{2, 5}, MemberView{0, 0});
    EXPECT_EQ(d1.kind, Kind::kNone);

    const MemberState open = member(0, 0, 2, LeaderState::kPropagation);
    const MemberDecision d2 = decide_member_exchange(
        open, 2, LeaderState::kPropagation, MemberView{2, 5}, MemberView{0, 0});
    EXPECT_EQ(d2.kind, Kind::kPropagation);
    EXPECT_EQ(d2.new_gen, 2U);
    EXPECT_EQ(d2.new_col, 5U);
    EXPECT_EQ(d2.signal.s, LeaderState::kPropagation);
    EXPECT_TRUE(d2.signal.has_changed);
}

TEST(DecideMemberExchange, CatchUpBelowLeaderGenDuringAnyState) {
    const MemberState v = member(0, 0, 3, LeaderState::kSleeping);
    const MemberDecision d = decide_member_exchange(
        v, 3, LeaderState::kSleeping, MemberView{2, 7}, MemberView{1, 6});
    EXPECT_EQ(d.kind, Kind::kPropagation);
    EXPECT_EQ(d.new_gen, 2U);  // prefers the higher eligible generation
    EXPECT_EQ(d.new_col, 7U);
}

TEST(DecideMemberExchange, NoActionWhenSamplesNotAhead) {
    const MemberState v = member(2, 0, 2, LeaderState::kPropagation);
    const MemberDecision d = decide_member_exchange(
        v, 2, LeaderState::kPropagation, MemberView{2, 1}, MemberView{1, 1});
    EXPECT_EQ(d.kind, Kind::kNone);
    EXPECT_FALSE(d.signal.has_changed);
}

TEST(DecideMemberExchange, TwoChoicesPrecedesPropagation) {
    const MemberState v = member(0, 0, 2, LeaderState::kTwoChoices);
    const MemberDecision d = decide_member_exchange(
        v, 2, LeaderState::kTwoChoices, MemberView{1, 4}, MemberView{1, 4});
    EXPECT_EQ(d.kind, Kind::kTwoChoices);
    EXPECT_EQ(d.new_gen, 2U);
}

TEST(DecideMemberExchange, AlreadyAtLeaderGenNoPromotion) {
    const MemberState v = member(2, 0, 2, LeaderState::kTwoChoices);
    const MemberDecision d = decide_member_exchange(
        v, 2, LeaderState::kTwoChoices, MemberView{1, 4}, MemberView{1, 4});
    EXPECT_EQ(d.kind, Kind::kNone);
}

}  // namespace
}  // namespace papc::cluster
