#include "cluster/clustering.hpp"

#include <gtest/gtest.h>

#include <set>

namespace papc::cluster {
namespace {

ClusterConfig small_config() {
    ClusterConfig c;
    c.size_floor = 16;
    c.leader_probability = 1.0 / 64.0;
    c.clustering_max_time = 300.0;
    return c;
}

TEST(Clustering, ProducesActiveClusters) {
    Rng rng(301);
    const std::size_t n = 4096;
    const ClusteringResult r = run_clustering(n, small_config(), rng);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.num_leaders, 0U);
    EXPECT_GT(r.num_active, 0U);
    EXPECT_GT(r.fraction_clustered, 0.8);
}

TEST(Clustering, ActiveClustersMeetTheFloor) {
    Rng rng(302);
    const ClusterConfig c = small_config();
    const ClusteringResult r = run_clustering(4096, c, rng);
    ASSERT_TRUE(r.completed);
    for (const auto& members : r.clusters) {
        EXPECT_GE(members.size(), c.size_floor);
    }
}

TEST(Clustering, MembershipIsConsistent) {
    Rng rng(303);
    const std::size_t n = 2048;
    const ClusteringResult r = run_clustering(n, small_config(), rng);
    ASSERT_TRUE(r.completed);
    // cluster_of and clusters agree; no node appears twice.
    std::set<NodeId> seen;
    for (std::size_t c = 0; c < r.clusters.size(); ++c) {
        for (const NodeId v : r.clusters[c]) {
            EXPECT_EQ(r.cluster_of[v], static_cast<std::int32_t>(c));
            EXPECT_TRUE(seen.insert(v).second) << "node " << v << " duplicated";
        }
    }
    EXPECT_EQ(seen.size(), r.nodes_in_active);
    // Nodes marked unclustered are not in any active member list.
    for (NodeId v = 0; v < n; ++v) {
        if (r.cluster_of[v] == kNoCluster) {
            EXPECT_EQ(seen.count(v), 0U);
        }
    }
}

TEST(Clustering, SwitchHappensBeforeAllInformed) {
    Rng rng(304);
    const ClusteringResult r = run_clustering(4096, small_config(), rng);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.first_switch_time, 0.0);
    EXPECT_GE(r.all_informed_time, r.first_switch_time);
}

TEST(Clustering, BroadcastGapIsSmall) {
    // Theorem 27: t_l - t_f = O(1); allow a generous constant in units of
    // time steps at this scale.
    Rng rng(305);
    const ClusteringResult r = run_clustering(8192, small_config(), rng);
    ASSERT_TRUE(r.completed);
    EXPECT_LT(r.all_informed_time - r.first_switch_time, 40.0);
}

TEST(Clustering, DeterministicForSeed) {
    Rng a(306);
    Rng b(306);
    const ClusteringResult ra = run_clustering(1024, small_config(), a);
    const ClusteringResult rb = run_clustering(1024, small_config(), b);
    EXPECT_EQ(ra.num_leaders, rb.num_leaders);
    EXPECT_EQ(ra.num_active, rb.num_active);
    EXPECT_EQ(ra.cluster_of, rb.cluster_of);
}

TEST(Clustering, DerivedDefaultsScaleWithN) {
    const ClusterConfig c;
    EXPECT_GE(c.resolved_floor(1 << 10), 8U);
    EXPECT_GT(c.resolved_floor(1 << 20), c.resolved_floor(1 << 10));
    EXPECT_LT(c.resolved_leader_probability(1 << 20),
              c.resolved_leader_probability(1 << 10));
}

TEST(Clustering, LeadersBelongToTheirOwnCluster) {
    Rng rng(307);
    const ClusteringResult r = run_clustering(2048, small_config(), rng);
    ASSERT_TRUE(r.completed);
    for (const auto& members : r.clusters) {
        ASSERT_FALSE(members.empty());
        const NodeId leader = members.front();
        EXPECT_EQ(r.cluster_of[leader],
                  r.cluster_of[members[members.size() / 2]]);
    }
}

}  // namespace
}  // namespace papc::cluster
