#include "sync/algorithm1.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "opinion/assignment.hpp"
#include "sync/engine.hpp"

namespace papc::sync {
namespace {

Schedule make_schedule(std::size_t n, std::uint32_t k, double alpha) {
    ScheduleParams p;
    p.n = n;
    p.k = k;
    p.alpha = alpha;
    return Schedule(p);
}

TEST(Algorithm1, ConvergesToPluralityWithClearBias) {
    Rng rng(101);
    const std::size_t n = 4096;
    const Assignment a = make_biased_plurality(n, 4, 2.0, rng);
    Algorithm1 alg(a, make_schedule(n, 4, 2.0));
    RunOptions opts;
    opts.max_rounds = 500;
    const SyncResult r = run_to_consensus(alg, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
    EXPECT_LT(r.steps, 200U);
}

TEST(Algorithm1, GenerationsNeverExceedScheduleBudget) {
    Rng rng(102);
    const std::size_t n = 2048;
    const Assignment a = make_biased_plurality(n, 4, 1.8, rng);
    const Schedule s = make_schedule(n, 4, 1.8);
    Algorithm1 alg(a, s);
    for (int round = 0; round < 100 && !alg.converged(); ++round) {
        alg.step(rng);
        EXPECT_LE(alg.census().highest_populated(), s.total_generations());
    }
}

TEST(Algorithm1, GenerationBornOnlyAtTwoChoicesSteps) {
    Rng rng(103);
    const std::size_t n = 2048;
    const Assignment a = make_biased_plurality(n, 2, 2.0, rng);
    const Schedule s = make_schedule(n, 2, 2.0);
    Algorithm1 alg(a, s);
    for (int round = 0; round < 60 && !alg.converged(); ++round) {
        alg.step(rng);
    }
    // Every generation i >= 1 must have been first observed at its
    // scheduled birth step t_i (whp; deterministic seed makes this stable).
    for (const GenerationBirth& b : alg.births()) {
        if (b.generation == 0) continue;
        EXPECT_TRUE(s.is_two_choices_step(b.round))
            << "generation " << b.generation << " born at round " << b.round;
    }
}

TEST(Algorithm1, PopulationConservedEveryRound) {
    Rng rng(104);
    const std::size_t n = 1024;
    const Assignment a = make_biased_plurality(n, 4, 1.5, rng);
    Algorithm1 alg(a, make_schedule(n, 4, 1.5));
    for (int round = 0; round < 30; ++round) {
        alg.step(rng);
        std::uint64_t total = 0;
        for (Opinion j = 0; j < 4; ++j) total += alg.opinion_count(j);
        EXPECT_EQ(total, n);
    }
}

TEST(Algorithm1, BiasGrowsAcrossGenerations) {
    Rng rng(105);
    const std::size_t n = 1 << 15;
    const double alpha = 1.5;
    const Assignment a = make_biased_plurality(n, 2, alpha, rng);
    Algorithm1 alg(a, make_schedule(n, 2, alpha));
    RunOptions opts;
    opts.max_rounds = 300;
    (void)run_to_consensus(alg, rng, opts);
    const auto& births = alg.births();
    ASSERT_GE(births.size(), 3U);
    // Lemma 4: the bias at birth of generation i is close to the square of
    // the bias at birth of generation i-1; with measurement noise we only
    // assert strict growth while finite.
    for (std::size_t i = 2; i < births.size(); ++i) {
        if (std::isinf(births[i].alpha) || std::isinf(births[i - 1].alpha)) break;
        if (births[i].size < 50) continue;  // too small for a stable ratio
        EXPECT_GT(births[i].alpha, births[i - 1].alpha * 1.1)
            << "generation " << i;
    }
}

TEST(Algorithm1, MonotoneGenerationsPerNode) {
    Rng rng(106);
    const std::size_t n = 512;
    const Assignment a = make_biased_plurality(n, 4, 1.5, rng);
    Algorithm1 alg(a, make_schedule(n, 4, 1.5));
    std::vector<Generation> prev(n, 0);
    for (int round = 0; round < 40; ++round) {
        alg.step(rng);
        for (NodeId v = 0; v < n; ++v) {
            EXPECT_GE(alg.generation(v), prev[v]);
            prev[v] = alg.generation(v);
        }
    }
}

TEST(Algorithm1, RecordsBirthSizesAndBias) {
    Rng rng(107);
    const std::size_t n = 4096;
    const Assignment a = make_biased_plurality(n, 2, 2.0, rng);
    Algorithm1 alg(a, make_schedule(n, 2, 2.0));
    RunOptions opts;
    opts.max_rounds = 200;
    (void)run_to_consensus(alg, rng, opts);
    ASSERT_FALSE(alg.births().empty());
    EXPECT_EQ(alg.births().front().generation, 0U);
    EXPECT_EQ(alg.births().front().size, n);
    for (const auto& b : alg.births()) {
        EXPECT_GT(b.size, 0U);
    }
}

TEST(Algorithm1, TwoOpinionsTinyBiasStillWins) {
    // With k = 2 and α = 1.2 at n = 2^15 the threshold of Theorem 1 is met
    // comfortably; the protocol should pick opinion 0.
    Rng rng(108);
    const std::size_t n = 1 << 15;
    const Assignment a = make_biased_plurality(n, 2, 1.2, rng);
    Algorithm1 alg(a, make_schedule(n, 2, 1.2));
    RunOptions opts;
    opts.max_rounds = 400;
    const SyncResult r = run_to_consensus(alg, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.winner, 0U);
}

}  // namespace
}  // namespace papc::sync
