/// \file thread_equivalence_test.cpp
/// The PR 5 determinism contract: sharded sync rounds are bit-identical
/// at every thread count. Each shard draws from Rng::substream(round,
/// shard) — a pure function of the run generator and the labels — so
/// neither the worker pool size, nor shard-to-worker assignment, nor
/// shard completion order can influence a trajectory. Pinned here three
/// ways:
///
///   1. full-state FNV hashes after a fixed number of rounds, threads
///      {1, 2, 8}, all five protocols;
///   2. api::run end-to-end: byte-comparable RunResults across thread
///      counts (steps, times, winner, recorded series);
///   3. api::run_sweep with a `threads` axis: two executions of the same
///      sweep emit identical JSON, and same-seed cells agree across
///      thread counts.
///
/// The pull-voting batch cutover (kPullVotingBatchCutover) is also pinned
/// here: the inline-scalar and batched paths must produce identical
/// states because they consume the shard substreams identically.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "api/sweep.hpp"
#include "opinion/assignment.hpp"
#include "support/json_writer.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"

namespace papc::sync {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xFFU;
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t state_hash(const ColorVectorDynamics& dynamics, std::size_t n) {
    std::uint64_t hash = kFnvOffset;
    for (NodeId v = 0; v < n; ++v) hash = fnv1a(hash, dynamics.color(v));
    return hash;
}

std::uint64_t state_hash(const Algorithm1& alg, std::size_t n) {
    std::uint64_t hash = kFnvOffset;
    for (NodeId v = 0; v < n; ++v) {
        hash = fnv1a(hash, (static_cast<std::uint64_t>(alg.generation(v)) << 32U) |
                               alg.color(v));
    }
    return hash;
}

// Spans three shards with a partial tail so shard boundaries, the worker
// pool, and the tail path are all exercised.
constexpr std::size_t kN = 2 * 4096 + 1234;
constexpr int kRounds = 12;

Assignment equivalence_assignment(std::uint32_t k) {
    Rng workload_rng(771);
    return make_biased_plurality(kN, k, 1.2, workload_rng);
}

template <typename MakeDynamics>
std::vector<std::uint64_t> hashes_per_thread_count(MakeDynamics&& make,
                                                   std::uint64_t seed) {
    std::vector<std::uint64_t> hashes;
    for (const std::size_t threads : {1U, 2U, 8U}) {
        auto dynamics = make(threads);
        Rng rng(seed);
        for (int round = 0; round < kRounds; ++round) dynamics->step(rng);
        hashes.push_back(state_hash(*dynamics, kN));
    }
    return hashes;
}

template <typename Hashes>
void expect_all_equal(const Hashes& hashes) {
    for (std::size_t i = 1; i < hashes.size(); ++i) {
        EXPECT_EQ(hashes[i], hashes[0]) << "thread-count variant " << i;
    }
}

TEST(ThreadEquivalence, Algorithm1) {
    const Assignment a = equivalence_assignment(8);
    ScheduleParams params;
    params.n = kN;
    params.k = 8;
    params.alpha = 1.2;
    expect_all_equal(hashes_per_thread_count(
        [&](std::size_t threads) {
            return std::make_unique<Algorithm1>(a, Schedule(params), threads);
        },
        3031));
}

TEST(ThreadEquivalence, PullVoting) {
    const Assignment a = equivalence_assignment(8);
    expect_all_equal(hashes_per_thread_count(
        [&](std::size_t threads) {
            return std::make_unique<PullVoting>(a, threads);
        },
        3032));
}

TEST(ThreadEquivalence, TwoChoices) {
    const Assignment a = equivalence_assignment(8);
    expect_all_equal(hashes_per_thread_count(
        [&](std::size_t threads) {
            return std::make_unique<TwoChoices>(a, threads);
        },
        3033));
}

TEST(ThreadEquivalence, ThreeMajority) {
    const Assignment a = equivalence_assignment(8);
    expect_all_equal(hashes_per_thread_count(
        [&](std::size_t threads) {
            return std::make_unique<ThreeMajority>(a, threads);
        },
        3034));
}

TEST(ThreadEquivalence, UndecidedState) {
    const Assignment a = equivalence_assignment(3);
    expect_all_equal(hashes_per_thread_count(
        [&](std::size_t threads) {
            return std::make_unique<UndecidedState>(a, threads);
        },
        3035));
}

TEST(ThreadEquivalence, PullVotingBatchCutoverIsPureStrategySwitch) {
    // Below the cutover PullVoting decides inline; above it the batched
    // kernel runs. Both must realize the identical substream schedule
    // (uniform_indices == repeated uniform_index == BufferedSampler), so
    // a run on either side of the threshold matches a hand-driven
    // batched replay of the same draws.
    for (const std::size_t n :
         {kPullVotingBatchCutover - 1000,    // inline path
          kPullVotingBatchCutover + 1000}) { // batched path
        Rng workload_rng(771);
        const Assignment a = make_biased_plurality(n, 4, 1.2, workload_rng);
        PullVoting production(a);
        Rng run_rng(888);
        for (int round = 0; round < kRounds; ++round) production.step(run_rng);

        // Reference: replay the same schedule through explicit batched
        // draws, mirroring the driver's one-draw-per-round parent nonce.
        std::vector<Opinion> colors = a.opinions;
        std::vector<Opinion> next(colors.size());
        Rng parent(888);
        for (std::uint64_t round = 1; round <= kRounds; ++round) {
            (void)parent.next_u64();
            const Rng base = parent;
            for (std::size_t base_node = 0, shard = 0;
                 base_node < colors.size(); base_node += 4096, ++shard) {
                const std::size_t count = std::min<std::size_t>(
                    4096, colors.size() - base_node);
                Rng sub = base.substream(round, shard);
                std::vector<std::uint64_t> idx(count);
                sub.uniform_indices(colors.size(), idx.data(), count);
                for (std::size_t i = 0; i < count; ++i) {
                    next[base_node + i] = colors[idx[i]];
                }
            }
            colors.swap(next);
        }

        for (NodeId v = 0; v < colors.size(); ++v) {
            ASSERT_EQ(production.color(v), colors[v])
                << "n " << n << " node " << v;
        }
    }
}

// ------------------------------------------------------------- api layer

api::Scenario sync_scenario(const char* protocol, std::size_t threads) {
    api::Scenario s;
    s.protocol = protocol;
    s.n = 6000;
    s.k = 4;
    s.alpha = 1.5;
    s.threads = threads;
    return s;
}

TEST(ThreadEquivalence, ApiRunResultsByteIdentical) {
    for (const char* protocol :
         {"sync", "two-choices", "3-majority", "undecided", "pull"}) {
        const api::ScenarioResult one = api::run(sync_scenario(protocol, 1), 77);
        for (const std::size_t threads : {2U, 8U}) {
            const api::ScenarioResult many =
                api::run(sync_scenario(protocol, threads), 77);
            EXPECT_EQ(many.run.steps, one.run.steps) << protocol;
            EXPECT_EQ(many.run.converged, one.run.converged) << protocol;
            EXPECT_EQ(many.run.winner, one.run.winner) << protocol;
            EXPECT_DOUBLE_EQ(many.run.end_time, one.run.end_time) << protocol;
            EXPECT_DOUBLE_EQ(many.run.epsilon_time, one.run.epsilon_time)
                << protocol;
            EXPECT_DOUBLE_EQ(many.run.consensus_time, one.run.consensus_time)
                << protocol;
            ASSERT_EQ(many.run.plurality_fraction.size(),
                      one.run.plurality_fraction.size())
                << protocol;
            for (std::size_t i = 0; i < one.run.plurality_fraction.size();
                 ++i) {
                ASSERT_DOUBLE_EQ(many.run.plurality_fraction[i].value,
                                 one.run.plurality_fraction[i].value)
                    << protocol << " point " << i;
            }
        }
    }
}

TEST(ThreadEquivalence, ThreadsSweepAxisIsDeterministic) {
    api::Sweep sweep;
    sweep.base = sync_scenario("two-choices", 1);
    sweep.base.n = 3000;
    sweep.base.record_series = false;
    sweep.axes = api::parse_sweep_spec("threads=1,2,8;k=2,4").axes;
    sweep.reps = 2;
    sweep.base_seed = 5;

    const auto to_json = [](const api::SweepResult& result) {
        JsonWriter writer;
        api::write_json(writer, result);
        return writer.str();
    };
    const std::string first = to_json(api::run_sweep(sweep));
    EXPECT_EQ(to_json(api::run_sweep(sweep)), first);
    // And with the per-cell trial harness itself multithreaded.
    sweep.threads = 4;
    EXPECT_EQ(to_json(api::run_sweep(sweep)), first);
}

}  // namespace
}  // namespace papc::sync
