/// \file kernel_golden_test.cpp
/// Fixed-seed golden pins for the whole synchronous family across the
/// batched-kernel refactor (PR 4). Two layers:
///
///   1. full-state hashes: every per-node (generation, opinion) after a
///      fixed number of rounds, folded through FNV-1a — any change to the
///      draw order, the decide rules, or the commit order shows up here;
///   2. api::run end-to-end pins: steps / times / winner for one scenario
///      per protocol, captured on the pre-refactor scalar kernels.
///
/// The values below were re-captured when the sharded executor landed
/// (PR 5): per-shard RNG substreams replaced the PR 4 sequential tape, so
/// the draw schedule — and with it every trajectory — shifted once, the
/// same way the scalar -> batched transition was pinned before. The new
/// contract is thread-count invariance: these exact values must reproduce
/// at every `threads` (tests/sync/thread_equivalence_test.cpp pins
/// threads 1 == 2 == 8; this file pins the absolute trajectory).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "opinion/assignment.hpp"
#include "sync/algorithm1.hpp"
#include "sync/baselines.hpp"
#include "sync/engine.hpp"

namespace papc::sync {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xFFU;
        hash *= kFnvPrime;
    }
    return hash;
}

/// Hash of the full per-node state of a baseline dynamics.
std::uint64_t state_hash(const ColorVectorDynamics& dynamics, std::size_t n) {
    std::uint64_t hash = kFnvOffset;
    for (NodeId v = 0; v < n; ++v) hash = fnv1a(hash, dynamics.color(v));
    return hash;
}

/// Hash of the full per-node (generation, opinion) state of Algorithm 1.
std::uint64_t state_hash(const Algorithm1& alg, std::size_t n) {
    std::uint64_t hash = kFnvOffset;
    for (NodeId v = 0; v < n; ++v) {
        hash = fnv1a(hash, (static_cast<std::uint64_t>(alg.generation(v)) << 32U) |
                               alg.color(v));
    }
    return hash;
}

template <typename Dynamics>
std::uint64_t run_rounds_and_hash(Dynamics& dynamics, std::size_t n,
                                  std::uint64_t seed, int rounds) {
    Rng rng(seed);
    for (int i = 0; i < rounds; ++i) dynamics.step(rng);
    return state_hash(dynamics, n);
}

// Weak bias and large k keep the population mixed for all 12 rounds, so the
// hash covers a rich trajectory rather than an early-converged fixpoint.
constexpr std::size_t kN = 8192;

Assignment golden_assignment(std::uint32_t k, double alpha) {
    Rng workload_rng(991);
    return make_biased_plurality(kN, k, alpha, workload_rng);
}

TEST(KernelGolden, Algorithm1StateHash) {
    const Assignment a = golden_assignment(8, 1.2);
    ScheduleParams params;
    params.n = kN;
    params.k = 8;
    params.alpha = 1.2;
    Algorithm1 alg(a, Schedule(params));
    EXPECT_EQ(run_rounds_and_hash(alg, kN, 2024, 40), 2744742995375919319ULL);
}

TEST(KernelGolden, PullVotingStateHash) {
    const Assignment a = golden_assignment(8, 1.2);
    PullVoting dynamics(a);
    EXPECT_EQ(run_rounds_and_hash(dynamics, kN, 2025, 12), 5305405778702028132ULL);
}

TEST(KernelGolden, TwoChoicesStateHash) {
    const Assignment a = golden_assignment(8, 1.2);
    TwoChoices dynamics(a);
    EXPECT_EQ(run_rounds_and_hash(dynamics, kN, 2026, 12), 1326807789183964610ULL);
}

TEST(KernelGolden, ThreeMajorityStateHash) {
    const Assignment a = golden_assignment(8, 1.2);
    ThreeMajority dynamics(a);
    EXPECT_EQ(run_rounds_and_hash(dynamics, kN, 2027, 12), 18006192273414586017ULL);
}

TEST(KernelGolden, UndecidedStateStateHash) {
    const Assignment a = golden_assignment(8, 1.2);
    UndecidedState dynamics(a);
    EXPECT_EQ(run_rounds_and_hash(dynamics, kN, 2028, 12), 2559102787695417026ULL);
}

struct ApiGolden {
    const char* protocol;
    std::size_t n;
    std::uint32_t k;
    double alpha;
    std::uint64_t seed;
    std::uint64_t steps;
    double epsilon_time;
    double consensus_time;
};

class ApiGoldenSuite : public ::testing::TestWithParam<ApiGolden> {};

TEST_P(ApiGoldenSuite, EndToEndPin) {
    const ApiGolden& g = GetParam();
    api::Scenario scenario;
    scenario.protocol = g.protocol;
    scenario.n = g.n;
    scenario.k = g.k;
    scenario.alpha = g.alpha;
    const api::ScenarioResult r = api::run(scenario, g.seed);
    EXPECT_TRUE(r.run.converged);
    EXPECT_EQ(r.run.winner, 0U);
    EXPECT_EQ(r.run.steps, g.steps);
    EXPECT_DOUBLE_EQ(r.run.end_time, static_cast<double>(g.steps));
    EXPECT_DOUBLE_EQ(r.run.epsilon_time, g.epsilon_time);
    EXPECT_DOUBLE_EQ(r.run.consensus_time, g.consensus_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllSyncProtocols, ApiGoldenSuite,
    ::testing::Values(
        ApiGolden{"sync", 4096, 4, 1.5, 42, 35, 31.0, 35.0},
        ApiGolden{"two-choices", 4096, 4, 2.0, 7, 9, 7.0, 9.0},
        ApiGolden{"3-majority", 4096, 8, 2.0, 11, 13, 11.0, 13.0},
        ApiGolden{"undecided", 4096, 3, 3.0, 13, 9, 7.0, 9.0},
        ApiGolden{"pull", 2048, 2, 3.0, 6, 965, 937.0, 965.0}),
    [](const auto& info) {
        std::string name = info.param.protocol;
        for (char& c : name) {
            if (c == '-') c = '_';
        }
        return name;
    });

}  // namespace
}  // namespace papc::sync
