#include "sync/engine.hpp"

#include <gtest/gtest.h>

#include "opinion/assignment.hpp"
#include "sync/baselines.hpp"

namespace papc::sync {
namespace {

/// Deterministic dynamics that converges after a fixed number of rounds:
/// every round moves one node from opinion 1 to opinion 0.
class CountdownDynamics final : public SyncDynamics {
public:
    explicit CountdownDynamics(std::uint64_t ones) : ones_(ones) {}

    void step(Rng&) override {
        if (ones_ > 0) --ones_;
        ++rounds_;
    }
    [[nodiscard]] std::size_t population() const override { return 100; }
    [[nodiscard]] std::uint32_t num_opinions() const override { return 2; }
    [[nodiscard]] std::uint64_t opinion_count(Opinion j) const override {
        return j == 0 ? 100 - ones_ : ones_;
    }
    [[nodiscard]] std::uint64_t rounds() const override { return rounds_; }
    [[nodiscard]] std::string name() const override { return "countdown"; }

private:
    std::uint64_t ones_;
    std::uint64_t rounds_ = 0;
};

TEST(RunToConsensus, StopsExactlyAtConvergence) {
    CountdownDynamics dyn(7);
    Rng rng(1);
    const SyncResult r = run_to_consensus(dyn, rng);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.steps, 7U);
    EXPECT_EQ(r.winner, 0U);
}

TEST(RunToConsensus, RespectsRoundLimit) {
    CountdownDynamics dyn(1000);
    Rng rng(2);
    RunOptions opts;
    opts.max_rounds = 10;
    const SyncResult r = run_to_consensus(dyn, rng, opts);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.steps, 10U);
}

TEST(RunToConsensus, EpsilonTimeBeforeConsensus) {
    CountdownDynamics dyn(50);
    Rng rng(3);
    RunOptions opts;
    opts.epsilon = 0.10;  // reached when 90 nodes hold opinion 0
    const SyncResult r = run_to_consensus(dyn, rng, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.epsilon_time, 40.0);
    EXPECT_EQ(r.steps, 50U);
}

TEST(RunToConsensus, RecordsSeriesWhenRequested) {
    CountdownDynamics dyn(20);
    Rng rng(4);
    RunOptions opts;
    opts.record_every = 5;
    const SyncResult r = run_to_consensus(dyn, rng, opts);
    EXPECT_GE(r.plurality_fraction.size(), 4U);
    // Fractions are monotone for the countdown dynamics.
    for (std::size_t i = 1; i < r.plurality_fraction.size(); ++i) {
        EXPECT_GE(r.plurality_fraction[i].value, r.plurality_fraction[i - 1].value);
    }
}

TEST(RunToConsensus, NoSeriesByDefault) {
    CountdownDynamics dyn(5);
    Rng rng(5);
    const SyncResult r = run_to_consensus(dyn, rng);
    EXPECT_EQ(r.plurality_fraction.size(), 0U);
}

TEST(SyncDynamicsInterface, DominantOpinionAndFraction) {
    Rng rng(6);
    const Assignment a = make_from_counts({30, 70}, rng);
    PullVoting dyn(a);
    EXPECT_EQ(dyn.dominant_opinion(), 1U);
    EXPECT_DOUBLE_EQ(dyn.opinion_fraction(1), 0.7);
    EXPECT_FALSE(dyn.converged());
}

TEST(SyncDynamicsInterface, ConvergedOnMonochromaticStart) {
    Rng rng(7);
    const Assignment a = make_from_counts({0, 50}, rng);
    PullVoting dyn(a);
    EXPECT_TRUE(dyn.converged());
    EXPECT_EQ(dyn.dominant_opinion(), 1U);
}

}  // namespace
}  // namespace papc::sync
