#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/theory.hpp"
#include "sync/schedule.hpp"

namespace papc::sync {
namespace {

// Property sweep over the schedule parameter space: for every combination
// of (n, k, alpha, gamma) the structural invariants of DESIGN.md §6 (7)
// must hold.

using ParamTuple = std::tuple<std::size_t, std::uint32_t, double, double>;

class ScheduleProperties : public ::testing::TestWithParam<ParamTuple> {
protected:
    [[nodiscard]] Schedule make() const {
        const auto& [n, k, alpha, gamma] = GetParam();
        ScheduleParams p;
        p.n = n;
        p.k = k;
        p.alpha = alpha;
        p.gamma = gamma;
        return Schedule(p);
    }
};

TEST_P(ScheduleProperties, LifeCyclesPositiveAndBounded) {
    const Schedule s = make();
    const auto& [n, k, alpha, gamma] = GetParam();
    (void)n;
    (void)alpha;
    (void)gamma;
    const double bound = 30.0 * std::log2(static_cast<double>(k) + 2.0) + 60.0;
    for (unsigned i = 0; i < s.total_generations(); ++i) {
        EXPECT_GE(s.life_cycle(i), 1U);
        EXPECT_LT(static_cast<double>(s.life_cycle(i)), bound);
    }
}

TEST_P(ScheduleProperties, BirthStepsStrictlyIncreasing) {
    const Schedule s = make();
    for (unsigned i = 2; i <= s.total_generations(); ++i) {
        EXPECT_GT(s.birth_step(i), s.birth_step(i - 1));
    }
}

TEST_P(ScheduleProperties, TwoChoicesLookupConsistent) {
    const Schedule s = make();
    for (unsigned i = 1; i <= s.total_generations(); ++i) {
        EXPECT_TRUE(s.is_two_choices_step(s.birth_step(i)));
    }
    EXPECT_FALSE(s.is_two_choices_step(0));
    EXPECT_FALSE(s.is_two_choices_step(s.last_two_choices_step() + 1));
}

TEST_P(ScheduleProperties, GenerationBudgetMatchesClosedForm) {
    const Schedule s = make();
    const auto& [n, k, alpha, gamma] = GetParam();
    (void)gamma;
    EXPECT_EQ(s.total_generations(),
              analysis::total_generations(alpha, k, n, 2));
}

TEST_P(ScheduleProperties, HorizonCoversSchedule) {
    const Schedule s = make();
    EXPECT_GT(s.horizon(), s.last_two_choices_step());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleProperties,
    ::testing::Combine(
        ::testing::Values(std::size_t{1} << 10, std::size_t{1} << 16,
                          std::size_t{1} << 22),
        ::testing::Values(2U, 8U, 64U),
        ::testing::Values(1.05, 1.5, 4.0),
        ::testing::Values(0.25, 0.5, 0.75)),
    [](const ::testing::TestParamInfo<ParamTuple>& info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
               std::to_string(std::get<1>(info.param)) + "_a" +
               std::to_string(static_cast<int>(std::get<2>(info.param) * 100)) +
               "_g" +
               std::to_string(static_cast<int>(std::get<3>(info.param) * 100));
    });

}  // namespace
}  // namespace papc::sync
