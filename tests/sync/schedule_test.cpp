#include "sync/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/theory.hpp"

namespace papc::sync {
namespace {

ScheduleParams params(std::size_t n, std::uint32_t k, double alpha,
                      double gamma = 0.5) {
    ScheduleParams p;
    p.n = n;
    p.k = k;
    p.alpha = alpha;
    p.gamma = gamma;
    return p;
}

TEST(LifeCycleExact, PositiveAndBoundedByLogK) {
    // X_i = O(log k): check a generous constant for several configurations.
    for (const std::uint32_t k : {2U, 8U, 64U}) {
        for (unsigned i = 0; i < 8; ++i) {
            const double x = life_cycle_exact(1.5, k, 0.5, i);
            EXPECT_GT(x, 0.0);
            EXPECT_LT(x, 12.0 * std::log2(static_cast<double>(k)) + 20.0);
        }
    }
}

TEST(LifeCycleExact, LateGenerationsAreShort) {
    // Once the bias squared far past k the numerator telescopes:
    // 2·ln(α^(2^(i-1))) - ln(α^(2^i)) = 0, so X_i -> -ln γ/ln(2-γ) + 2.
    const double late = life_cycle_exact(1.5, 8, 0.5, 20);
    const double limit = -std::log(0.5) / std::log(1.5) + 2.0;
    EXPECT_NEAR(late, limit, 0.1);
}

TEST(LifeCycleExact, EarlyGenerationsLongerForMoreOpinions) {
    EXPECT_GT(life_cycle_exact(1.1, 64, 0.5, 1), life_cycle_exact(1.1, 4, 0.5, 1));
}

TEST(Schedule, BirthStepsStrictlyIncreasing) {
    const Schedule s(params(1 << 16, 8, 1.5));
    ASSERT_GE(s.total_generations(), 3U);
    for (unsigned i = 2; i <= s.total_generations(); ++i) {
        EXPECT_GT(s.birth_step(i), s.birth_step(i - 1));
    }
}

TEST(Schedule, BirthStepMatchesCumulativeLifeCycles) {
    const Schedule s(params(1 << 14, 4, 2.0));
    std::uint64_t cumulative = 0;
    for (unsigned i = 1; i <= s.total_generations(); ++i) {
        cumulative += s.life_cycle(i - 1);
        EXPECT_EQ(s.birth_step(i), cumulative + 1);
    }
}

TEST(Schedule, TwoChoicesStepsAreExactlyBirthSteps) {
    const Schedule s(params(1 << 14, 8, 1.5));
    std::size_t found = 0;
    for (std::uint64_t t = 1; t <= s.last_two_choices_step(); ++t) {
        if (s.is_two_choices_step(t)) {
            ++found;
            bool is_birth = false;
            for (unsigned i = 1; i <= s.total_generations(); ++i) {
                if (s.birth_step(i) == t) is_birth = true;
            }
            EXPECT_TRUE(is_birth) << t;
        }
    }
    EXPECT_EQ(found, s.total_generations());
}

TEST(Schedule, TotalGenerationsMatchesTheory) {
    const ScheduleParams p = params(1 << 16, 8, 1.5);
    const Schedule s(p);
    EXPECT_EQ(s.total_generations(),
              analysis::total_generations(p.alpha, p.k, p.n, p.slack));
}

TEST(Schedule, HorizonExceedsLastTwoChoicesStep) {
    const Schedule s(params(1 << 12, 4, 1.5));
    EXPECT_GT(s.horizon(), s.last_two_choices_step());
    // Lemma 12 tail is O(log log n): generous sanity bound.
    EXPECT_LT(s.horizon() - s.last_two_choices_step(), 40U);
}

TEST(Schedule, HigherBiasNeedsFewerGenerations) {
    const Schedule weak(params(1 << 16, 8, 1.1));
    const Schedule strong(params(1 << 16, 8, 4.0));
    EXPECT_GT(weak.total_generations(), strong.total_generations());
}

TEST(Schedule, GammaAffectsLifeCycleLength) {
    // Larger γ demands a larger generation before hand-over: longer cycles.
    const Schedule lo(params(1 << 14, 8, 1.5, 0.3));
    const Schedule hi(params(1 << 14, 8, 1.5, 0.8));
    EXPECT_LE(lo.life_cycle(0), hi.life_cycle(0) + 2);
}

TEST(Schedule, LifeCyclesDecreaseOverall) {
    // X_i decreases as the bias grows (paper: "as i increases, Xi
    // decreases"); compare the first against the last.
    const Schedule s(params(1 << 18, 16, 1.2));
    EXPECT_GE(s.life_cycle(0), s.life_cycle(s.total_generations() - 1));
}

}  // namespace
}  // namespace papc::sync
